"""Command-line interface: regenerate any paper figure from the shell.

Usage::

    python -m repro fig4 [--algorithms powertcp,hpcc] [--fanout 10]
    python -m repro fig6 --load 0.6
    python -m repro fig8
    python -m repro list

Each subcommand runs the same experiment code path as the corresponding
benchmark target and prints the series the paper plots.  Scaled-down
defaults keep runs interactive; flags expose the knobs.
"""

from __future__ import annotations

import argparse
import sys
from typing import List

from repro.analysis.stats import percentile
from repro.experiments.fairness import FairnessConfig, run_fairness
from repro.experiments.incast import IncastConfig, run_incast
from repro.experiments.rdcn import (
    RdcnConfig,
    run_rdcn,
    scaled_prebuffer_ns,
    scaled_rdcn,
)
from repro.experiments.websearch import WebsearchConfig, run_websearch
from repro.fluid.laws import GRADIENT_LAW, POWER_LAW, QUEUE_LAW
from repro.fluid.model import FluidParams
from repro.fluid.phase import phase_portrait
from repro.fluid.reaction import (
    decrease_vs_buildup_rate,
    decrease_vs_queue_length,
    three_case_comparison,
)
from repro.units import GBPS, MSEC, USEC

DEFAULT_ALGOS = ["powertcp", "theta-powertcp", "hpcc", "dcqcn", "timely", "homa"]


def _algos(args) -> List[str]:
    return args.algorithms.split(",") if args.algorithms else DEFAULT_ALGOS


def cmd_fig2(args) -> None:
    """Fig. 2: reaction curves of the control-law taxonomy."""
    b_Bps = 100 * GBPS / 8.0
    tau = 20e-6
    bdp = b_Bps * tau
    print("Fig 2a — multiplicative decrease vs queue buildup rate:")
    series = decrease_vs_buildup_rate(
        bandwidth_Bps=b_Bps, tau_s=tau, queue_bytes=0.5 * bdp,
        rate_multiples=[0, 1, 2, 4, 8],
    )
    for name, values in series.items():
        print(f"  {name:14s} " + " ".join(f"{v:5.2f}" for v in values))
    print("Fig 2b — multiplicative decrease vs queue length (xBDP 0..4):")
    series = decrease_vs_queue_length(
        bandwidth_Bps=b_Bps, tau_s=tau,
        queue_lengths_bytes=[f * bdp for f in (0, 1, 2, 4)],
    )
    for name, values in series.items():
        print(f"  {name:14s} " + " ".join(f"{v:5.2f}" for v in values))
    print("Fig 2c — the three cases:")
    for case in three_case_comparison(bandwidth_Bps=b_Bps, tau_s=tau):
        print(
            f"  {case.label:45s} V={case.voltage:5.2f} "
            f"I={case.current:5.2f} P={case.power:6.2f}"
        )


def cmd_fig3(args) -> None:
    """Fig. 3: phase portraits of the three law classes."""
    params = FluidParams()
    params.beta_bytes = 0.01 * params.bdp_bytes
    for law in (QUEUE_LAW, GRADIENT_LAW, POWER_LAW):
        portrait = phase_portrait(law, params)
        print(
            f"{law.name:14s} equilibrium-spread={portrait.equilibrium_spread():6.3f} "
            f"throughput-loss-fraction={portrait.fraction_with_loss():5.0%}"
        )


def cmd_fig4(args) -> None:
    """Fig. 4: incast reaction time series summary."""
    for algo in _algos(args):
        r = run_incast(
            IncastConfig(algorithm=algo, fanout=args.fanout,
                         duration_ns=args.duration_ms * MSEC)
        )
        print(
            f"{algo:>15s} peakQ={r.peak_qlen_bytes/1000:7.1f}KB "
            f"settledQ={r.mean_late_qlen()/1000:6.1f}KB "
            f"burst-util={r.burst_utilization():5.2f} "
            f"done={len(r.burst_fcts_ns)}/{r.fanout}"
        )


def cmd_fig5(args) -> None:
    """Fig. 5: fairness under flow churn."""
    for algo in _algos(args):
        r = run_fairness(FairnessConfig(algorithm=algo))
        epochs = " ".join(f"{j:5.3f}" for j in r.epoch_jain)
        print(f"{algo:>15s} jain-per-epoch: {epochs}")


def cmd_fig6(args) -> None:
    """Fig. 6: web-search FCT slowdowns at one load."""
    for algo in _algos(args):
        r = run_websearch(
            WebsearchConfig(
                algorithm=algo,
                load=args.load,
                duration_ns=20 * MSEC,
                drain_ns=40 * MSEC,
                size_scale=1 / 16,
                max_flows=args.flows,
            )
        )
        print(r.fct_summary(pct=args.pct).row())


def cmd_fig7g(args) -> None:
    """Fig. 7g: buffer-occupancy CDF at 80 % load."""
    for algo in _algos(args):
        r = run_websearch(
            WebsearchConfig(
                algorithm=algo, load=0.8, duration_ns=20 * MSEC,
                drain_ns=40 * MSEC, size_scale=1 / 16, max_flows=args.flows,
            )
        )
        row = " ".join(
            f"p{p:g}={percentile(r.buffer_samples_bytes, p):8.0f}B"
            for p in (50, 90, 99)
        )
        print(f"{algo:>15s} {row}")


def cmd_fig8(args) -> None:
    """Fig. 8: the RDCN case study."""
    variants = [("powertcp", 0), ("hpcc", 0), ("retcp", 600 * USEC),
                ("retcp", 1800 * USEC)]
    for algo, paper_pre in variants:
        params = scaled_rdcn()
        pre = scaled_prebuffer_ns(params, paper_pre) if paper_pre else 0
        r = run_rdcn(
            RdcnConfig(algorithm=algo, params=params, prebuffer_ns=pre,
                       duration_ns=4 * MSEC)
        )
        name = f"{algo}-{paper_pre // 1000}us" if paper_pre else algo
        print(
            f"{name:>15s} circuit-util={r.circuit_utilization:5.2f} "
            f"peak-VOQ={r.peak_voq_bytes()/1000:8.1f}KB "
            f"p99-qlat={r.tail_queuing_latency_ns/1000:7.1f}us"
        )


def cmd_fig9(args) -> None:
    """Fig. 9: HOMA fairness across overcommitment levels."""
    for oc in (1, 2, 3, 4, 5, 6):
        r = run_fairness(FairnessConfig(algorithm="homa", homa_overcommit=oc))
        epochs = " ".join(f"{j:5.3f}" for j in r.epoch_jain)
        print(f"OC={oc} jain-per-epoch: {epochs}")


def cmd_fig10(args) -> None:
    """Figs. 10/11: HOMA incast across overcommitment levels."""
    for oc in (1, 2, 4, 6):
        r = run_incast(
            IncastConfig(algorithm="homa", fanout=args.fanout,
                         duration_ns=args.duration_ms * MSEC,
                         cc_params={"overcommitment": oc})
        )
        print(
            f"OC={oc} peakQ={r.peak_qlen_bytes/1000:7.1f}KB "
            f"burst-util={r.burst_utilization():5.2f} "
            f"done={len(r.burst_fcts_ns)}/{r.fanout}"
        )


COMMANDS = {
    "fig2": cmd_fig2,
    "fig3": cmd_fig3,
    "fig4": cmd_fig4,
    "fig5": cmd_fig5,
    "fig6": cmd_fig6,
    "fig7g": cmd_fig7g,
    "fig8": cmd_fig8,
    "fig9": cmd_fig9,
    "fig10": cmd_fig10,
    "fig11": cmd_fig10,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate PowerTCP (NSDI'22) paper figures.",
    )
    parser.add_argument(
        "figure",
        choices=sorted(COMMANDS) + ["list"],
        help="which figure to regenerate",
    )
    parser.add_argument(
        "--algorithms",
        help="comma-separated algorithm list (default: the paper's set)",
    )
    parser.add_argument("--fanout", type=int, default=10, help="incast fan-in")
    parser.add_argument("--load", type=float, default=0.6, help="network load")
    parser.add_argument("--flows", type=int, default=300, help="flow budget")
    parser.add_argument("--pct", type=float, default=99.0, help="tail percentile")
    parser.add_argument(
        "--duration-ms", type=int, default=4, help="simulated milliseconds"
    )
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.figure == "list":
        for name in sorted(COMMANDS):
            print(f"{name:7s} {COMMANDS[name].__doc__.strip()}")
        return 0
    COMMANDS[args.figure](args)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())

"""Command-line interface: scenarios, sweeps, and paper-figure aliases.

Usage::

    python -m repro list
    python -m repro run websearch --algorithm hpcc --set load=0.4
    python -m repro sweep websearch --algorithms powertcp,hpcc \
        --loads 0.2,0.6 --jobs 4
    python -m repro fig4 [--algorithms powertcp,hpcc] [--fanout 10]

``run`` executes one registered scenario and prints its metrics;
``sweep`` expands a parameter grid across worker processes (deterministic
per-cell seeding) and persists JSON to ``benchmarks/results/``.  The
legacy ``figN`` subcommands are thin aliases over the same experiment
code paths and print the exact series the paper plots.
"""

from __future__ import annotations

import argparse
import ast
import json
import sys
from typing import Dict, List

from repro.analysis.stats import percentile
from repro.experiments.fairness import FairnessConfig, run_fairness
from repro.experiments.incast import IncastConfig, run_incast
from repro.experiments.rdcn import (
    RdcnConfig,
    run_rdcn,
    scaled_prebuffer_ns,
    scaled_rdcn,
)
from repro.experiments.websearch import WebsearchConfig, run_websearch
from repro.fluid.laws import GRADIENT_LAW, POWER_LAW, QUEUE_LAW
from repro.fluid.model import FluidParams
from repro.fluid.phase import phase_portrait
from repro.fluid.reaction import (
    decrease_vs_buildup_rate,
    decrease_vs_queue_length,
    three_case_comparison,
)
from repro.cc.registry import ALGORITHMS, HOMA_TRANSPORT, algorithm_names
from repro.routing.registry import (
    POLICIES,
    load_builtin_policies,
    policy_names,
)
from repro.scenarios import get_scenario, scenario_names
from repro.scenarios.sweep import (
    SweepRunner,
    SweepSpec,
    default_results_path,
    parse_shard,
    shard_results_path,
)
from repro.topology.registry import TOPOLOGIES, topology_names
from repro.units import GBPS, MSEC, USEC

DEFAULT_ALGOS = ["powertcp", "theta-powertcp", "hpcc", "dcqcn", "timely", "homa"]


def _algos(args) -> List[str]:
    return args.algorithms.split(",") if args.algorithms else DEFAULT_ALGOS


# ----------------------------------------------------------------------
# Legacy figure aliases (same series as always)
# ----------------------------------------------------------------------
def cmd_fig2(args) -> None:
    """Fig. 2: reaction curves of the control-law taxonomy."""
    b_Bps = 100 * GBPS / 8.0
    tau = 20e-6
    bdp = b_Bps * tau
    print("Fig 2a — multiplicative decrease vs queue buildup rate:")
    series = decrease_vs_buildup_rate(
        bandwidth_Bps=b_Bps, tau_s=tau, queue_bytes=0.5 * bdp,
        rate_multiples=[0, 1, 2, 4, 8],
    )
    for name, values in series.items():
        print(f"  {name:14s} " + " ".join(f"{v:5.2f}" for v in values))
    print("Fig 2b — multiplicative decrease vs queue length (xBDP 0..4):")
    series = decrease_vs_queue_length(
        bandwidth_Bps=b_Bps, tau_s=tau,
        queue_lengths_bytes=[f * bdp for f in (0, 1, 2, 4)],
    )
    for name, values in series.items():
        print(f"  {name:14s} " + " ".join(f"{v:5.2f}" for v in values))
    print("Fig 2c — the three cases:")
    for case in three_case_comparison(bandwidth_Bps=b_Bps, tau_s=tau):
        print(
            f"  {case.label:45s} V={case.voltage:5.2f} "
            f"I={case.current:5.2f} P={case.power:6.2f}"
        )


def cmd_fig3(args) -> None:
    """Fig. 3: phase portraits of the three law classes."""
    params = FluidParams()
    params.beta_bytes = 0.01 * params.bdp_bytes
    for law in (QUEUE_LAW, GRADIENT_LAW, POWER_LAW):
        portrait = phase_portrait(law, params)
        print(
            f"{law.name:14s} equilibrium-spread={portrait.equilibrium_spread():6.3f} "
            f"throughput-loss-fraction={portrait.fraction_with_loss():5.0%}"
        )


def cmd_fig4(args) -> None:
    """Fig. 4: incast reaction time series summary."""
    for algo in _algos(args):
        r = run_incast(
            IncastConfig(algorithm=algo, fanout=args.fanout,
                         duration_ns=args.duration_ms * MSEC)
        )
        print(
            f"{algo:>15s} peakQ={r.peak_qlen_bytes/1000:7.1f}KB "
            f"settledQ={r.mean_late_qlen()/1000:6.1f}KB "
            f"burst-util={r.burst_utilization():5.2f} "
            f"done={len(r.burst_fcts_ns)}/{r.fanout}"
        )


def cmd_fig5(args) -> None:
    """Fig. 5: fairness under flow churn."""
    for algo in _algos(args):
        r = run_fairness(FairnessConfig(algorithm=algo))
        epochs = " ".join(f"{j:5.3f}" for j in r.epoch_jain)
        print(f"{algo:>15s} jain-per-epoch: {epochs}")


def cmd_fig6(args) -> None:
    """Fig. 6: web-search FCT slowdowns at one load."""
    for algo in _algos(args):
        r = run_websearch(
            WebsearchConfig(
                algorithm=algo,
                load=args.load,
                duration_ns=20 * MSEC,
                drain_ns=40 * MSEC,
                size_scale=1 / 16,
                max_flows=args.flows,
            )
        )
        print(r.fct_summary(pct=args.pct).row())


def cmd_fig7g(args) -> None:
    """Fig. 7g: buffer-occupancy CDF at 80 % load."""
    for algo in _algos(args):
        r = run_websearch(
            WebsearchConfig(
                algorithm=algo, load=0.8, duration_ns=20 * MSEC,
                drain_ns=40 * MSEC, size_scale=1 / 16, max_flows=args.flows,
            )
        )
        row = " ".join(
            f"p{p:g}={percentile(r.buffer_samples_bytes, p):8.0f}B"
            for p in (50, 90, 99)
        )
        print(f"{algo:>15s} {row}")


def cmd_fig8(args) -> None:
    """Fig. 8: the RDCN case study."""
    variants = [("powertcp", 0), ("hpcc", 0), ("retcp", 600 * USEC),
                ("retcp", 1800 * USEC)]
    for algo, paper_pre in variants:
        params = scaled_rdcn()
        pre = scaled_prebuffer_ns(params, paper_pre) if paper_pre else 0
        r = run_rdcn(
            RdcnConfig(algorithm=algo, params=params, prebuffer_ns=pre,
                       duration_ns=4 * MSEC)
        )
        name = f"{algo}-{paper_pre // 1000}us" if paper_pre else algo
        print(
            f"{name:>15s} circuit-util={r.circuit_utilization:5.2f} "
            f"peak-VOQ={r.peak_voq_bytes()/1000:8.1f}KB "
            f"p99-qlat={r.tail_queuing_latency_ns/1000:7.1f}us"
        )


def cmd_fig9(args) -> None:
    """Fig. 9: HOMA fairness across overcommitment levels."""
    for oc in (1, 2, 3, 4, 5, 6):
        r = run_fairness(FairnessConfig(algorithm="homa", homa_overcommit=oc))
        epochs = " ".join(f"{j:5.3f}" for j in r.epoch_jain)
        print(f"OC={oc} jain-per-epoch: {epochs}")


def cmd_fig10(args) -> None:
    """Figs. 10/11: HOMA incast across overcommitment levels."""
    for oc in (1, 2, 4, 6):
        r = run_incast(
            IncastConfig(algorithm="homa", fanout=args.fanout,
                         duration_ns=args.duration_ms * MSEC,
                         cc_params={"overcommitment": oc})
        )
        print(
            f"OC={oc} peakQ={r.peak_qlen_bytes/1000:7.1f}KB "
            f"burst-util={r.burst_utilization():5.2f} "
            f"done={len(r.burst_fcts_ns)}/{r.fanout}"
        )


COMMANDS = {
    "fig2": cmd_fig2,
    "fig3": cmd_fig3,
    "fig4": cmd_fig4,
    "fig5": cmd_fig5,
    "fig6": cmd_fig6,
    "fig7g": cmd_fig7g,
    "fig8": cmd_fig8,
    "fig9": cmd_fig9,
    "fig10": cmd_fig10,
    "fig11": cmd_fig10,
}


# ----------------------------------------------------------------------
# Scenario subcommands: run / sweep / list
# ----------------------------------------------------------------------
def _parse_value(text: str):
    """Literal-eval a CLI value, falling back to the raw string."""
    try:
        return ast.literal_eval(text)
    except (ValueError, SyntaxError):
        return text


def _parse_overrides(pairs: List[str]) -> Dict:
    """['load=0.4', 'algorithm=hpcc'] -> {'load': 0.4, 'algorithm': 'hpcc'}"""
    overrides = {}
    for pair in pairs:
        key, sep, value = pair.partition("=")
        if not sep or not key:
            raise SystemExit(f"--set expects key=value, got {pair!r}")
        overrides[key] = _parse_value(value)
    return overrides


def _fmt_metric(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def _scenario_or_exit(name: str):
    try:
        return get_scenario(name)
    except KeyError as exc:
        raise SystemExit(exc.args[0])


def cmd_run(args) -> None:
    """Run one registered scenario and print its metrics."""
    scenario = _scenario_or_exit(args.scenario)
    overrides = dict(scenario.tiny_overrides()) if args.tiny else {}
    if args.algorithm:
        overrides["algorithm"] = args.algorithm
    overrides.update(_parse_overrides(args.set or []))
    try:
        config = scenario.configure(**overrides)
    except ValueError as exc:  # unknown config field: a usage error
        raise SystemExit(str(exc))
    result = scenario.run(config=config)
    if args.json:
        print(json.dumps(result.to_json_dict(), indent=1, sort_keys=True))
        return
    prov = result.provenance
    print(f"scenario={result.scenario} algorithm={prov['algorithm']} "
          f"seed={prov['seed']}")
    for key in sorted(result.metrics):
        print(f"  {key:26s} {_fmt_metric(result.metrics[key])}")
    print(f"  {'events_processed':26s} {prov['events_processed']}")
    print(f"  {'wall_time_s':26s} {prov['wall_time_s']:.3f}")


def cmd_sweep(args) -> None:
    """Expand a parameter grid and run the cells across processes."""
    grid: Dict[str, List] = {}
    if args.algorithms:
        grid["algorithm"] = args.algorithms.split(",")
    if args.loads:
        grid["load"] = [float(v) for v in args.loads.split(",")]
    if args.fanouts:
        grid["fanout"] = [int(v) for v in args.fanouts.split(",")]
    for axis in args.grid or []:
        key, sep, values = axis.partition("=")
        if not sep or not values:
            raise SystemExit(f"--grid expects key=v1,v2,..., got {axis!r}")
        grid[key] = [_parse_value(v) for v in values.split(",")]
    if not grid:
        raise SystemExit(
            "sweep needs at least one axis "
            "(--algorithms/--loads/--fanouts/--grid)"
        )
    scenario = _scenario_or_exit(args.scenario)
    base = dict(scenario.tiny_overrides()) if args.tiny else {}
    base.update(_parse_overrides(args.set or []))
    spec = SweepSpec(
        scenario=args.scenario, grid=grid, base=base, seed=args.seed
    )
    shard = None
    if args.shard:
        try:
            shard = parse_shard(args.shard)
        except ValueError as exc:
            raise SystemExit(str(exc))
    out_path = args.out or default_results_path(args.scenario)
    if shard is not None:
        # Each shard persists (and caches) its own file; merge_shards in
        # repro.analysis.results recombines them.
        out_path = shard_results_path(out_path, shard)
    try:
        # The constructor validates grid axes and the job count.  The
        # output file doubles as the incremental cache: cells whose
        # (config, seed) already exist there are reused unless --force.
        runner = SweepRunner(
            spec, jobs=args.jobs, reuse_path=out_path, force=args.force,
            shard=shard,
        )
    except ValueError as exc:  # unknown/empty grid axis, bad jobs
        raise SystemExit(str(exc))
    sweep = runner.run()
    for cell in sweep.cells:
        params = " ".join(f"{k}={v}" for k, v in sorted(cell.params.items()))
        metrics = " ".join(
            f"{k}={_fmt_metric(v)}" for k, v in sorted(cell.result.metrics.items())
        )
        print(f"{params} | {metrics}")
    # keep_existing: the file doubles as the incremental cache, so a
    # narrower re-run must not discard previously persisted cells —
    # --force bypasses cache *reads* but never purges unrelated results.
    path = sweep.persist(out_path, keep_existing=True)
    total = sweep.persisted_cell_count
    extra = f", {total} total in file" if total > len(sweep.cells) else ""
    reused = (
        f", reused {runner.reused_cells} cached" if runner.reused_cells else ""
    )
    print(
        f"wrote {path} ({len(sweep.cells)} cells, jobs={args.jobs}"
        f"{reused}{extra})"
    )


def cmd_campaign(args) -> int:
    """Run a fault-tolerant campaign from a manifest file."""
    from repro.analysis.results import ResultSet, format_failure_report
    from repro.campaign import load_manifest, run_campaign

    try:
        manifest = load_manifest(args.manifest)
    except ValueError as exc:
        raise SystemExit(str(exc))
    report = run_campaign(
        manifest,
        workers=args.workers,
        out=args.out,
        force=args.force,
        quiet=args.quiet,
        manifest_path=args.manifest,
    )
    if report.interrupted:
        print(
            f"campaign interrupted: "
            f"{report.ok + report.failed}/{report.total_cells} cells done; "
            f"resume with: python -m repro campaign {args.manifest}"
        )
        return 130
    print(
        f"wrote {report.out_path} ({report.total_cells} cells: "
        f"{report.ok} ok, {report.failed} failed; "
        f"{report.executed} executed, {report.retried} retried, "
        f"{report.reused_cache} reused, "
        f"{report.recovered_journal} recovered from journal)"
    )
    if report.failed:
        for line in format_failure_report(ResultSet.load(report.out_path)):
            print(line)
        print(f"failure report: {report.failures_path}")
        return 1
    return 0


def cmd_perf(args) -> None:
    """Run the tracked perf macro-benchmarks and write BENCH_perf.json."""
    from repro.perf import bench as perf_bench

    if args.engines:
        for line in perf_bench.engine_report():
            print(line)
        return
    compare = None
    if args.compare:
        try:
            compare = perf_bench.load_bench(args.compare)
        except (OSError, ValueError) as exc:
            raise SystemExit(f"cannot load --compare file: {exc}")
    cases = args.cases.split(",") if args.cases else None
    try:
        doc = perf_bench.run_perf(
            cases, tiny=args.tiny, repeats=args.repeats, compare=compare
        )
    except ValueError as exc:
        raise SystemExit(str(exc))
    for line in perf_bench.format_bench(doc):
        print(line)
    if not args.no_write:
        path = perf_bench.write_bench(doc, args.out)
        print(f"wrote {path}")
    if args.history:
        path = perf_bench.append_history(
            doc, args.history, label=args.history_label
        )
        print(f"appended snapshot to {path}")
    if args.warn_regression:
        warnings = perf_bench.regression_warnings(doc)
        for line in warnings:
            print(f"WARNING: {line}")
        if not warnings and compare is not None:
            print("no events/sec regressions vs the reference")


def _requirements_summary(entry) -> str:
    req = entry.requirements
    parts = []
    if req.int_stamping:
        parts.append("INT")
    if req.ecn_config is not None:
        parts.append("ECN")
    if req.cnp_interval_ns is not None:
        parts.append("CNP")
    if req.transport == HOMA_TRANSPORT:
        parts.append("receiver-driven")
    return "+".join(parts) if parts else "-"


def cmd_list(args) -> None:
    """Print the scenario, CC, and topology registries and the figure
    aliases."""
    print("scenarios (python -m repro run|sweep <name>):")
    for name in scenario_names():
        scenario = get_scenario(name)
        print(f"  {name:12s} {scenario.description}")
        print(f"  {'':12s}   fields: {', '.join(scenario.config_fields())}")
    print()
    print("topologies (--set topology=<name> where scenarios support it):")
    for name in topology_names():
        entry = TOPOLOGIES[name]
        print(f"  {name:12s} {entry.description}")
        print(f"  {'':12s}   params: {', '.join(entry.param_fields())}")
        if entry.aliases:
            print(f"  {'':12s}   aliases: {', '.join(entry.aliases)}")
    print()
    print("congestion-control algorithms (--algorithm/--algorithms):")
    for name in algorithm_names():
        entry = ALGORITHMS[name]
        features = _requirements_summary(entry)
        print(f"  {name:15s} [{features:>15s}] {entry.description}")
        if entry.aliases:
            print(f"  {'':15s} {'':>17s} aliases: {', '.join(entry.aliases)}")
    print()
    print("routing policies (--set routing=<name> where topologies support it):")
    load_builtin_policies()
    for name in policy_names():
        entry = POLICIES[name]
        req = entry.requirements
        features = (
            "per-packet, reorder-tolerant receiver"
            if not req.flow_stable or req.reordering_tolerant_receiver
            else "flow-stable"
        )
        print(f"  {name:15s} [{features}] {entry.description}")
        if entry.aliases:
            print(f"  {'':15s} aliases: {', '.join(entry.aliases)}")
        if entry.param_names:
            print(f"  {'':15s} params: {', '.join(sorted(entry.param_names))}")
    print()
    print("figure aliases (python -m repro <figN>):")
    for name in sorted(COMMANDS):
        print(f"  {name:7s} {COMMANDS[name].__doc__.strip()}")


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="PowerTCP (NSDI'22) scenarios, sweeps, and paper figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True, metavar="command")

    # figN aliases share the legacy flag set.
    fig_flags = argparse.ArgumentParser(add_help=False)
    fig_flags.add_argument(
        "--algorithms",
        help="comma-separated algorithm list (default: the paper's set)",
    )
    fig_flags.add_argument("--fanout", type=int, default=10, help="incast fan-in")
    fig_flags.add_argument("--load", type=float, default=0.6, help="network load")
    fig_flags.add_argument("--flows", type=int, default=300, help="flow budget")
    fig_flags.add_argument("--pct", type=float, default=99.0, help="tail percentile")
    fig_flags.add_argument(
        "--duration-ms", type=int, default=4, help="simulated milliseconds"
    )
    for name in sorted(COMMANDS):
        sub.add_parser(
            name, parents=[fig_flags],
            help=COMMANDS[name].__doc__.strip().rstrip("."),
        )

    sub.add_parser("list", help="list registered scenarios and figure aliases")

    from repro.lint.cli import add_lint_parser

    add_lint_parser(sub)

    run_p = sub.add_parser("run", help="run one registered scenario")
    run_p.add_argument("scenario", help="registered scenario name")
    run_p.add_argument("--algorithm", help="congestion-control algorithm")
    run_p.add_argument(
        "--set", action="append", metavar="KEY=VALUE",
        help="config override (repeatable)",
    )
    run_p.add_argument(
        "--tiny", action="store_true",
        help="start from the scenario's fast smoke configuration",
    )
    run_p.add_argument(
        "--json", action="store_true", help="print the full ScenarioResult as JSON"
    )

    sweep_p = sub.add_parser(
        "sweep", help="run a parameter grid across worker processes"
    )
    sweep_p.add_argument("scenario", help="registered scenario name")
    sweep_p.add_argument(
        "--algorithms", help="comma-separated values for the algorithm axis"
    )
    sweep_p.add_argument("--loads", help="comma-separated values for the load axis")
    sweep_p.add_argument(
        "--fanouts", help="comma-separated values for the fanout axis"
    )
    sweep_p.add_argument(
        "--grid", action="append", metavar="KEY=V1,V2",
        help="extra sweep axis over any config field (repeatable)",
    )
    sweep_p.add_argument(
        "--set", action="append", metavar="KEY=VALUE",
        help="base config override shared by all cells (repeatable)",
    )
    sweep_p.add_argument(
        "--tiny", action="store_true",
        help="start from the scenario's fast smoke configuration",
    )
    sweep_p.add_argument("--jobs", type=int, default=1, help="worker processes")
    sweep_p.add_argument("--seed", type=int, default=1, help="sweep base seed")
    sweep_p.add_argument(
        "--out",
        help="JSON output path (default <repo>/benchmarks/results/"
             "<scenario>_sweep.json, cwd-independent)",
    )
    sweep_p.add_argument(
        "--force", action="store_true",
        help="re-run every cell even if present in the output JSON",
    )
    sweep_p.add_argument(
        "--shard", metavar="I/N",
        help="run only this machine's 1/N of the grid (1-based; output "
             "goes to <out>.shard-I-of-N.json; merge with "
             "analysis.results.merge_shards)",
    )

    campaign_p = sub.add_parser(
        "campaign",
        help="run a manifest-driven sweep campaign with retries, "
             "timeouts, and crash-safe resume",
    )
    campaign_p.add_argument(
        "manifest", help="campaign manifest JSON (see repro.campaign.manifest)"
    )
    campaign_p.add_argument(
        "--workers", type=int,
        help="worker subprocess count (default: the manifest's)",
    )
    campaign_p.add_argument(
        "--out", help="merged output path (default: the manifest's)"
    )
    campaign_p.add_argument(
        "--force", action="store_true",
        help="ignore cached/journaled cells and re-run everything",
    )
    campaign_p.add_argument(
        "--quiet", action="store_true", help="suppress progress lines"
    )

    perf_p = sub.add_parser(
        "perf", help="run the tracked perf macro-benchmarks"
    )
    perf_p.add_argument(
        "--cases", help="comma-separated case names (default: all)"
    )
    perf_p.add_argument(
        "--tiny", action="store_true",
        help="reduced CI-smoke grid instead of the full macro grid",
    )
    perf_p.add_argument(
        "--repeats", type=int, default=1,
        help="timing repeats per case (best run is reported)",
    )
    perf_p.add_argument(
        "--out", default="BENCH_perf.json",
        help="output document path (default BENCH_perf.json)",
    )
    perf_p.add_argument(
        "--compare", metavar="PATH",
        help="previous BENCH_perf.json to compute per-case speedups against",
    )
    perf_p.add_argument(
        "--no-write", action="store_true",
        help="print the table without writing the document",
    )
    perf_p.add_argument(
        "--history", metavar="PATH", nargs="?",
        const="benchmarks/results/perf_history.json",
        help="append a compact snapshot to the tracked history file "
             "(default path benchmarks/results/perf_history.json)",
    )
    perf_p.add_argument(
        "--history-label",
        help="label for the --history snapshot (default: generation date)",
    )
    perf_p.add_argument(
        "--warn-regression", action="store_true",
        help="print WARNING lines for cases >10%% below their --compare "
             "reference (informational; exit status is unaffected)",
    )
    perf_p.add_argument(
        "--engines", action="store_true",
        help="report which engine variants are live (compiled core "
             "loaded or not, and what best/auto resolve to), then exit",
    )
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        cmd_list(args)
    elif args.command == "run":
        cmd_run(args)
    elif args.command == "sweep":
        cmd_sweep(args)
    elif args.command == "campaign":
        return cmd_campaign(args)
    elif args.command == "perf":
        cmd_perf(args)
    elif args.command == "lint":
        from repro.lint.cli import cmd_lint

        return cmd_lint(args)
    else:
        COMMANDS[args.command](args)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())

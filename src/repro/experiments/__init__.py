"""Per-figure experiment runners shared by tests, benches, and examples.

Each module exposes plain functions that build a network, deploy one CC
algorithm via :class:`repro.experiments.driver.FlowDriver`, run the event
loop, and return result dataclasses — so a pytest-benchmark target, an
example script, and an integration test all execute the same code path.

Every module also registers a :class:`repro.scenarios.base.Scenario`
wrapper with the scenario registry (see :mod:`repro.scenarios`), which
gives all experiments — the five paper figures plus the ``coexistence``
mixed-deployment and ``permutation`` fabric-stress scenarios — a uniform
``configure -> build -> run -> collect`` lifecycle, a common
:class:`ScenarioResult` record, and access to the parallel sweep runner
(``python -m repro sweep <scenario> ...``).
"""

from repro.experiments.driver import FlowDriver

__all__ = ["FlowDriver"]

"""Fig. 4: reaction to incast — throughput and queue time series.

The microbenchmark: a long flow occupies the path to one receiver; at
t = 0, ``fanout`` additional senders burst toward the same receiver
(10:1 and 255:1 in the paper).  The figure tracks the bottleneck's
aggregate throughput and queue length; the qualitative claims to
reproduce:

* PowerTCP / θ-PowerTCP drain the queue to near zero *without* losing
  throughput afterwards;
* HPCC reacts but overshoots higher and dips in throughput after the
  incast resolves;
* TIMELY controls neither queue nor post-incast throughput well;
* HOMA sustains throughput but parks a standing queue.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import List, Optional

from repro.experiments.driver import FlowDriver
from repro.scenarios import registry as scenario_registry
from repro.scenarios.base import Scenario
from repro.sim.engine import Simulator
from repro.sim.tracing import PortProbe
from repro.topology.registry import build_topology
from repro.units import GBPS, MSEC, USEC


@dataclass
class IncastConfig:
    """Scaled-down defaults (paper scale: fanout 10/255 on 25/100 Gbps)."""

    algorithm: str = "powertcp"
    fanout: int = 10
    burst_bytes: int = 200_000
    long_flow: bool = True
    host_bw_bps: float = 10 * GBPS
    bottleneck_bw_bps: float = 10 * GBPS
    buffer_bytes: int = 4_000_000
    duration_ns: int = 4 * MSEC
    probe_interval_ns: int = 10 * USEC
    mtu_payload: int = 1000
    cc_params: Optional[dict] = None


@dataclass
class IncastResult:
    """Time series plus the summary quantities the paper discusses."""

    algorithm: str
    fanout: int
    bottleneck_bw_bps: float = 0.0
    burst_start_ns: int = 0
    burst_end_ns: int = 0  # completion of the last burst flow
    times_ns: List[int] = field(default_factory=list)
    throughput_bps: List[float] = field(default_factory=list)
    qlen_bytes: List[float] = field(default_factory=list)
    peak_qlen_bytes: int = 0
    final_qlen_bytes: float = 0.0
    drops: int = 0
    events_processed: int = 0
    burst_fcts_ns: List[int] = field(default_factory=list)

    def _window(self, start_ns: int, end_ns: int, series: List[float]) -> List[float]:
        return [
            v
            for t, v in zip(self.times_ns, series)
            if start_ns <= t < end_ns
        ]

    def queue_drain_time_ns(self, threshold_bytes: int) -> Optional[int]:
        """Time at which the queue first falls back below
        ``threshold_bytes`` after its peak (None if it never does)."""
        seen_peak = False
        for t, q in zip(self.times_ns, self.qlen_bytes):
            if q > threshold_bytes:
                seen_peak = True
            elif seen_peak:
                return t
        return None

    def post_incast_throughput_dip(self) -> float:
        """Minimum throughput (fraction of line rate) between the queue
        draining and the *first* burst flow completing, i.e. while the
        flow set is still constant — the "loses throughput after
        mitigating the incast" signature of HPCC/TIMELY in Fig. 4.

        1.0 means the algorithm resolved the incast without ever starving
        the link (PowerTCP's claim)."""
        drain = self.queue_drain_time_ns(int(0.05 * self.peak_qlen_bytes) + 1)
        start = drain if drain is not None else self.burst_start_ns
        end = self.burst_end_ns
        if self.burst_fcts_ns:
            end = self.burst_start_ns + min(self.burst_fcts_ns)
        values = self._window(start, end, self.throughput_bps)
        if not values or self.bottleneck_bw_bps <= 0:
            return 0.0
        return min(values) / self.bottleneck_bw_bps

    def burst_utilization(self) -> float:
        """Mean throughput over the whole burst period / line rate."""
        values = self._window(
            self.burst_start_ns, self.burst_end_ns, self.throughput_bps
        )
        if not values or self.bottleneck_bw_bps <= 0:
            return 0.0
        return statistics.fmean(values) / self.bottleneck_bw_bps

    def mean_late_qlen(self, settle_fraction: float = 0.5) -> float:
        """Average queue length in the second half (standing queue)."""
        split = int(len(self.qlen_bytes) * settle_fraction)
        tail = self.qlen_bytes[split:]
        return statistics.fmean(tail) if tail else 0.0


def run_incast(config: IncastConfig) -> IncastResult:
    """Run one Fig. 4 cell: ``config.fanout``:1 incast under one algorithm."""
    sim = Simulator()
    net = build_topology(
        sim,
        "dumbbell",
        left_hosts=config.fanout + 1,
        right_hosts=1,
        host_bw_bps=config.host_bw_bps,
        bottleneck_bw_bps=config.bottleneck_bw_bps,
        buffer_bytes=config.buffer_bytes,
        mtu_payload=config.mtu_payload,
    )
    driver = FlowDriver(
        net,
        config.algorithm,
        mtu_payload=config.mtu_payload,
        cc_params=config.cc_params,
    )
    receiver = config.fanout + 1  # the single right-side host

    long_flow = None
    if config.long_flow:
        # Effectively infinite: it must outlive the probe window.
        long_flow = driver.start_flow(
            0, receiver, 10 ** 12, at_ns=0, tag="long"
        )
    burst_start = net.base_rtt_ns * 10  # let the long flow reach steady state
    burst_flows = [
        driver.start_flow(
            1 + i, receiver, config.burst_bytes, at_ns=burst_start, tag="burst"
        )
        for i in range(config.fanout)
    ]

    bottleneck = net.port("bottleneck")
    probe = PortProbe(sim, bottleneck, config.probe_interval_ns).start()
    driver.run(until_ns=config.duration_ns)

    result = IncastResult(
        algorithm=config.algorithm,
        fanout=config.fanout,
        bottleneck_bw_bps=config.bottleneck_bw_bps,
        burst_start_ns=burst_start,
    )
    result.times_ns = probe.times_ns
    result.qlen_bytes = probe.qlen_bytes
    result.throughput_bps = probe.throughput_bps
    result.peak_qlen_bytes = bottleneck.max_qlen_bytes
    result.final_qlen_bytes = probe.qlen_bytes[-1] if probe.qlen_bytes else 0.0
    result.drops = net.total_drops()
    result.events_processed = sim.events_processed
    result.burst_fcts_ns = [f.fct_ns for f in burst_flows if f.completed]
    finished = [f.finish_ns for f in burst_flows if f.completed]
    result.burst_end_ns = max(finished) if finished else config.duration_ns
    return result


@scenario_registry.register
class IncastScenario(Scenario):
    """Fig. 4 (and Figs. 10/11 via homa): fanout:1 incast reaction."""

    name = "incast"
    description = "N:1 incast burst against a long flow on a dumbbell"
    config_cls = IncastConfig

    def tiny_overrides(self) -> dict:
        return dict(fanout=2, burst_bytes=20_000, duration_ns=1 * MSEC)

    def build(self, config):
        return lambda: run_incast(config)

    def collect(self, config, raw: IncastResult):
        metrics = {
            "peak_qlen_bytes": raw.peak_qlen_bytes,
            "settled_qlen_bytes": raw.mean_late_qlen(),
            "burst_utilization": raw.burst_utilization(),
            "post_incast_dip": raw.post_incast_throughput_dip(),
            "completed_bursts": len(raw.burst_fcts_ns),
            "fanout": raw.fanout,
            "drops": raw.drops,
        }
        series = {
            "times_ns": list(raw.times_ns),
            "qlen_bytes": list(raw.qlen_bytes),
            "throughput_bps": list(raw.throughput_bps),
        }
        return metrics, series

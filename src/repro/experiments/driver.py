"""Deploys a congestion-control algorithm onto a built network.

The driver owns flow lifecycle: it schedules flow starts on the event
loop, instantiates the right transport endpoints (window-based sender or
HOMA's receiver-driven pair), switches on the network features the
algorithm needs (INT stamping, ECN marking, CNP generation), and collects
completed flows for FCT analysis.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from repro.cc.dctcp import Dctcp
from repro.cc.homa import HomaGrantScheduler, HomaReceiver, HomaSender
from repro.cc.registry import AlgorithmSpec, make_algorithm
from repro.topology.network import Network
from repro.transport.flow import Flow
from repro.transport.receiver import Receiver
from repro.transport.sender import Sender
from repro.units import BITS_PER_BYTE, SEC


class FlowDriver:
    """Flow factory + lifecycle manager for one (network, algorithm) pair."""

    def __init__(
        self,
        net: Network,
        algorithm: Union[str, AlgorithmSpec],
        *,
        mtu_payload: int = 1000,
        rto_ns: Optional[int] = None,
        cc_params: Optional[dict] = None,
    ):
        self.net = net
        self.sim = net.sim
        self.spec = (
            algorithm
            if isinstance(algorithm, AlgorithmSpec)
            else make_algorithm(algorithm, **(cc_params or {}))
        )
        self.mtu_payload = mtu_payload
        self.rto_ns = rto_ns
        self.flows: List[Flow] = []
        self.completed: List[Flow] = []
        self.senders: Dict[int, Sender] = {}
        self._next_flow_id = 1
        self._homa_schedulers: Dict[int, HomaGrantScheduler] = {}
        self._configure_network()

    # ------------------------------------------------------------------
    def _configure_network(self) -> None:
        spec = self.spec
        if spec.needs_ecn:
            if spec.ecn_fn is not None:
                self.net.apply_ecn(spec.ecn_fn)
            else:
                # DCTCP's threshold depends on the base RTT.
                base_rtt = self.net.base_rtt_ns
                self.net.apply_ecn(
                    lambda rate: Dctcp.ecn_config_for(rate, base_rtt)
                )

    @property
    def rtt_bytes(self) -> int:
        """One host-line-rate BDP — HOMA's RTTbytes, the paper's cwnd_init."""
        return int(
            self.net.host_bw_bps * self.net.base_rtt_ns / (BITS_PER_BYTE * SEC)
        )

    # ------------------------------------------------------------------
    def start_flow(
        self,
        src: int,
        dst: int,
        size_bytes: int,
        at_ns: Optional[int] = None,
        tag: str = "",
    ) -> Flow:
        """Schedule one flow; returns its (mutable) record."""
        if src == dst:
            raise ValueError(f"flow src == dst == {src}")
        if size_bytes <= 0:
            raise ValueError(f"flow size must be positive, got {size_bytes}")
        if at_ns is not None and at_ns < self.sim.now:
            label = f"{tag!r} " if tag else ""
            raise ValueError(
                f"flow {label}#{self._next_flow_id} ({src}->{dst}, "
                f"{size_bytes}B) starts at {at_ns}ns, which is before "
                f"sim.now={self.sim.now}ns"
            )
        flow = Flow(self._next_flow_id, src, dst, size_bytes, tag=tag)
        self._next_flow_id += 1
        self.flows.append(flow)
        start = self.sim.now if at_ns is None else at_ns
        self.sim.at(start, self._launch, flow)
        return flow

    def _launch(self, flow: Flow) -> None:
        if self.spec.is_homa:
            self._launch_homa(flow)
        else:
            self._launch_window(flow)

    def _launch_window(self, flow: Flow) -> None:
        spec = self.spec
        receiver = Receiver(
            self.sim,
            self.net.host(flow.dst),
            flow,
            echo_int=spec.needs_int,
            cnp_interval_ns=spec.cnp_interval_ns,
            on_complete=self._on_complete,
        )
        sender = Sender(
            self.sim,
            self.net.host(flow.src),
            flow,
            spec.make_cc(flow, self.net),
            base_rtt_ns=self.net.base_rtt_ns,
            mtu_payload=self.mtu_payload,
            int_enabled=spec.needs_int,
            ecn_capable=spec.needs_ecn,
            rto_ns=self.rto_ns,
        )
        self.senders[flow.flow_id] = sender
        receiver.start()
        sender.start()

    def _launch_homa(self, flow: Flow) -> None:
        scheduler = self._scheduler_for(flow.dst)
        receiver = HomaReceiver(
            self.sim,
            self.net.host(flow.dst),
            flow,
            scheduler=scheduler,
            rtt_bytes=self.rtt_bytes,
            echo_int=False,
            on_complete=self._on_complete,
        )
        sender = HomaSender(
            self.sim,
            self.net.host(flow.src),
            flow,
            _NoCc(),
            base_rtt_ns=self.net.base_rtt_ns,
            mtu_payload=self.mtu_payload,
            rto_ns=self.rto_ns,
            rtt_bytes=self.rtt_bytes,
        )
        self.senders[flow.flow_id] = sender
        receiver.start()
        sender.start()

    def _scheduler_for(self, host_id: int) -> HomaGrantScheduler:
        scheduler = self._homa_schedulers.get(host_id)
        if scheduler is None:
            scheduler = HomaGrantScheduler(
                self.sim,
                self.net.host(host_id),
                overcommitment=self.spec.homa_overcommit,
                mtu_payload=self.mtu_payload,
            )
            self._homa_schedulers[host_id] = scheduler
        return scheduler

    def _on_complete(self, flow: Flow) -> None:
        self.completed.append(flow)

    # ------------------------------------------------------------------
    def run(self, until_ns: Optional[int] = None) -> None:
        """Run the event loop (forever if no horizon given)."""
        self.sim.run(until=until_ns)

    @property
    def unfinished(self) -> List[Flow]:
        """Flows that have not completed yet."""
        return [f for f in self.flows if not f.completed]


class _NoCc:
    """Placeholder CC for HOMA senders (no sender-side congestion control).

    ``HomaSender.__init__`` overwrites the window/pacing this sets.
    """

    def on_start(self, sender) -> None:
        pass

    def on_ack(self, sender, ack) -> None:
        pass

    def on_loss(self, sender) -> None:
        pass

    def on_timeout(self, sender) -> None:
        pass

    def on_cnp(self, sender) -> None:
        pass

"""Deploys congestion-control algorithms onto a built network.

The driver owns flow lifecycle: it schedules flow starts on the event
loop, instantiates the right transport endpoints (window-based sender or
HOMA's receiver-driven pair), switches on the network features the
deployed algorithms need, and collects completed flows for FCT analysis.

Algorithms are resolved through :mod:`repro.cc.registry` and may differ
*per flow* — the deployment question PowerTCP §6 raises (incremental
rollout next to an incumbent scheme).  ``algorithm`` accepts:

* a **string** or :class:`~repro.cc.registry.AlgorithmSpec` — every flow
  runs the same scheme (the classic single-algorithm experiment);
* a **mapping** from flow *tag* to string/spec (``"*"`` is the fallback
  key) — coexistence experiments tag each flow with its group;
* a **callable** ``(flow) -> str | AlgorithmSpec`` — arbitrary
  assignment policies;

and :meth:`FlowDriver.start_flow` takes an explicit per-flow
``algorithm=`` override.  Network features (INT stamping, ECN marking)
are derived as the *union* of every deployed scheme's declared
:class:`~repro.cc.registry.Requirements`; per-flow features (INT echo,
CNP pacing, transport style) follow each flow's own spec.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Union

from repro.cc.homa import HomaGrantScheduler, HomaReceiver, HomaSender
from repro.cc.registry import AlgorithmSpec, Requirements, make_algorithm
from repro.topology.network import Network
from repro.transport.flow import Flow
from repro.transport.receiver import Receiver
from repro.transport.sender import Sender
from repro.units import BITS_PER_BYTE, SEC

#: anything resolvable to a deployable spec
AlgorithmLike = Union[str, AlgorithmSpec]
#: the fallback key accepted in tag->algorithm mappings
DEFAULT_GROUP = "*"

#: duplicate-ACK threshold for flows crossing a packet-spraying network:
#: spray reorders constantly, so a few duplicate ACKs are routine — only
#: a persistent gap (or the RTO) should trigger the go-back-N rewind.
REORDER_DUP_ACK_THRESHOLD = 16


class FlowDriver:
    """Flow factory + lifecycle manager for one (network, algorithms) pair."""

    def __init__(
        self,
        net: Network,
        algorithm: Union[
            AlgorithmLike,
            Mapping[str, AlgorithmLike],
            Callable[[Flow], AlgorithmLike],
        ],
        *,
        mtu_payload: int = 1000,
        rto_ns: Optional[int] = None,
        cc_params: Optional[dict] = None,
    ):
        self.net = net
        self.sim = net.sim
        self.mtu_payload = mtu_payload
        self.rto_ns = rto_ns
        self.flows: List[Flow] = []
        self.completed: List[Flow] = []
        self.senders: Dict[int, Sender] = {}
        self.receivers: Dict[int, Receiver] = {}
        self._next_flow_id = 1
        self._homa_schedulers: Dict[int, HomaGrantScheduler] = {}
        # Routing requirements are fixed once the network is built: a
        # spraying policy anywhere on the fabric means every window flow
        # gets a reorder-tolerant receiver and a raised dup-ACK threshold.
        self._reorder_tolerant = net.routing_requirements().reordering_tolerant_receiver

        #: every spec deployed so far, keyed by canonical name (the
        #: requirement union is over these)
        self.deployed: Dict[str, AlgorithmSpec] = {}
        self._ecn_factory = None  # the factory currently configuring ports
        self._int_enabled = False  # INT stamping already switched on
        self._flow_specs: Dict[int, AlgorithmSpec] = {}
        self._assign: Optional[Callable[[Flow], AlgorithmLike]] = None
        self._tag_specs: Optional[Dict[str, AlgorithmSpec]] = None

        self.spec: Optional[AlgorithmSpec] = None  # the single/default spec
        if isinstance(algorithm, AlgorithmSpec):
            if cc_params:
                raise ValueError(
                    "cc_params cannot amend an already-bound AlgorithmSpec; "
                    "pass the parameters to make_algorithm() instead"
                )
            self.spec = algorithm
            self._deploy(self.spec)
        elif isinstance(algorithm, str):
            self.spec = self._resolve(algorithm, cc_params)
            self._deploy(self.spec)
        elif isinstance(algorithm, Mapping):
            if cc_params:
                raise ValueError(
                    "cc_params is ambiguous across algorithm groups; bind "
                    "parameters per group via make_algorithm(name, **params)"
                )
            if not algorithm:
                raise ValueError("algorithm mapping must not be empty")
            self._tag_specs = {
                tag: self._deploy(self._resolve(algo))
                for tag, algo in algorithm.items()
            }
        elif callable(algorithm):
            if cc_params:
                raise ValueError(
                    "cc_params is ambiguous with a callable assignment; "
                    "return parameterized specs from the callable instead"
                )
            self._assign = algorithm
        else:
            raise TypeError(
                "algorithm must be a name, an AlgorithmSpec, a tag->algorithm "
                f"mapping, or a callable(flow); got {type(algorithm).__name__}"
            )

    # ------------------------------------------------------------------
    # Algorithm resolution and network-feature union
    # ------------------------------------------------------------------
    def _resolve(
        self, algorithm: AlgorithmLike, cc_params: Optional[dict] = None
    ) -> AlgorithmSpec:
        if isinstance(algorithm, AlgorithmSpec):
            return algorithm
        if isinstance(algorithm, str):
            return make_algorithm(algorithm, **(cc_params or {}))
        raise TypeError(
            f"cannot resolve algorithm from {type(algorithm).__name__}"
        )

    def _deploy(self, spec: AlgorithmSpec) -> AlgorithmSpec:
        """Record a spec and (re)apply the union of network features."""
        if spec.name in self.deployed:
            return spec
        # Validate the union over (deployed + candidate) before recording,
        # so a rejected deploy (e.g. conflicting ECN) leaves the driver in
        # its previous, working state.
        candidate = dict(self.deployed)
        candidate[spec.name] = spec
        union = Requirements.union(
            s.requirements for s in candidate.values()
        )
        self.deployed = candidate
        if union.int_stamping and not self._int_enabled:
            self.net.enable_int(True)
            self._int_enabled = True
        factory = union.ecn_config
        if factory is not None and factory is not self._ecn_factory:
            base_rtt = self.net.base_rtt_ns
            self.net.apply_ecn(lambda rate: factory(rate, base_rtt))
            self._ecn_factory = factory
        return spec

    def _spec_for(self, flow: Flow) -> AlgorithmSpec:
        spec = self._flow_specs.get(flow.flow_id)
        if spec is not None:
            return spec
        if self._tag_specs is not None:
            spec = self._tag_specs.get(flow.tag) or self._tag_specs.get(
                DEFAULT_GROUP
            )
            if spec is None:
                raise KeyError(
                    f"flow tag {flow.tag!r} matches no algorithm group "
                    f"(groups: {', '.join(sorted(self._tag_specs))}); add a "
                    f"{DEFAULT_GROUP!r} fallback or tag the flow"
                )
            return spec
        return self.spec

    @property
    def requirements(self) -> Requirements:
        """Current union of the deployed schemes' network requirements."""
        return Requirements.union(
            s.requirements for s in self.deployed.values()
        )

    @property
    def rtt_bytes(self) -> int:
        """One host-line-rate BDP — HOMA's RTTbytes, the paper's cwnd_init."""
        return int(
            self.net.host_bw_bps * self.net.base_rtt_ns / (BITS_PER_BYTE * SEC)
        )

    # ------------------------------------------------------------------
    def start_flow(
        self,
        src: int,
        dst: int,
        size_bytes: int,
        at_ns: Optional[int] = None,
        tag: str = "",
        algorithm: Optional[AlgorithmLike] = None,
    ) -> Flow:
        """Schedule one flow; returns its (mutable) record.

        ``algorithm`` overrides the driver-level assignment for this flow
        (resolved — and its requirements deployed — eagerly, so unknown
        names or parameters fail here, not mid-simulation).
        """
        if src == dst:
            raise ValueError(f"flow src == dst == {src}")
        if size_bytes <= 0:
            raise ValueError(f"flow size must be positive, got {size_bytes}")
        if at_ns is not None and at_ns < self.sim.now:
            label = f"{tag!r} " if tag else ""
            raise ValueError(
                f"flow {label}#{self._next_flow_id} ({src}->{dst}, "
                f"{size_bytes}B) starts at {at_ns}ns, which is before "
                f"sim.now={self.sim.now}ns"
            )
        flow = Flow(self._next_flow_id, src, dst, size_bytes, tag=tag)
        self._next_flow_id += 1
        # Resolve the flow's algorithm eagerly, whatever the assignment
        # mode, so typos, unknown params, unmatched tags, and requirement
        # conflicts all fail here — never mid-simulation.
        if algorithm is not None:
            self._flow_specs[flow.flow_id] = self._deploy(
                self._resolve(algorithm)
            )
        elif self._assign is not None:
            self._flow_specs[flow.flow_id] = self._deploy(
                self._resolve(self._assign(flow))
            )
        elif self.spec is None:
            self._spec_for(flow)  # fail eagerly on unmatched tags
        self.flows.append(flow)
        start = self.sim.now if at_ns is None else at_ns
        self.sim.at(start, self._launch, flow)
        return flow

    def _launch(self, flow: Flow) -> None:
        spec = self._spec_for(flow)
        if spec.is_homa:
            self._launch_homa(flow, spec)
        else:
            self._launch_window(flow, spec)

    def _launch_window(self, flow: Flow, spec: AlgorithmSpec) -> None:
        receiver = Receiver(
            self.sim,
            self.net.host(flow.dst),
            flow,
            echo_int=spec.needs_int,
            cnp_interval_ns=spec.cnp_interval_ns,
            reorder_tolerant=self._reorder_tolerant,
            on_complete=self._on_complete,
        )
        sender = Sender(
            self.sim,
            self.net.host(flow.src),
            flow,
            spec.make_cc(flow, self.net),
            base_rtt_ns=self.net.base_rtt_ns,
            mtu_payload=self.mtu_payload,
            int_enabled=spec.needs_int,
            ecn_capable=spec.needs_ecn,
            rto_ns=self.rto_ns,
            dup_ack_threshold=(
                REORDER_DUP_ACK_THRESHOLD if self._reorder_tolerant else None
            ),
        )
        self.senders[flow.flow_id] = sender
        self.receivers[flow.flow_id] = receiver
        receiver.start()
        sender.start()

    def _launch_homa(self, flow: Flow, spec: AlgorithmSpec) -> None:
        if self._reorder_tolerant:
            raise ValueError(
                f"network {self.net.name!r} routes with a packet-spraying "
                "policy, which requires reordering-tolerant receivers; the "
                "HOMA transport's grant machinery does not support that — "
                "use a flow-stable routing policy (ecmp, wrr, least-loaded) "
                "with HOMA"
            )
        scheduler = self._scheduler_for(flow.dst, spec)
        receiver = HomaReceiver(
            self.sim,
            self.net.host(flow.dst),
            flow,
            scheduler=scheduler,
            rtt_bytes=self.rtt_bytes,
            echo_int=False,
            on_complete=self._on_complete,
        )
        sender = HomaSender(
            self.sim,
            self.net.host(flow.src),
            flow,
            _NoCc(),
            base_rtt_ns=self.net.base_rtt_ns,
            mtu_payload=self.mtu_payload,
            rto_ns=self.rto_ns,
            rtt_bytes=self.rtt_bytes,
        )
        self.senders[flow.flow_id] = sender
        receiver.start()
        sender.start()

    def _scheduler_for(self, host_id: int, spec: AlgorithmSpec) -> HomaGrantScheduler:
        overcommit = int(spec.params.get("overcommitment", 1))
        scheduler = self._homa_schedulers.get(host_id)
        if scheduler is None:
            scheduler = HomaGrantScheduler(
                self.sim,
                self.net.host(host_id),
                overcommitment=overcommit,
                mtu_payload=self.mtu_payload,
            )
            self._homa_schedulers[host_id] = scheduler
        elif scheduler.overcommitment != overcommit:
            # The grant scheduler is per destination host; two HOMA groups
            # with different overcommitment cannot share one receiver.
            raise ValueError(
                f"host {host_id} already grants with overcommitment "
                f"{scheduler.overcommitment}; cannot deploy a HOMA flow "
                f"with overcommitment {overcommit} to the same receiver"
            )
        return scheduler

    def _on_complete(self, flow: Flow) -> None:
        self.completed.append(flow)

    # ------------------------------------------------------------------
    def run(self, until_ns: Optional[int] = None) -> None:
        """Run the event loop (forever if no horizon given)."""
        self.sim.run(until=until_ns)

    @property
    def unfinished(self) -> List[Flow]:
        """Flows that have not completed yet."""
        return [f for f in self.flows if not f.completed]


class _NoCc:
    """Placeholder CC for HOMA senders (no sender-side congestion control).

    ``HomaSender.__init__`` overwrites the window/pacing this sets.
    """

    def on_start(self, sender) -> None:
        pass

    def on_ack(self, sender, feedback) -> None:
        pass

    def on_loss(self, sender) -> None:
        pass

    def on_timeout(self, sender) -> None:
        pass

    def on_cnp(self, sender) -> None:
        pass

"""Figs. 7c-7f, 7h: web-search background traffic plus incast queries.

The paper layers the synthetic distributed-file-system query workload
(§4.1) on top of web-search traffic at 80 % load, sweeping the query
*rate* (incast frequency, Fig. 7c/d) and the query *size* (congestion
duration, Fig. 7e/f), and reports short-/long-flow tail slowdowns plus
the buffer-occupancy CDF (Fig. 7h).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional

from repro.analysis.fct import FctSummary, summarize_fct
from repro.analysis.stats import percentile
from repro.experiments.driver import FlowDriver
from repro.experiments.websearch import scaled_fattree
from repro.scenarios import registry as scenario_registry
from repro.scenarios.base import Scenario
from repro.sim.engine import Simulator
from repro.sim.tracing import Probe
from repro.topology.registry import build_topology
from repro.transport.flow import Flow
from repro.units import MSEC, USEC
from repro.workloads.arrivals import poisson_flows
from repro.workloads.distributions import WEB_SEARCH, EmpiricalCdf
from repro.workloads.incast import incast_events

if TYPE_CHECKING:  # params type only; built via the topology registry
    from repro.topology.fattree import FatTreeParams


@dataclass
class BurstyConfig:
    """One cell of the Fig. 7c-f sweeps."""

    algorithm: str = "powertcp"
    load: float = 0.8
    request_rate_per_sec: float = 4.0
    request_size_bytes: int = 2_000_000
    fanout: int = 8
    params: Optional[FatTreeParams] = None
    duration_ns: int = 20 * MSEC
    drain_ns: int = 20 * MSEC
    seed: int = 1
    distribution: EmpiricalCdf = WEB_SEARCH
    size_scale: float = 1.0  # see WebsearchConfig.size_scale
    buffer_probe_interval_ns: int = 100 * USEC
    mtu_payload: int = 1000
    max_flows: Optional[int] = None
    #: incast frequency is scaled up for short simulated horizons: the
    #: paper's 1-16 requests/s over seconds of simulated time would yield
    #: zero events in a 20 ms window, so rates here are per *duration*.
    requests_per_duration: Optional[int] = None
    cc_params: Optional[dict] = None


@dataclass
class BurstyResult:
    """Flows (tagged 'websearch' / 'incast') and buffer samples."""

    algorithm: str
    request_rate_per_sec: float
    request_size_bytes: int
    base_rtt_ns: int = 0
    host_bw_bps: float = 0.0
    size_scale: float = 1.0
    flows: List[Flow] = field(default_factory=list)
    buffer_samples_bytes: List[float] = field(default_factory=list)
    drops: int = 0
    events_processed: int = 0
    incast_count: int = 0
    ideal_fn: Optional[object] = None  # Callable[[Flow], int] -> ideal FCT ns

    def fct_summary(self, pct: float = 99.9, tag: Optional[str] = None) -> FctSummary:
        """Short/medium/long tail slowdowns (optionally one tag only)."""
        flows = (
            self.flows
            if tag is None
            else [f for f in self.flows if f.tag == tag]
        )
        return summarize_fct(
            self.algorithm,
            flows,
            self.base_rtt_ns,
            self.host_bw_bps,
            pct,
            ideal_fn=self.ideal_fn,
            size_scale=self.size_scale,
        )


def run_bursty(config: BurstyConfig) -> BurstyResult:
    """Run web-search + incast for one (rate, size) cell."""
    params = config.params or scaled_fattree()
    sim = Simulator()
    net = build_topology(sim, "fattree", params)
    driver = FlowDriver(
        net,
        config.algorithm,
        mtu_payload=config.mtu_payload,
        cc_params=config.cc_params,
    )

    rng = random.Random(config.seed)
    distribution = (
        config.distribution.scaled(config.size_scale)
        if config.size_scale != 1.0
        else config.distribution
    )
    for request in poisson_flows(
        rng,
        params,
        distribution,
        config.load,
        config.duration_ns,
        max_flows=config.max_flows,
    ):
        driver.start_flow(
            request.src,
            request.dst,
            request.size_bytes,
            at_ns=request.start_ns,
            tag="websearch",
        )

    scaled_request = max(1, int(config.request_size_bytes * config.size_scale))
    if config.requests_per_duration is not None:
        # Deterministic count spread uniformly across the horizon.
        gap = config.duration_ns // (config.requests_per_duration + 1)
        event_times = [
            (i + 1) * gap for i in range(config.requests_per_duration)
        ]
        events = []
        for t in event_times:
            requester = rng.randrange(params.num_hosts)
            rack = requester // params.hosts_per_tor
            candidates = [
                h
                for h in range(params.num_hosts)
                if h // params.hosts_per_tor != rack
            ]
            responders = rng.sample(
                candidates, min(config.fanout, len(candidates))
            )
            per_responder = max(1, scaled_request // len(responders))
            events.append((t, requester, responders, per_responder))
    else:
        generated = incast_events(
            rng,
            num_hosts=params.num_hosts,
            hosts_per_tor=params.hosts_per_tor,
            request_rate_per_sec=config.request_rate_per_sec,
            request_size_bytes=scaled_request,
            fanout=config.fanout,
            duration_ns=config.duration_ns,
        )
        events = [
            (e.start_ns, e.requester, e.responders, e.bytes_per_responder)
            for e in generated
        ]

    for start_ns, requester, responders, per_responder in events:
        for responder in responders:
            driver.start_flow(
                responder, requester, per_responder, at_ns=start_ns, tag="incast"
            )

    tors = net.extras["tors"]
    buffer_probes = [
        Probe(
            sim,
            config.buffer_probe_interval_ns,
            (lambda t: (lambda: t.buffer.used))(tor),
            until_ns=config.duration_ns,
        ).start()
        for tor in tors
    ]

    driver.run(until_ns=config.duration_ns + config.drain_ns)

    result = BurstyResult(
        algorithm=config.algorithm,
        request_rate_per_sec=config.request_rate_per_sec,
        request_size_bytes=config.request_size_bytes,
        base_rtt_ns=net.base_rtt_ns,
        host_bw_bps=params.host_bw_bps,
        size_scale=config.size_scale,
    )
    result.ideal_fn = lambda flow: net.ideal_fct_ns(
        flow.src, flow.dst, flow.size_bytes, config.mtu_payload
    )
    result.flows = driver.flows
    result.drops = net.total_drops()
    result.events_processed = sim.events_processed
    result.incast_count = len(events)
    for probe in buffer_probes:
        result.buffer_samples_bytes.extend(probe.values)
    return result


@scenario_registry.register
class BurstyScenario(Scenario):
    """Figs. 7c-7f/7h: web-search background plus periodic incast queries."""

    name = "bursty"
    description = "web-search load + incast queries on a fat-tree"
    config_cls = BurstyConfig

    def tiny_overrides(self) -> dict:
        return dict(
            load=0.4, requests_per_duration=1, request_size_bytes=200_000,
            fanout=2, duration_ns=2 * MSEC, drain_ns=6 * MSEC,
            size_scale=1 / 16, max_flows=10,
        )

    def build(self, config):
        return lambda: run_bursty(config)

    def collect(self, config, raw: BurstyResult):
        overall = raw.fct_summary(pct=99.0)
        incast = raw.fct_summary(pct=99.0, tag="incast")
        metrics = {
            "fct_p99_overall": overall.overall,
            "fct_p99_short": overall.short,
            "fct_p99_long": overall.long,
            "incast_fct_p99": incast.overall,
            "incast_events": raw.incast_count,
            "completed": overall.completed,
            "total_flows": overall.total,
            "drops": raw.drops,
            "buffer_p99_bytes": percentile(raw.buffer_samples_bytes, 99.0)
            if raw.buffer_samples_bytes else None,
        }
        return metrics, {}

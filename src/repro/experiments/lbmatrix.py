"""CC × load-balancing matrix on the fat-tree (routing-layer scenario).

One cell runs a seeded permutation workload on the scaled fat-tree under
a chosen congestion-control algorithm *and* a chosen routing policy
(:mod:`repro.routing`), then reports how well the fabric spread the load:

* **uplink imbalance** — max/mean of per-uplink transmitted bytes across
  every ToR uplink (1.0 = perfectly spread, higher = hash collisions
  concentrated flows on few links);
* **uplink CV** — coefficient of variation of the same distribution;
* **hotspot peak queue** — the deepest queue any uplink built, the
  collision symptom congestion control then has to fight;
* **FCT p99 slowdown, reordering, retransmissions, drops** — what the
  imbalance costs transport.

Sweeping ``algorithm`` × ``routing`` × ``load`` (see
``python -m repro sweep lb_matrix``) produces the matrix that
:func:`repro.analysis.results.lb_pivot` tabulates.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass, field
from statistics import mean, pstdev
from typing import TYPE_CHECKING, List, Optional

from repro.analysis.fct import FctSummary, summarize_fct
from repro.experiments.driver import FlowDriver
from repro.experiments.websearch import scaled_fattree
from repro.scenarios import registry as scenario_registry
from repro.scenarios.base import Scenario
from repro.sim.engine import Simulator
from repro.topology.registry import build_topology
from repro.transport.flow import Flow
from repro.units import MSEC

if TYPE_CHECKING:  # params type only; built via the topology registry
    from repro.topology.fattree import FatTreeParams


@dataclass
class LbMatrixConfig:
    """One matrix cell: a CC algorithm × a routing policy × a load."""

    algorithm: str = "powertcp"
    routing: str = "ecmp"
    routing_params: Optional[dict] = None
    #: flows per host (1.0 = one permutation pair per host).
    load: float = 1.0
    flow_bytes: int = 500_000
    params: Optional["FatTreeParams"] = None
    duration_ns: int = 4 * MSEC
    drain_ns: int = 16 * MSEC
    seed: int = 1
    mtu_payload: int = 1000
    cc_params: Optional[dict] = None


@dataclass
class LbMatrixResult:
    """Flows plus the fabric-side load-spread measurements."""

    algorithm: str
    routing: str
    load: float
    base_rtt_ns: int = 0
    host_bw_bps: float = 0.0
    flows: List[Flow] = field(default_factory=list)
    #: transmitted bytes per ToR uplink, in builder order.
    uplink_tx_bytes: List[int] = field(default_factory=list)
    #: deepest queue any ToR uplink built (bytes).
    hotspot_peak_qlen_bytes: int = 0
    #: out-of-order data arrivals summed over all receivers.
    reorder_events: int = 0
    retransmissions: int = 0
    drops: int = 0
    events_processed: int = 0
    ideal_fn: Optional[object] = None

    def uplink_imbalance(self) -> Optional[float]:
        """max/mean of per-uplink tx bytes (None when nothing was sent)."""
        if not self.uplink_tx_bytes or not any(self.uplink_tx_bytes):
            return None
        return max(self.uplink_tx_bytes) / mean(self.uplink_tx_bytes)

    def uplink_cv(self) -> Optional[float]:
        """Coefficient of variation of per-uplink tx bytes."""
        if not self.uplink_tx_bytes or not any(self.uplink_tx_bytes):
            return None
        avg = mean(self.uplink_tx_bytes)
        return pstdev(self.uplink_tx_bytes) / avg

    def fct_summary(self, pct: float = 99.0) -> FctSummary:
        """Tail FCT slowdowns over the cell's flows."""
        return summarize_fct(
            self.algorithm,
            self.flows,
            self.base_rtt_ns,
            self.host_bw_bps,
            pct,
            ideal_fn=self.ideal_fn,
        )


def run_lb_matrix(config: LbMatrixConfig) -> LbMatrixResult:
    """Run one cell: a seeded permutation under (algorithm, routing)."""
    base = config.params or scaled_fattree()
    # Never mutate the caller's params object (sweep cells share it).
    params = dataclasses.replace(
        base,
        routing=config.routing,
        routing_params=dict(config.routing_params or {}),
    )
    sim = Simulator()
    net = build_topology(sim, "fattree", params)
    driver = FlowDriver(
        net,
        config.algorithm,
        mtu_payload=config.mtu_payload,
        cc_params=config.cc_params,
    )

    rng = random.Random(config.seed)
    count = max(1, round(config.load * net.num_hosts))
    for src, dst in net.flow_pairs(count, rng):
        driver.start_flow(src, dst, config.flow_bytes, at_ns=0)

    driver.run(until_ns=config.duration_ns + config.drain_ns)

    uplinks = [
        port
        for per_tor in net.extras["tor_uplinks"]
        for port in per_tor
    ]
    result = LbMatrixResult(
        algorithm=config.algorithm,
        routing=net.routing_name,
        load=config.load,
        base_rtt_ns=net.base_rtt_ns,
        host_bw_bps=params.host_bw_bps,
    )
    result.ideal_fn = lambda flow: net.ideal_fct_ns(
        flow.src, flow.dst, flow.size_bytes, config.mtu_payload
    )
    result.flows = driver.flows
    result.uplink_tx_bytes = [port.tx_bytes for port in uplinks]
    result.hotspot_peak_qlen_bytes = max(
        (port.max_qlen_bytes for port in uplinks), default=0
    )
    result.reorder_events = sum(
        receiver.out_of_order for receiver in driver.receivers.values()
    )
    result.retransmissions = sum(f.retransmissions for f in driver.flows)
    result.drops = net.total_drops()
    result.events_processed = sim.events_processed
    return result


@scenario_registry.register
class LbMatrixScenario(Scenario):
    """CC × routing-policy × load matrix on the fat-tree fabric."""

    name = "lb_matrix"
    description = (
        "CC x routing-policy permutation on the fat-tree; "
        "uplink imbalance + hotspot queue + FCT tails"
    )
    config_cls = LbMatrixConfig

    def tiny_overrides(self) -> dict:
        return dict(flow_bytes=30_000, duration_ns=1 * MSEC, drain_ns=3 * MSEC)

    def build(self, config):
        return lambda: run_lb_matrix(config)

    def collect(self, config, raw: LbMatrixResult):
        summary = raw.fct_summary(pct=99.0)
        metrics = {
            "completed": summary.completed,
            "total_flows": summary.total,
            "fct_p99_overall": summary.overall,
            "uplink_imbalance": raw.uplink_imbalance(),
            "uplink_cv": raw.uplink_cv(),
            "hotspot_peak_qlen_bytes": raw.hotspot_peak_qlen_bytes,
            "reorder_events": raw.reorder_events,
            "retransmissions": raw.retransmissions,
            "drops": raw.drops,
        }
        series = {"per_uplink_tx_bytes": list(raw.uplink_tx_bytes)}
        return metrics, series

"""Fig. 5 (and Fig. 9): fairness and stability under flow churn.

Flows join a shared bottleneck one at a time; each should converge to the
new fair share quickly (and give bandwidth back when flows leave).  The
paper shows PowerTCP converging within milliseconds, θ-PowerTCP slower
(delay signal), TIMELY oscillating, and HOMA's behaviour depending on its
overcommitment level (Fig. 9).

Metrics: per-flow throughput time series (sampled from receiver byte
counts) and the Jain fairness index within each epoch where the set of
active flows is constant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.fairness import jain_index
from repro.experiments.driver import FlowDriver
from repro.scenarios import registry as scenario_registry
from repro.scenarios.base import Scenario
from repro.sim.engine import Simulator
from repro.sim.tracing import CounterRateProbe
from repro.topology.registry import build_topology
from repro.units import GBPS, MSEC, USEC


@dataclass
class FairnessConfig:
    """Scaled-down defaults (paper: 25 Gbps host links, 4 flows)."""

    algorithm: str = "powertcp"
    num_flows: int = 4
    join_interval_ns: int = 1 * MSEC
    flow_bytes: int = 10 ** 12  # effectively long-running
    host_bw_bps: float = 10 * GBPS
    bottleneck_bw_bps: float = 10 * GBPS
    duration_ns: int = 6 * MSEC
    probe_interval_ns: int = 50 * USEC
    mtu_payload: int = 1000
    cc_params: Optional[dict] = None
    homa_overcommit: int = 1


@dataclass
class FairnessResult:
    """Per-flow throughput series plus per-epoch Jain indices."""

    algorithm: str
    times_ns: List[int] = field(default_factory=list)
    flow_throughput_bps: Dict[int, List[float]] = field(default_factory=dict)
    epoch_jain: List[float] = field(default_factory=list)
    events_processed: int = 0

    def final_epoch_jain(self) -> float:
        """Jain index with all flows active (the last join epoch)."""
        if not self.epoch_jain:
            raise ValueError("no epochs recorded")
        return self.epoch_jain[-1]


def run_fairness(config: FairnessConfig) -> FairnessResult:
    """Run the staggered-join fairness scenario for one algorithm."""
    sim = Simulator()
    net = build_topology(
        sim,
        "dumbbell",
        left_hosts=config.num_flows,
        right_hosts=1,
        host_bw_bps=config.host_bw_bps,
        bottleneck_bw_bps=config.bottleneck_bw_bps,
        mtu_payload=config.mtu_payload,
    )
    spec_params = dict(config.cc_params or {})
    if config.algorithm == "homa":
        spec_params.setdefault("overcommitment", config.homa_overcommit)
    driver = FlowDriver(
        net,
        config.algorithm,
        mtu_payload=config.mtu_payload,
        cc_params=spec_params,
    )
    receiver = config.num_flows
    flows = [
        driver.start_flow(
            i,
            receiver,
            config.flow_bytes,
            at_ns=i * config.join_interval_ns,
            tag=f"flow-{i + 1}",
        )
        for i in range(config.num_flows)
    ]

    probes = {
        flow.flow_id: CounterRateProbe(
            sim,
            config.probe_interval_ns,
            (lambda f: (lambda: f.bytes_received))(flow),
        ).start()
        for flow in flows
    }
    driver.run(until_ns=config.duration_ns)

    result = FairnessResult(algorithm=config.algorithm)
    first = probes[flows[0].flow_id]
    result.times_ns = first.times_ns
    for flow in flows:
        result.flow_throughput_bps[flow.flow_id] = probes[flow.flow_id].rates_bps

    # Per-epoch Jain index over the active flows, excluding the first 40 %
    # of each epoch (convergence transient).
    for epoch in range(config.num_flows):
        start = epoch * config.join_interval_ns
        end = min(start + config.join_interval_ns, config.duration_ns)
        window_start = start + int(0.4 * (end - start))
        active = flows[: epoch + 1]
        means = []
        for flow in active:
            series = probes[flow.flow_id]
            values = [
                r
                for t, r in zip(series.times_ns, series.rates_bps)
                if window_start <= t < end
            ]
            means.append(sum(values) / len(values) if values else 0.0)
        if means:
            result.epoch_jain.append(jain_index(means))
    result.events_processed = sim.events_processed
    return result


@scenario_registry.register
class FairnessScenario(Scenario):
    """Figs. 5/9: fairness and convergence under staggered flow joins."""

    name = "fairness"
    description = "staggered flow joins on a dumbbell; per-epoch Jain index"
    config_cls = FairnessConfig

    def tiny_overrides(self) -> dict:
        return dict(num_flows=2, join_interval_ns=500 * USEC, duration_ns=1 * MSEC)

    def build(self, config):
        return lambda: run_fairness(config)

    def collect(self, config, raw: FairnessResult):
        metrics = {
            "final_epoch_jain": raw.final_epoch_jain() if raw.epoch_jain else None,
            "min_epoch_jain": min(raw.epoch_jain) if raw.epoch_jain else None,
            "epochs": len(raw.epoch_jain),
        }
        series = {"epoch_jain": list(raw.epoch_jain)}
        return metrics, series

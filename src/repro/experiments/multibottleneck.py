"""§3.5: INT versus delay feedback across multiple bottlenecks.

A parking-lot chain: one end-to-end flow crosses every segment link
while each segment carries its own local cross traffic.  The paper's
claim (§3.5): the INT control law reacts precisely to the *most
bottlenecked* hop, while the RTT/delay law (θ-PowerTCP — the same
critique the delay-based designs in "It's Time to Replace TCP in the
Datacenter" inherit) reacts to the *sum* of per-hop queueing delays and
therefore over-throttles the multi-hop flow.  HPCC, the paper's chief
INT baseline, makes the comparison three-way.

Reported per run: the end-to-end flow's goodput and its share of the
most-bottlenecked segment, per-segment cross-traffic goodput, the
end-to-end-vs-cross throughput ratio on the tightest segment (the §3.5
figure of merit — the delay law drags it down as the chain grows), and
every segment link's peak queue.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import List, Optional

from repro.experiments.driver import FlowDriver
from repro.scenarios import registry as scenario_registry
from repro.scenarios.base import Scenario
from repro.sim.engine import Simulator
from repro.sim.tracing import CounterRateProbe
from repro.topology.registry import get_topology
from repro.units import GBPS, MSEC, USEC


@dataclass
class MultiBottleneckConfig:
    """One parking-lot cell: chain shape, per-segment rates, cross load.

    ``segment_bw_bps=None`` makes the *last* segment the clear bottleneck
    (half the host rate; every other segment runs at the host rate), the
    §3.5 microbenchmark shape.  ``cross_flows_per_segment`` is the cross
    *load* knob: every segment carries that many local long flows.
    """

    algorithm: str = "powertcp"
    segments: int = 2
    host_bw_bps: float = 10 * GBPS
    segment_bw_bps: Optional[List[float]] = None
    cross_flows_per_segment: int = 1
    flow_bytes: int = 10 ** 10  # effectively long-running
    duration_ns: int = 20 * MSEC
    probe_interval_ns: int = 100 * USEC
    buffer_bytes: int = 4_000_000
    mtu_payload: int = 1000
    seed: int = 1  # deterministic scenario; kept for sweep provenance
    cc_params: Optional[dict] = None

    def resolved_segment_bw_bps(self) -> List[float]:
        """Per-segment rates with the default bottleneck-last shape."""
        if self.segment_bw_bps is not None:
            return list(self.segment_bw_bps)
        rates = [self.host_bw_bps] * self.segments
        rates[-1] = self.host_bw_bps / 2
        return rates


@dataclass
class MultiBottleneckResult:
    """Per-flow goodputs, per-link peak queues, and the §3.5 ratio."""

    algorithm: str
    segments: int
    segment_bw_bps: List[float] = field(default_factory=list)
    cross_flows_per_segment: int = 1
    duration_ns: int = 0
    e2e_goodput_bps: float = 0.0
    #: per-segment cross goodput (summed over that segment's cross flows)
    cross_goodput_bps: List[float] = field(default_factory=list)
    #: per-segment-link peak queue occupancy
    link_peak_qlen_bytes: List[int] = field(default_factory=list)
    times_ns: List[int] = field(default_factory=list)
    e2e_throughput_bps: List[float] = field(default_factory=list)
    drops: int = 0
    events_processed: int = 0

    @property
    def bottleneck_segment(self) -> int:
        """Index of the most-bottlenecked (slowest) segment link."""
        rates = self.segment_bw_bps
        return min(range(len(rates)), key=lambda i: rates[i])

    def e2e_bottleneck_share(self) -> float:
        """End-to-end goodput as a fraction of the tightest link's rate."""
        rate = self.segment_bw_bps[self.bottleneck_segment]
        return self.e2e_goodput_bps / rate if rate > 0 else 0.0

    def e2e_cross_ratio(self) -> Optional[float]:
        """End-to-end goodput over the per-flow mean cross goodput on the
        most-bottlenecked segment — §3.5's figure of merit.  1.0 means the
        multi-hop flow holds its own against single-hop traffic; the delay
        law drags it down as summed queueing charges it once per hop.
        None when there is no cross traffic to compare against."""
        if self.cross_flows_per_segment <= 0:
            return None
        per_flow = (
            self.cross_goodput_bps[self.bottleneck_segment]
            / self.cross_flows_per_segment
        )
        if per_flow <= 0:
            return None
        return self.e2e_goodput_bps / per_flow

    def settled_e2e_throughput_bps(self, settle_fraction: float = 0.5) -> float:
        """Mean end-to-end throughput over the settled (second) half."""
        split = int(len(self.e2e_throughput_bps) * settle_fraction)
        tail = self.e2e_throughput_bps[split:]
        return statistics.fmean(tail) if tail else 0.0


def run_multi_bottleneck(config: MultiBottleneckConfig) -> MultiBottleneckResult:
    """Run one parking-lot cell under one algorithm."""
    rates = config.resolved_segment_bw_bps()
    sim = Simulator()
    entry = get_topology("parkinglot")
    params = entry.make_params(
        segments=config.segments,
        host_bw_bps=config.host_bw_bps,
        segment_bw_bps=rates,
        buffer_bytes=config.buffer_bytes,
        mtu_payload=config.mtu_payload,
    )
    net = entry.build(sim, params)
    driver = FlowDriver(
        net,
        config.algorithm,
        mtu_payload=config.mtu_payload,
        cc_params=config.cc_params,
    )

    e2e = driver.start_flow(
        params.e2e_src, params.e2e_dst, config.flow_bytes, at_ns=0, tag="e2e"
    )
    cross: List[List] = []
    for segment in range(config.segments):
        cross.append(
            [
                driver.start_flow(
                    params.cross_src(segment),
                    params.cross_dst(segment),
                    config.flow_bytes,
                    at_ns=0,
                    tag=f"cross-{segment}",
                )
                for _ in range(config.cross_flows_per_segment)
            ]
        )

    e2e_probe = CounterRateProbe(
        sim, config.probe_interval_ns, lambda: e2e.bytes_received
    ).start()
    driver.run(until_ns=config.duration_ns)

    def goodput(flow) -> float:
        return flow.bytes_received * 8e9 / config.duration_ns

    result = MultiBottleneckResult(
        algorithm=config.algorithm,
        segments=config.segments,
        segment_bw_bps=rates,
        cross_flows_per_segment=config.cross_flows_per_segment,
        duration_ns=config.duration_ns,
    )
    result.e2e_goodput_bps = goodput(e2e)
    result.cross_goodput_bps = [
        sum(goodput(flow) for flow in members) for members in cross
    ]
    result.link_peak_qlen_bytes = [
        net.port(f"link{i}").max_qlen_bytes for i in range(config.segments)
    ]
    result.times_ns = e2e_probe.times_ns
    result.e2e_throughput_bps = e2e_probe.rates_bps
    result.drops = net.total_drops()
    result.events_processed = sim.events_processed
    return result


@scenario_registry.register
class MultiBottleneckScenario(Scenario):
    """§3.5: parking-lot chain — INT reacts to the most-bottlenecked hop,
    the delay law to the sum of hop queues."""

    name = "multi_bottleneck"
    description = "parking-lot chain; e2e flow vs per-segment cross traffic"
    config_cls = MultiBottleneckConfig

    def tiny_overrides(self) -> dict:
        return dict(duration_ns=1 * MSEC, flow_bytes=10 ** 8)

    def build(self, config):
        return lambda: run_multi_bottleneck(config)

    def collect(self, config, raw: MultiBottleneckResult):
        metrics = {
            "e2e_goodput_bps": raw.e2e_goodput_bps,
            "e2e_bottleneck_share": raw.e2e_bottleneck_share(),
            "e2e_cross_ratio": raw.e2e_cross_ratio(),
            "settled_e2e_throughput_bps": raw.settled_e2e_throughput_bps(),
            "cross_goodput_total_bps": sum(raw.cross_goodput_bps),
            "bottleneck_segment": raw.bottleneck_segment,
            "bottleneck_peak_qlen_bytes": raw.link_peak_qlen_bytes[
                raw.bottleneck_segment
            ],
            "max_link_peak_qlen_bytes": max(raw.link_peak_qlen_bytes),
            "drops": raw.drops,
        }
        series = {
            "segment_bw_bps": list(raw.segment_bw_bps),
            "cross_goodput_bps": list(raw.cross_goodput_bps),
            "link_peak_qlen_bytes": list(raw.link_peak_qlen_bytes),
            "times_ns": list(raw.times_ns),
            "e2e_throughput_bps": list(raw.e2e_throughput_bps),
        }
        return metrics, series

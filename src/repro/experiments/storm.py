"""Synthetic deep-pending scheduler stress: the ``event_storm`` scenario.

Not a paper workload.  The macro grid's packet scenarios keep a few
thousand events pending — far below the calendar queue's crossover — so
none of them can show what the alternative schedulers buy.  This
scenario drives the *hold model* from
``benchmarks/perf/test_scheduler_microbench.py`` through the real
:class:`~repro.sim.engine.Simulator`: ``depth`` self-rescheduling event
streams stay live for the whole horizon, holding the pending set at a
controlled depth (default well above
:data:`~repro.sim.engine.AUTO_CALENDAR_DEPTH`), where per-push heap
sifts cost log(depth) and the calendar queue's O(1) bucket appends win.
It is the perf grid's deep-pending case (``storm`` /
``storm_calendar``) and exercises ``scheduler="auto"``'s migration path.

Determinism: one seeded hold table is precomputed up front; every stream
walks it with a fixed stride.  No RNG is touched during the run, so the
event sequence — and the collected metrics — are exact across runs and
across schedulers (the parity tests rely on this).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.scenarios import registry as scenario_registry
from repro.scenarios.base import Scenario
from repro.sim.engine import Simulator


@dataclass
class EventStormConfig:
    """Defaults sized for ~128k pending events and a short horizon."""

    depth: int = 131_072  # concurrent self-rescheduling streams
    duration_ns: int = 100_000
    hold_min_ns: int = 200  # hold-model re-schedule delays
    hold_max_ns: int = 40_000
    table_size: int = 4096  # precomputed hold table entries
    seed: int = 7


@dataclass
class EventStormResult:
    """Raw outcome: event counts plus the depth actually sustained."""

    depth: int
    pending_at_start: int
    events_processed: int
    final_now: int
    scheduler: str


class _Stream:
    """One self-rescheduling event stream walking the shared hold table."""

    __slots__ = ("sim", "holds", "index", "stop_ns")

    def __init__(self, sim: Simulator, holds, index: int, stop_ns: int):
        self.sim = sim
        self.holds = holds
        self.index = index
        self.stop_ns = stop_ns

    def tick(self) -> None:
        sim = self.sim
        holds = self.holds
        index = self.index
        hold = holds[index]
        # Fixed odd stride: decorrelates neighbouring streams without
        # touching an RNG mid-run (determinism across schedulers).
        self.index = (index + 37) % len(holds)
        if sim.now + hold <= self.stop_ns:
            sim.after(hold, self.tick)


def run_event_storm(config: EventStormConfig) -> EventStormResult:
    """Sustain ``depth`` pending events until the horizon and count work."""
    if config.hold_min_ns < 1 or config.hold_max_ns <= config.hold_min_ns:
        raise ValueError(
            f"need 1 <= hold_min_ns < hold_max_ns, got "
            f"{config.hold_min_ns}..{config.hold_max_ns}"
        )
    rng = random.Random(config.seed)
    holds = [
        rng.randrange(config.hold_min_ns, config.hold_max_ns)
        for _ in range(config.table_size)
    ]
    sim = Simulator()
    for k in range(config.depth):
        stream = _Stream(sim, holds, k % len(holds), config.duration_ns)
        # Staggered starts with a second stride so the initial burst does
        # not land every stream on the same nanosecond.
        sim.at(holds[(k * 17) % len(holds)], stream.tick)
    pending_at_start = sim.pending
    sim.run(until=config.duration_ns)
    return EventStormResult(
        depth=config.depth,
        pending_at_start=pending_at_start,
        events_processed=sim.events_processed,
        final_now=sim.now,
        scheduler=sim.scheduler,
    )


@scenario_registry.register
class EventStormScenario(Scenario):
    """Deep-pending churn for scheduler comparisons (not a paper figure)."""

    name = "event_storm"
    description = "deep-pending self-rescheduling churn (scheduler stress)"
    config_cls = EventStormConfig

    def tiny_overrides(self) -> dict:
        return dict(depth=4096, duration_ns=60_000)

    def build(self, config):
        return lambda: run_event_storm(config)

    def collect(self, config, raw: EventStormResult):
        metrics = {
            "events_processed": raw.events_processed,
            "depth": raw.depth,
            "pending_at_start": raw.pending_at_start,
            "events_per_stream": raw.events_processed / max(raw.depth, 1),
        }
        return metrics, {}

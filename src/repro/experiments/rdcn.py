"""Fig. 8: the reconfigurable-DCN case study.

One ToR pair carries persistent demand (parallel long flows between its
hosts).  Between circuit days the traffic rides the 25 Gbps packet
network; during the pair's day a 100 Gbps circuit opens for ~10 RTTs.

* Fig. 8a — pair throughput and circuit-VOQ length over time: reTCP fills
  the circuit instantly (prebuffered VOQ, high latency); HPCC keeps the
  VOQ empty but ramps too slowly to use the day; PowerTCP fills the
  circuit within ~1 RTT at near-zero VOQ.
* Fig. 8b — tail (99th percentile) per-packet queuing latency vs packet-
  network bandwidth for reTCP-600µs / reTCP-1800µs / HPCC / PowerTCP.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional

from repro.analysis.stats import percentile
from repro.experiments.driver import FlowDriver
from repro.scenarios import registry as scenario_registry
from repro.scenarios.base import Scenario
from repro.sim.circuit import CircuitSchedule
from repro.sim.engine import Simulator
from repro.sim.tracing import CounterRateProbe, Probe
from repro.topology.registry import build_topology, make_topology_params
from repro.units import GBPS, MSEC, USEC

if TYPE_CHECKING:  # params type only; built via the topology registry
    from repro.topology.rdcn import RdcnParams


def scaled_rdcn(
    num_tors: int = 4,
    hosts_per_tor: int = 4,
    host_bw_bps: float = 25 * GBPS,
    circuit_bw_bps: float = 100 * GBPS,
    packet_bw_bps: float = 25 * GBPS,
    day_ns: int = 225 * USEC,
    night_ns: int = 20 * USEC,
    prebuffer_ns: int = 0,
) -> "RdcnParams":
    """A small RDCN: fewer ToRs so the watched pair's day recurs often,
    with the paper's link rates and day/night durations."""
    return make_topology_params(
        "rdcn",
        num_tors=num_tors,
        hosts_per_tor=hosts_per_tor,
        host_bw_bps=host_bw_bps,
        circuit_bw_bps=circuit_bw_bps,
        packet_bw_bps=packet_bw_bps,
        day_ns=day_ns,
        night_ns=night_ns,
        prebuffer_ns=prebuffer_ns,
    )


PAPER_WEEK_NS = 24 * (225 + 20) * 1000  # 25 ToRs: 24 matchings of 245 us


def scaled_prebuffer_ns(params: RdcnParams, paper_prebuffer_ns: int) -> int:
    """Scale a paper prebuffer value (600/1800 µs) to a shortened week.

    Prebuffering admits packets into the VOQ a *fraction of the rotation
    period* ahead of the day; with fewer ToRs the week shrinks, so the
    absolute prebuffer must shrink proportionally or it would cover the
    whole schedule and starve the packet network.
    """
    week_ns = len(
        CircuitSchedule(params.num_tors, params.day_ns, params.night_ns).matchings
    ) * (params.day_ns + params.night_ns)
    return int(paper_prebuffer_ns * week_ns / PAPER_WEEK_NS)


@dataclass
class RdcnConfig:
    """One Fig. 8 run: an algorithm plus the prebuffering policy."""

    algorithm: str = "powertcp"
    params: Optional[RdcnParams] = None
    src_tor: int = 0
    dst_tor: int = 1
    flows_per_pair: int = 4
    duration_ns: int = 4 * MSEC
    probe_interval_ns: int = 10 * USEC
    mtu_payload: int = 1000
    prebuffer_ns: int = 0  # reTCP's knob; 0 for feedback-based CC
    cc_params: Optional[dict] = None


@dataclass
class RdcnResult:
    """Fig. 8a series plus the Fig. 8b scalar metrics."""

    algorithm: str
    prebuffer_ns: int
    times_ns: List[int] = field(default_factory=list)
    pair_throughput_bps: List[float] = field(default_factory=list)
    voq_len_bytes: List[float] = field(default_factory=list)
    day_windows: List[tuple] = field(default_factory=list)
    circuit_utilization: float = 0.0
    tail_queuing_latency_ns: float = 0.0
    mean_goodput_bps: float = 0.0
    drops: int = 0
    events_processed: int = 0

    def peak_voq_bytes(self) -> float:
        """Largest sampled VOQ occupancy."""
        return max(self.voq_len_bytes) if self.voq_len_bytes else 0.0


def run_rdcn(config: RdcnConfig) -> RdcnResult:
    """Run the ToR-pair scenario for one algorithm/prebuffer setting."""
    params = config.params or scaled_rdcn()
    if config.prebuffer_ns:
        # Copy instead of mutating: the caller's params object may be
        # shared across sweep cells (e.g. a grid base), and a persisted
        # sweep must record each cell's own prebuffer.
        params = dataclasses.replace(params, prebuffer_ns=config.prebuffer_ns)
    sim = Simulator()
    net = build_topology(sim, "rdcn", params)

    cc_params = dict(config.cc_params or {})
    if config.algorithm == "retcp":
        cc_params.setdefault("prebuffer_ns", params.prebuffer_ns)
        cc_params.setdefault("flows_per_pair", config.flows_per_pair)
    driver = FlowDriver(
        net, config.algorithm, mtu_payload=config.mtu_payload, cc_params=cc_params
    )

    flows = []
    for i in range(config.flows_per_pair):
        src = config.src_tor * params.hosts_per_tor + (i % params.hosts_per_tor)
        dst = config.dst_tor * params.hosts_per_tor + (i % params.hosts_per_tor)
        flows.append(driver.start_flow(src, dst, 10 ** 12, at_ns=0, tag="pair"))

    # Pair throughput: bytes received by the destination hosts.
    throughput_probe = CounterRateProbe(
        sim,
        config.probe_interval_ns,
        lambda: sum(f.bytes_received for f in flows),
    ).start()
    circuit_port = net.extras["circuit_ports"][config.src_tor]
    voq_probe = Probe(
        sim,
        config.probe_interval_ns,
        lambda: circuit_port.voq_len_bytes(config.dst_tor),
    ).start()

    # Pair-day accounting for circuit utilization.
    schedule = net.extras["schedule"]
    day_marks: List[tuple] = []

    def mark_window(start: int, end: int) -> None:
        day_marks.append((start, end, circuit_port.tx_bytes))

    t = 0
    windows = []
    while True:
        start, end = schedule.window_for(config.src_tor, config.dst_tor, t)
        if start >= config.duration_ns:
            break
        windows.append((start, end))
        sim.at(start, mark_window, start, end)
        sim.at(min(end, config.duration_ns), mark_window, start, end)
        t = end + 1

    driver.run(until_ns=config.duration_ns)

    result = RdcnResult(algorithm=config.algorithm, prebuffer_ns=params.prebuffer_ns)
    result.times_ns = voq_probe.times_ns
    result.voq_len_bytes = voq_probe.values
    result.pair_throughput_bps = throughput_probe.rates_bps
    result.day_windows = windows
    result.drops = net.total_drops()

    # Circuit utilization over the pair's completed day windows.
    used_bytes = 0
    capacity_bytes = 0.0
    for i in range(0, len(day_marks) - 1, 2):
        start, end, tx_start = day_marks[i]
        _, _, tx_end = day_marks[i + 1]
        used_bytes += tx_end - tx_start
        window_ns = min(end, config.duration_ns) - start
        capacity_bytes += window_ns * params.circuit_bw_bps / 8e9
    result.circuit_utilization = (
        used_bytes / capacity_bytes if capacity_bytes else 0.0
    )

    # Tail queuing latency across circuit VOQs, ToR packet uplinks, and
    # the packet core (Fig. 8b's y-axis).
    delays: List[int] = []
    for label, port in net.labeled_ports.items():
        delays.extend(port.queuing_delays_ns)
    for port in net.extras["packet_switch"].ports:
        delays.extend(port.queuing_delays_ns)
    if delays:
        result.tail_queuing_latency_ns = percentile(delays, 99.0)

    total_received = sum(f.bytes_received for f in flows)
    result.mean_goodput_bps = total_received * 8e9 / config.duration_ns
    result.events_processed = sim.events_processed
    return result


@scenario_registry.register
class RdcnScenario(Scenario):
    """Fig. 8: one ToR pair riding the reconfigurable circuit schedule."""

    name = "rdcn"
    description = "ToR-pair demand over a rotating circuit (RDCN case study)"
    config_cls = RdcnConfig

    def tiny_overrides(self) -> dict:
        return dict(duration_ns=1 * MSEC, flows_per_pair=2)

    def build(self, config):
        return lambda: run_rdcn(config)

    def collect(self, config, raw: RdcnResult):
        metrics = {
            "circuit_utilization": raw.circuit_utilization,
            "peak_voq_bytes": raw.peak_voq_bytes(),
            "tail_queuing_latency_ns": raw.tail_queuing_latency_ns,
            "mean_goodput_bps": raw.mean_goodput_bps,
            "drops": raw.drops,
        }
        series = {
            "times_ns": list(raw.times_ns),
            "voq_len_bytes": list(raw.voq_len_bytes),
            "pair_throughput_bps": list(raw.pair_throughput_bps),
        }
        return metrics, series

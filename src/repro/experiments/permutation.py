"""Permutation traffic on the fat-tree (ROADMAP scenario).

Every host sends one fixed-size message to a distinct host drawn from a
seeded random derangement (:func:`repro.workloads.permutation.permutation_pairs`),
so no receiver NIC is oversubscribed and the stress lands on the fabric:
with the scaled fat-tree's 2:1 ToR oversubscription, cross-rack
permutations contend for the uplinks.  A useful complement to incast
(receiver-bound) and web-search (Poisson) workloads: the permutation is
the canonical throughput/fairness stress for datacenter CC schemes.

Reported: completion count, tail FCT slowdown, aggregate goodput as a
fraction of the host line-rate bound, Jain fairness over per-flow
goodputs, and drops.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional

from repro.analysis.fairness import jain_index
from repro.analysis.fct import FctSummary, summarize_fct
from repro.experiments.driver import FlowDriver
from repro.experiments.websearch import scaled_fattree
from repro.scenarios import registry as scenario_registry
from repro.scenarios.base import Scenario
from repro.sim.engine import Simulator
from repro.topology.registry import build_topology
from repro.transport.flow import Flow
from repro.units import BITS_PER_BYTE, MSEC, SEC
from repro.workloads.permutation import permutation_pairs

if TYPE_CHECKING:  # params type only; built via the topology registry
    from repro.topology.fattree import FatTreeParams


@dataclass
class PermutationConfig:
    """One permutation cell: an algorithm, a message size, a seed."""

    algorithm: str = "powertcp"
    flow_bytes: int = 1_000_000
    params: Optional["FatTreeParams"] = None
    duration_ns: int = 4 * MSEC
    drain_ns: int = 16 * MSEC
    seed: int = 1
    mtu_payload: int = 1000
    cc_params: Optional[dict] = None


@dataclass
class PermutationResult:
    """Completed flows plus derived throughput/fairness statistics."""

    algorithm: str
    flow_bytes: int
    base_rtt_ns: int = 0
    host_bw_bps: float = 0.0
    flows: List[Flow] = field(default_factory=list)
    drops: int = 0
    events_processed: int = 0
    ideal_fn: Optional[object] = None

    def fct_summary(self, pct: float = 99.0) -> FctSummary:
        """Tail FCT slowdowns over the permutation's flows."""
        return summarize_fct(
            self.algorithm,
            self.flows,
            self.base_rtt_ns,
            self.host_bw_bps,
            pct,
            ideal_fn=self.ideal_fn,
        )

    def per_flow_goodput_bps(self) -> List[float]:
        """Goodput of each completed flow (size / FCT)."""
        return [
            f.size_bytes * BITS_PER_BYTE * SEC / f.fct_ns
            for f in self.flows
            if f.completed and f.fct_ns > 0
        ]

    def goodput_jain(self) -> Optional[float]:
        """Jain index across completed-flow goodputs."""
        goodputs = self.per_flow_goodput_bps()
        return jain_index(goodputs) if goodputs else None

    def aggregate_goodput_fraction(self) -> float:
        """Sum of flow goodputs over the all-hosts line-rate bound."""
        if not self.flows or self.host_bw_bps <= 0:
            return 0.0
        bound = len(self.flows) * self.host_bw_bps
        return sum(self.per_flow_goodput_bps()) / bound


def run_permutation(config: PermutationConfig) -> PermutationResult:
    """Run one permutation cell: every host sends to its derangement peer."""
    params = config.params or scaled_fattree()
    sim = Simulator()
    net = build_topology(sim, "fattree", params)
    driver = FlowDriver(
        net,
        config.algorithm,
        mtu_payload=config.mtu_payload,
        cc_params=config.cc_params,
    )

    rng = random.Random(config.seed)
    for src, dst in permutation_pairs(rng, net.num_hosts):
        driver.start_flow(src, dst, config.flow_bytes, at_ns=0)

    driver.run(until_ns=config.duration_ns + config.drain_ns)

    result = PermutationResult(
        algorithm=config.algorithm,
        flow_bytes=config.flow_bytes,
        base_rtt_ns=net.base_rtt_ns,
        host_bw_bps=params.host_bw_bps,
    )
    result.ideal_fn = lambda flow: net.ideal_fct_ns(
        flow.src, flow.dst, flow.size_bytes, config.mtu_payload
    )
    result.flows = driver.flows
    result.drops = net.total_drops()
    result.events_processed = sim.events_processed
    return result


@scenario_registry.register
class PermutationScenario(Scenario):
    """Host-level permutation stress on the fat-tree fabric."""

    name = "permutation"
    description = "seeded host permutation on the fat-tree; goodput + Jain"
    config_cls = PermutationConfig

    def tiny_overrides(self) -> dict:
        return dict(flow_bytes=50_000, duration_ns=1 * MSEC, drain_ns=3 * MSEC)

    def build(self, config):
        return lambda: run_permutation(config)

    def collect(self, config, raw: PermutationResult):
        summary = raw.fct_summary(pct=99.0)
        metrics = {
            "completed": summary.completed,
            "total_flows": summary.total,
            "fct_p99_overall": summary.overall,
            "goodput_jain": raw.goodput_jain(),
            "aggregate_goodput_fraction": raw.aggregate_goodput_fraction(),
            "drops": raw.drops,
        }
        goodputs = raw.per_flow_goodput_bps()
        series = {"per_flow_goodput_bps": goodputs}
        return metrics, series

"""Figs. 6, 7a, 7b, 7g: the web-search workload on the fat-tree.

Poisson arrivals of web-search-distributed flows between random inter-rack
host pairs, offered at a target ToR-uplink load.  Reported:

* 99.9-percentile FCT slowdown per flow-size bin (Fig. 6, at 20 %/60 %),
* short-flow and long-flow tail slowdown across loads (Fig. 7a/7b),
* the CDF of switch buffer occupancy (Fig. 7g at 80 % load).

The scaled-down topology default is 2:1 ToR oversubscription (event-budget
friendly); pass ``scaled_fattree(paper_oversub=True)`` for the paper's 4:1.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.analysis.fct import FctSummary, slowdown_by_size_bin, summarize_fct
from repro.analysis.stats import percentile
from repro.experiments.driver import FlowDriver
from repro.scenarios import registry as scenario_registry
from repro.scenarios.base import Scenario
from repro.sim.engine import Simulator
from repro.sim.tracing import Probe
from repro.topology.registry import build_topology, make_topology_params
from repro.transport.flow import Flow
from repro.units import GBPS, MSEC, USEC
from repro.workloads.arrivals import poisson_flows
from repro.workloads.distributions import WEB_SEARCH, EmpiricalCdf

if TYPE_CHECKING:  # params type only; built via the topology registry
    from repro.topology.fattree import FatTreeParams


def scaled_fattree(
    hosts_per_tor: Optional[int] = None,
    host_bw_bps: float = 10 * GBPS,
    fabric_bw_bps: float = 10 * GBPS,
    num_pods: int = 2,
    paper_oversub: bool = False,
) -> "FatTreeParams":
    """A small 2-tier fat-tree.

    The default builds a **2:1** ToR oversubscription (4 hosts x 10 G =
    40 G down vs 2 aggs x 10 G = 20 G up), which keeps pure-Python event
    counts interactive.  Pass ``paper_oversub=True`` for the paper's
    **4:1** (8 hosts per ToR); combining it with an explicit
    ``hosts_per_tor`` is a contradiction and raises.
    """
    if paper_oversub:
        if hosts_per_tor is not None:
            raise ValueError(
                "pass either hosts_per_tor or paper_oversub=True, not both"
            )
        hosts_per_tor = 8
    elif hosts_per_tor is None:
        hosts_per_tor = 4
    return make_topology_params(
        "fattree",
        num_pods=num_pods,
        tors_per_pod=2,
        aggs_per_pod=2,
        num_cores=2,
        hosts_per_tor=hosts_per_tor,
        host_bw_bps=host_bw_bps,
        fabric_bw_bps=fabric_bw_bps,
    )


@dataclass
class WebsearchConfig:
    """One (algorithm, load) cell of the Fig. 6/7 matrix."""

    algorithm: str = "powertcp"
    load: float = 0.6
    params: Optional["FatTreeParams"] = None
    duration_ns: int = 20 * MSEC
    drain_ns: int = 20 * MSEC
    seed: int = 1
    distribution: EmpiricalCdf = WEB_SEARCH
    #: shrink flow sizes by this factor (shape-preserving) so enough flows
    #: complete within a pure-Python event budget; FCT class/bin
    #: boundaries are rescaled symmetrically in the analysis.
    size_scale: float = 1.0
    buffer_probe_interval_ns: int = 100 * USEC
    mtu_payload: int = 1000
    max_flows: Optional[int] = None
    cc_params: Optional[dict] = None


@dataclass
class WebsearchResult:
    """Completed flows plus derived FCT/buffer statistics."""

    algorithm: str
    load: float
    base_rtt_ns: int = 0
    host_bw_bps: float = 0.0
    size_scale: float = 1.0
    flows: List[Flow] = field(default_factory=list)
    buffer_samples_bytes: List[float] = field(default_factory=list)
    drops: int = 0
    events_processed: int = 0
    ideal_fn: Optional[object] = None  # Callable[[Flow], int] -> ideal FCT ns

    def fct_summary(self, pct: float = 99.9) -> FctSummary:
        """Short/medium/long percentile slowdowns."""
        return summarize_fct(
            self.algorithm,
            self.flows,
            self.base_rtt_ns,
            self.host_bw_bps,
            pct,
            ideal_fn=self.ideal_fn,
            size_scale=self.size_scale,
        )

    def size_bins(self, pct: float = 99.9) -> List[Tuple[int, Optional[float], int]]:
        """Fig. 6 per-size-bin series (edges in original paper units)."""
        return slowdown_by_size_bin(
            self.flows,
            self.base_rtt_ns,
            self.host_bw_bps,
            pct,
            ideal_fn=self.ideal_fn,
            size_scale=self.size_scale,
        )


def run_websearch(config: WebsearchConfig) -> WebsearchResult:
    """Run one load point of the web-search workload."""
    params = config.params or scaled_fattree()
    sim = Simulator()
    net = build_topology(sim, "fattree", params)
    driver = FlowDriver(
        net,
        config.algorithm,
        mtu_payload=config.mtu_payload,
        cc_params=config.cc_params,
    )

    rng = random.Random(config.seed)
    distribution = (
        config.distribution.scaled(config.size_scale)
        if config.size_scale != 1.0
        else config.distribution
    )
    requests = poisson_flows(
        rng,
        params,
        distribution,
        config.load,
        config.duration_ns,
        max_flows=config.max_flows,
    )
    for request in requests:
        driver.start_flow(
            request.src, request.dst, request.size_bytes, at_ns=request.start_ns
        )

    # Buffer occupancy across ToR switches (Fig. 7g samples the switches
    # the workload stresses).
    tors = net.extras["tors"]
    buffer_probes = [
        Probe(
            sim,
            config.buffer_probe_interval_ns,
            (lambda t: (lambda: t.buffer.used))(tor),
            until_ns=config.duration_ns,
        ).start()
        for tor in tors
    ]

    driver.run(until_ns=config.duration_ns + config.drain_ns)

    result = WebsearchResult(
        algorithm=config.algorithm,
        load=config.load,
        base_rtt_ns=net.base_rtt_ns,
        host_bw_bps=params.host_bw_bps,
        size_scale=config.size_scale,
    )
    result.ideal_fn = lambda flow: net.ideal_fct_ns(
        flow.src, flow.dst, flow.size_bytes, config.mtu_payload
    )
    result.flows = driver.flows
    result.drops = net.total_drops()
    result.events_processed = sim.events_processed
    for probe in buffer_probes:
        result.buffer_samples_bytes.extend(probe.values)
    return result


@scenario_registry.register
class WebsearchScenario(Scenario):
    """Figs. 6/7a/7b/7g: web-search traffic on the fat-tree."""

    name = "websearch"
    description = "Poisson web-search flows on a fat-tree; FCT slowdown tails"
    config_cls = WebsearchConfig

    def tiny_overrides(self) -> dict:
        return dict(
            duration_ns=2 * MSEC, drain_ns=6 * MSEC, size_scale=1 / 16,
            max_flows=15, load=0.4,
        )

    def build(self, config):
        return lambda: run_websearch(config)

    def collect(self, config, raw: WebsearchResult):
        summary = raw.fct_summary(pct=99.0)
        metrics = {
            "fct_p99_short": summary.short,
            "fct_p99_medium": summary.medium,
            "fct_p99_long": summary.long,
            "fct_p99_overall": summary.overall,
            "completed": summary.completed,
            "total_flows": summary.total,
            "drops": raw.drops,
            "buffer_p50_bytes": percentile(raw.buffer_samples_bytes, 50.0)
            if raw.buffer_samples_bytes else None,
            "buffer_p99_bytes": percentile(raw.buffer_samples_bytes, 99.0)
            if raw.buffer_samples_bytes else None,
        }
        bins = raw.size_bins(pct=99.0)
        series = {
            "size_bin_edges_bytes": [edge for edge, _v, _n in bins],
            "size_bin_p99_slowdown": [v for _e, v, _n in bins],
            "size_bin_counts": [n for _e, _v, n in bins],
        }
        return metrics, series

"""Deployment mix: N CC algorithms coexisting on any registered topology.

The deployment question PowerTCP §6 raises (and "It's Time to Replace TCP
in the Datacenter" makes explicit): a new scheme is never rolled out
atomically, so how does it behave *next to* the incumbent — at every
rollout fraction, on real multi-path fabrics, with groups arriving at
different times?  This module models that as a list of
:class:`GroupSpec` records — each one an (algorithm, rollout fraction,
staggered ``start_ns``, per-group ``cc_params``) tuple — deployed over
any topology in :mod:`repro.topology.registry`:

* **dumbbell** — every group's flows are long flows through the single
  shared bottleneck (the PR-2 two-group setup, generalized);
* **fattree** — flows land on seeded permutation pairs, so the groups
  contend on the oversubscribed ToR uplinks;
* **parkinglot** — flows spread round-robin over the segment cross
  paths, so every segment link carries an even mix of groups.

Reported per group: steady-state share and within-group Jain fairness;
pairwise cross-group throughput ratios (1.0 = algorithm-blind sharing);
and, for staggered rollouts, the *time to fair* after each group's start
— how long until the instantaneous Jain index across all active flows
first reaches ``fair_threshold``.

Backward compatibility: the PR-2 two-group surface
(``algorithm_a``/``algorithm_b``/``flows_per_group``/``cc_params_a``/
``cc_params_b``) is still accepted and mapped onto a two-entry
``GroupSpec`` list named ``a``/``b``, so existing sweep JSON caches and
provenance records keep loading.

.. deprecated:: PR 5
   ``algorithm_a``/``algorithm_b``/``flows_per_group`` are a legacy
   shim; new configs should pass ``groups=[...]`` (+ ``total_flows``).
"""

from __future__ import annotations

import dataclasses
import random
import statistics
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.fairness import jain_index
from repro.cc.registry import make_algorithm
from repro.experiments.driver import FlowDriver
from repro.scenarios import registry as scenario_registry
from repro.scenarios.base import Scenario
from repro.sim.engine import Simulator
from repro.sim.tracing import CounterRateProbe, PortProbe
from repro.topology.registry import get_topology
from repro.units import GBPS, MSEC, USEC

GROUP_A = "a"
GROUP_B = "b"

#: default group names: a, b, c, ... then g26, g27, ...
_LETTERS = "abcdefghijklmnopqrstuvwxyz"


def _default_group_name(index: int) -> str:
    return _LETTERS[index] if index < len(_LETTERS) else f"g{index}"


@dataclass
class GroupSpec:
    """One deployment group: an algorithm at a rollout fraction.

    ``fraction`` is a relative weight — fractions are normalized across
    the group list, so ``[0.9, 0.1]`` and ``[9, 1]`` mean the same mix.
    ``start_ns`` staggers the group's flows (a later rollout step).
    """

    algorithm: str = "powertcp"
    fraction: float = 1.0
    start_ns: int = 0
    cc_params: Optional[dict] = None
    name: str = ""

    def __post_init__(self):
        if self.fraction < 0:
            raise ValueError(
                f"group {self.name or self.algorithm!r}: fraction must be "
                f">= 0, got {self.fraction}"
            )
        if self.start_ns < 0:
            raise ValueError(
                f"group {self.name or self.algorithm!r}: start_ns must be "
                f">= 0, got {self.start_ns}"
            )

    @classmethod
    def coerce(cls, value, index: int) -> "GroupSpec":
        """Normalize a GroupSpec / dict / algorithm name into a named
        GroupSpec (a bare string means an equal-weight group).

        Always returns a fresh object: the config normalizes (names) and
        may re-weight (``rollout_fraction``) its groups, and those edits
        must never leak into a caller-owned spec reused across configs.
        """
        if isinstance(value, cls):
            spec = dataclasses.replace(value)
        elif isinstance(value, str):
            spec = cls(algorithm=value)
        elif isinstance(value, dict):
            unknown = sorted(
                set(value) - {f.name for f in dataclasses.fields(cls)}
            )
            if unknown:
                raise ValueError(
                    f"group #{index}: unknown key(s) {', '.join(unknown)}; "
                    "valid: algorithm, fraction, start_ns, cc_params, name"
                )
            spec = cls(**value)
        else:
            raise TypeError(
                f"group #{index} must be a GroupSpec, dict, or algorithm "
                f"name, got {type(value).__name__}"
            )
        if not spec.name:
            spec.name = _default_group_name(index)
        return spec


def apportion_flows(weights: List[float], total: int) -> List[int]:
    """Largest-remainder apportionment of ``total`` flows over weights.

    Deterministic (ties break toward earlier groups) and exact: the
    returned counts always sum to ``total``.  When ``total`` covers the
    positive-weight groups, each of them is guaranteed at least one flow
    — a declared group must exist in the mix, not silently round to
    zero at skewed fractions (the remaining flows follow the weights).
    """
    if total < 0:
        raise ValueError(f"total flows must be >= 0, got {total}")
    weight_sum = sum(weights)
    if weight_sum <= 0:
        raise ValueError("at least one group fraction must be positive")
    shares = [w * total / weight_sum for w in weights]
    counts = [int(s) for s in shares]
    remainder = total - sum(counts)
    order = sorted(
        range(len(weights)), key=lambda i: (counts[i] - shares[i], i)
    )
    for i in order[:remainder]:
        counts[i] += 1
    # Min-one fix-up: a positive-weight group that rounded to zero takes
    # one flow from the currently largest group (earliest on ties).
    positive = [i for i, w in enumerate(weights) if w > 0]
    if total >= len(positive):
        for i in positive:
            if counts[i] == 0:
                donor = max(
                    range(len(counts)),
                    key=lambda j: (counts[j], -j),
                )
                counts[donor] -= 1
                counts[i] += 1
    return counts


@dataclass
class DeploymentMixConfig:
    """One mixed-deployment cell: N groups on one registered topology.

    ``rollout_fraction``, when set, re-weights the *last* group (the
    newcomer) to that fraction of the total and scales the remaining
    groups into the rest — the one-knob axis
    ``python -m repro sweep coexistence --grid rollout_fraction=...``
    grids over.

    Legacy two-group keys (``algorithm_a``/``algorithm_b``/
    ``flows_per_group``/``cc_params_a``/``cc_params_b``) are accepted
    only when ``groups`` is not given; see the module deprecation note.
    """

    groups: Optional[List] = None
    total_flows: Optional[int] = None
    rollout_fraction: Optional[float] = None
    topology: str = "dumbbell"
    topology_params: Optional[dict] = None
    host_bw_bps: float = 10 * GBPS
    bottleneck_bw_bps: float = 10 * GBPS
    buffer_bytes: int = 4_000_000
    duration_ns: int = 4 * MSEC
    probe_interval_ns: int = 20 * USEC
    fair_threshold: float = 0.9
    mtu_payload: int = 1000
    seed: int = 1  # pairing-policy seed (and sweep provenance)
    # -- deprecated two-group shim (PR 2 surface) ----------------------
    algorithm_a: Optional[str] = None
    algorithm_b: Optional[str] = None
    flows_per_group: Optional[int] = None
    cc_params_a: Optional[dict] = None
    cc_params_b: Optional[dict] = None

    def __post_init__(self):
        legacy = {
            k: getattr(self, k)
            for k in (
                "algorithm_a", "algorithm_b", "flows_per_group",
                "cc_params_a", "cc_params_b",
            )
            if getattr(self, k) is not None
        }
        if self.groups is None:
            # Two-group legacy surface (also the default cell).
            self.groups = [
                GroupSpec(
                    algorithm=self.algorithm_a or "powertcp",
                    cc_params=self.cc_params_a,
                    name=GROUP_A,
                ),
                GroupSpec(
                    algorithm=self.algorithm_b or "dcqcn",
                    cc_params=self.cc_params_b,
                    name=GROUP_B,
                ),
            ]
            if self.flows_per_group is not None:
                if self.total_flows is not None:
                    raise ValueError(
                        "pass either flows_per_group (deprecated) or "
                        "total_flows, not both"
                    )
                self.total_flows = 2 * self.flows_per_group
        elif legacy:
            raise ValueError(
                "groups=[...] cannot be combined with the deprecated "
                f"two-group key(s) {', '.join(sorted(legacy))}"
            )
        else:
            self.groups = [
                GroupSpec.coerce(value, i) for i, value in enumerate(self.groups)
            ]
        if not self.groups:
            raise ValueError("need at least one deployment group")
        names = [g.name for g in self.groups]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate group names: {names}")
        if self.total_flows is None:
            self.total_flows = 2 * len(self.groups)
        if self.total_flows < len([g for g in self.groups if g.fraction > 0]):
            raise ValueError(
                f"total_flows={self.total_flows} cannot cover "
                f"{len(self.groups)} groups"
            )
        if self.rollout_fraction is not None:
            if not 0.0 < self.rollout_fraction < 1.0:
                raise ValueError(
                    f"rollout_fraction must be in (0, 1), got "
                    f"{self.rollout_fraction}"
                )
            if len(self.groups) < 2:
                raise ValueError("rollout_fraction needs at least two groups")
            incumbent_weight = sum(g.fraction for g in self.groups[:-1])
            if incumbent_weight <= 0:
                raise ValueError(
                    "rollout_fraction needs a positive incumbent fraction"
                )
            scale = (1.0 - self.rollout_fraction) / incumbent_weight
            for group in self.groups[:-1]:
                group.fraction *= scale
            self.groups[-1].fraction = self.rollout_fraction

    @property
    def algorithm(self) -> str:
        """Composite label used in provenance records."""
        return "+".join(g.algorithm for g in self.groups)

    def group_flow_counts(self) -> List[int]:
        """Per-group flow counts (largest-remainder apportionment)."""
        return apportion_flows(
            [g.fraction for g in self.groups], self.total_flows
        )

    def resolved_topology_params(self):
        """The built params object: deploy defaults + user overrides."""
        entry = get_topology(self.topology)
        merged = dict(_deploy_defaults(self, entry.name))
        merged.update(self.topology_params or {})
        return entry, entry.make_params(**merged)


def _deploy_defaults(config: "DeploymentMixConfig", name: str) -> Dict:
    """Topology sizing defaults for a deployment-mix cell.

    Keyed by registered name; unknown (user-registered) topologies get no
    defaults and must be fully specified via ``topology_params``.
    """
    if name == "dumbbell":
        return dict(
            left_hosts=config.total_flows,
            right_hosts=1,
            host_bw_bps=config.host_bw_bps,
            bottleneck_bw_bps=config.bottleneck_bw_bps,
            buffer_bytes=config.buffer_bytes,
            mtu_payload=config.mtu_payload,
        )
    if name == "fattree":
        # The scaled 2:1 oversubscribed fat-tree (event-budget friendly).
        return dict(
            num_pods=2,
            tors_per_pod=2,
            aggs_per_pod=2,
            num_cores=2,
            hosts_per_tor=4,
            host_bw_bps=config.host_bw_bps,
            fabric_bw_bps=config.host_bw_bps,
            mtu_payload=config.mtu_payload,
        )
    if name == "parkinglot":
        return dict(
            segments=2,
            host_bw_bps=config.host_bw_bps,
            buffer_bytes=config.buffer_bytes,
            mtu_payload=config.mtu_payload,
        )
    if name == "rdcn":
        return dict(
            num_tors=4,
            hosts_per_tor=4,
            mtu_payload=config.mtu_payload,
        )
    return {}


@dataclass
class DeploymentMixResult:
    """Per-group throughput series plus the sharing/rollout summary."""

    group_names: List[str] = field(default_factory=list)
    algorithms: Dict[str, str] = field(default_factory=dict)
    start_ns: Dict[str, int] = field(default_factory=dict)
    topology: str = "dumbbell"
    #: rate of the shared bottleneck when every pair crosses one
    #: (dumbbell); 0 otherwise — shares then normalize by the aggregate
    #: delivered throughput
    capacity_bps: float = 0.0
    times_ns: List[int] = field(default_factory=list)
    group_throughput_bps: Dict[str, List[float]] = field(default_factory=dict)
    #: settled per-flow mean rates, per group
    flow_mean_bps: Dict[str, List[float]] = field(default_factory=dict)
    #: full per-flow rate series, per group (raw only; not persisted)
    flow_rates_bps: Dict[str, List[List[float]]] = field(default_factory=dict)
    qlen_bytes: List[float] = field(default_factory=list)
    peak_qlen_bytes: int = 0
    settled_qlen_bytes: float = 0.0
    drops: int = 0
    events_processed: int = 0

    # -- legacy two-group accessors ------------------------------------
    @property
    def algorithm_a(self) -> Optional[str]:
        return self.algorithms.get(GROUP_A)

    @property
    def algorithm_b(self) -> Optional[str]:
        return self.algorithms.get(GROUP_B)

    # -- per-group summaries -------------------------------------------
    def group_mean_bps(self, group: str, settle_fraction: float = 0.5) -> float:
        """Mean group throughput over the settled tail of its own run.

        The window starts at the group's ``start_ns`` (a staggered group
        is not charged for the samples before it existed) and the first
        ``settle_fraction`` of that window is discarded as ramp-up.
        """
        series = self.group_throughput_bps.get(group, [])
        start = self.start_ns.get(group, 0)
        active = [
            v for t, v in zip(self.times_ns, series) if t >= start
        ]
        split = int(len(active) * settle_fraction)
        tail = active[split:]
        return statistics.fmean(tail) if tail else 0.0

    def group_share(self, group: str) -> float:
        """Settled fraction of the contended capacity the group holds.

        Normalizes by the bottleneck rate when the topology declares one,
        else by the aggregate settled throughput across all groups.
        """
        reference = self.capacity_bps
        if reference <= 0:
            reference = sum(self.group_mean_bps(g) for g in self.group_names)
        if reference <= 0:
            return 0.0
        return self.group_mean_bps(group) / reference

    def cross_ratio(self, group_x: str, group_y: str) -> Optional[float]:
        """Settled throughput of ``group_x`` over ``group_y`` (1.0 = fair,
        after correcting for unequal flow counts: the ratio is per-flow)."""
        x_flows = len(self.flow_mean_bps.get(group_x, []))
        y_flows = len(self.flow_mean_bps.get(group_y, []))
        if not x_flows or not y_flows:
            return None
        y = self.group_mean_bps(group_y) / y_flows
        if y <= 0:
            return None
        return (self.group_mean_bps(group_x) / x_flows) / y

    def cross_group_ratio(self) -> Optional[float]:
        """Legacy two-group ratio: first group over second."""
        if len(self.group_names) < 2:
            return None
        return self.cross_ratio(self.group_names[0], self.group_names[1])

    def group_jain(self, group: str) -> Optional[float]:
        """Jain index across the group's per-flow settled mean rates."""
        means = self.flow_mean_bps.get(group, [])
        return jain_index(means) if means else None

    def time_to_fair_ns(
        self, group: str, threshold: float = 0.9
    ) -> Optional[int]:
        """Time from the group's rollout step until global fairness.

        Scans the probe ticks at or after the group's ``start_ns`` for
        the first where the Jain index across *every active flow's*
        instantaneous rate reaches ``threshold``; returns the delay from
        the step (None if fairness is never reached, or the group has no
        flows).
        """
        step = self.start_ns.get(group)
        if step is None or not self.flow_rates_bps.get(group):
            return None
        for k, t in enumerate(self.times_ns):
            if t < step:
                continue
            rates = [
                series[k]
                for other, start in self.start_ns.items()
                if start <= t
                for series in self.flow_rates_bps.get(other, [])
                if k < len(series)
            ]
            if rates and jain_index(rates) >= threshold:
                return t - step
        return None


#: deprecated aliases (PR 2 public names)
CoexistenceConfig = DeploymentMixConfig
CoexistenceResult = DeploymentMixResult


def run_deployment_mix(config: DeploymentMixConfig) -> DeploymentMixResult:
    """Run one mixed-deployment cell (groups may run the same scheme —
    the homogeneous cell is the control for the sharing ratios)."""
    sim = Simulator()
    entry, params = config.resolved_topology_params()
    net = entry.build(sim, params)

    specs = {
        g.name: make_algorithm(g.algorithm, **(g.cc_params or {}))
        for g in config.groups
    }
    driver = FlowDriver(net, specs, mtu_payload=config.mtu_payload)

    counts = config.group_flow_counts()
    pairs = net.flow_pairs(config.total_flows, random.Random(config.seed))
    flows: Dict[str, List] = {}
    cursor = 0
    for group, count in zip(config.groups, counts):
        members = []
        for src, dst in pairs[cursor:cursor + count]:
            members.append(
                driver.start_flow(
                    src, dst, 10 ** 12, at_ns=group.start_ns, tag=group.name
                )
            )
        cursor += count
        flows[group.name] = members

    group_probes = {
        group: CounterRateProbe(
            sim,
            config.probe_interval_ns,
            (lambda fs: (lambda: sum(f.bytes_received for f in fs)))(members),
        ).start()
        for group, members in flows.items()
    }
    flow_probes = {
        flow.flow_id: CounterRateProbe(
            sim,
            config.probe_interval_ns,
            (lambda f: (lambda: f.bytes_received))(flow),
        ).start()
        for members in flows.values()
        for flow in members
    }
    bottleneck = net.bottleneck_port()
    queue_probe = (
        PortProbe(sim, bottleneck, config.probe_interval_ns).start()
        if bottleneck is not None
        else None
    )

    driver.run(until_ns=config.duration_ns)

    result = DeploymentMixResult(
        group_names=[g.name for g in config.groups],
        algorithms={g.name: g.algorithm for g in config.groups},
        start_ns={g.name: g.start_ns for g in config.groups},
        topology=entry.name,
        capacity_bps=(
            bottleneck.rate_bps
            if bottleneck is not None and net.shared_bottleneck
            else 0.0
        ),
    )
    first = config.groups[0].name
    result.times_ns = group_probes[first].times_ns
    for group, probe in group_probes.items():
        result.group_throughput_bps[group] = probe.rates_bps
    for group_spec in config.groups:
        members = flows[group_spec.name]
        means = []
        rate_series = []
        for flow in members:
            series = flow_probes[flow.flow_id].rates_bps
            rate_series.append(series)
            active = [
                v
                for t, v in zip(result.times_ns, series)
                if t >= group_spec.start_ns
            ]
            split = len(active) // 2
            tail = active[split:]
            means.append(statistics.fmean(tail) if tail else 0.0)
        result.flow_mean_bps[group_spec.name] = means
        result.flow_rates_bps[group_spec.name] = rate_series
    if queue_probe is not None:
        result.peak_qlen_bytes = bottleneck.max_qlen_bytes
        result.qlen_bytes = queue_probe.qlen_bytes
        settled = queue_probe.qlen_bytes[len(queue_probe.qlen_bytes) // 2 :]
        result.settled_qlen_bytes = (
            statistics.fmean(settled) if settled else 0.0
        )
    result.drops = net.total_drops()
    result.events_processed = sim.events_processed
    return result


#: deprecated alias (PR 2 public name)
run_coexistence = run_deployment_mix


@scenario_registry.register
class CoexistenceScenario(Scenario):
    """N CC schemes coexisting on a registered topology (§6 deployment)."""

    name = "coexistence"
    description = (
        "N-group deployment mix on any registered topology; "
        "per-group shares, staggered rollout"
    )
    config_cls = DeploymentMixConfig

    def tiny_overrides(self) -> dict:
        return dict(total_flows=2, duration_ns=1 * MSEC)

    def build(self, config):
        return lambda: run_deployment_mix(config)

    def collect(self, config, raw: DeploymentMixResult):
        metrics = {
            "peak_qlen_bytes": raw.peak_qlen_bytes,
            "settled_qlen_bytes": raw.settled_qlen_bytes,
            "drops": raw.drops,
        }
        for group in raw.group_names:
            metrics[f"group_{group}_share"] = raw.group_share(group)
            metrics[f"group_{group}_jain"] = raw.group_jain(group)
            metrics[f"group_{group}_time_to_fair_ns"] = raw.time_to_fair_ns(
                group, config.fair_threshold
            )
        for i, group_x in enumerate(raw.group_names):
            for group_y in raw.group_names[i + 1 :]:
                metrics[f"cross_ratio_{group_x}_{group_y}"] = raw.cross_ratio(
                    group_x, group_y
                )
        if len(raw.group_names) >= 2:
            metrics["cross_group_ratio"] = raw.cross_group_ratio()
        series = {
            "times_ns": list(raw.times_ns),
            "qlen_bytes": list(raw.qlen_bytes),
        }
        for group in raw.group_names:
            series[f"group_{group}_throughput_bps"] = list(
                raw.group_throughput_bps.get(group, [])
            )
        return metrics, series

"""Coexistence: two CC algorithms sharing one dumbbell bottleneck.

The deployment question PowerTCP §6 raises (and "It's Time to Replace TCP
in the Datacenter" makes explicit): a new scheme is never rolled out
atomically, so how does it behave *next to* the incumbent?  Two groups of
long flows — group ``a`` under ``algorithm_a``, group ``b`` under
``algorithm_b`` — share the bottleneck; the driver derives the network
features as the union of both schemes' declared requirements (e.g.
PowerTCP's INT stamping *and* DCQCN's ECN marking on the same ports).

Reported per group: mean steady-state throughput and bottleneck share,
within-group Jain fairness, plus the cross-group throughput ratio (1.0 =
perfectly algorithm-blind sharing) and the shared queue's peak/settled
occupancy.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.fairness import jain_index
from repro.cc.registry import make_algorithm
from repro.experiments.driver import FlowDriver
from repro.scenarios import registry as scenario_registry
from repro.scenarios.base import Scenario
from repro.sim.engine import Simulator
from repro.sim.tracing import CounterRateProbe, PortProbe
from repro.topology.dumbbell import DumbbellParams, build_dumbbell
from repro.units import GBPS, MSEC, USEC

GROUP_A = "a"
GROUP_B = "b"


@dataclass
class CoexistenceConfig:
    """One mixed-deployment cell: two algorithms, one bottleneck."""

    algorithm_a: str = "powertcp"
    algorithm_b: str = "dcqcn"
    flows_per_group: int = 2
    host_bw_bps: float = 10 * GBPS
    bottleneck_bw_bps: float = 10 * GBPS
    buffer_bytes: int = 4_000_000
    duration_ns: int = 4 * MSEC
    probe_interval_ns: int = 20 * USEC
    mtu_payload: int = 1000
    seed: int = 1  # deterministic scenario; kept for sweep provenance
    cc_params_a: Optional[dict] = None
    cc_params_b: Optional[dict] = None

    @property
    def algorithm(self) -> str:
        """Composite label used in provenance records."""
        return f"{self.algorithm_a}+{self.algorithm_b}"


@dataclass
class CoexistenceResult:
    """Per-group throughput series plus the sharing summary."""

    algorithm_a: str
    algorithm_b: str
    bottleneck_bw_bps: float = 0.0
    times_ns: List[int] = field(default_factory=list)
    group_throughput_bps: Dict[str, List[float]] = field(default_factory=dict)
    flow_mean_bps: Dict[str, List[float]] = field(default_factory=dict)
    qlen_bytes: List[float] = field(default_factory=list)
    peak_qlen_bytes: int = 0
    settled_qlen_bytes: float = 0.0
    drops: int = 0
    events_processed: int = 0

    def group_mean_bps(self, group: str, settle_fraction: float = 0.5) -> float:
        """Mean group throughput over the settled (second) half."""
        series = self.group_throughput_bps.get(group, [])
        split = int(len(series) * settle_fraction)
        tail = series[split:]
        return statistics.fmean(tail) if tail else 0.0

    def group_share(self, group: str) -> float:
        """Fraction of the bottleneck the group holds at steady state."""
        if self.bottleneck_bw_bps <= 0:
            return 0.0
        return self.group_mean_bps(group) / self.bottleneck_bw_bps

    def cross_group_ratio(self) -> Optional[float]:
        """Steady-state throughput of group a over group b (1.0 = fair)."""
        b = self.group_mean_bps(GROUP_B)
        if b <= 0:
            return None
        return self.group_mean_bps(GROUP_A) / b

    def group_jain(self, group: str) -> Optional[float]:
        """Jain index across the group's per-flow mean rates."""
        means = self.flow_mean_bps.get(group, [])
        return jain_index(means) if means else None


def run_coexistence(config: CoexistenceConfig) -> CoexistenceResult:
    """Run one mixed-deployment cell (groups may run the same scheme —
    the homogeneous cell is the control for the sharing ratio)."""
    sim = Simulator()
    left_hosts = 2 * config.flows_per_group
    net = build_dumbbell(
        sim,
        DumbbellParams(
            left_hosts=left_hosts,
            right_hosts=1,
            host_bw_bps=config.host_bw_bps,
            bottleneck_bw_bps=config.bottleneck_bw_bps,
            buffer_bytes=config.buffer_bytes,
            mtu_payload=config.mtu_payload,
        ),
    )
    groups = {
        GROUP_A: make_algorithm(
            config.algorithm_a, **(config.cc_params_a or {})
        ),
        GROUP_B: make_algorithm(
            config.algorithm_b, **(config.cc_params_b or {})
        ),
    }
    driver = FlowDriver(net, groups, mtu_payload=config.mtu_payload)

    receiver = left_hosts  # the single right-side host
    flows: Dict[str, List] = {GROUP_A: [], GROUP_B: []}
    for i in range(config.flows_per_group):
        flows[GROUP_A].append(
            driver.start_flow(i, receiver, 10 ** 12, at_ns=0, tag=GROUP_A)
        )
        flows[GROUP_B].append(
            driver.start_flow(
                config.flows_per_group + i, receiver, 10 ** 12, at_ns=0,
                tag=GROUP_B,
            )
        )

    group_probes = {
        group: CounterRateProbe(
            sim,
            config.probe_interval_ns,
            (lambda fs: (lambda: sum(f.bytes_received for f in fs)))(members),
        ).start()
        for group, members in flows.items()
    }
    flow_probes = {
        flow.flow_id: CounterRateProbe(
            sim,
            config.probe_interval_ns,
            (lambda f: (lambda: f.bytes_received))(flow),
        ).start()
        for members in flows.values()
        for flow in members
    }
    bottleneck = net.port("bottleneck")
    queue_probe = PortProbe(sim, bottleneck, config.probe_interval_ns).start()

    driver.run(until_ns=config.duration_ns)

    result = CoexistenceResult(
        algorithm_a=config.algorithm_a,
        algorithm_b=config.algorithm_b,
        bottleneck_bw_bps=config.bottleneck_bw_bps,
    )
    result.times_ns = group_probes[GROUP_A].times_ns
    for group, probe in group_probes.items():
        result.group_throughput_bps[group] = probe.rates_bps
    for group, members in flows.items():
        means = []
        for flow in members:
            series = flow_probes[flow.flow_id].rates_bps
            split = len(series) // 2
            tail = series[split:]
            means.append(statistics.fmean(tail) if tail else 0.0)
        result.flow_mean_bps[group] = means
    result.peak_qlen_bytes = bottleneck.max_qlen_bytes
    result.qlen_bytes = queue_probe.qlen_bytes
    settled = queue_probe.qlen_bytes[len(queue_probe.qlen_bytes) // 2 :]
    result.settled_qlen_bytes = statistics.fmean(settled) if settled else 0.0
    result.drops = net.total_drops()
    result.events_processed = sim.events_processed
    return result


@scenario_registry.register
class CoexistenceScenario(Scenario):
    """Two CC schemes sharing a dumbbell bottleneck (§6 deployment)."""

    name = "coexistence"
    description = "two CC algorithms share a dumbbell; per-group shares"
    config_cls = CoexistenceConfig

    def tiny_overrides(self) -> dict:
        return dict(flows_per_group=1, duration_ns=1 * MSEC)

    def build(self, config):
        return lambda: run_coexistence(config)

    def collect(self, config, raw: CoexistenceResult):
        metrics = {
            "group_a_share": raw.group_share(GROUP_A),
            "group_b_share": raw.group_share(GROUP_B),
            "cross_group_ratio": raw.cross_group_ratio(),
            "group_a_jain": raw.group_jain(GROUP_A),
            "group_b_jain": raw.group_jain(GROUP_B),
            "peak_qlen_bytes": raw.peak_qlen_bytes,
            "settled_qlen_bytes": raw.settled_qlen_bytes,
            "drops": raw.drops,
        }
        series = {
            "times_ns": list(raw.times_ns),
            "group_a_throughput_bps": list(
                raw.group_throughput_bps.get(GROUP_A, [])
            ),
            "group_b_throughput_bps": list(
                raw.group_throughput_bps.get(GROUP_B, [])
            ),
            "qlen_bytes": list(raw.qlen_bytes),
        }
        return metrics, series

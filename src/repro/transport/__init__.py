"""Reliable transport: window/pacing senders, cumulative-ACK receivers.

The paper's deployment target is RDMA NICs, whose loss recovery is
go-back-N; this package implements exactly that: cumulative ACKs, no SACK,
window rewind on triple-duplicate ACK or RTO.  Congestion control is
pluggable via :class:`repro.cc.base.CongestionControl`.
"""

from repro.transport.flow import Flow
from repro.transport.sender import Sender
from repro.transport.receiver import Receiver

__all__ = ["Flow", "Receiver", "Sender"]

"""Cumulative-ACK receiver with INT echo and optional DCQCN notification.

Per the paper's feedback design, the receiver copies the INT metadata of
each arriving data packet into the ACK; the ACK is itself INT-enabled so
switches on the reverse path append their telemetry too ("...inserted by
all the switches along the path from sender to receiver and back to
sender").

Out-of-order segments are acknowledged but not buffered (go-back-N
semantics, matching RDMA NIC behaviour) — unless the receiver is
constructed ``reorder_tolerant=True``, in which case out-of-order
segments accumulate in a gap buffer and the cumulative ACK jumps
forward the moment the gap fills.  The driver enables this when the
network's routing policy sprays packets across paths
(:mod:`repro.routing.spray`): spraying reorders constantly, and
go-back-N would turn every reordering into a retransmission storm.

For DCQCN the receiver doubles as the *notification point*: when a
congestion-marked packet arrives it returns a CNP, rate-limited to one per
``cnp_interval_ns`` (50 µs in the DCQCN paper).  Both ``echo_int`` and
``cnp_interval_ns`` are per-flow settings the driver derives from the
deployed scheme's declared :class:`repro.cc.registry.Requirements`, so
flows under different CC algorithms can share one network.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.sim.engine import Simulator
from repro.sim.host import Host
from repro.sim.packet import DATA, Packet, get_pool
from repro.transport.flow import Flow

DCQCN_CNP_INTERVAL_NS = 50_000


class Receiver:
    """Transport endpoint on the flow's destination host."""

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        flow: Flow,
        *,
        echo_int: bool = True,
        stamp_acks: bool = True,
        cnp_interval_ns: Optional[int] = None,
        reorder_tolerant: bool = False,
        on_complete: Optional[Callable[[Flow], None]] = None,
    ):
        self.sim = sim
        self.host = host
        self.flow = flow
        self.echo_int = echo_int
        self.stamp_acks = stamp_acks
        self.cnp_interval_ns = cnp_interval_ns
        self.reorder_tolerant = reorder_tolerant
        self.on_complete = on_complete
        self.rcv_nxt = 0
        self.out_of_order = 0
        #: gap buffer (reorder-tolerant mode): seq -> end_seq of a
        #: buffered out-of-order segment.  Segment boundaries are
        #: MTU-aligned and deterministic, so keys line up exactly when
        #: the gap fills.
        self._ooo: dict = {}
        self._last_cnp_ns: Optional[int] = None
        self._pool = get_pool(sim)

    def start(self) -> None:
        """Register with the destination host."""
        self.host.register(self.flow.flow_id, self)

    def on_packet(self, pkt: Packet) -> None:
        """Host-side dispatch entry: data segments arrive here."""
        if pkt.kind != DATA:
            return
        if pkt.seq == self.rcv_nxt:
            self.rcv_nxt = pkt.end_seq
            # Reorder-tolerant mode: the gap just filled — drain every
            # buffered segment that now sits on the in-order frontier, so
            # the cumulative ACK jumps past everything already held.
            while self._ooo:
                end = self._ooo.pop(self.rcv_nxt, None)
                if end is None:
                    break
                self.rcv_nxt = end
            self.flow.bytes_received = self.rcv_nxt
        elif pkt.seq > self.rcv_nxt:
            self.out_of_order += 1
            if self.reorder_tolerant:
                # Buffer the segment; duplicates (go-back-N overlap) may
                # only ever extend a recorded range, never shrink it.
                prev = self._ooo.get(pkt.seq)
                if prev is None or pkt.end_seq > prev:
                    self._ooo[pkt.seq] = pkt.end_seq
            # else go-back-N: the gap forces the sender to rewind; do not
            # buffer.

        self._maybe_send_cnp(pkt)

        pool = self._pool
        ack = pool.ack(pkt, self.rcv_nxt, now=self.sim.now, echo_int=self.echo_int)
        if self.stamp_acks and self.echo_int and ack.int_hops is not None:
            ack.int_enabled = True
        # The data packet is consumed here.  With INT echo its hop list's
        # ownership just moved into the ACK (shared by reference), so only
        # the shell is recycled; without echo the records die with it.
        if self.echo_int:
            pool.release(pkt)
        else:
            pool.release_with_hops(pkt)
        self.host.send(ack)

        if self.rcv_nxt >= self.flow.size_bytes and self.flow.finish_ns is None:
            self.flow.finish_ns = self.sim.now
            if self.on_complete is not None:
                self.on_complete(self.flow)

    def _maybe_send_cnp(self, pkt: Packet) -> None:
        if self.cnp_interval_ns is None or not pkt.ecn_marked:
            return
        now = self.sim.now
        if self._last_cnp_ns is None or now - self._last_cnp_ns >= self.cnp_interval_ns:
            self._last_cnp_ns = now
            self.host.send(
                self._pool.cnp(self.flow.flow_id, self.flow.dst, self.flow.src)
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Receiver(flow={self.flow.flow_id}, rcv_nxt={self.rcv_nxt})"

"""Window-based paced sender with go-back-N loss recovery.

Senders emit MTU-sized segments subject to two independent gates, matching
the NIC model the paper assumes:

* **window gate** — bytes in flight must stay below the congestion window;
* **pacing gate** — segments leave at most at ``pacing_rate_bps``.

Congestion control is a pluggable per-flow object (see
:mod:`repro.cc.base`) that adjusts ``cwnd`` and ``pacing_rate_bps`` on every
ACK.  Per the paper, flows start at line rate with
``cwnd_init = HostBw * tau`` so a new flow discovers the bottleneck state
within its first RTT.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.cc.base import AckFeedback
from repro.sim.engine import Event, Simulator
from repro.sim.host import Host
from repro.sim.packet import ACK, CNP, Packet
from repro.transport.flow import Flow
from repro.units import MSEC, tx_time_ns

DEFAULT_MTU_PAYLOAD = 1000
DUP_ACK_THRESHOLD = 3


class Sender:
    """Transport endpoint on the flow's source host."""

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        flow: Flow,
        cc,
        *,
        base_rtt_ns: int,
        host_bw_bps: Optional[float] = None,
        mtu_payload: int = DEFAULT_MTU_PAYLOAD,
        int_enabled: bool = False,
        ecn_capable: bool = False,
        priority: int = 0,
        rto_ns: Optional[int] = None,
        on_complete: Optional[Callable[[Flow], None]] = None,
    ):
        self.sim = sim
        self.host = host
        self.flow = flow
        self.cc = cc
        self.base_rtt_ns = base_rtt_ns
        self.host_bw_bps = host_bw_bps if host_bw_bps is not None else host.nic.rate_bps
        self.mtu_payload = mtu_payload
        self.int_enabled = int_enabled
        self.ecn_capable = ecn_capable
        self.priority = priority
        self.rto_ns = rto_ns if rto_ns is not None else max(10 * base_rtt_ns, 4 * MSEC)
        self.on_complete = on_complete

        # Congestion state (owned by the CC object after on_start).
        self.cwnd: float = float(mtu_payload)
        self.pacing_rate_bps: float = self.host_bw_bps

        # Reliability state.
        self.snd_nxt = 0
        self.snd_una = 0
        self.dup_acks = 0
        self.dup_ack_threshold = DUP_ACK_THRESHOLD
        # Go-back-N retransmits data the receiver may already have; the
        # duplicate ACKs it elicits must not trigger another rewind, or a
        # single reordering event becomes a permanent retransmission storm.
        # Recovery ends when snd_una passes the rewind-time snd_nxt.
        self._recover_high = 0
        self.last_rtt_ns: Optional[int] = None
        self.done = False

        self._next_pace_ns = 0
        self._pace_event: Optional[Event] = None
        self._rto_event: Optional[Event] = None

    # ------------------------------------------------------------------
    @property
    def inflight(self) -> int:
        """Unacknowledged bytes."""
        return self.snd_nxt - self.snd_una

    def start(self) -> None:
        """Register with the host and begin transmitting."""
        self.host.register(self.flow.flow_id, self)
        self.flow.start_ns = self.sim.now
        self.cc.on_start(self)
        self._try_send()

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------
    def _send_limit(self) -> int:
        """Highest byte offset the sender may currently transmit up to.

        The base transport may send the whole flow (window permitting);
        receiver-driven transports (HOMA) override this with the granted
        prefix.
        """
        return self.flow.size_bytes

    def _try_send(self) -> None:
        if self.done:
            return
        now = self.sim.now
        size = self._send_limit()
        while self.snd_nxt < size and self.inflight < self.cwnd:
            if now < self._next_pace_ns:
                self._arm_pacer()
                return
            payload = min(self.mtu_payload, size - self.snd_nxt)
            pkt = Packet.data(
                self.flow.flow_id,
                self.flow.src,
                self.flow.dst,
                self.snd_nxt,
                payload,
                priority=self.priority,
                int_enabled=self.int_enabled,
                ecn_capable=self.ecn_capable,
                ts_tx=now,
            )
            self.host.send(pkt)
            self.snd_nxt += payload
            gap = tx_time_ns(pkt.size, self.pacing_rate_bps)
            base = self._next_pace_ns if self._next_pace_ns > now else now
            self._next_pace_ns = base + gap
            if self._rto_event is None:
                self._arm_rto()

    def _arm_pacer(self) -> None:
        if self._pace_event is None or self._pace_event.cancelled:
            self._pace_event = self.sim.at(self._next_pace_ns, self._pace_fire)

    def _pace_fire(self) -> None:
        self._pace_event = None
        self._try_send()

    # ------------------------------------------------------------------
    # Acknowledgments
    # ------------------------------------------------------------------
    def on_packet(self, pkt: Packet) -> None:
        """Host-side dispatch entry: ACKs and CNPs arrive here."""
        if pkt.kind == ACK:
            self._on_ack(pkt)
        elif pkt.kind == CNP:
            self.cc.on_cnp(self)

    def _on_ack(self, ack: Packet) -> None:
        if self.done:
            return
        self.last_rtt_ns = self.sim.now - ack.ts_echo
        if ack.ack_seq > self.snd_una:
            newly_acked = ack.ack_seq - self.snd_una
            self.snd_una = ack.ack_seq
            self.dup_acks = 0
            self._arm_rto(restart=True)
            self.cc.on_ack(self, self._feedback(ack, newly_acked))
            if self.snd_una >= self.flow.size_bytes:
                self._complete()
            else:
                self._try_send()
        else:
            self.dup_acks += 1
            self.cc.on_ack(self, self._feedback(ack, 0))
            in_recovery = self.snd_una < self._recover_high
            if self.dup_acks >= self.dup_ack_threshold and not in_recovery:
                self._recover_high = self.snd_nxt
                self._go_back_n(loss_signal=True)
            else:
                self._try_send()

    def _feedback(self, ack: Packet, newly_acked: int) -> AckFeedback:
        """The typed per-ACK view handed to the CC law (see
        :class:`repro.cc.base.AckFeedback` for the contract)."""
        return AckFeedback(
            ack_seq=ack.ack_seq,
            acked_seq=ack.acked_seq,
            newly_acked_bytes=newly_acked,
            is_dup=newly_acked == 0,
            rtt_ns=self.last_rtt_ns,
            now_ns=self.sim.now,
            ecn_marked=ack.ecn_marked,
            int_hops=ack.int_hops,
            sent_high=self.snd_nxt,
        )

    # ------------------------------------------------------------------
    # Loss recovery (go-back-N, as on RDMA NICs)
    # ------------------------------------------------------------------
    def _go_back_n(self, loss_signal: bool) -> None:
        self.flow.retransmissions += 1
        self.dup_acks = 0
        self.snd_nxt = self.snd_una
        self._next_pace_ns = self.sim.now
        if loss_signal:
            self.cc.on_loss(self)
        self._arm_rto(restart=True)
        self._try_send()

    def _arm_rto(self, restart: bool = False) -> None:
        if restart and self._rto_event is not None:
            self._rto_event.cancel()
            self._rto_event = None
        if self._rto_event is None or self._rto_event.cancelled:
            self._rto_event = self.sim.after(self.rto_ns, self._on_rto)

    def _on_rto(self) -> None:
        self._rto_event = None
        if self.done or self.inflight == 0:
            return
        self.cc.on_timeout(self)
        self._go_back_n(loss_signal=False)

    # ------------------------------------------------------------------
    def _complete(self) -> None:
        self.done = True
        self.flow.sender_done_ns = self.sim.now
        if self._rto_event is not None:
            self._rto_event.cancel()
            self._rto_event = None
        if self._pace_event is not None:
            self._pace_event.cancel()
            self._pace_event = None
        if self.on_complete is not None:
            self.on_complete(self.flow)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Sender(flow={self.flow.flow_id}, una={self.snd_una}, "
            f"nxt={self.snd_nxt}, cwnd={self.cwnd:.0f})"
        )

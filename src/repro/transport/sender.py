"""Window-based paced sender with go-back-N loss recovery.

Senders emit MTU-sized segments subject to two independent gates, matching
the NIC model the paper assumes:

* **window gate** — bytes in flight must stay below the congestion window;
* **pacing gate** — segments leave at most at ``pacing_rate_bps``.

Congestion control is a pluggable per-flow object (see
:mod:`repro.cc.base`) that adjusts ``cwnd`` and ``pacing_rate_bps`` on every
ACK.  Per the paper, flows start at line rate with
``cwnd_init = HostBw * tau`` so a new flow discovers the bottleneck state
within its first RTT.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.cc.base import AckFeedback
from repro.sim.engine import Simulator
from repro.sim.host import Host
from repro.sim.packet import ACK, CNP, Packet, get_pool
from repro.transport.flow import Flow
from repro.units import MSEC, tx_time_ns

DEFAULT_MTU_PAYLOAD = 1000
DUP_ACK_THRESHOLD = 3


class Sender:
    """Transport endpoint on the flow's source host."""

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        flow: Flow,
        cc,
        *,
        base_rtt_ns: int,
        host_bw_bps: Optional[float] = None,
        mtu_payload: int = DEFAULT_MTU_PAYLOAD,
        int_enabled: bool = False,
        ecn_capable: bool = False,
        priority: int = 0,
        rto_ns: Optional[int] = None,
        dup_ack_threshold: Optional[int] = None,
        on_complete: Optional[Callable[[Flow], None]] = None,
    ):
        self.sim = sim
        self.host = host
        self.flow = flow
        self.cc = cc
        self.base_rtt_ns = base_rtt_ns
        self.host_bw_bps = host_bw_bps if host_bw_bps is not None else host.nic.rate_bps
        self.mtu_payload = mtu_payload
        self.int_enabled = int_enabled
        self.ecn_capable = ecn_capable
        self.priority = priority
        self.rto_ns = rto_ns if rto_ns is not None else max(10 * base_rtt_ns, 4 * MSEC)
        self.on_complete = on_complete

        # Congestion state (owned by the CC object after on_start).
        self.cwnd: float = float(mtu_payload)
        self.pacing_rate_bps: float = self.host_bw_bps

        # Reliability state.
        self.snd_nxt = 0
        self.snd_una = 0
        self.dup_acks = 0
        # The driver raises this for flows crossing a packet-spraying
        # network: under spray, a burst of duplicate ACKs is routine
        # reordering, not loss, and the go-back-N rewind must wait for a
        # persistent gap (the RTO remains the loss backstop).
        self.dup_ack_threshold = (
            dup_ack_threshold if dup_ack_threshold is not None else DUP_ACK_THRESHOLD
        )
        # Go-back-N retransmits data the receiver may already have; the
        # duplicate ACKs it elicits must not trigger another rewind, or a
        # single reordering event becomes a permanent retransmission storm.
        # Recovery ends when snd_una passes the rewind-time snd_nxt.
        self._recover_high = 0
        self.last_rtt_ns: Optional[int] = None
        self.done = False

        self._next_pace_ns = 0
        # Pacing uses a fast-path event guarded by a flag (a stale fire
        # after completion is a no-op); the RTO is a *lazy deadline*
        # timer: ACKs just move the deadline, and the single outstanding
        # heap event re-arms itself when it wakes early.  Both avoid the
        # per-ACK cancel + re-push + Event-allocation churn of a naive
        # cancellable timer.
        self._pace_armed = False
        self._rto_deadline = 0  # absolute ns; 0 = disarmed
        self._rto_outstanding = False  # a wake event sits in the heap
        self._pool = get_pool(sim)
        # One reusable AckFeedback view per sender: on_ack receives a
        # mutable snapshot valid only for the duration of the call (CC
        # laws copy what they keep — see AckFeedback's docstring).
        self._feedback_view = AckFeedback(ack_seq=0)

    # ------------------------------------------------------------------
    @property
    def inflight(self) -> int:
        """Unacknowledged bytes."""
        return self.snd_nxt - self.snd_una

    def start(self) -> None:
        """Register with the host and begin transmitting."""
        self.host.register(self.flow.flow_id, self)
        self.flow.start_ns = self.sim.now
        self.cc.on_start(self)
        self._try_send()

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------
    def _send_limit(self) -> int:
        """Highest byte offset the sender may currently transmit up to.

        The base transport may send the whole flow (window permitting);
        receiver-driven transports (HOMA) override this with the granted
        prefix.
        """
        return self.flow.size_bytes

    def _try_send(self) -> None:
        if self.done:
            return
        now = self.sim.now
        size = self._send_limit()
        while self.snd_nxt < size and self.inflight < self.cwnd:
            if now < self._next_pace_ns:
                self._arm_pacer()
                return
            payload = min(self.mtu_payload, size - self.snd_nxt)
            pkt = self._pool.data(
                self.flow.flow_id,
                self.flow.src,
                self.flow.dst,
                self.snd_nxt,
                payload,
                priority=self.priority,
                int_enabled=self.int_enabled,
                ecn_capable=self.ecn_capable,
                ts_tx=now,
            )
            self.host.send(pkt)
            self.snd_nxt += payload
            gap = tx_time_ns(pkt.size, self.pacing_rate_bps)
            base = self._next_pace_ns if self._next_pace_ns > now else now
            self._next_pace_ns = base + gap
            if self._rto_deadline == 0:
                self._arm_rto()

    def _arm_pacer(self) -> None:
        if not self._pace_armed:
            self._pace_armed = True
            self.sim.at(self._next_pace_ns, self._pace_fire)

    def _pace_fire(self) -> None:
        self._pace_armed = False
        self._try_send()  # no-op when the flow completed meanwhile

    # ------------------------------------------------------------------
    # Acknowledgments
    # ------------------------------------------------------------------
    def on_packet(self, pkt: Packet) -> None:
        """Host-side dispatch entry: ACKs and CNPs arrive here.

        The packet is consumed: after dispatch its shell — and, for ACKs,
        its INT records — return to the simulator's pool.
        """
        if pkt.kind == ACK:
            self._on_ack(pkt)
            self._pool.release_with_hops(pkt)
        elif pkt.kind == CNP:
            self.cc.on_cnp(self)
            self._pool.release(pkt)

    def _on_ack(self, ack: Packet) -> None:
        if self.done:
            return
        self.last_rtt_ns = self.sim.now - ack.ts_echo
        if ack.ack_seq > self.snd_una:
            newly_acked = ack.ack_seq - self.snd_una
            self.snd_una = ack.ack_seq
            self.dup_acks = 0
            self._arm_rto(restart=True)
            self.cc.on_ack(self, self._feedback(ack, newly_acked))
            if self.snd_una >= self.flow.size_bytes:
                self._complete()
            else:
                self._try_send()
        else:
            self.dup_acks += 1
            self.cc.on_ack(self, self._feedback(ack, 0))
            in_recovery = self.snd_una < self._recover_high
            if self.dup_acks >= self.dup_ack_threshold and not in_recovery:
                self._recover_high = self.snd_nxt
                self._go_back_n(loss_signal=True)
            else:
                self._try_send()

    def _feedback(self, ack: Packet, newly_acked: int) -> AckFeedback:
        """The typed per-ACK view handed to the CC law (see
        :class:`repro.cc.base.AckFeedback` for the contract).  The view is
        a reused per-sender instance — valid only during the ``on_ack``
        call it is passed to."""
        view = self._feedback_view
        view.ack_seq = ack.ack_seq
        view.acked_seq = ack.acked_seq
        view.newly_acked_bytes = newly_acked
        view.is_dup = newly_acked == 0
        view.rtt_ns = self.last_rtt_ns
        view.now_ns = self.sim.now
        view.ecn_marked = ack.ecn_marked
        view.int_hops = ack.int_hops
        view.sent_high = self.snd_nxt
        return view

    # ------------------------------------------------------------------
    # Loss recovery (go-back-N, as on RDMA NICs)
    # ------------------------------------------------------------------
    def _go_back_n(self, loss_signal: bool) -> None:
        self.flow.retransmissions += 1
        self.dup_acks = 0
        self.snd_nxt = self.snd_una
        self._next_pace_ns = self.sim.now
        if loss_signal:
            self.cc.on_loss(self)
        self._arm_rto(restart=True)
        self._try_send()

    def _arm_rto(self, restart: bool = False) -> None:
        # Lazy deadline: restarting just moves the deadline forward; the
        # one outstanding wake event (at the *old* deadline) re-arms
        # itself on wake-up instead of being cancelled and re-pushed on
        # every ACK.
        if restart or self._rto_deadline == 0:
            self._rto_deadline = self.sim.now + self.rto_ns
            if not self._rto_outstanding:
                self._rto_outstanding = True
                self.sim.at(self._rto_deadline, self._rto_fire)

    def _rto_fire(self) -> None:
        self._rto_outstanding = False
        deadline = self._rto_deadline
        if self.done or deadline == 0:
            return
        now = self.sim.now
        if now < deadline:
            # The deadline moved while we slept — sleep again.
            self._rto_outstanding = True
            self.sim.at(deadline, self._rto_fire)
            return
        self._rto_deadline = 0
        if self.inflight == 0:
            return
        self.cc.on_timeout(self)
        self._go_back_n(loss_signal=False)

    # ------------------------------------------------------------------
    def _complete(self) -> None:
        self.done = True
        self.flow.sender_done_ns = self.sim.now
        # Outstanding pace/RTO wake events fire as no-ops (done is set);
        # disarming the deadline keeps _rto_fire from re-arming.
        self._rto_deadline = 0
        if self.on_complete is not None:
            self.on_complete(self.flow)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Sender(flow={self.flow.flow_id}, una={self.snd_una}, "
            f"nxt={self.snd_nxt}, cwnd={self.cwnd:.0f})"
        )

"""Flow bookkeeping shared by senders, receivers, and the analysis layer."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.units import BITS_PER_BYTE, SEC


@dataclass
class Flow:
    """One transfer of ``size_bytes`` from host ``src`` to host ``dst``.

    ``finish_ns`` is set by the receiver when the last in-order byte
    arrives — flow completion time is measured receiver-side, as in the
    paper's FCT metrics.
    """

    flow_id: int
    src: int
    dst: int
    size_bytes: int
    start_ns: int = 0
    finish_ns: Optional[int] = None
    sender_done_ns: Optional[int] = None
    bytes_received: int = 0
    retransmissions: int = 0
    tag: str = ""

    @property
    def completed(self) -> bool:
        """True once all bytes were received in order."""
        return self.finish_ns is not None

    @property
    def fct_ns(self) -> int:
        """Flow completion time (receiver-side)."""
        if self.finish_ns is None:
            raise ValueError(f"flow {self.flow_id} has not completed")
        return self.finish_ns - self.start_ns

    def ideal_fct_ns(self, base_rtt_ns: int, bottleneck_bps: float) -> int:
        """Best-case FCT: one propagation RTT plus pure serialization.

        Used as the denominator of FCT *slowdown*, the paper's headline
        metric (Figs. 6 and 7).
        """
        serialization = int(self.size_bytes * BITS_PER_BYTE * SEC / bottleneck_bps)
        return base_rtt_ns + serialization

    def slowdown(self, base_rtt_ns: int, bottleneck_bps: float) -> float:
        """FCT normalized by the ideal FCT (>= 1 for a correct simulation)."""
        return self.fct_ns / self.ideal_fct_ns(base_rtt_ns, bottleneck_bps)

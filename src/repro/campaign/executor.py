"""Pluggable cell executors; the local subprocess worker pool.

The orchestrator speaks to an :class:`Executor` — dispatch a cell,
collect result/exit events, reclaim a worker — and never to processes
directly, so an ssh or k8s backend is one subclass away.  The local
implementation fans cells across long-lived ``python -m
repro.campaign.worker`` subprocesses multiplexed with ``selectors``;
simulations are single-threaded pure Python, so worker processes
parallelize cells perfectly.

Every blocking operation in this module carries an explicit timeout
(``docs/INVARIANTS.md#subprocess-timeout-discipline``, enforced by the
``subprocess-timeout`` lint rule): a worker that stops responding must
always be reclaimable by the orchestrator's clock, never waited on
forever.
"""

from __future__ import annotations

import json
import os
import selectors
import subprocess
import sys
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

#: cap on the retained per-worker stderr tail (crash provenance)
_STDERR_TAIL_BYTES = 4096


@dataclass
class WorkerEvent:
    """One observation from the pool: a cell result or a worker death."""

    kind: str  # "result" | "exit"
    worker_id: int
    #: the task the worker was running (None for an idle death)
    task_id: Optional[int] = None
    #: for "result": the worker's reply payload (ok/result/error)
    payload: Optional[Dict[str, Any]] = None
    #: for "exit": the process return code (None if unknowable)
    returncode: Optional[int] = None
    #: for "exit": the last stderr bytes, decoded (error provenance)
    stderr_tail: str = ""


class Executor:
    """Interface the orchestrator drives; implement one per backend."""

    def ensure_workers(self, count: int) -> int:
        """Spawn workers until ``count`` are alive; returns live total."""
        raise NotImplementedError

    def idle_worker_ids(self) -> List[int]:
        """Workers currently without an in-flight task."""
        raise NotImplementedError

    def submit(self, task: Dict[str, Any]) -> Optional[int]:
        """Dispatch to an idle worker; returns its id (None if none idle)."""
        raise NotImplementedError

    def events(self, timeout_s: float) -> List[WorkerEvent]:
        """Block up to ``timeout_s`` for results/exits (possibly empty)."""
        raise NotImplementedError

    def kill_worker(self, worker_id: int) -> Optional[int]:
        """Forcibly reclaim a worker; returns its in-flight task id."""
        raise NotImplementedError

    def shutdown(self) -> None:
        """Stop every worker (graceful, then forceful)."""
        raise NotImplementedError


@dataclass
class _Worker:
    proc: subprocess.Popen
    worker_id: int
    task_id: Optional[int] = None
    out_buf: bytes = b""
    err_tail: bytes = b""
    eof: bool = False

    def stderr_text(self) -> str:
        return self.err_tail.decode("utf-8", errors="replace")


class LocalPoolExecutor(Executor):
    """A pool of local worker subprocesses (stdin/stdout JSON lines)."""

    def __init__(self, *, grace_s: float = 5.0):
        self.grace_s = grace_s
        self._workers: Dict[int, _Worker] = {}
        self._next_id = 1
        self._selector = selectors.DefaultSelector()
        #: events discovered outside :meth:`events` (e.g. a submit that
        #: hit a dead pipe), delivered on the next poll
        self._pending: List[WorkerEvent] = []

    # -- spawning ------------------------------------------------------
    def _worker_env(self) -> Dict[str, str]:
        import repro

        src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        # The worker must resolve the same `repro` package as the
        # orchestrator even when it was imported via sys.path rather
        # than an installed distribution or an exported PYTHONPATH.
        env = dict(os.environ)  # lint: disable=env-read
        existing = env.get("PYTHONPATH", "")
        paths = existing.split(os.pathsep) if existing else []
        if src_dir not in paths:
            env["PYTHONPATH"] = os.pathsep.join([src_dir] + paths)
        return env

    def _spawn(self) -> _Worker:
        proc = subprocess.Popen(
            [sys.executable, "-u", "-m", "repro.campaign.worker"],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            bufsize=0,
            env=self._worker_env(),
        )
        worker = _Worker(proc=proc, worker_id=self._next_id)
        self._next_id += 1
        self._workers[worker.worker_id] = worker
        # Non-blocking reads: _reap may need to drain stderr from a
        # still-live worker, and must never block on an empty pipe.
        os.set_blocking(proc.stdout.fileno(), False)
        os.set_blocking(proc.stderr.fileno(), False)
        self._selector.register(proc.stdout, selectors.EVENT_READ, (worker, "out"))
        self._selector.register(proc.stderr, selectors.EVENT_READ, (worker, "err"))
        return worker

    def ensure_workers(self, count: int) -> int:
        while len(self._workers) < count:
            self._spawn()
        return len(self._workers)

    def idle_worker_ids(self) -> List[int]:
        return sorted(
            w.worker_id
            for w in self._workers.values()
            if w.task_id is None and not w.eof
        )

    # -- dispatch ------------------------------------------------------
    def submit(self, task: Dict[str, Any]) -> Optional[int]:
        idle = self.idle_worker_ids()
        if not idle:
            return None
        worker = self._workers[idle[0]]
        line = (json.dumps(task) + "\n").encode()
        try:
            worker.proc.stdin.write(line)
            worker.proc.stdin.flush()
        except OSError:
            # Dead pipe: surface the death via the event stream and let
            # the orchestrator re-dispatch elsewhere.
            event = self._reap(worker)
            if event is not None:
                self._pending.append(event)
            return None
        worker.task_id = task["id"]
        return worker.worker_id

    # -- event collection ----------------------------------------------
    def events(self, timeout_s: float) -> List[WorkerEvent]:
        out: List[WorkerEvent] = []
        out.extend(self._pending)
        self._pending = []
        for key, _mask in self._selector.select(timeout=max(0.0, timeout_s)):
            worker, stream = key.data
            try:
                chunk = os.read(key.fileobj.fileno(), 65536)
            except OSError:
                chunk = b""
            if stream == "err":
                worker.err_tail = (worker.err_tail + chunk)[-_STDERR_TAIL_BYTES:]
                if not chunk:
                    self._unregister(worker.proc.stderr)
                continue
            if not chunk:
                worker.eof = True
                self._unregister(worker.proc.stdout)
                out.append(self._reap(worker))
                continue
            worker.out_buf += chunk
            while b"\n" in worker.out_buf:
                line, worker.out_buf = worker.out_buf.split(b"\n", 1)
                event = self._parse_result(worker, line)
                if event is not None:
                    out.append(event)
        return [e for e in out if e is not None]

    def _parse_result(
        self, worker: _Worker, line: bytes
    ) -> Optional[WorkerEvent]:
        try:
            payload = json.loads(line.decode("utf-8", errors="replace"))
        except ValueError:
            return None
        task_id = payload.get("id", worker.task_id)
        worker.task_id = None  # the worker is idle again
        return WorkerEvent(
            kind="result",
            worker_id=worker.worker_id,
            task_id=task_id,
            payload=payload,
        )

    # -- reclamation ---------------------------------------------------
    def _unregister(self, fileobj) -> None:
        try:
            self._selector.unregister(fileobj)
        except (KeyError, ValueError):
            pass

    def _reap(self, worker: _Worker) -> Optional[WorkerEvent]:
        """Remove a dead/dying worker; returns its exit event (once)."""
        if worker.worker_id not in self._workers:
            return None
        del self._workers[worker.worker_id]
        self._unregister(worker.proc.stdout)
        self._unregister(worker.proc.stderr)
        # Drain any last stderr for provenance (non-blocking fd).
        try:
            chunk = os.read(worker.proc.stderr.fileno(), _STDERR_TAIL_BYTES)
            worker.err_tail = (worker.err_tail + chunk)[-_STDERR_TAIL_BYTES:]
        except (OSError, ValueError):
            pass
        if worker.proc.poll() is None:
            worker.proc.terminate()
        try:
            worker.proc.wait(timeout=self.grace_s)
        except subprocess.TimeoutExpired:
            worker.proc.kill()
            try:
                worker.proc.wait(timeout=self.grace_s)
            except subprocess.TimeoutExpired:
                pass
        self._close_pipes(worker)
        return WorkerEvent(
            kind="exit",
            worker_id=worker.worker_id,
            task_id=worker.task_id,
            returncode=worker.proc.returncode,
            stderr_tail=worker.stderr_text(),
        )

    def kill_worker(self, worker_id: int) -> Optional[int]:
        worker = self._workers.get(worker_id)
        if worker is None:
            return None
        task_id = worker.task_id
        worker.proc.terminate()
        try:
            worker.proc.wait(timeout=self.grace_s)
        except subprocess.TimeoutExpired:
            worker.proc.kill()
            try:
                worker.proc.wait(timeout=self.grace_s)
            except subprocess.TimeoutExpired:
                pass
        del self._workers[worker_id]
        self._unregister(worker.proc.stdout)
        self._unregister(worker.proc.stderr)
        self._close_pipes(worker)
        return task_id

    @staticmethod
    def _close_pipes(worker: _Worker) -> None:
        for pipe in (worker.proc.stdin, worker.proc.stdout, worker.proc.stderr):
            try:
                if pipe is not None:
                    pipe.close()
            except OSError:
                pass

    def shutdown(self) -> None:
        for worker in list(self._workers.values()):
            try:
                worker.proc.stdin.write(b'{"op": "shutdown"}\n')
                worker.proc.stdin.flush()
                worker.proc.stdin.close()
            except OSError:
                pass
        for worker in list(self._workers.values()):
            try:
                worker.proc.wait(timeout=self.grace_s)
            except subprocess.TimeoutExpired:
                worker.proc.kill()
                try:
                    worker.proc.wait(timeout=self.grace_s)
                except subprocess.TimeoutExpired:
                    pass
            self._unregister(worker.proc.stdout)
            self._unregister(worker.proc.stderr)
            self._close_pipes(worker)
        self._workers.clear()
        self._selector.close()
        # A closed selector cannot be reused; a fresh one keeps the
        # executor restartable (tests reuse instances).
        self._selector = selectors.DefaultSelector()

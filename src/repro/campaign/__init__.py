"""Fault-tolerant campaign orchestration for million-cell sweeps.

``python -m repro campaign manifest.json`` drives every grid cell to
completion across a subprocess worker pool — retries, per-cell
timeouts, worker respawn, straggler re-dispatch — journaling progress
so a killed campaign resumes instead of restarting.  See
``docs/INVARIANTS.md`` (#journal-contract, #atomic-persistence,
#subprocess-timeout-discipline) for the contracts this package keeps.
"""

from repro.campaign.executor import Executor, LocalPoolExecutor, WorkerEvent
from repro.campaign.journal import Journal, failures_path, journal_path
from repro.campaign.manifest import (
    CampaignManifest,
    LimitsPolicy,
    load_manifest,
    manifest_from_dict,
)
from repro.campaign.orchestrator import (
    Campaign,
    CampaignError,
    CampaignReport,
    run_campaign,
)
from repro.campaign.retry import RetryPolicy

__all__ = [
    "Campaign",
    "CampaignError",
    "CampaignManifest",
    "CampaignReport",
    "Executor",
    "Journal",
    "LimitsPolicy",
    "LocalPoolExecutor",
    "RetryPolicy",
    "WorkerEvent",
    "failures_path",
    "journal_path",
    "load_manifest",
    "manifest_from_dict",
    "run_campaign",
]

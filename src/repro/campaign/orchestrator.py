"""The campaign orchestrator: drive every grid cell to completion.

``Campaign.run()`` expands the manifest's grid, consults the *merged*
cache (final output + every shard file + the journal), and dispatches
only the missing/failed cells across an :class:`Executor` worker pool —
with per-cell wall-clock timeouts, bounded retries under exponential
backoff with seeded jitter, worker-crash detection and respawn, and
straggler re-dispatch (speculative duplicates, first result wins).

Failure model, end to end:

* a cell *raises*      -> the worker reports it; retry with backoff;
* a cell *hangs*       -> the wall-clock timeout kills the worker;
  retry; the worker is respawned;
* a worker *dies*      -> EOF on its pipes surfaces as a crash; the cell
  retries; the worker is respawned;
* retries exhaust      -> the cell goes terminal as ``failed``/
  ``timeout`` with full error provenance — it still appears in the
  merged output, so completeness is checkable, and it re-runs on the
  next invocation;
* the orchestrator dies (`kill -9`) -> the journal has every completed
  cell; re-invoking the same manifest resumes, re-running only
  missing/failed cells;
* SIGINT               -> drain (stop dispatching, let running cells
  finish under their timeouts), persist, print the resume command; a
  second SIGINT reclaims the workers immediately.

At the end the orchestrator auto-merges the shard files
(journal-aware), verifies the merged cell set matches the expanded grid
exactly, writes the merged output and a failure report atomically, and
deletes the journal — the shard files and merged document then own the
results.
"""

from __future__ import annotations

import heapq
import json
import os
import signal
import sys
import threading
import time
import warnings
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set

from repro.analysis.results import ResultSet, failure_report, merge_campaign
from repro.campaign import journal as journal_mod
from repro.campaign.executor import Executor, LocalPoolExecutor, WorkerEvent
from repro.campaign.manifest import CampaignManifest, shard_of
from repro.campaign.progress import ProgressTracker
from repro.campaign.retry import RetryPolicy
from repro.persist import atomic_write_json, load_json_or_none
from repro.scenarios.base import config_to_jsonable
from repro.scenarios.registry import get_scenario
from repro.scenarios.sweep import (
    cell_key,
    cell_overrides,
    expand_cells,
    shard_results_path,
    validate_cached_cell,
)

#: terminal cell states
_TERMINAL = ("ok", "failed", "timeout")

#: event-loop poll cap: keeps timeout/straggler checks and progress
#: output fresh without busy-waiting
_POLL_CAP_S = 0.5


class CampaignError(RuntimeError):
    """A campaign-level invariant violation (e.g. an incomplete merge)."""


@dataclass
class CampaignCell:
    """One grid cell's lifecycle state inside the orchestrator."""

    index: int
    shard: int  # 1-based
    params: Dict[str, Any]
    overrides: Dict[str, Any]
    key: str
    status: str = "pending"  # pending | running | ok | failed | timeout
    attempts: int = 0
    error: Optional[Dict[str, Any]] = None
    #: the persisted sweep-format cell dict, once terminal
    doc: Optional[Dict[str, Any]] = None
    duration_s: Optional[float] = None
    source: str = "fresh"  # fresh | cache | journal
    #: live task ids (>1 while a speculative duplicate runs)
    live_tasks: Set[int] = field(default_factory=set)

    @property
    def terminal(self) -> bool:
        return self.status in _TERMINAL


@dataclass
class CampaignReport:
    """What one ``Campaign.run()`` did, for callers and the CLI."""

    total_cells: int = 0
    ok: int = 0
    failed: int = 0
    executed: int = 0  # fresh executions (cells dispatched this run)
    retried: int = 0  # retry dispatches beyond first attempts
    reused_cache: int = 0
    recovered_journal: int = 0
    stale_dropped: int = 0
    workers_respawned: int = 0
    interrupted: bool = False
    merged: bool = False
    out_path: str = ""
    failures_path: Optional[str] = None

    @property
    def complete(self) -> bool:
        return self.merged and self.failed == 0 and not self.interrupted


class Campaign:
    """One orchestrated run of a :class:`CampaignManifest`."""

    def __init__(
        self,
        manifest: CampaignManifest,
        *,
        workers: Optional[int] = None,
        out: Optional[str] = None,
        force: bool = False,
        quiet: bool = False,
        executor: Optional[Executor] = None,
        manifest_path: Optional[str] = None,
    ):
        self.manifest = manifest
        self.workers = workers if workers is not None else manifest.workers
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        self.force = force
        self.quiet = quiet
        self.manifest_path = manifest_path
        self.out_path = out or manifest.out_path()
        self.executor = executor or LocalPoolExecutor(
            grace_s=manifest.limits.worker_grace_s
        )
        self.policy = RetryPolicy(manifest.limits, seed=manifest.seed)
        self.report = CampaignReport(out_path=self.out_path)
        self._interrupts = 0
        # runtime state (populated by run())
        self.cells: List[CampaignCell] = []
        self._journal: Optional[journal_mod.Journal] = None
        self._progress: Optional[ProgressTracker] = None

    # -- paths ---------------------------------------------------------
    def shard_path(self, shard: int) -> str:
        return shard_results_path(
            self.out_path, (shard, self.manifest.shards)
        )

    def journal_file(self) -> str:
        return journal_mod.journal_path(self.out_path)

    def failures_file(self) -> str:
        return journal_mod.failures_path(self.out_path)

    def resume_command(self) -> str:
        target = self.manifest_path or "<manifest.json>"
        return f"python -m repro campaign {target}"

    # -- setup ---------------------------------------------------------
    def _expand(self) -> None:
        spec = self.manifest.to_spec()
        spec.validate()
        self.cells = []
        for index, params in enumerate(expand_cells(spec)):
            overrides = cell_overrides(spec, params)
            shard, _count = shard_of(index, self.manifest.shards)
            self.cells.append(
                CampaignCell(
                    index=index,
                    shard=shard,
                    params=params,
                    overrides=overrides,
                    key=cell_key(spec.scenario, overrides),
                )
            )
        self.report.total_cells = len(self.cells)

    def _adopt(self, cell: CampaignCell, doc: Dict[str, Any], source: str) -> None:
        cell.status = "ok"
        cell.doc = doc
        cell.attempts = doc.get("attempts", 1)
        cell.source = source

    def _consult_caches(self) -> None:
        """Mark cells already completed: merged output, shard files,
        then the journal (write-ahead of the shard flushes)."""
        if self.force:
            return
        scenario = get_scenario(self.manifest.scenario)
        by_key = {c.key: c for c in self.cells}
        paths = [self.out_path] + [
            self.shard_path(s) for s in range(1, self.manifest.shards + 1)
        ]
        for path in paths:
            doc = load_json_or_none(path, label="campaign cache")
            if doc is None:
                continue
            for cell_doc in doc.get("cells", []):
                self._consider_cached(scenario, by_key, cell_doc, "cache")
        for cell_doc in journal_mod.replay_cells(self.journal_file()).values():
            self._consider_cached(scenario, by_key, cell_doc, "journal")

    def _consider_cached(
        self,
        scenario,
        by_key: Dict[str, CampaignCell],
        cell_doc: Dict[str, Any],
        source: str,
    ) -> None:
        overrides = cell_doc.get("overrides")
        if overrides is None:
            return
        if cell_doc.get("status", "ok") != "ok":
            return  # failed/timeout cells always re-run on resume
        cell = by_key.get(cell_key(cell_doc.get("scenario", ""), overrides))
        if cell is None or cell.terminal:
            return
        if not validate_cached_cell(
            scenario, cell.overrides, cell_doc.get("provenance", {})
        ):
            self.report.stale_dropped += 1
            return
        self._adopt(cell, cell_doc, source)
        if source == "journal":
            self.report.recovered_journal += 1
        else:
            self.report.reused_cache += 1

    # -- cell documents -------------------------------------------------
    def _ok_doc(
        self, cell: CampaignCell, result_json: Dict[str, Any]
    ) -> Dict[str, Any]:
        doc = {
            "params": config_to_jsonable(cell.params),
            "overrides": config_to_jsonable(cell.overrides),
            **result_json,
        }
        if cell.attempts != 1:
            doc["attempts"] = cell.attempts
        return doc

    def _failed_doc(self, cell: CampaignCell) -> Dict[str, Any]:
        return {
            "params": config_to_jsonable(cell.params),
            "overrides": config_to_jsonable(cell.overrides),
            "scenario": self.manifest.scenario,
            "metrics": {},
            "series": {},
            "provenance": {},
            "status": cell.status,
            "error": config_to_jsonable(cell.error or {}),
            "attempts": cell.attempts,
        }

    # -- persistence ---------------------------------------------------
    def _flush(self) -> None:
        """Atomically (re)write every shard document from memory."""
        spec = self.manifest.to_spec()
        for shard in range(1, self.manifest.shards + 1):
            cells = [
                c.doc
                for c in self.cells
                if c.shard == shard and c.terminal and c.doc is not None
            ]
            doc = {
                "scenario": spec.scenario,
                "grid": config_to_jsonable(spec.grid),
                "base": config_to_jsonable(spec.base),
                "seed": spec.seed,
                "campaign": {
                    "manifest_sha": self.manifest.sha(),
                    "shard": [shard, self.manifest.shards],
                },
                "cells": cells,
            }
            atomic_write_json(self.shard_path(shard), doc)

    def _merge_and_report(self) -> None:
        """Auto-merge shards (journal-aware), verify, persist outputs."""
        directory = os.path.dirname(os.path.abspath(self.out_path))
        stem = os.path.splitext(os.path.basename(self.out_path))[0]
        merged = merge_campaign(directory, stem, journal=self.journal_file())
        merged_keys = {
            cell_key(c.scenario, c.overrides) for c in merged.cells
        }
        expected = {c.key for c in self.cells}
        missing = expected - merged_keys
        if missing:
            raise CampaignError(
                f"merge incomplete: {len(missing)} of {len(expected)} cells "
                "absent from the merged shard set"
            )
        extra = merged_keys - expected
        if extra:
            warnings.warn(
                f"campaign merge: {len(extra)} cell(s) in the shard files "
                "do not belong to this manifest's grid (edited grid?); "
                "they are excluded from the merged output",
                stacklevel=2,
            )
        spec = self.manifest.to_spec()
        doc = {
            "scenario": spec.scenario,
            "grid": config_to_jsonable(spec.grid),
            "base": config_to_jsonable(spec.base),
            "seed": spec.seed,
            "campaign": {"manifest_sha": self.manifest.sha()},
            "cells": [c.doc for c in self.cells if c.doc is not None],
        }
        atomic_write_json(self.out_path, doc)
        report = failure_report(ResultSet.load(self.out_path))
        if report["failed_cells"]:
            atomic_write_json(self.failures_file(), report)
            self.report.failures_path = self.failures_file()
        else:
            try:
                os.unlink(self.failures_file())
            except OSError:
                pass
        self.report.merged = True

    # -- the run loop --------------------------------------------------
    def run(self) -> CampaignReport:
        self.manifest.import_modules()
        self._expand()
        self._consult_caches()

        shard_totals: Dict[int, int] = {}
        for cell in self.cells:
            shard_totals[cell.shard] = shard_totals.get(cell.shard, 0) + 1
        self._progress = ProgressTracker(
            shard_totals,
            self.workers,
            stream=None if self.quiet else sys.stderr,
        )
        for cell in self.cells:
            if cell.terminal:
                self._progress.cell_done(cell.shard, ok=True, duration_s=None)

        remaining = [c for c in self.cells if not c.terminal]
        shas = journal_mod.manifest_shas(self.journal_file())
        if shas and shas[-1] != self.manifest.sha():
            warnings.warn(
                "campaign journal was written by a different manifest "
                "revision; cells are matched by (scenario, overrides) so "
                "resume is safe, but review the manifest edit",
                stacklevel=2,
            )
        self._journal = journal_mod.Journal(
            self.journal_file(), fsync=self.manifest.journal_fsync
        )
        event = "campaign_resume" if (shas or self.report.reused_cache) else "campaign_start"
        self._journal.append(
            {
                "event": event,
                "manifest_sha": self.manifest.sha(),
                "total_cells": len(self.cells),
                "recovered": self.report.recovered_journal,
                "reused": self.report.reused_cache,
            }
        )

        try:
            if remaining:
                self._drive(remaining)
        finally:
            self.executor.shutdown()
        self._flush()
        self.report.ok = sum(1 for c in self.cells if c.status == "ok")
        self.report.failed = sum(
            1 for c in self.cells if c.status in ("failed", "timeout")
        )

        if self.report.interrupted:
            self._journal.append(
                {"event": "campaign_interrupted", "pending": sum(
                    1 for c in self.cells if not c.terminal
                )}
            )
            self._journal.close()
            self._say(
                f"interrupted — progress persisted; resume with: "
                f"{self.resume_command()}"
            )
        else:
            self._merge_and_report()
            self._journal.append(
                {
                    "event": "campaign_complete",
                    "ok": self.report.ok,
                    "failed": self.report.failed,
                }
            )
            self._journal.delete()
        return self.report

    def _say(self, message: str) -> None:
        if not self.quiet:
            print(f"[campaign] {message}", file=sys.stderr, flush=True)

    # -- signal handling ------------------------------------------------
    def _install_sigint(self):
        if threading.current_thread() is not threading.main_thread():
            return None

        def handler(_signum, _frame):
            self._interrupts += 1
            if self._interrupts == 1:
                self._say(
                    "SIGINT: draining (running cells finish, nothing new "
                    "dispatches); press again to stop immediately"
                )
            else:
                raise KeyboardInterrupt

        return signal.signal(signal.SIGINT, handler)

    def _drive(self, remaining: List[CampaignCell]) -> None:
        limits = self.manifest.limits
        timeout_s = limits.cell_timeout_s
        ready: List = []  # (ready_time, cell_index) heap
        now = time.monotonic()
        for cell in remaining:
            heapq.heappush(ready, (now, cell.index))

        next_task_id = 1
        task_cell: Dict[int, int] = {}
        task_started: Dict[int, float] = {}
        task_worker: Dict[int, int] = {}
        since_flush = 0
        prev_handler = self._install_sigint()

        def dispatch(cell: CampaignCell, now: float) -> bool:
            nonlocal next_task_id
            task = {
                "op": "run",
                "id": next_task_id,
                "scenario": self.manifest.scenario,
                "overrides": config_to_jsonable(cell.overrides),
                "modules": list(self.manifest.modules),
            }
            worker_id = self.executor.submit(task)
            if worker_id is None:
                return False
            task_id = next_task_id
            next_task_id += 1
            if cell.attempts:
                self.report.retried += 1
                self._progress.cell_retried()
            cell.attempts += 1
            cell.status = "running"
            cell.live_tasks.add(task_id)
            task_cell[task_id] = cell.index
            task_started[task_id] = now
            task_worker[task_id] = worker_id
            self.report.executed += 1
            return True

        def forget_task(task_id: int) -> None:
            task_cell.pop(task_id, None)
            task_started.pop(task_id, None)
            task_worker.pop(task_id, None)

        def settle_ok(cell: CampaignCell, task_id: int, payload: Dict) -> None:
            cell.duration_s = time.monotonic() - task_started.get(
                task_id, time.monotonic()
            )
            cell.status = "ok"
            cell.doc = self._ok_doc(cell, payload.get("result") or {})
            # Kill any speculative duplicate still chewing on this cell.
            for other in sorted(cell.live_tasks):
                if other == task_id:
                    continue
                worker_id = task_worker.get(other)
                if worker_id is not None:
                    self.executor.kill_worker(worker_id)
                forget_task(other)
            cell.live_tasks.clear()
            self._journal.append({"event": "cell_ok", "cell": cell.doc})
            self._progress.cell_done(cell.shard, ok=True, duration_s=cell.duration_s)

        def settle_failure(
            cell: CampaignCell, error: Dict[str, Any], now: float, *,
            timed_out: bool = False,
        ) -> None:
            """One attempt died; retry with backoff or go terminal."""
            if cell.live_tasks:
                return  # a speculative copy is still running; let it decide
            if self.policy.should_retry(cell.attempts):
                delay = self.policy.delay_s(cell.attempts)
                cell.status = "pending"
                heapq.heappush(ready, (now + delay, cell.index))
                self._journal.append(
                    {
                        "event": "cell_retry",
                        "key": cell.key,
                        "attempt": cell.attempts,
                        "kind": error.get("kind", "exception"),
                        "delay_s": round(delay, 3),
                    }
                )
                return
            cell.status = "timeout" if timed_out else "failed"
            cell.error = error
            cell.doc = self._failed_doc(cell)
            self._journal.append({"event": "cell_failed", "cell": cell.doc})
            self._progress.cell_done(cell.shard, ok=False, duration_s=None)

        try:
            while True:
                unfinished = [c for c in self.cells if not c.terminal]
                if not unfinished:
                    break
                draining = self._interrupts > 0
                if draining and not task_cell:
                    self.report.interrupted = True
                    break

                now = time.monotonic()
                # Respawn crashed workers up to demand.
                demand = min(self.workers, len(unfinished))
                if not draining:
                    self.executor.ensure_workers(demand)

                # Dispatch due cells onto idle workers.
                while (
                    not draining
                    and ready
                    and ready[0][0] <= now
                    and self.executor.idle_worker_ids()
                ):
                    _t, index = heapq.heappop(ready)
                    cell = self.cells[index]
                    if cell.terminal or cell.status == "running":
                        continue
                    if not dispatch(cell, now):
                        heapq.heappush(ready, (now, index))
                        break

                # Straggler re-dispatch: duplicate the slowest running
                # cell onto an idle worker once it blows the threshold.
                if not draining and task_cell and not (
                    ready and ready[0][0] <= now
                ):
                    threshold = self.policy.straggler_threshold_s(
                        self._progress.median_duration_s()
                    )
                    for task_id, started in sorted(task_started.items()):
                        if now - started < threshold:
                            continue
                        cell = self.cells[task_cell[task_id]]
                        if len(cell.live_tasks) != 1:
                            continue  # already speculated
                        if not self.executor.idle_worker_ids():
                            break
                        dispatch(cell, now)

                # Wait for results/exits, but wake for the next deadline.
                wake_candidates = [_POLL_CAP_S]
                if task_started:
                    wake_candidates.append(
                        min(task_started.values()) + timeout_s - now
                    )
                if ready:
                    wake_candidates.append(ready[0][0] - now)
                poll_s = max(0.01, min(wake_candidates))
                events = self.executor.events(poll_s)

                now = time.monotonic()
                for event in events:
                    self._handle_event(
                        event, task_cell, task_started, task_worker,
                        forget_task, settle_ok, settle_failure, now,
                    )

                # Enforce per-cell wall-clock timeouts.
                for task_id, started in sorted(task_started.items()):
                    if now - started < timeout_s:
                        continue
                    cell = self.cells[task_cell[task_id]]
                    worker_id = task_worker.get(task_id)
                    if worker_id is not None:
                        self.executor.kill_worker(worker_id)
                        self.report.workers_respawned += 1
                    forget_task(task_id)
                    cell.live_tasks.discard(task_id)
                    if not cell.terminal:
                        settle_failure(
                            cell,
                            {
                                "kind": "timeout",
                                "message": (
                                    f"cell exceeded the {timeout_s:g}s "
                                    "wall-clock limit and was killed"
                                ),
                            },
                            now,
                            timed_out=True,
                        )

                done = sum(1 for c in self.cells if c.terminal)
                self._progress.set_running(len(task_cell))
                self._progress.maybe_print()
                if done and done % self.manifest.flush_every < since_flush:
                    self._flush()
                since_flush = done % self.manifest.flush_every
        except KeyboardInterrupt:
            self.report.interrupted = True
            self._say("second SIGINT: reclaiming workers immediately")
        finally:
            if prev_handler is not None:
                signal.signal(signal.SIGINT, prev_handler)
        self._progress.set_running(0)
        self._progress.maybe_print(force=True)

    def _handle_event(
        self,
        event: WorkerEvent,
        task_cell: Dict[int, int],
        task_started: Dict[int, float],
        task_worker: Dict[int, int],
        forget_task,
        settle_ok,
        settle_failure,
        now: float,
    ) -> None:
        task_id = event.task_id
        if task_id is None or task_id not in task_cell:
            if event.kind == "exit":
                self.report.workers_respawned += 1
            return
        cell = self.cells[task_cell[task_id]]
        forget_task(task_id)
        cell.live_tasks.discard(task_id)
        if cell.terminal:
            return  # speculative loser; result already settled
        if event.kind == "result":
            payload = event.payload or {}
            if payload.get("ok"):
                settle_ok(cell, task_id, payload)
            else:
                error = dict(payload.get("error") or {})
                error.setdefault("kind", "exception")
                settle_failure(cell, error, now)
        else:  # worker exit while running this cell
            self.report.workers_respawned += 1
            settle_failure(
                cell,
                {
                    "kind": "worker-crash",
                    "message": (
                        f"worker exited with code {event.returncode} "
                        "while running this cell"
                    ),
                    "returncode": event.returncode,
                    "stderr_tail": event.stderr_tail[-1000:],
                },
                now,
            )


def run_campaign(
    manifest: CampaignManifest,
    *,
    workers: Optional[int] = None,
    out: Optional[str] = None,
    force: bool = False,
    quiet: bool = False,
    executor: Optional[Executor] = None,
    manifest_path: Optional[str] = None,
) -> CampaignReport:
    """One-call convenience wrapper around :class:`Campaign`."""
    return Campaign(
        manifest,
        workers=workers,
        out=out,
        force=force,
        quiet=quiet,
        executor=executor,
        manifest_path=manifest_path,
    ).run()

"""Bounded retries with exponential backoff and seeded jitter.

Retry/timeout semantics live here in the orchestration layer — not in
operator habits (SCTP's framing: robustness belongs in the protocol).
Delays are a pure function of (policy, attempt, seeded RNG), so two
identical campaign invocations schedule identical retry timelines.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.campaign.manifest import LimitsPolicy


class RetryPolicy:
    """Decides whether — and when — a failed cell attempt runs again."""

    def __init__(self, limits: LimitsPolicy, seed: int = 1):
        self.limits = limits
        # Seeded per-campaign: jitter decorrelates retry storms without
        # sacrificing run-to-run reproducibility of the schedule.
        self._rng = random.Random(seed * 2_000_003 + 17)

    def should_retry(self, attempts: int) -> bool:
        """True while the cell has attempts left (attempts = runs so far)."""
        return attempts < self.limits.max_attempts

    def delay_s(self, attempts: int) -> float:
        """Backoff before attempt ``attempts + 1`` (jittered, capped)."""
        base = self.limits.backoff_base_s * (
            self.limits.backoff_factor ** max(0, attempts - 1)
        )
        delay = min(self.limits.backoff_max_s, base)
        if self.limits.jitter_frac and delay > 0:
            spread = self.limits.jitter_frac * delay
            delay += self._rng.uniform(-spread, spread)
        return max(0.0, delay)

    def straggler_threshold_s(
        self, median_duration_s: Optional[float]
    ) -> float:
        """Runtime past which a running cell may be speculatively
        re-dispatched; infinite until a median duration exists."""
        if median_duration_s is None:
            return float("inf")
        return max(
            self.limits.straggler_min_s,
            self.limits.straggler_factor * median_duration_s,
        )

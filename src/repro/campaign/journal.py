"""Crash-safe append-only campaign journal (``<stem>.journal.jsonl``).

Contract: ``docs/INVARIANTS.md#journal-contract``.  The journal is the
campaign's write-ahead record: every completed cell is appended (one
self-contained JSON object per line, flushed and optionally fsynced)
*before* it is counted done, while the larger shard documents are only
flushed every ``flush_every`` completions.  A campaign killed at any
point — including ``kill -9`` mid-append — resumes by merging the shard
files with the journal: a torn final line is simply ignored (the cell
re-runs), and replay is idempotent because records are keyed by the
cell's full (scenario, overrides) identity.

Record shapes (``event`` discriminates)::

    {"event": "campaign_start", "manifest_sha": ..., "total_cells": N}
    {"event": "campaign_resume", "manifest_sha": ..., "recovered": N}
    {"event": "cell_ok",      "cell": {<sweep-format cell dict>}}
    {"event": "cell_retry",   "key": ..., "attempt": N, "kind": ...}
    {"event": "cell_failed",  "cell": {...}}   # retries exhausted
    {"event": "campaign_complete", "ok": N, "failed": N}

Only ``cell_ok``/``cell_failed`` matter for recovery; the rest are an
audit trail.  On a fully merged, all-ok completion the journal is
deleted — the shard files and merged output then own the results.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterator, List, Optional


class Journal:
    """Append-only JSON-lines writer with torn-tail-tolerant replay."""

    def __init__(self, path: str, *, fsync: bool = True):
        self.path = path
        self.fsync = fsync
        self._handle = None

    def _ensure_open(self):
        if self._handle is None:
            parent = os.path.dirname(os.path.abspath(self.path))
            os.makedirs(parent, exist_ok=True)
            self._handle = open(self.path, "a")
        return self._handle

    def append(self, record: Dict[str, Any]) -> None:
        """Durably append one record (flush; fsync unless disabled)."""
        handle = self._ensure_open()
        handle.write(json.dumps(record, sort_keys=True) + "\n")
        handle.flush()
        if self.fsync:
            os.fsync(handle.fileno())

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def delete(self) -> None:
        """Remove the journal file (after a clean, fully merged finish)."""
        self.close()
        try:
            os.unlink(self.path)
        except OSError:
            pass

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def iter_records(path: str) -> Iterator[Dict[str, Any]]:
    """Replay a journal, skipping blank/torn lines.

    Any line that fails to parse is dropped rather than fatal: the only
    way a line goes bad is a writer killed mid-append (necessarily the
    tail) or byte corruption — in both cases the affected cell simply
    re-runs, which is always safe.
    """
    try:
        with open(path) as handle:
            lines = handle.readlines()
    except OSError:
        return
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError:
            continue
        if isinstance(record, dict):
            yield record


def replay_cells(path: str) -> Dict[str, Dict[str, Any]]:
    """Terminal cell records by identity key, later records winning.

    Returns ``key -> cell dict`` for every ``cell_ok``/``cell_failed``
    record, where the key is the canonical (scenario, overrides) JSON —
    the same identity the sweep cache uses, so recovered cells slot
    straight into the resume bookkeeping.
    """
    cells: Dict[str, Dict[str, Any]] = {}
    for record in iter_records(path):
        if record.get("event") not in ("cell_ok", "cell_failed"):
            continue
        cell = record.get("cell")
        if not isinstance(cell, dict) or "overrides" not in cell:
            continue
        key = json.dumps(
            {
                "scenario": cell.get("scenario"),
                "overrides": cell.get("overrides"),
            },
            sort_keys=True,
            default=repr,
        )
        cells[key] = cell
    return cells


def manifest_shas(path: str) -> List[str]:
    """Every manifest hash journaled by start/resume events (in order)."""
    shas = []
    for record in iter_records(path):
        if record.get("event") in ("campaign_start", "campaign_resume"):
            sha = record.get("manifest_sha")
            if sha:
                shas.append(sha)
    return shas


def journal_path(out_path: str) -> str:
    """The journal file for one campaign output stem."""
    stem, _ext = os.path.splitext(out_path)
    return f"{stem}.journal.jsonl"


def failures_path(out_path: str) -> str:
    """The failure-report file for one campaign output stem."""
    stem, _ext = os.path.splitext(out_path)
    return f"{stem}.failures.json"

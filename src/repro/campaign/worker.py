"""Campaign worker: a long-lived subprocess executing cells one at a time.

Protocol (line-delimited JSON over stdin/stdout)::

    -> {"op": "run", "id": 7, "scenario": "websearch",
        "overrides": {...}, "modules": ["repro.scenarios.faulty"]}
    <- {"id": 7, "ok": true,  "result": {<ScenarioResult JSON>}}
    <- {"id": 7, "ok": false, "error": {"type": ..., "message": ...,
                                        "traceback": ...}}
    -> {"op": "shutdown"}

Scenario exceptions are caught and reported per task — the worker stays
alive for the next cell.  What this process *cannot* survive (hard
exits, segfault-style kills, hangs) is exactly what the orchestrator's
crash detection and wall-clock timeouts exist for.

The real stdout is reserved for protocol lines: ``sys.stdout`` is
redirected to stderr before any scenario code runs, so a print() inside
an experiment can never corrupt the message stream.
"""

from __future__ import annotations

import importlib
import json
import sys
import traceback
from typing import Any, Dict


def _execute(task: Dict[str, Any]) -> Dict[str, Any]:
    """Run one cell; exceptions become a structured error payload."""
    try:
        for module in task.get("modules", []):
            importlib.import_module(module)
        from repro.scenarios.registry import get_scenario

        result = (
            get_scenario(task["scenario"])
            .run(**task.get("overrides", {}))
            .without_raw()
        )
        return {"id": task["id"], "ok": True, "result": result.to_json_dict()}
    except BaseException as exc:  # noqa: BLE001 — a worker must not die here
        return {
            "id": task.get("id"),
            "ok": False,
            "error": {
                "kind": "exception",
                "type": type(exc).__name__,
                "message": str(exc),
                "traceback": traceback.format_exc(),
            },
        }


def main() -> int:
    protocol_out = sys.stdout
    sys.stdout = sys.stderr  # scenario prints must not reach the protocol
    for line in sys.stdin:
        line = line.strip()
        if not line:
            continue
        try:
            task = json.loads(line)
        except ValueError:
            continue  # a torn dispatch; the orchestrator will time it out
        if task.get("op") == "shutdown":
            break
        if task.get("op") != "run":
            continue
        reply = _execute(task)
        try:
            payload = json.dumps(reply)
        except (TypeError, ValueError):
            # A result that does not serialize is a failed cell, not a
            # protocol wedge.
            payload = json.dumps(
                {
                    "id": task.get("id"),
                    "ok": False,
                    "error": {
                        "kind": "exception",
                        "type": "SerializationError",
                        "message": "cell result is not JSON-serializable",
                        "traceback": "",
                    },
                }
            )
        protocol_out.write(payload + "\n")
        protocol_out.flush()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())

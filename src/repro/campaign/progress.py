"""Per-shard campaign progress, streamed to the terminal.

One line per refresh::

    [campaign] 118/256 ok, 2 failed, 5 retried, 4 running | shard 1: 61/64
    shard 2: 57/64 ... | ETA ~42s

ETA is (remaining cells x median ok-cell duration) / workers — crude,
but it tracks the only quantities the orchestrator actually knows.
Printing is throttled so million-cell campaigns are not bottlenecked on
the terminal.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, TextIO


class ProgressTracker:
    """Counts cells by shard and state; renders throttled status lines."""

    def __init__(
        self,
        shard_totals: Dict[int, int],
        workers: int,
        *,
        stream: Optional[TextIO] = None,
        interval_s: float = 1.0,
    ):
        self.shard_totals = dict(shard_totals)
        self.total = sum(shard_totals.values())
        self.workers = max(1, workers)
        self.stream = stream
        self.interval_s = interval_s
        self.ok = 0
        self.failed = 0
        self.retried = 0
        self.running = 0
        self.shard_done: Dict[int, int] = {s: 0 for s in shard_totals}
        self.durations_s: List[float] = []
        self._last_print = 0.0

    # -- accounting ----------------------------------------------------
    def cell_done(self, shard: int, ok: bool, duration_s: Optional[float]) -> None:
        if ok:
            self.ok += 1
        else:
            self.failed += 1
        self.shard_done[shard] = self.shard_done.get(shard, 0) + 1
        if ok and duration_s is not None:
            self.durations_s.append(duration_s)

    def cell_retried(self) -> None:
        self.retried += 1

    def set_running(self, count: int) -> None:
        self.running = count

    # -- derived -------------------------------------------------------
    def median_duration_s(self) -> Optional[float]:
        if not self.durations_s:
            return None
        ordered = sorted(self.durations_s)
        return ordered[len(ordered) // 2]

    def eta_s(self) -> Optional[float]:
        median = self.median_duration_s()
        done = self.ok + self.failed
        if median is None or done >= self.total:
            return None
        return (self.total - done) * median / self.workers

    # -- rendering -----------------------------------------------------
    def render(self) -> str:
        parts = [
            f"[campaign] {self.ok + self.failed}/{self.total} done "
            f"({self.ok} ok, {self.failed} failed, {self.retried} retried, "
            f"{self.running} running)"
        ]
        if len(self.shard_totals) > 1:
            shards = " ".join(
                f"s{s}:{self.shard_done.get(s, 0)}/{self.shard_totals[s]}"
                for s in sorted(self.shard_totals)
            )
            parts.append(shards)
        eta = self.eta_s()
        if eta is not None:
            parts.append(f"ETA ~{eta:.0f}s")
        return " | ".join(parts)

    def maybe_print(self, *, force: bool = False) -> None:
        if self.stream is None:
            return
        now = time.monotonic()
        if not force and now - self._last_print < self.interval_s:
            return
        self._last_print = now
        print(self.render(), file=self.stream, flush=True)

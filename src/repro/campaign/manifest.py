"""Campaign manifests: one JSON document describing a whole sweep run.

A manifest is the unit of (re-)invocation: ``python -m repro campaign
manifest.json`` must be safe to run again after any failure — the
orchestrator derives everything (grid cells, shard partition, output
paths, retry/timeout policy) from the manifest deterministically, so a
re-invocation resumes rather than restarts.

Schema (all keys except ``scenario`` optional)::

    {
      "scenario": "websearch",
      "grid":  {"algorithm": ["powertcp", "hpcc"], "load": [0.2, 0.6]},
      "base":  {"duration_ns": 4000000},
      "seed":  1,
      "shards": 4,             // grid partition; one output file per shard
      "workers": 4,            // subprocess worker pool size
      "modules": ["repro.scenarios.faulty"],  // extra scenario modules
      "out": "benchmarks/results/websearch_campaign.json",
      "flush_every": 16,       // persist shard files every N completions
      "journal_fsync": true,
      "limits": {
        "cell_timeout_s": 300, "max_attempts": 3,
        "backoff_base_s": 0.25, "backoff_factor": 2.0,
        "backoff_max_s": 30.0, "jitter_frac": 0.25,
        "straggler_factor": 4.0, "straggler_min_s": 10.0,
        "worker_grace_s": 5.0
      }
    }

Unknown keys are rejected eagerly (mirroring ``Scenario.configure``),
so a typo'd policy knob fails the launch instead of silently running
with defaults.
"""

from __future__ import annotations

import dataclasses
import hashlib
import importlib
import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.persist import load_json_or_none
from repro.scenarios.sweep import DEFAULT_RESULTS_DIR, SweepSpec


@dataclass
class LimitsPolicy:
    """Per-cell failure-handling knobs (the manifest's ``limits`` block)."""

    #: wall-clock budget for one cell attempt; the worker is killed past it
    cell_timeout_s: float = 300.0
    #: total executions per cell (first try + retries)
    max_attempts: int = 3
    #: exponential backoff: base * factor**(attempt-1), capped, jittered
    backoff_base_s: float = 0.25
    backoff_factor: float = 2.0
    backoff_max_s: float = 30.0
    #: +/- fraction of the delay added as seeded jitter (decorrelates
    #: retry storms when many cells fail at once)
    jitter_frac: float = 0.25
    #: a running cell is a straggler once it exceeds this multiple of the
    #: median completed-cell duration (and straggler_min_s) — it is then
    #: speculatively re-dispatched to an idle worker, first result wins
    straggler_factor: float = 4.0
    straggler_min_s: float = 10.0
    #: SIGTERM-to-SIGKILL grace when reclaiming a worker
    worker_grace_s: float = 5.0

    def validate(self) -> None:
        if self.cell_timeout_s <= 0:
            raise ValueError("limits.cell_timeout_s must be > 0")
        if self.max_attempts < 1:
            raise ValueError("limits.max_attempts must be >= 1")
        if self.backoff_base_s < 0 or self.backoff_max_s < 0:
            raise ValueError("limits backoff delays must be >= 0")
        if self.backoff_factor < 1:
            raise ValueError("limits.backoff_factor must be >= 1")
        if not 0 <= self.jitter_frac < 1:
            raise ValueError("limits.jitter_frac must be in [0, 1)")
        if self.straggler_factor < 1:
            raise ValueError("limits.straggler_factor must be >= 1")


@dataclass
class CampaignManifest:
    """Everything a campaign run needs, as one validated record."""

    scenario: str
    grid: Dict[str, List[Any]] = field(default_factory=dict)
    base: Dict[str, Any] = field(default_factory=dict)
    seed: int = 1
    shards: int = 1
    workers: int = 1
    #: extra modules imported (orchestrator + workers) before scenario
    #: lookup — how non-builtin scenarios join a campaign
    modules: List[str] = field(default_factory=list)
    out: Optional[str] = None
    flush_every: int = 16
    journal_fsync: bool = True
    limits: LimitsPolicy = field(default_factory=LimitsPolicy)

    def validate(self) -> None:
        """Check counts, limits, and the grid against the scenario."""
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.flush_every < 1:
            raise ValueError("flush_every must be >= 1")
        self.limits.validate()
        self.import_modules()
        self.to_spec().validate()

    def import_modules(self) -> None:
        """Import the manifest's extra scenario modules (idempotent)."""
        for module in self.modules:
            importlib.import_module(module)

    def to_spec(self) -> SweepSpec:
        """The equivalent sweep spec (same cells, same per-cell seeds)."""
        return SweepSpec(
            scenario=self.scenario,
            grid=dict(self.grid),
            base=dict(self.base),
            seed=self.seed,
        )

    def out_path(self) -> str:
        """The merged-output path (shard/journal names derive from it)."""
        if self.out:
            return self.out
        return os.path.join(
            DEFAULT_RESULTS_DIR, f"{self.scenario}_campaign.json"
        )

    def to_json_dict(self) -> Dict[str, Any]:
        doc = dataclasses.asdict(self)
        return doc

    def sha(self) -> str:
        """Content hash, journaled so a resume can flag manifest edits."""
        blob = json.dumps(self.to_json_dict(), sort_keys=True, default=repr)
        return hashlib.sha256(blob.encode()).hexdigest()[:16]


def manifest_from_dict(doc: Dict[str, Any]) -> CampaignManifest:
    """Build and validate a manifest from a parsed JSON document."""
    if not isinstance(doc, dict):
        raise ValueError("campaign manifest must be a JSON object")
    doc = dict(doc)
    limits_doc = doc.pop("limits", {}) or {}
    known = {f.name for f in dataclasses.fields(CampaignManifest)}
    unknown = sorted(set(doc) - known)
    if unknown:
        raise ValueError(
            f"campaign manifest: unknown key(s) {', '.join(unknown)}; "
            f"valid: {', '.join(sorted(known))}"
        )
    known_limits = {f.name for f in dataclasses.fields(LimitsPolicy)}
    unknown = sorted(set(limits_doc) - known_limits)
    if unknown:
        raise ValueError(
            f"campaign manifest limits: unknown key(s) {', '.join(unknown)}; "
            f"valid: {', '.join(sorted(known_limits))}"
        )
    if "scenario" not in doc:
        raise ValueError("campaign manifest must name a scenario")
    manifest = CampaignManifest(limits=LimitsPolicy(**limits_doc), **doc)
    manifest.validate()
    return manifest


def load_manifest(path: str) -> CampaignManifest:
    """Load + validate a manifest file; errors name the offending key."""
    doc = load_json_or_none(path, label="campaign manifest")
    if doc is None:
        raise ValueError(f"cannot read campaign manifest {path!r}")
    return manifest_from_dict(doc)


def shard_of(cell_index: int, shards: int) -> Tuple[int, int]:
    """The 1-based ``(index, count)`` shard owning one grid position.

    Matches ``sweep --shard I/N``: position ``k`` belongs to shard
    ``k % N + 1``, so campaign shard files are interchangeable with
    hand-run sharded sweeps.
    """
    return cell_index % shards + 1, shards

"""The built-network container shared by all topology builders."""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.routing.registry import Requirements as RoutingRequirements
from repro.sim.engine import Simulator
from repro.sim.host import Host
from repro.sim.packet import ACK_BYTES, HEADER_BYTES
from repro.sim.port import EcnConfig, EgressPort
from repro.sim.switch import Switch
from repro.units import tx_time_ns


def path_base_rtt_ns(
    forward_rates_bps: Sequence[float],
    prop_delays_ns: Sequence[int],
    mtu_payload: int = 1000,
) -> int:
    """Base RTT of a path with no queueing.

    Forward direction serializes a full MTU at every hop; the reverse
    direction serializes the (much smaller) ACK over the same hops.  Both
    directions pay the propagation delays.
    """
    if len(forward_rates_bps) != len(prop_delays_ns):
        raise ValueError("one propagation delay per hop required")
    mtu_wire = mtu_payload + HEADER_BYTES
    rtt = 2 * sum(prop_delays_ns)
    for rate in forward_rates_bps:
        rtt += tx_time_ns(mtu_wire, rate) + tx_time_ns(ACK_BYTES, rate)
    return rtt


def path_ideal_fct_ns(
    forward_rates_bps: Sequence[float],
    prop_delays_ns: Sequence[int],
    size_bytes: int,
    mtu_payload: int = 1000,
) -> int:
    """Store-and-forward lower bound on the FCT of a ``size_bytes`` flow.

    FCT is measured receiver-side (time until the last byte arrives), so
    this bound is *one-way*: the head packet (at most one MTU, possibly
    smaller) is serialized at every hop, the remaining bytes stream
    behind it at the path's minimum rate.  This is the denominator of FCT
    *slowdown* — no run can beat it, so slowdowns are always >= 1.
    """
    if len(forward_rates_bps) != len(prop_delays_ns):
        raise ValueError("one propagation delay per hop required")
    head_payload = min(size_bytes, mtu_payload)
    head_wire = head_payload + HEADER_BYTES
    total = sum(prop_delays_ns)
    for rate in forward_rates_bps:
        total += tx_time_ns(head_wire, rate)
    remaining = size_bytes - head_payload
    if remaining > 0:
        bottleneck = min(forward_rates_bps)
        full_packets = remaining // mtu_payload
        tail = remaining - full_packets * mtu_payload
        stream_bytes = full_packets * (mtu_payload + HEADER_BYTES)
        if tail:
            stream_bytes += tail + HEADER_BYTES
        total += tx_time_ns(stream_bytes, bottleneck)
    return total


class Network:
    """A wired topology: hosts, switches, and path metadata.

    ``base_rtt_ns`` is the maximum base RTT across host pairs (propagation
    plus per-hop MTU serialization) — the τ both HPCC and PowerTCP are
    configured with in the paper ("base-RTT set to the maximum RTT in our
    topology").
    """

    def __init__(self, sim: Simulator, name: str = "net"):
        self.sim = sim
        self.name = name
        self.hosts: List[Host] = []
        self.switches: List[Switch] = []
        self.host_bw_bps: float = 0.0
        self.base_rtt_ns: int = 0
        #: per-pair base RTT (src, dst) -> ns; defaults to base_rtt_ns.
        #: Used for *ideal-FCT* denominators, so slowdown is >= 1 even on
        #: shorter-than-worst-case paths.  CC configuration still uses the
        #: network-wide max, as the paper does.
        self.path_rtt_fn = None
        #: per-pair hop profile (src, dst) -> (rates_bps, prop_delays_ns)
        #: for exact ideal-FCT computation; optional.
        self.path_profile_fn = None
        #: optional interesting ports registered by builders, keyed by label
        #: (e.g. "bottleneck", "tor0-up0") for probes and experiments.
        self.labeled_ports: Dict[str, EgressPort] = {}
        #: routing policy the builder deployed (name + bound params);
        #: "ecmp" with no params means the inline default fast path.
        self.routing_name: str = "ecmp"
        self.routing_params: Dict[str, object] = {}
        #: builder-specific extras (circuit controller, schedule, ...).
        self.extras: Dict[str, object] = {}
        # -- uniform introspection surface (set by builders) -----------
        #: canonical traffic sources under the topology's pairing policy
        #: (dumbbell: left hosts; parking lot: the e2e + cross sources);
        #: empty means "every host".
        self.sender_hosts: List[int] = []
        #: canonical traffic sinks (empty means "every host").
        self.receiver_hosts: List[int] = []
        #: label of the port long flows contend on, when the topology has
        #: a single well-defined one (dumbbell: "bottleneck"; parking
        #: lot: the slowest segment link); None on multi-path fabrics.
        self.bottleneck_label: Optional[str] = None
        #: True when *every* sender->receiver pair crosses the labeled
        #: bottleneck (dumbbell), so its rate is the capacity that
        #: per-group shares normalize by; False where the label is just
        #: the tightest of several contended links (parking lot).
        self.shared_bottleneck: bool = False
        #: pairing policy ``(count, rng) -> [(src, dst), ...]`` placing
        #: ``count`` long flows the way this topology is meant to be
        #: loaded; None falls back to sender/receiver round-robin.
        self.pair_policy_fn: Optional[
            Callable[[int, random.Random], List[Tuple[int, int]]]
        ] = None

    def add_host(self, host: Host) -> Host:
        """Register a host (ids must match list positions)."""
        assert host.host_id == len(self.hosts), "host ids must be dense"
        self.hosts.append(host)
        return host

    def add_switch(self, switch: Switch) -> Switch:
        """Register a switch."""
        self.switches.append(switch)
        return switch

    def host(self, host_id: int) -> Host:
        """Look up a host by id."""
        return self.hosts[host_id]

    def port(self, label: str) -> EgressPort:
        """Look up a labeled port (e.g. the bottleneck)."""
        return self.labeled_ports[label]

    def label_port(self, label: str, port: EgressPort) -> EgressPort:
        """Register a port of interest under ``label``."""
        port.name = port.name or label
        self.labeled_ports[label] = port
        return port

    @property
    def num_hosts(self) -> int:
        """Number of hosts."""
        return len(self.hosts)

    # -- introspection / pairing policy --------------------------------
    def senders(self) -> List[int]:
        """Canonical source host ids (every host when unset)."""
        return self.sender_hosts or [h.host_id for h in self.hosts]

    def receivers(self) -> List[int]:
        """Canonical sink host ids (every host when unset)."""
        return self.receiver_hosts or [h.host_id for h in self.hosts]

    def bottleneck_port(self):
        """The contended port, when the topology declares one (else None)."""
        if self.bottleneck_label is None:
            return None
        return self.labeled_ports[self.bottleneck_label]

    def flow_pairs(
        self, count: int, rng: Optional[random.Random] = None
    ) -> List[Tuple[int, int]]:
        """``count`` (src, dst) pairs under this topology's pairing policy.

        Builders install topology-specific policies (seeded permutation
        pairs on the fat-tree, per-segment cross paths on the parking
        lot); the fallback walks senders round-robin against receivers,
        skipping src == dst.  Deterministic for a given (count, rng
        state).
        """
        if count < 0:
            raise ValueError(f"flow count must be >= 0, got {count}")
        if self.pair_policy_fn is not None:
            pairs = self.pair_policy_fn(count, rng or random.Random(0))
            if len(pairs) != count:
                raise ValueError(
                    f"{self.name}: pairing policy returned {len(pairs)} "
                    f"pairs for count={count}"
                )
            return pairs
        senders = self.senders()
        receivers = self.receivers()
        pairs: List[Tuple[int, int]] = []
        shift = 0
        for i in range(count):
            src = senders[i % len(senders)]
            dst = receivers[(i + shift) % len(receivers)]
            for _ in range(len(receivers)):
                if dst != src:
                    break
                shift += 1
                dst = receivers[(i + shift) % len(receivers)]
            if dst == src:
                raise ValueError(
                    f"{self.name}: cannot pair host {src} with a distinct "
                    "receiver (single-host receiver set)"
                )
            pairs.append((src, dst))
        return pairs

    def describe(self) -> Dict[str, object]:
        """A JSON-able summary of the built network (catalog / tests)."""
        return {
            "name": self.name,
            "num_hosts": self.num_hosts,
            "num_switches": len(self.switches),
            "host_bw_bps": self.host_bw_bps,
            "base_rtt_ns": self.base_rtt_ns,
            "senders": self.senders(),
            "receivers": self.receivers(),
            "bottleneck_label": self.bottleneck_label,
            "shared_bottleneck": self.shared_bottleneck,
            "labeled_ports": sorted(self.labeled_ports),
            "routing": self.routing_name,
            "routing_params": dict(self.routing_params),
        }

    def routing_requirements(self) -> RoutingRequirements:
        """Union of the deployed switch policies' transport requirements.

        Switches without a policy object run the default flow-stable
        ECMP fast path, which demands nothing of the transport; an empty
        union therefore yields the default requirements.  The driver
        reads this to decide whether receivers must tolerate reordering.
        """
        return RoutingRequirements.union(
            s.policy.requirements
            for s in self.switches
            if getattr(s, "policy", None) is not None
        )

    def path_rtt_ns(self, src: int, dst: int) -> int:
        """Base RTT of the (src, dst) path; the network max if unknown."""
        if self.path_rtt_fn is not None:
            return self.path_rtt_fn(src, dst)
        return self.base_rtt_ns

    def ideal_fct_ns(
        self, src: int, dst: int, size_bytes: int, mtu_payload: int = 1000
    ) -> int:
        """Store-and-forward lower-bound FCT for a flow on this network.

        Uses the exact hop profile when the builder registered one; falls
        back to a single-hop model at the host line rate otherwise.
        """
        if self.path_profile_fn is not None:
            rates, props = self.path_profile_fn(src, dst)
            return path_ideal_fct_ns(rates, props, size_bytes, mtu_payload)
        return self.base_rtt_ns + tx_time_ns(size_bytes, self.host_bw_bps)

    def total_drops(self) -> int:
        """Packets dropped across all switch ports (DT rejections)."""
        return sum(p.drops for s in self.switches for p in s.ports)

    def apply_ecn(self, ecn_fn: Callable[[float], EcnConfig]) -> None:
        """Configure ECN marking on every switch port from its line rate."""
        for switch in self.switches:
            for port in switch.ports:
                port.ecn = ecn_fn(port.rate_bps)

    def enable_int(self, enabled: bool = True) -> None:
        """Toggle INT stamping on all switch ports."""
        for switch in self.switches:
            for port in switch.ports:
                port.int_stamping = enabled

"""Parking-lot topology: a chain of switches with per-segment cross traffic.

Built to make §3.5's multi-bottleneck claim executable: "in multi-
bottleneck scenarios, the control law precisely reacts to the *most
bottlenecked* link when using INT but reacts to the *sum* of queuing
delays when using RTT."

Layout (``segments`` = 2 shown)::

    E0 ──► S0 ══════► S1 ══════► S2 ──► sink hosts
           ▲  link0   ▲  link1   │
       cross-src0  cross-src1    ▼
                             cross sinks

One *end-to-end* sender E0 crosses every segment link; each segment also
carries local cross traffic entering at its head switch and leaving at
the next switch's local sink.  Segment link rates are configurable so one
link can be made the clear bottleneck.

Host numbering: 0 = end-to-end source; 1..segments = cross sources;
then the end-to-end sink, then one cross sink per segment.
"""

from __future__ import annotations

from collections.abc import Sequence as AbcSequence
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

from repro.routing.registry import make_policy
from repro.sim.buffer import SharedBuffer
from repro.sim.engine import Simulator
from repro.sim.host import Host
from repro.sim.port import EgressPort
from repro.sim.switch import Switch
from repro.topology.network import Network, path_base_rtt_ns, path_ideal_fct_ns
from repro.topology.registry import register_topology
from repro.units import GBPS, USEC


@dataclass
class ParkingLotParams:
    """Chain shape and rates.  ``segment_bw_bps[i]`` is link i's rate.

    ``segment_delay_ns`` accepts either one scalar applied to every
    segment link or a per-segment list; both per-segment overrides are
    validated eagerly against ``segments`` (a silent mismatch used to
    surface only as an IndexError deep inside :func:`build_parking_lot`).
    """

    segments: int = 2
    host_bw_bps: float = 10 * GBPS
    segment_bw_bps: Optional[List[float]] = None
    host_link_delay_ns: int = 1 * USEC
    segment_delay_ns: Union[int, Sequence[int]] = 2 * USEC
    buffer_bytes: int = 4_000_000
    dt_alpha: float = 1.0
    mtu_payload: int = 1000
    int_stamping: bool = True
    #: routing policy (uniform knob; chain routes are single-candidate,
    #: so the policy is only ever consulted on fabrics)
    routing: str = "ecmp"
    routing_params: Optional[dict] = None

    def __post_init__(self):
        if self.segments < 1:
            raise ValueError("need at least one segment")
        if self.segment_bw_bps is None:
            self.segment_bw_bps = [self.host_bw_bps] * self.segments
        else:
            self.segment_bw_bps = list(self.segment_bw_bps)
        if len(self.segment_bw_bps) != self.segments:
            raise ValueError(
                f"segment_bw_bps has {len(self.segment_bw_bps)} rate(s) "
                f"but segments={self.segments}; provide one rate per segment"
            )
        if any(rate <= 0 for rate in self.segment_bw_bps):
            raise ValueError(
                f"segment rates must be positive, got {self.segment_bw_bps}"
            )
        if isinstance(self.segment_delay_ns, AbcSequence) and not isinstance(
            self.segment_delay_ns, str
        ):
            self.segment_delay_ns = list(self.segment_delay_ns)
            if len(self.segment_delay_ns) != self.segments:
                raise ValueError(
                    f"segment_delay_ns has {len(self.segment_delay_ns)} "
                    f"delay(s) but segments={self.segments}; provide one "
                    f"delay per segment (or a single scalar)"
                )
        if any(delay < 0 for delay in self.segment_delays_ns):
            raise ValueError(
                f"segment delays must be >= 0, got {self.segment_delay_ns}"
            )

    @property
    def segment_delays_ns(self) -> List[int]:
        """Per-segment propagation delays, normalized to a list."""
        if isinstance(self.segment_delay_ns, list):
            return self.segment_delay_ns
        return [self.segment_delay_ns] * self.segments

    # Host-id helpers -------------------------------------------------
    @property
    def e2e_src(self) -> int:
        """The end-to-end sender's host id."""
        return 0

    def cross_src(self, segment: int) -> int:
        """Cross-traffic source feeding segment ``segment``."""
        return 1 + segment

    @property
    def e2e_dst(self) -> int:
        """The end-to-end sink's host id."""
        return 1 + self.segments

    def cross_dst(self, segment: int) -> int:
        """Cross-traffic sink of segment ``segment``."""
        return 2 + self.segments + segment

    @property
    def num_hosts(self) -> int:
        """Total host count."""
        return 2 + 2 * self.segments


@register_topology(
    "parkinglot",
    params_cls=ParkingLotParams,
    aliases=("parking-lot",),
    description="switch chain with per-segment cross traffic (§3.5)",
)
def build_parking_lot(
    sim: Simulator, params: Optional[ParkingLotParams] = None
) -> Network:
    """Build the chain; segment link i is labeled ``link{i}``."""
    p = params or ParkingLotParams()
    net = Network(sim, name="parking-lot")
    net.host_bw_bps = p.host_bw_bps

    routing_spec = make_policy(p.routing, **(p.routing_params or {}))

    def _policy():
        return None if routing_spec.is_default_ecmp else routing_spec.create()

    switches = [
        net.add_switch(
            Switch(sim, i, f"s{i}",
                   buffer=SharedBuffer(p.buffer_bytes, p.dt_alpha),
                   policy=_policy())
        )
        for i in range(p.segments + 1)
    ]

    def add_host(host_id: int, switch: Switch) -> Host:
        host = Host(sim, host_id)
        host.attach_nic(
            EgressPort(
                sim, p.host_bw_bps, p.host_link_delay_ns, peer=switch,
                name=f"nic-{host_id}",
            )
        )
        downlink = switch.add_port(
            EgressPort(
                sim, p.host_bw_bps, p.host_link_delay_ns, peer=host,
                int_stamping=p.int_stamping, name=f"{switch.name}-down-{host_id}",
            )
        )
        switch.set_route(host_id, (downlink,))
        return host

    # Hosts must be added in id order (Network asserts density).
    hosts_plan = [(p.e2e_src, switches[0])]
    hosts_plan += [(p.cross_src(i), switches[i]) for i in range(p.segments)]
    hosts_plan += [(p.e2e_dst, switches[p.segments])]
    hosts_plan += [(p.cross_dst(i), switches[i + 1]) for i in range(p.segments)]
    hosts_plan.sort(key=lambda pair: pair[0])
    host_switch = {}
    for host_id, switch in hosts_plan:
        net.add_host(add_host(host_id, switch))
        host_switch[host_id] = switch

    # Segment links (forward) and their reverse twins for ACKs.
    segment_delays = p.segment_delays_ns
    for i in range(p.segments):
        forward = switches[i].add_port(
            EgressPort(
                sim, p.segment_bw_bps[i], segment_delays[i],
                peer=switches[i + 1], int_stamping=p.int_stamping,
                name=f"link{i}",
            )
        )
        reverse = switches[i + 1].add_port(
            EgressPort(
                sim, p.segment_bw_bps[i], segment_delays[i],
                peer=switches[i], int_stamping=p.int_stamping,
                name=f"link{i}-rev",
            )
        )
        net.label_port(f"link{i}", forward)
        net.label_port(f"link{i}-rev", reverse)

    # Routing: every switch forwards "rightward" to hosts attached at or
    # beyond the next switch, "leftward" for the way back.
    def switch_index_of(host_id: int) -> int:
        return switches.index(host_switch[host_id])

    for host_id in range(p.num_hosts):
        target = switch_index_of(host_id)
        for index, switch in enumerate(switches):
            if index == target:
                continue  # downlink route already installed
            if index < target:
                next_port = next(
                    port for port in switch.ports if port.name == f"link{index}"
                )
            else:
                next_port = next(
                    port
                    for port in switch.ports
                    if port.name == f"link{index - 1}-rev"
                )
            switch.set_route(host_id, (next_port,))

    # Base RTT: the end-to-end path (the longest one).
    e2e_rates = [p.host_bw_bps] + list(p.segment_bw_bps) + [p.host_bw_bps]
    e2e_props = (
        [p.host_link_delay_ns] + segment_delays + [p.host_link_delay_ns]
    )
    net.base_rtt_ns = path_base_rtt_ns(e2e_rates, e2e_props, p.mtu_payload)

    def path_profile(src: int, dst: int):
        lo = min(switch_index_of(src), switch_index_of(dst))
        hi = max(switch_index_of(src), switch_index_of(dst))
        rates = [p.host_bw_bps] + list(p.segment_bw_bps[lo:hi]) + [p.host_bw_bps]
        props = (
            [p.host_link_delay_ns]
            + segment_delays[lo:hi]
            + [p.host_link_delay_ns]
        )
        return rates, props

    net.path_profile_fn = path_profile
    net.sender_hosts = [p.e2e_src] + [p.cross_src(i) for i in range(p.segments)]
    net.receiver_hosts = [p.e2e_dst] + [
        p.cross_dst(i) for i in range(p.segments)
    ]
    # The slowest segment link is the contended port (first index on ties).
    tightest = min(range(p.segments), key=lambda i: p.segment_bw_bps[i])
    net.bottleneck_label = f"link{tightest}"

    # Pairing policy: flows land on the segment cross paths round-robin,
    # so every segment link carries an even mix of the requested flows —
    # the multi-bottleneck coexistence stress.
    def parking_lot_pairs(count, rng):
        return [
            (p.cross_src(i % p.segments), p.cross_dst(i % p.segments))
            for i in range(count)
        ]

    net.pair_policy_fn = parking_lot_pairs
    net.routing_name = routing_spec.name
    net.routing_params = dict(routing_spec.params)
    net.extras["params"] = p
    net.extras["switches"] = switches
    return net

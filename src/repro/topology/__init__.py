"""Topology builders for the paper's network settings, plus the registry.

Builders register themselves by name with
:mod:`repro.topology.registry` (mirroring the CC and scenario
registries), so experiments resolve topologies declaratively::

    from repro.topology import build_topology
    net = build_topology(sim, "fattree", num_pods=2, hosts_per_tor=4)

The built-ins:

* ``dumbbell`` — single-bottleneck model used throughout §2/§3 analysis
  and for controlled microbenchmarks;
* ``fattree`` — the §4.1 oversubscribed fat-tree (2 cores, 4 pods ×
  [2 ToR + 2 agg], 256 servers by default);
* ``parkinglot`` — the §3.5 multi-bottleneck switch chain;
* ``rdcn`` — the §5 reconfigurable DCN: ToRs joined by a rotating
  optical circuit switch plus a 25 Gbps packet network.
"""

from repro.topology.network import Network
from repro.topology.registry import (
    RegisteredTopology,
    build_topology,
    get_topology,
    make_topology_params,
    register_topology,
    topology_names,
)
from repro.topology.dumbbell import DumbbellParams, build_dumbbell
from repro.topology.fattree import FatTreeParams, build_fattree
from repro.topology.parkinglot import ParkingLotParams, build_parking_lot
from repro.topology.rdcn import RdcnParams, build_rdcn

__all__ = [
    "DumbbellParams",
    "FatTreeParams",
    "Network",
    "ParkingLotParams",
    "RdcnParams",
    "RegisteredTopology",
    "build_dumbbell",
    "build_fattree",
    "build_parking_lot",
    "build_rdcn",
    "build_topology",
    "get_topology",
    "make_topology_params",
    "register_topology",
    "topology_names",
]

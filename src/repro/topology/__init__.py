"""Topology builders for the paper's three network settings.

* :func:`repro.topology.dumbbell.build_dumbbell` — single-bottleneck model
  used throughout §2/§3 analysis and for controlled microbenchmarks;
* :func:`repro.topology.fattree.build_fattree` — the §4.1 oversubscribed
  fat-tree (2 cores, 4 pods × [2 ToR + 2 agg], 256 servers by default);
* :func:`repro.topology.rdcn.build_rdcn` — the §5 reconfigurable DCN:
  ToRs joined by a rotating optical circuit switch plus a 25 Gbps packet
  network.
"""

from repro.topology.network import Network
from repro.topology.dumbbell import DumbbellParams, build_dumbbell
from repro.topology.fattree import FatTreeParams, build_fattree
from repro.topology.parkinglot import ParkingLotParams, build_parking_lot
from repro.topology.rdcn import RdcnParams, build_rdcn

__all__ = [
    "DumbbellParams",
    "FatTreeParams",
    "Network",
    "ParkingLotParams",
    "RdcnParams",
    "build_dumbbell",
    "build_fattree",
    "build_parking_lot",
    "build_rdcn",
]

"""The §5 case study topology: a reconfigurable datacenter network.

ToR switches are connected to (i) a rotating optical circuit switch — each
ToR has a 100 Gbps circuit uplink with per-destination VOQs that drain only
while the schedule matches the pair — and (ii) a conventional packet
network, modeled as one central packet switch with 25 Gbps ToR links.

Per the paper, ToRs "forward packets exclusively on the circuit network
when available".  The generalization that makes reTCP expressible is the
``prebuffer_ns`` routing parameter: packets for destination ToR *d* are
steered into the circuit VOQ starting ``prebuffer_ns`` before the (i, d)
day opens (reTCP-1800µs / reTCP-600µs in Fig. 8), and over the packet
network otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.routing.registry import make_policy
from repro.sim.buffer import SharedBuffer
from repro.sim.circuit import CircuitPort, CircuitSchedule, RotorController
from repro.sim.engine import Simulator
from repro.sim.host import Host
from repro.sim.packet import DATA
from repro.sim.port import EgressPort
from repro.sim.switch import Switch
from repro.topology.network import Network, path_base_rtt_ns
from repro.topology.registry import register_topology
from repro.units import GBPS, USEC


@dataclass
class RdcnParams:
    """RDCN shape (defaults = paper §5: 25 ToRs x 10 servers, 225 µs days,
    20 µs nights, 100 Gbps circuits, 25 Gbps packet links)."""

    num_tors: int = 25
    hosts_per_tor: int = 10
    host_bw_bps: float = 25 * GBPS
    circuit_bw_bps: float = 100 * GBPS
    packet_bw_bps: float = 25 * GBPS
    day_ns: int = 225 * USEC
    night_ns: int = 20 * USEC
    host_link_delay_ns: int = 1 * USEC
    tor_link_delay_ns: int = 1 * USEC
    prebuffer_ns: int = 0
    buffer_bytes: int = 12_000_000
    dt_alpha: float = 4.0
    mtu_payload: int = 1000
    int_stamping: bool = True
    record_queuing: bool = True
    #: routing policy applied to the packet core (the ToRs steer between
    #: circuit and packet networks themselves — see :class:`RdcnToR`)
    routing: str = "ecmp"
    routing_params: Optional[dict] = None

    def tor_of_host(self, host_id: int) -> int:
        """Global ToR index of a host."""
        return host_id // self.hosts_per_tor


class RdcnToR(Switch):
    """A ToR that steers traffic between the circuit and packet networks.

    The routing decision is made per packet at arrival time:

    * local destination -> host downlink;
    * remote destination whose circuit is up (or opens within
      ``prebuffer_ns``) -> circuit VOQ;
    * otherwise -> packet-network uplink.
    """

    __slots__ = ("tor_id", "schedule", "prebuffer_ns", "circuit_port", "packet_port", "params")

    def __init__(self, sim, switch_id: int, name: str, *, tor_id: int,
                 schedule: CircuitSchedule, prebuffer_ns: int, params: RdcnParams,
                 buffer: Optional[SharedBuffer] = None):
        super().__init__(sim, switch_id, name, buffer=buffer)
        self.tor_id = tor_id
        self.schedule = schedule
        self.prebuffer_ns = prebuffer_ns
        self.circuit_port: Optional[CircuitPort] = None
        self.packet_port: Optional[EgressPort] = None
        self.params = params

    def receive(self, pkt) -> None:
        self.rx_packets += 1
        dst_tor = self.params.tor_of_host(pkt.dst)
        if dst_tor == self.tor_id:
            self.routes[pkt.dst][0].enqueue(pkt)
            return
        # Control packets (ACK/CNP/grant) always ride the packet network:
        # the reverse circuit of a matched pair is *not* up during the
        # forward day (matchings are permutations, not involutions), so
        # parking ACKs in a VOQ would stall every transport.
        if pkt.kind == DATA and self.schedule.circuit_admits(
            self.tor_id, dst_tor, self.sim.now, self.prebuffer_ns
        ):
            self.circuit_port.enqueue(pkt)
        else:
            self.packet_port.enqueue(pkt)


@register_topology(
    "rdcn",
    params_cls=RdcnParams,
    description="rotating-circuit RDCN plus a 25 Gbps packet network (§5)",
)
def build_rdcn(sim: Simulator, params: Optional[RdcnParams] = None) -> Network:
    """Construct the RDCN; the rotor controller starts immediately.

    ``net.extras``: ``schedule``, ``controller``, ``circuit_ports``,
    ``packet_switch``, ``params``.
    """
    p = params or RdcnParams()
    net = Network(sim, name="rdcn")
    net.host_bw_bps = p.host_bw_bps

    schedule = CircuitSchedule(p.num_tors, p.day_ns, p.night_ns)

    routing_spec = make_policy(p.routing, **(p.routing_params or {}))

    def _policy():
        return None if routing_spec.is_default_ecmp else routing_spec.create()

    packet_switch = Switch(
        sim,
        switch_id=10_000,
        name="packet-core",
        buffer=SharedBuffer(p.buffer_bytes, p.dt_alpha),
        policy=_policy(),
    )
    net.add_switch(packet_switch)

    tors: List[RdcnToR] = []
    for t in range(p.num_tors):
        tor = RdcnToR(
            sim,
            switch_id=t,
            name=f"rtor{t}",
            tor_id=t,
            schedule=schedule,
            prebuffer_ns=p.prebuffer_ns,
            params=p,
            buffer=SharedBuffer(p.buffer_bytes, p.dt_alpha),
        )
        tors.append(tor)
        net.add_switch(tor)

    # Hosts and downlinks.
    for host_id in range(p.num_tors * p.hosts_per_tor):
        tor = tors[p.tor_of_host(host_id)]
        host = Host(sim, host_id)
        host.attach_nic(
            EgressPort(
                sim,
                p.host_bw_bps,
                p.host_link_delay_ns,
                peer=tor,
                name=f"nic-{host_id}",
            )
        )
        downlink = tor.add_port(
            EgressPort(
                sim,
                p.host_bw_bps,
                p.host_link_delay_ns,
                peer=host,
                int_stamping=p.int_stamping,
                name=f"{tor.name}-down-{host_id}",
            )
        )
        tor.set_route(host_id, (downlink,))
        net.add_host(host)

    # Circuit uplinks (VOQ ports) and packet-network links.
    circuit_ports: List[CircuitPort] = []
    for t, tor in enumerate(tors):
        circuit = CircuitPort(
            sim,
            p.circuit_bw_bps,
            p.tor_link_delay_ns,
            tor_id=t,
            dst_tor_of=p.tor_of_host,
            int_stamping=p.int_stamping,
            name=f"circuit{t}",
            record_queuing=p.record_queuing,
        )
        tor.add_port(circuit)
        tor.circuit_port = circuit
        circuit_ports.append(circuit)
        net.label_port(f"circuit{t}", circuit)

        pkt_up = tor.add_port(
            EgressPort(
                sim,
                p.packet_bw_bps,
                p.tor_link_delay_ns,
                peer=packet_switch,
                int_stamping=p.int_stamping,
                name=f"tor{t}-pktup",
                record_queuing=p.record_queuing,
            )
        )
        tor.packet_port = pkt_up
        net.label_port(f"tor{t}-pktup", pkt_up)

        pkt_down = packet_switch.add_port(
            EgressPort(
                sim,
                p.packet_bw_bps,
                p.tor_link_delay_ns,
                peer=tor,
                int_stamping=p.int_stamping,
                name=f"pktcore-down{t}",
                record_queuing=p.record_queuing,
            )
        )
        for host_id in range(t * p.hosts_per_tor, (t + 1) * p.hosts_per_tor):
            packet_switch.set_route(host_id, (pkt_down,))

    controller = RotorController(sim, schedule, circuit_ports, tors)
    controller.start()

    # Base RTT over the packet network (the always-available path).
    net.base_rtt_ns = path_base_rtt_ns(
        [p.host_bw_bps, p.packet_bw_bps, p.packet_bw_bps, p.host_bw_bps],
        [
            p.host_link_delay_ns,
            p.tor_link_delay_ns,
            p.tor_link_delay_ns,
            p.host_link_delay_ns,
        ],
        p.mtu_payload,
    )
    packet_profile = (
        (p.host_bw_bps, p.packet_bw_bps, p.packet_bw_bps, p.host_bw_bps),
        (
            p.host_link_delay_ns,
            p.tor_link_delay_ns,
            p.tor_link_delay_ns,
            p.host_link_delay_ns,
        ),
    )
    local_profile = (
        (p.host_bw_bps, p.host_bw_bps),
        (p.host_link_delay_ns, p.host_link_delay_ns),
    )

    def path_profile(src: int, dst: int):
        if p.tor_of_host(src) == p.tor_of_host(dst):
            return local_profile
        return packet_profile

    net.path_profile_fn = path_profile

    # Pairing policy: shift each source one ToR to the right, so every
    # pair crosses the circuit/packet fabric (never stays rack-local).
    def rdcn_pairs(count, rng):
        total = p.num_tors * p.hosts_per_tor
        return [
            (i % total, (i + p.hosts_per_tor) % total) for i in range(count)
        ]

    net.pair_policy_fn = rdcn_pairs
    net.routing_name = routing_spec.name
    net.routing_params = dict(routing_spec.params)
    net.extras["params"] = p
    net.extras["schedule"] = schedule
    net.extras["controller"] = controller
    net.extras["circuit_ports"] = circuit_ports
    net.extras["packet_switch"] = packet_switch
    net.extras["tors"] = tors
    return net

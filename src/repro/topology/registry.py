"""Declarative topology registry, mirroring the CC and scenario registries.

Every builder (``dumbbell``, ``fattree``, ``parkinglot``, ``rdcn``)
registers itself with the :func:`register_topology` decorator, declaring
its typed params dataclass::

    @register_topology("dumbbell", params_cls=DumbbellParams)
    def build_dumbbell(sim, params=None) -> Network:
        ...

Experiments then resolve topologies by *name* instead of importing
concrete builders::

    from repro.topology.registry import build_topology, make_topology_params

    net = build_topology(sim, "fattree", num_pods=2, hosts_per_tor=4)

which keeps every scenario topology-parametric: a ``topology=`` config
field plus a ``topology_params`` dict is enough to move an experiment
from the dumbbell to the fat-tree.  Unknown parameter names fail eagerly
with the accepted set (mirroring ``Scenario.configure``).

Lookup is lazy: the built-in builder modules are imported on first use,
so ``import repro.topology.registry`` stays cheap and free of circular
imports.  ``python -m repro list`` prints the catalog.
"""

from __future__ import annotations

import dataclasses
import importlib
import inspect
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

#: canonical name -> entry
TOPOLOGIES: Dict[str, "RegisteredTopology"] = {}
#: normalized alias -> canonical name (canonical names are self-aliases)
_ALIASES: Dict[str, str] = {}

#: the modules that self-register built-in topology builders
BUILTIN_MODULES = (
    "repro.topology.dumbbell",
    "repro.topology.fattree",
    "repro.topology.parkinglot",
    "repro.topology.rdcn",
)


def normalize(name: str) -> str:
    """Canonical key form: lowercase, underscores/spaces -> dashes."""
    return name.lower().replace("_", "-").replace(" ", "-")


def _first_doc_line(obj) -> str:
    doc = inspect.getdoc(obj) or ""
    return doc.splitlines()[0].strip() if doc else ""


@dataclass(frozen=True)
class RegisteredTopology:
    """One registry entry: a named builder plus its params dataclass."""

    name: str
    params_cls: type
    builder: Callable
    aliases: Tuple[str, ...] = ()
    description: str = ""

    def param_fields(self) -> List[str]:
        """Names of the tunable params-dataclass fields."""
        return [f.name for f in dataclasses.fields(self.params_cls)]

    def make_params(self, params: Any = None, **overrides) -> Any:
        """Instantiate the params dataclass, rejecting unknown fields.

        Pass either a ready params object (returned as-is) or keyword
        overrides — not both.
        """
        if params is not None:
            if overrides:
                raise ValueError(
                    f"topology {self.name!r}: pass either a params object or "
                    f"keyword overrides, not both (got params and "
                    f"{', '.join(sorted(overrides))})"
                )
            if not isinstance(params, self.params_cls):
                raise TypeError(
                    f"topology {self.name!r} expects {self.params_cls.__name__}"
                    f" params, got {type(params).__name__}"
                )
            return params
        valid = set(self.param_fields())
        unknown = sorted(set(overrides) - valid)
        if unknown:
            raise ValueError(
                f"topology {self.name!r}: unknown param(s) "
                f"{', '.join(unknown)}; valid params: "
                f"{', '.join(sorted(valid))}"
            )
        return self.params_cls(**overrides)

    def build(self, sim, params: Any = None, **overrides):
        """Build the network from a params object or keyword overrides."""
        return self.builder(sim, self.make_params(params, **overrides))


def _add_entry(entry: RegisteredTopology) -> RegisteredTopology:
    existing = TOPOLOGIES.get(entry.name)
    if existing is not None:
        # Idempotent module re-import re-registers the identical builder;
        # anything else is a genuine name collision.
        if existing.builder is not entry.builder:
            raise ValueError(
                f"topology name {entry.name!r} already registered"
            )
    keys = [normalize(alias) for alias in (entry.name,) + entry.aliases]
    for alias, key in zip((entry.name,) + entry.aliases, keys):
        owner = _ALIASES.get(key)
        if owner is not None and owner != entry.name:
            raise ValueError(
                f"topology alias {alias!r} already maps to {owner!r}"
            )
    TOPOLOGIES[entry.name] = entry
    for key in keys:
        _ALIASES[key] = entry.name
    return entry


def register_topology(
    name: str,
    *,
    params_cls: type,
    aliases: Iterable[str] = (),
    description: str = "",
):
    """Function decorator: register a builder under ``name`` (+ aliases).

    The builder keeps its original signature (``(sim, params=None)``) and
    remains directly callable; registration only indexes it.
    """
    if not dataclasses.is_dataclass(params_cls):
        raise TypeError(
            f"topology {name!r}: params_cls must be a dataclass, got "
            f"{params_cls!r}"
        )

    def decorate(builder: Callable) -> Callable:
        _add_entry(
            RegisteredTopology(
                name=normalize(name),
                params_cls=params_cls,
                builder=builder,
                aliases=tuple(aliases),
                description=description or _first_doc_line(builder),
            )
        )
        return builder

    return decorate


def load_builtin_topologies() -> None:
    """Import every built-in builder module (idempotent)."""
    for module in BUILTIN_MODULES:
        importlib.import_module(module)


def get_topology(name: str) -> RegisteredTopology:
    """Look up a registry entry by name or alias; KeyError with catalog."""
    load_builtin_topologies()
    canonical = _ALIASES.get(normalize(name))
    if canonical is None:
        raise KeyError(
            f"unknown topology: {name!r} "
            f"(registered: {', '.join(topology_names())})"
        )
    return TOPOLOGIES[canonical]


def topology_names() -> List[str]:
    """Sorted canonical names of every registered topology."""
    load_builtin_topologies()
    return sorted(TOPOLOGIES)


def make_topology_params(name: str, params: Any = None, **overrides) -> Any:
    """Instantiate one topology's params dataclass by name."""
    return get_topology(name).make_params(params, **overrides)


def build_topology(sim, name: str, params: Any = None, **overrides):
    """Resolve ``name`` and build the network in one call."""
    return get_topology(name).build(sim, params, **overrides)

"""Dumbbell topology: N senders, M receivers, one shared bottleneck.

This is the paper's analytical single-bottleneck model (§2.1) made
concrete: every left-side host reaches every right-side host through one
``bottleneck_bw`` link, so the queue the control laws fight over is a
single labeled port (``net.port("bottleneck")``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.routing.registry import make_policy
from repro.sim.buffer import SharedBuffer
from repro.sim.engine import Simulator
from repro.sim.host import Host
from repro.sim.port import EgressPort
from repro.sim.switch import Switch
from repro.topology.network import Network, path_base_rtt_ns
from repro.topology.registry import register_topology
from repro.units import GBPS, USEC


@dataclass
class DumbbellParams:
    """Configuration of the dumbbell (defaults match §2's running example:
    a 100 Gbps bottleneck with ~20 µs base RTT)."""

    left_hosts: int = 2
    right_hosts: int = 1
    host_bw_bps: float = 100 * GBPS
    bottleneck_bw_bps: float = 100 * GBPS
    host_link_delay_ns: int = 1 * USEC
    bottleneck_delay_ns: int = 4 * USEC
    buffer_bytes: int = 4_000_000
    dt_alpha: float = 1.0
    mtu_payload: int = 1000
    int_stamping: bool = True
    #: routing policy (uniform knob; every dumbbell route has a single
    #: candidate, so the policy is only ever consulted on fabrics)
    routing: str = "ecmp"
    routing_params: Optional[dict] = None


@register_topology(
    "dumbbell",
    params_cls=DumbbellParams,
    description="N senders, M receivers, one shared bottleneck (§2.1)",
)
def build_dumbbell(sim: Simulator, params: Optional[DumbbellParams] = None) -> Network:
    """Build a dumbbell.  Host ids: left hosts first, then right hosts."""
    p = params or DumbbellParams()
    net = Network(sim, name="dumbbell")
    net.host_bw_bps = p.host_bw_bps

    routing_spec = make_policy(p.routing, **(p.routing_params or {}))

    def _policy():
        return None if routing_spec.is_default_ecmp else routing_spec.create()

    left = Switch(sim, switch_id=0, name="left",
                  buffer=SharedBuffer(p.buffer_bytes, p.dt_alpha), policy=_policy())
    right = Switch(sim, switch_id=1, name="right",
                   buffer=SharedBuffer(p.buffer_bytes, p.dt_alpha), policy=_policy())
    net.add_switch(left)
    net.add_switch(right)

    def make_host(host_id: int, switch: Switch) -> Host:
        host = Host(sim, host_id)
        nic = EgressPort(
            sim,
            p.host_bw_bps,
            p.host_link_delay_ns,
            peer=switch,
            name=f"nic-{host_id}",
        )
        host.attach_nic(nic)
        downlink = switch.add_port(
            EgressPort(
                sim,
                p.host_bw_bps,
                p.host_link_delay_ns,
                peer=host,
                int_stamping=p.int_stamping,
                name=f"{switch.name}-down-{host_id}",
            )
        )
        switch.set_route(host_id, (downlink,))
        net.add_host(host)
        return host

    left_hosts = [make_host(i, left) for i in range(p.left_hosts)]
    right_hosts = [
        make_host(p.left_hosts + i, right) for i in range(p.right_hosts)
    ]

    bottleneck = left.add_port(
        EgressPort(
            sim,
            p.bottleneck_bw_bps,
            p.bottleneck_delay_ns,
            peer=right,
            int_stamping=p.int_stamping,
            name="bottleneck",
        )
    )
    reverse = right.add_port(
        EgressPort(
            sim,
            p.bottleneck_bw_bps,
            p.bottleneck_delay_ns,
            peer=left,
            int_stamping=p.int_stamping,
            name="bottleneck-reverse",
        )
    )
    for host in right_hosts:
        left.set_route(host.host_id, (bottleneck,))
    for host in left_hosts:
        right.set_route(host.host_id, (reverse,))

    net.label_port("bottleneck", bottleneck)
    net.label_port("bottleneck-reverse", reverse)
    net.base_rtt_ns = path_base_rtt_ns(
        [p.host_bw_bps, p.bottleneck_bw_bps, p.host_bw_bps],
        [p.host_link_delay_ns, p.bottleneck_delay_ns, p.host_link_delay_ns],
        p.mtu_payload,
    )
    cross_profile = (
        (p.host_bw_bps, p.bottleneck_bw_bps, p.host_bw_bps),
        (p.host_link_delay_ns, p.bottleneck_delay_ns, p.host_link_delay_ns),
    )
    local_profile = (
        (p.host_bw_bps, p.host_bw_bps),
        (p.host_link_delay_ns, p.host_link_delay_ns),
    )

    def path_profile(src: int, dst: int):
        same_side = (src < p.left_hosts) == (dst < p.left_hosts)
        return local_profile if same_side else cross_profile

    net.path_profile_fn = path_profile
    net.sender_hosts = [h.host_id for h in left_hosts]
    net.receiver_hosts = [h.host_id for h in right_hosts]
    net.bottleneck_label = "bottleneck"
    net.shared_bottleneck = True
    net.routing_name = routing_spec.name
    net.routing_params = dict(routing_spec.params)
    net.extras["params"] = p
    return net

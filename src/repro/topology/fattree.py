"""The paper's evaluation topology (§4.1): an oversubscribed fat-tree.

Default parameters are the paper's: 2 core switches, 4 pods of
[2 ToRs + 2 aggregation switches], 32 servers per ToR (256 total),
25 Gbps server links, 100 Gbps fabric links (4:1 oversubscription at the
ToR), 5 µs propagation on core links and 1 µs elsewhere.  Buffers are
shared per switch with Dynamic Thresholds, sized by a bytes-per-Gbps
ratio modeled on Intel Tofino.

Scaled-down instances for the pure-Python event budget are produced by
passing smaller :class:`FatTreeParams`; the structure (and therefore the
congestion dynamics at ToR uplinks) is preserved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.routing.registry import make_policy
from repro.sim.buffer import SharedBuffer
from repro.sim.engine import Simulator
from repro.sim.host import Host
from repro.sim.port import EgressPort
from repro.sim.switch import Switch
from repro.topology.network import Network, path_base_rtt_ns
from repro.topology.registry import register_topology
from repro.units import GBPS, USEC


@dataclass
class FatTreeParams:
    """Fat-tree shape and link parameters (defaults = paper §4.1)."""

    num_pods: int = 4
    tors_per_pod: int = 2
    aggs_per_pod: int = 2
    num_cores: int = 2
    hosts_per_tor: int = 32
    host_bw_bps: float = 25 * GBPS
    fabric_bw_bps: float = 100 * GBPS
    host_link_delay_ns: int = 1 * USEC
    tor_agg_delay_ns: int = 1 * USEC
    agg_core_delay_ns: int = 5 * USEC
    buffer_bytes_per_gbps: int = 7_000  # Tofino-like bandwidth-buffer ratio
    dt_alpha: float = 1.0
    mtu_payload: int = 1000
    int_stamping: bool = True
    #: routing policy deployed on every switch (repro.routing registry
    #: name); parameterless "ecmp" keeps the inline byte-identical path
    routing: str = "ecmp"
    routing_params: Optional[dict] = None

    @property
    def num_tors(self) -> int:
        """Total ToR count."""
        return self.num_pods * self.tors_per_pod

    @property
    def num_hosts(self) -> int:
        """Total server count."""
        return self.num_tors * self.hosts_per_tor

    def tor_of_host(self, host_id: int) -> int:
        """Global ToR index of a host."""
        return host_id // self.hosts_per_tor

    def pod_of_host(self, host_id: int) -> int:
        """Pod index of a host."""
        return self.tor_of_host(host_id) // self.tors_per_pod

    def oversubscription(self) -> float:
        """Downlink-to-uplink capacity ratio at the ToR (paper: 4.0)."""
        down = self.hosts_per_tor * self.host_bw_bps
        up = self.aggs_per_pod * self.fabric_bw_bps
        return down / up


def _switch_buffer(p: FatTreeParams, total_bw_bps: float) -> SharedBuffer:
    capacity = int(p.buffer_bytes_per_gbps * total_bw_bps / GBPS)
    return SharedBuffer(max(capacity, 100_000), p.dt_alpha)


@register_topology(
    "fattree",
    params_cls=FatTreeParams,
    aliases=("fat-tree",),
    description="the §4.1 oversubscribed fat-tree (ECMP, labeled ToR uplinks)",
)
def build_fattree(sim: Simulator, params: Optional[FatTreeParams] = None) -> Network:
    """Construct the fat-tree and its ECMP routing tables.

    Host ids are dense: pod-major, then ToR, then host.  Labeled ports:
    ``tor{t}-up{a}`` for every ToR uplink (the oversubscribed links whose
    load the paper's workload generator targets).
    """
    p = params or FatTreeParams()
    net = Network(sim, name="fattree")
    net.host_bw_bps = p.host_bw_bps

    # Resolve the routing policy once (unknown names/params fail here);
    # parameterless ECMP passes policy=None so every switch keeps the
    # inline byte-identical fast path.  Policy *instances* are
    # per-switch (pins, cursors, and counters live in the switch).
    routing_spec = make_policy(p.routing, **(p.routing_params or {}))

    def _policy():
        return None if routing_spec.is_default_ecmp else routing_spec.create()

    switch_ids = iter(range(1_000_000))

    # --- nodes ------------------------------------------------------
    tor_bw = p.hosts_per_tor * p.host_bw_bps + p.aggs_per_pod * p.fabric_bw_bps
    agg_bw = (p.tors_per_pod + p.num_cores) * p.fabric_bw_bps
    core_bw = p.num_pods * p.aggs_per_pod * p.fabric_bw_bps

    tors: List[Switch] = [
        net.add_switch(
            Switch(
                sim,
                next(switch_ids),
                f"tor{t}",
                buffer=_switch_buffer(p, tor_bw),
                policy=_policy(),
            )
        )
        for t in range(p.num_tors)
    ]
    aggs: List[List[Switch]] = [
        [
            net.add_switch(
                Switch(
                    sim,
                    next(switch_ids),
                    f"agg{pod}-{a}",
                    buffer=_switch_buffer(p, agg_bw),
                    policy=_policy(),
                )
            )
            for a in range(p.aggs_per_pod)
        ]
        for pod in range(p.num_pods)
    ]
    cores: List[Switch] = [
        net.add_switch(
            Switch(
                sim,
                next(switch_ids),
                f"core{c}",
                buffer=_switch_buffer(p, core_bw),
                policy=_policy(),
            )
        )
        for c in range(p.num_cores)
    ]

    # --- hosts and ToR downlinks -------------------------------------
    for host_id in range(p.num_hosts):
        tor = tors[p.tor_of_host(host_id)]
        host = Host(sim, host_id)
        host.attach_nic(
            EgressPort(
                sim,
                p.host_bw_bps,
                p.host_link_delay_ns,
                peer=tor,
                name=f"nic-{host_id}",
            )
        )
        downlink = tor.add_port(
            EgressPort(
                sim,
                p.host_bw_bps,
                p.host_link_delay_ns,
                peer=host,
                int_stamping=p.int_stamping,
                name=f"{tor.name}-down-{host_id}",
            )
        )
        tor.set_route(host_id, (downlink,))
        net.add_host(host)

    # --- ToR <-> Agg links -------------------------------------------
    tor_uplinks: List[List[EgressPort]] = [[] for _ in range(p.num_tors)]
    agg_downlinks = {}  # (pod, a, tor_in_pod) -> port
    for pod in range(p.num_pods):
        for t in range(p.tors_per_pod):
            tor_index = pod * p.tors_per_pod + t
            tor = tors[tor_index]
            for a, agg in enumerate(aggs[pod]):
                up = tor.add_port(
                    EgressPort(
                        sim,
                        p.fabric_bw_bps,
                        p.tor_agg_delay_ns,
                        peer=agg,
                        int_stamping=p.int_stamping,
                        name=f"tor{tor_index}-up{a}",
                    )
                )
                tor_uplinks[tor_index].append(up)
                net.label_port(f"tor{tor_index}-up{a}", up)
                down = agg.add_port(
                    EgressPort(
                        sim,
                        p.fabric_bw_bps,
                        p.tor_agg_delay_ns,
                        peer=tor,
                        int_stamping=p.int_stamping,
                        name=f"agg{pod}-{a}-down{t}",
                    )
                )
                agg_downlinks[(pod, a, t)] = down

    # --- Agg <-> Core links ------------------------------------------
    agg_uplinks = {}  # (pod, a) -> list of ports to cores
    core_downlinks = {}  # (c, pod) -> list of ports (one per agg)
    for pod in range(p.num_pods):
        for a, agg in enumerate(aggs[pod]):
            ups = []
            for c, core in enumerate(cores):
                up = agg.add_port(
                    EgressPort(
                        sim,
                        p.fabric_bw_bps,
                        p.agg_core_delay_ns,
                        peer=core,
                        int_stamping=p.int_stamping,
                        name=f"agg{pod}-{a}-up{c}",
                    )
                )
                ups.append(up)
                down = core.add_port(
                    EgressPort(
                        sim,
                        p.fabric_bw_bps,
                        p.agg_core_delay_ns,
                        peer=agg,
                        int_stamping=p.int_stamping,
                        name=f"core{c}-down{pod}-{a}",
                    )
                )
                core_downlinks.setdefault((c, pod), []).append(down)
            agg_uplinks[(pod, a)] = ups

    # --- routing tables ----------------------------------------------
    for host_id in range(p.num_hosts):
        dst_tor = p.tor_of_host(host_id)
        dst_pod = p.pod_of_host(host_id)
        dst_tor_in_pod = dst_tor % p.tors_per_pod
        for tor_index, tor in enumerate(tors):
            if tor_index == dst_tor:
                continue  # downlink route already set
            tor.set_route(host_id, tuple(tor_uplinks[tor_index]))
        for pod in range(p.num_pods):
            for a, agg in enumerate(aggs[pod]):
                if pod == dst_pod:
                    agg.set_route(host_id, (agg_downlinks[(pod, a, dst_tor_in_pod)],))
                else:
                    agg.set_route(host_id, tuple(agg_uplinks[(pod, a)]))
        for c, core in enumerate(cores):
            core.set_route(host_id, tuple(core_downlinks[(c, dst_pod)]))

    # --- per-pair base RTTs for ideal-FCT denominators ----------------
    same_tor_rtt = path_base_rtt_ns(
        [p.host_bw_bps, p.host_bw_bps],
        [p.host_link_delay_ns, p.host_link_delay_ns],
        p.mtu_payload,
    )
    same_pod_rtt = path_base_rtt_ns(
        [p.host_bw_bps, p.fabric_bw_bps, p.fabric_bw_bps, p.host_bw_bps],
        [
            p.host_link_delay_ns,
            p.tor_agg_delay_ns,
            p.tor_agg_delay_ns,
            p.host_link_delay_ns,
        ],
        p.mtu_payload,
    )

    def path_rtt(src: int, dst: int) -> int:
        if p.tor_of_host(src) == p.tor_of_host(dst):
            return same_tor_rtt
        if p.pod_of_host(src) == p.pod_of_host(dst):
            return same_pod_rtt
        return net.base_rtt_ns

    net.path_rtt_fn = path_rtt

    _profiles = {
        "tor": (
            (p.host_bw_bps, p.host_bw_bps),
            (p.host_link_delay_ns, p.host_link_delay_ns),
        ),
        "pod": (
            (p.host_bw_bps, p.fabric_bw_bps, p.fabric_bw_bps, p.host_bw_bps),
            (
                p.host_link_delay_ns,
                p.tor_agg_delay_ns,
                p.tor_agg_delay_ns,
                p.host_link_delay_ns,
            ),
        ),
        "inter": (
            (
                p.host_bw_bps,
                p.fabric_bw_bps,
                p.fabric_bw_bps,
                p.fabric_bw_bps,
                p.fabric_bw_bps,
                p.host_bw_bps,
            ),
            (
                p.host_link_delay_ns,
                p.tor_agg_delay_ns,
                p.agg_core_delay_ns,
                p.agg_core_delay_ns,
                p.tor_agg_delay_ns,
                p.host_link_delay_ns,
            ),
        ),
    }

    def path_profile(src: int, dst: int):
        if p.tor_of_host(src) == p.tor_of_host(dst):
            return _profiles["tor"]
        if p.pod_of_host(src) == p.pod_of_host(dst):
            return _profiles["pod"]
        return _profiles["inter"]

    net.path_profile_fn = path_profile

    # --- base RTT: worst case is the inter-pod path -------------------
    net.base_rtt_ns = path_base_rtt_ns(
        [
            p.host_bw_bps,
            p.fabric_bw_bps,
            p.fabric_bw_bps,
            p.fabric_bw_bps,
            p.fabric_bw_bps,
            p.host_bw_bps,
        ],
        [
            p.host_link_delay_ns,
            p.tor_agg_delay_ns,
            p.agg_core_delay_ns,
            p.agg_core_delay_ns,
            p.tor_agg_delay_ns,
            p.host_link_delay_ns,
        ],
        p.mtu_payload,
    )
    # Pairing policy: seeded host-level permutations (derangements), the
    # canonical fabric stress — no receiver NIC is oversubscribed, so
    # contention lands on the oversubscribed ToR uplinks.  Counts beyond
    # one permutation draw further derangements from the same RNG.
    def fattree_pairs(count, rng):
        # Imported lazily: repro.workloads pulls in arrivals, which needs
        # FatTreeParams from this module (circular at import time).
        from repro.workloads.permutation import permutation_pairs

        pairs = []
        while len(pairs) < count:
            pairs.extend(permutation_pairs(rng, p.num_hosts))
        return pairs[:count]

    net.pair_policy_fn = fattree_pairs
    net.routing_name = routing_spec.name
    net.routing_params = dict(routing_spec.params)
    net.extras["params"] = p
    net.extras["tor_uplinks"] = tor_uplinks
    net.extras["tors"] = tors
    return net

"""The ``repro lint`` subcommand: text/JSON reports and the rule catalog.

Exit status: 0 on a clean tree, 1 when findings survive suppressions —
CI runs ``python -m repro lint --json`` as a blocking job and tier-1
runs the same battery in-process (``tests/test_lint_self.py``).
"""

from __future__ import annotations

import json
from typing import List

from repro.lint import registry as rule_registry
from repro.lint.framework import DEFAULT_TARGET_DIRS, run_paths


def add_lint_parser(sub) -> None:
    """Register the ``lint`` subparser on an argparse subparsers object."""
    lint_p = sub.add_parser(
        "lint",
        help="statically check the simulator's determinism/pool/registry "
        "contracts (AST-based; see docs/INVARIANTS.md)",
    )
    lint_p.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: "
        + " ".join(f"{d}/" for d in DEFAULT_TARGET_DIRS)
        + " under the repo root)",
    )
    lint_p.add_argument(
        "--json", action="store_true", help="machine-readable report on stdout"
    )
    lint_p.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rule catalog and exit",
    )
    lint_p.add_argument(
        "--select",
        metavar="RULE[,RULE...]",
        help="run only these rule ids (disables the unused-suppression check)",
    )


def _catalog_lines() -> List[str]:
    rule_registry.load_builtin_rules()
    lines = ["lint rules (suppress per line with '# lint: disable=<id>'):"]
    by_category = {}
    for rule_id in sorted(rule_registry.RULES):
        entry = rule_registry.RULES[rule_id]
        by_category.setdefault(entry.category, []).append(entry)
    for category in sorted(by_category):
        lines.append(f"{category}:")
        for entry in by_category[category]:
            lines.append(f"  {entry.id:26s} {entry.description}")
            if entry.contract:
                lines.append(f"  {'':26s}   contract: {entry.contract}")
    return lines


def cmd_lint(args) -> int:
    """Run the linter; returns the process exit status."""
    if args.list_rules:
        for line in _catalog_lines():
            print(line)
        return 0
    select = args.select.split(",") if args.select else None
    try:
        report = run_paths(args.paths or None, select=select)
    except KeyError as exc:
        raise SystemExit(exc.args[0])
    if args.json:
        print(json.dumps(report.to_json_dict(), indent=1, sort_keys=True))
    else:
        for finding in report.findings:
            print(finding.render())
        summary = (
            f"{len(report.findings)} finding(s) in {report.files_checked} "
            f"file(s) checked ({report.suppressed} suppressed)"
        )
        print(summary)
    return 0 if report.ok else 1

"""Pool-lifetime rule: the AckFeedback / PacketPool contract (PR 3).

Contract: ``docs/INVARIANTS.md#ackfeedback-lifetime`` — the transport
reuses the :class:`~repro.cc.base.AckFeedback` view and recycles its
``HopRecord`` objects into the simulator's packet pool the moment
``on_ack`` returns.  A CC law that stores the feedback object, its
``int_hops`` list, or any hop record on ``self`` reads recycled (and
soon overwritten) telemetry on the next acknowledgment.  Copy scalars,
as the built-in INT laws do with their per-port ``(ts, qlen, tx_bytes)``
snapshots.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.lint.framework import Finding, LintContext, Rule
from repro.lint.registry import register_rule

#: container-mutation method names that store their argument
_STORE_METHODS = frozenset({"append", "extend", "add", "insert", "appendleft"})


def _self_rooted(node: ast.AST) -> bool:
    """True when an attribute/subscript chain bottoms out at ``self``."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return isinstance(node, ast.Name) and node.id == "self"


class _TaintChecker:
    """Tracks names that alias the feedback view / hop records."""

    def __init__(self, ctx: LintContext, feedback_name: str):
        self.ctx = ctx
        self.tainted: Set[str] = {feedback_name}

    def _is_require_int(self, node: ast.AST) -> bool:
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "require_int"
        )

    def expr_taints(self, node: ast.AST) -> bool:
        """Does evaluating ``node`` yield (or contain) pool-owned objects?

        Scalar attribute reads (``hop.ts_ns``, ``feedback.rtt_ns``) are
        clean; the bare names, ``.int_hops``, ``require_int(...)``, and
        shallow copies / subscripts of any of those are not.
        """
        for sub in ast.walk(node):
            if self._is_require_int(sub):
                return True
            if isinstance(sub, ast.Name) and sub.id in self.tainted:
                parent = self.ctx.parents.get(sub)
                # reading a scalar attribute off a tainted name is the
                # sanctioned copy idiom — unless the attribute is the
                # hop-record list itself
                if (
                    isinstance(parent, ast.Attribute)
                    and parent.value is sub
                    and parent.attr != "int_hops"
                ):
                    continue
                return True
        return False

    def note_assignment(self, stmt: ast.Assign) -> None:
        """Propagate taint through local aliases (hops = feedback.int_hops)."""
        if not self.expr_taints(stmt.value):
            return
        for target in stmt.targets:
            for leaf in ast.walk(target):
                if isinstance(leaf, ast.Name):
                    self.tainted.add(leaf.id)

    def note_loop(self, node) -> None:
        """A loop over a tainted iterable binds tainted hop records."""
        if self.expr_taints(node.iter):
            for leaf in ast.walk(node.target):
                if isinstance(leaf, ast.Name):
                    self.tainted.add(leaf.id)


@register_rule(
    "feedback-retention",
    category="pool-lifetime",
    contract="docs/INVARIANTS.md#ackfeedback-lifetime",
)
class FeedbackRetentionRule(Rule):
    """on_ack must not store the feedback view, int_hops, or hop records on self.

    Heuristic taint analysis inside every ``on_ack(self, sender,
    feedback)`` body: the feedback parameter, ``feedback.int_hops``,
    ``require_int(...)`` results, loop variables over them, and local
    aliases are tainted; assigning a tainted value to any ``self``-rooted
    target (or ``self.x.append(tainted)``) is a violation.  Reading
    scalar attributes (``hop.qlen``, ``feedback.rtt_ns``) is the
    sanctioned copy idiom and stays clean.  Passing hops to helper
    *calls* is allowed — the callee is responsible for copying.
    """

    def applies(self, ctx: LintContext) -> bool:
        return ctx.in_package_dirs("cc", "core")

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name != "on_ack" or len(node.args.args) < 3:
                continue
            feedback_name = node.args.args[2].arg
            yield from self._check_on_ack(ctx, node, feedback_name)

    def _check_on_ack(self, ctx, func, feedback_name) -> Iterator[Finding]:
        taint = _TaintChecker(ctx, feedback_name)
        # Two passes in source order: first propagate aliases (loops and
        # local assignments appear before — or on — the lines that store),
        # then flag self-rooted stores of tainted values.
        body_nodes = [n for n in ast.walk(func) if n is not func]
        for node in sorted(
            (n for n in body_nodes if hasattr(n, "lineno")),
            key=lambda n: (n.lineno, n.col_offset),
        ):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                taint.note_loop(node)
            elif isinstance(node, ast.comprehension):
                pass  # comprehension targets don't leak into the body scope
            elif isinstance(node, ast.Assign):
                targets_self = any(_self_rooted(t) for t in node.targets)
                if targets_self and taint.expr_taints(node.value):
                    yield self.finding(
                        ctx,
                        node,
                        "on_ack stores pool-owned feedback state on self — "
                        "the transport recycles AckFeedback/HopRecords when "
                        "on_ack returns; copy scalar values instead",
                    )
                elif not targets_self:
                    taint.note_assignment(node)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                if (
                    node.value is not None
                    and _self_rooted(node.target)
                    and taint.expr_taints(node.value)
                ):
                    yield self.finding(
                        ctx,
                        node,
                        "on_ack stores pool-owned feedback state on self — "
                        "copy scalar values instead",
                    )
            elif isinstance(node, ast.Call):
                if (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in _STORE_METHODS
                    and _self_rooted(node.func.value)
                    and any(taint.expr_taints(arg) for arg in node.args)
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"on_ack stores pool-owned feedback state via "
                        f".{node.func.attr}() on self — the records are "
                        "recycled when on_ack returns; copy scalars instead",
                    )

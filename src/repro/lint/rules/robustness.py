"""Robustness rules: orchestration code must never block without a bound.

Contract: ``docs/INVARIANTS.md#subprocess-timeout-discipline`` — the
campaign layer exists to survive hung and crashed workers, so every
potentially-blocking wait on another process (or a future standing in
for one) must carry an explicit ``timeout=``.  One unbounded
``proc.wait()`` re-introduces exactly the failure mode the orchestrator
is built to contain: a single wedged worker hangs the whole campaign.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.framework import Finding, LintContext, Rule
from repro.lint.registry import register_rule

#: subprocess module entry points that accept (and here require) timeout=
_SUBPROCESS_CALLS = frozenset(
    {
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
    }
)

#: blocking methods on Popen/Future-like objects that require timeout=
_BLOCKING_METHODS = frozenset({"wait", "communicate", "result"})


def _has_timeout_kw(node: ast.Call) -> bool:
    return any(
        kw.arg == "timeout" or kw.arg is None  # **kwargs may carry it
        for kw in node.keywords
    )


@register_rule(
    "subprocess-timeout",
    category="robustness",
    contract="docs/INVARIANTS.md#subprocess-timeout-discipline",
)
class SubprocessTimeoutRule(Rule):
    """Every blocking subprocess/pool wait in campaign/ carries timeout=.

    Flags ``subprocess.run/call/check_call/check_output`` invocations and
    ``.wait()``/``.communicate()``/``.result()`` method calls without an
    explicit ``timeout=`` keyword.  The method check is name-based (the
    linter cannot type the receiver), which is the point: inside the
    orchestration layer *anything* named like a blocking wait must state
    its bound, so a wedged worker is always reclaimable by the
    orchestrator's clock.
    """

    def applies(self, ctx: LintContext) -> bool:
        return ctx.in_package_dirs("campaign")

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call) or _has_timeout_kw(node):
                continue
            dotted = ctx.imports.dotted(node.func)
            if dotted in _SUBPROCESS_CALLS:
                yield self.finding(
                    ctx,
                    node,
                    f"{dotted}() without timeout= — a wedged child would "
                    "hang the campaign; pass an explicit bound",
                )
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _BLOCKING_METHODS
            ):
                yield self.finding(
                    ctx,
                    node,
                    f".{node.func.attr}() without timeout= — blocking "
                    "waits in campaign/ must be bounded so hung workers "
                    "stay reclaimable",
                )

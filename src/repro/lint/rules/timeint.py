"""Integer-time rule: the simulation clock is integer nanoseconds.

Contract: ``docs/INVARIANTS.md#integer-nanosecond-time`` — event times
are exact integers; a float flowing into a scheduling call (or any
``*_ns`` argument) makes tie-breaks depend on floating-point rounding,
which is exactly how figure series stop being byte-identical.  Convert
explicitly (``int(...)``, ``round(...)``, ``//``) at the boundary.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.framework import Finding, LintContext, Rule
from repro.lint.registry import register_rule

#: scheduling entry points whose first positional argument is a time/delay
SCHEDULING_METHODS = frozenset(
    {"at", "after", "at_cancellable", "after_cancellable"}
)

#: calls that launder a float back into an int
_INT_CASTS = frozenset(
    {"int", "round", "math.floor", "math.ceil", "math.trunc"}
)


@register_rule(
    "float-ns-time",
    category="integer-time",
    contract="docs/INVARIANTS.md#integer-nanosecond-time",
)
class FloatNsTimeRule(Rule):
    """No float literals or / division flowing into at(/after(/*_ns args.

    Flags a float literal or true division (``/``) inside the first
    positional argument of ``.at(...)``/``.after(...)`` (and the
    ``*_cancellable`` variants) or inside any ``<name>_ns=`` keyword
    argument, unless wrapped in ``int(...)``/``round(...)``/
    ``math.floor``/``math.ceil``/``math.trunc``.  Use integer arithmetic
    (``//``, ``*`` with integer unit constants) or cast at the boundary.
    """

    def applies(self, ctx: LintContext) -> bool:
        return ctx.in_package_dirs(
            "sim", "cc", "core", "transport", "topology", "experiments", "workloads"
        )

    def _float_leak(self, ctx: LintContext, expr: ast.AST) -> Optional[ast.AST]:
        """First float literal / true division not wrapped in an int cast."""

        def scan(node: ast.AST) -> Optional[ast.AST]:
            if isinstance(node, ast.Call):
                dotted = ctx.imports.dotted(node.func)
                if dotted in _INT_CASTS:
                    return None  # result is integral; ignore the subtree
            if isinstance(node, ast.Constant) and isinstance(node.value, float):
                return node
            if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
                return node
            for child in ast.iter_child_nodes(node):
                hit = scan(child)
                if hit is not None:
                    return hit
            return None

        return scan(expr)

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in SCHEDULING_METHODS
                and node.args
            ):
                leak = self._float_leak(ctx, node.args[0])
                if leak is not None:
                    yield self.finding(
                        ctx,
                        leak,
                        f"float arithmetic flows into .{node.func.attr}() "
                        "time argument — event times are integer "
                        "nanoseconds; use // or cast with int()/round()",
                    )
            for kw in node.keywords:
                if kw.arg is None or not kw.arg.endswith("_ns"):
                    continue
                leak = self._float_leak(ctx, kw.value)
                if leak is not None:
                    yield self.finding(
                        ctx,
                        leak,
                        f"float arithmetic flows into {kw.arg}= — "
                        "*_ns values are integer nanoseconds; use // or "
                        "cast with int()/round()",
                    )

"""Env-isolation rule: os.environ stays out of simulation code.

Contract: ``docs/INVARIANTS.md#environment-isolation`` — a committed
figure series must not change because a shell variable was set.
Environment reads are confined to the process entry points (``cli.py``),
the timing harnesses (``perf/``), and the ``examples/`` scripts (whose
``HORIZON_NS`` knob exists for CI smoke).  Everything else receives its
configuration through explicit scenario/config objects.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.framework import Finding, LintContext, Rule
from repro.lint.registry import register_rule


@register_rule(
    "env-read",
    category="env-isolation",
    contract="docs/INVARIANTS.md#environment-isolation",
)
class EnvReadRule(Rule):
    """No os.environ / os.getenv outside cli.py, perf/, and examples/.

    Any ``os.environ`` use (subscript, ``.get``, iteration) or
    ``os.getenv`` call counts as a read — configuration must flow through
    config objects so runs are reproducible from their provenance alone.
    """

    def applies(self, ctx: LintContext) -> bool:
        if ctx.pkg_path == "cli.py":
            return False
        if ctx.in_package_dirs("perf") or ctx.under_dir("examples"):
            return False
        return True

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.Attribute, ast.Name)):
                # `os.environ` is one Attribute node (its inner Name is
                # just `os`); a from-imported `environ` is a bare Name —
                # each use yields exactly one finding.
                if ctx.imports.dotted(node) == "os.environ":
                    yield self.finding(
                        ctx,
                        node,
                        "os.environ read outside cli.py/perf//examples/ — "
                        "thread configuration through explicit config objects",
                    )
            if isinstance(node, ast.Call):
                if ctx.imports.dotted(node.func) == "os.getenv":
                    yield self.finding(
                        ctx,
                        node,
                        "os.getenv read outside cli.py/perf//examples/ — "
                        "thread configuration through explicit config objects",
                    )

"""Meta rule: the linter's own hygiene (stale suppressions).

Contract: ``docs/INVARIANTS.md#suppressions`` — a ``# lint: disable=``
escape documents a *current*, justified exception.  Once the code it
excused changes, a stale suppression silently blinds the linter to new
violations on that line, so staleness is itself a finding.
"""

from __future__ import annotations

from typing import Iterator

from repro.lint.framework import Finding, LintContext, Rule
from repro.lint.registry import register_rule


@register_rule(
    "unused-suppression",
    category="lint",
    contract="docs/INVARIANTS.md#suppressions",
)
class UnusedSuppressionRule(Rule):
    """# lint: disable= comments must suppress an actual finding.

    Findings are produced by the framework after suppression matching
    (:func:`repro.lint.framework.lint_file`), not by this class — it
    exists so the check appears in ``--list-rules`` and shares the rule
    documentation conventions.  These findings are not themselves
    suppressable, and the check only runs with the full battery (under
    ``--select`` a suppression for an unselected rule is not stale).
    """

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        return iter(())

"""Registry-hygiene rules: resolution goes through registries only.

Contract: ``docs/INVARIANTS.md#registry-only-resolution`` — experiments
resolve topologies via :func:`repro.topology.registry.build_topology`
(PR 5 removed every concrete-builder import), every CC module
self-registers via :func:`repro.cc.registry.register` /
``register_algorithm``, and every routing-policy module self-registers
via :func:`repro.routing.registry.register_policy` so the catalog,
requirement union, and parameter validation see all deployable schemes.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

import os

from repro.lint.framework import REPO_ROOT, Finding, LintContext, Rule
from repro.lint.registry import register_rule

#: topology modules experiments may import (everything else is a
#: concrete builder and must be reached through the registry)
ALLOWED_TOPOLOGY_MODULES = frozenset({"registry", "network"})


def builder_modules(repo_root: str = REPO_ROOT) -> frozenset:
    """Concrete builder modules: every ``repro/topology/*.py`` that is not
    infrastructure.  Grounded in the checkout so new builders are covered
    the moment their file lands; falls back to the known set when the
    package directory is not present (installed without sources)."""
    topo_dir = os.path.join(repo_root, "src", "repro", "topology")
    names = set()
    if os.path.isdir(topo_dir):
        for entry in os.listdir(topo_dir):
            if entry.endswith(".py"):
                names.add(entry[:-3])
    else:
        names = {"dumbbell", "fattree", "parkinglot", "rdcn"}
    return frozenset(names - set(ALLOWED_TOPOLOGY_MODULES) - {"__init__"})


def _type_checking_imports(tree: ast.AST) -> Set[ast.AST]:
    """Import nodes guarded by ``if TYPE_CHECKING:`` (annotation-only)."""
    guarded: Set[ast.AST] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.If):
            continue
        test = node.test
        is_tc = (isinstance(test, ast.Name) and test.id == "TYPE_CHECKING") or (
            isinstance(test, ast.Attribute) and test.attr == "TYPE_CHECKING"
        )
        if not is_tc:
            continue
        for child in node.body:
            for sub in ast.walk(child):
                if isinstance(sub, (ast.Import, ast.ImportFrom)):
                    guarded.add(sub)
    return guarded


def _topology_submodule(module: str) -> str:
    """'repro.topology.fattree' / '..topology.fattree' -> 'fattree' ('' if
    the import is the package itself or not a topology module at all)."""
    stripped = module.lstrip(".")
    for prefix in ("repro.topology", "topology"):
        if stripped == prefix:
            return ""
        if stripped.startswith(prefix + "."):
            return stripped[len(prefix) + 1:].split(".")[0]
    return ""


@register_rule(
    "concrete-topology-import",
    category="registry",
    contract="docs/INVARIANTS.md#registry-only-resolution",
)
class ConcreteTopologyImportRule(Rule):
    """experiments/ must not import concrete topology builder modules.

    Importing ``repro.topology.fattree`` (or any builder module) from an
    experiment bypasses the registry's parameter validation and pairing
    policies and re-couples experiments to builder internals.  Resolve
    through ``build_topology``/``make_topology_params``;
    ``if TYPE_CHECKING:`` imports of params types are exempt.
    """

    def applies(self, ctx: LintContext) -> bool:
        return ctx.in_package_dirs("experiments")

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        guarded = _type_checking_imports(ctx.tree)
        builders = builder_modules()
        for node in ast.walk(ctx.tree):
            if node in guarded:
                continue
            modules = []
            if isinstance(node, ast.Import):
                modules = [alias.name for alias in node.names]
            elif isinstance(node, ast.ImportFrom):
                module = "." * node.level + (node.module or "")
                if _topology_submodule(module + ".probe") == "probe":
                    # ``from repro.topology import fattree`` — the
                    # imported names themselves may be submodules
                    modules = [module + "." + alias.name for alias in node.names]
                else:
                    modules = [module]
            for module in modules:
                sub = _topology_submodule(module)
                if sub in builders:
                    yield self.finding(
                        ctx,
                        node,
                        f"experiments import concrete topology module "
                        f"{module!r} — resolve through "
                        "repro.topology.registry (build_topology/"
                        "make_topology_params); TYPE_CHECKING-only "
                        "imports of params types are exempt",
                    )


@register_rule(
    "unregistered-cc",
    category="registry",
    contract="docs/INVARIANTS.md#registry-only-resolution",
)
class UnregisteredCcRule(Rule):
    """Every CC module must register a scheme (register/register_algorithm).

    A CC scheme outside the registry is invisible to ``repro list``, the
    conformance suite, FlowDriver's requirement union, and parameter
    validation.  Each module under ``repro/cc/`` (except ``__init__``,
    ``registry``) must carry at least one ``@register(...)`` decorator or
    ``register_algorithm(...)`` call.
    """

    def applies(self, ctx: LintContext) -> bool:
        return ctx.in_package_dirs("cc") and ctx.basename() not in (
            "__init__.py",
            "registry.py",
        )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        if _calls_any(ctx.tree, ("register", "register_algorithm")):
            return
        yield Finding(
            path=ctx.rel_path,
            line=1,
            col=0,
            rule_id=self.id,
            message=(
                "CC module registers no scheme — decorate the class with "
                "@register(...) or call register_algorithm(...) so the "
                "registry sees it (move pure helpers out of repro/cc/)"
            ),
        )


def _calls_any(tree: ast.AST, names) -> bool:
    """True when the module calls (or decorates with) any of ``names``."""
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if name in names:
            return True
    return False


def _mentions_ckernel(dotted: str) -> bool:
    """True when a dotted import path reaches into ``_ckernel``."""
    return "_ckernel" in dotted.lstrip(".").split(".")


@register_rule(
    "compiled-core-import",
    category="registry",
    contract="docs/INVARIANTS.md#compiled-core-gating",
)
class CompiledCoreImportRule(Rule):
    """Only the gated loader may import the compiled core (_ckernel).

    ``repro.sim._compiled`` owns the probe: it caches the one import
    attempt, records the failure reason, and lets ``scheduler="best"``
    degrade to the pure-Python reference.  A direct import anywhere else
    bypasses that gate — it would crash on boxes where the extension did
    not build and dodge the parity contract
    (``docs/INVARIANTS.md#compiled-parity``).  Select the engine through
    ``Simulator(scheduler="compiled"|"best")`` instead.
    """

    def applies(self, ctx: LintContext) -> bool:
        pkg = ctx.pkg_path
        if pkg is None:
            return True  # examples/, benchmarks/ outside the package
        return pkg != "sim/_compiled.py" and not pkg.startswith("_ckernel/")

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            modules = []
            if isinstance(node, ast.Import):
                modules = [alias.name for alias in node.names]
            elif isinstance(node, ast.ImportFrom):
                base = "." * node.level + (node.module or "")
                modules = [base] + [
                    f"{base}.{alias.name}" for alias in node.names
                ]
            if any(_mentions_ckernel(module) for module in modules):
                yield self.finding(
                    ctx,
                    node,
                    "direct import of the compiled core — only the gated "
                    "loader repro.sim._compiled may import _ckernel; use "
                    "Simulator(scheduler='compiled'|'best') or the loader's "
                    "compiled_available()/compiled_error()",
                )


@register_rule(
    "unregistered-routing-policy",
    category="registry",
    contract="docs/INVARIANTS.md#registry-only-resolution",
)
class UnregisteredRoutingPolicyRule(Rule):
    """Every routing-policy module must register via ``register_policy``.

    A policy outside the registry is invisible to ``repro list``, the
    topology builders' ``routing=`` knob, and the transport-requirement
    union (``Network.routing_requirements``) — a spraying policy deployed
    by direct import would silently skip the reordering-tolerant receiver
    it depends on.  Each module under ``repro/routing/`` (except
    ``__init__``, ``registry``, ``base``) must carry at least one
    ``@register_policy(...)`` decorator.
    """

    def applies(self, ctx: LintContext) -> bool:
        return ctx.in_package_dirs("routing") and ctx.basename() not in (
            "__init__.py",
            "registry.py",
            "base.py",
        )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        if _calls_any(ctx.tree, ("register_policy",)):
            return
        yield Finding(
            path=ctx.rel_path,
            line=1,
            col=0,
            rule_id=self.id,
            message=(
                "routing module registers no policy — decorate the class "
                "with @register_policy(...) so the catalog, topology "
                "builders, and requirement union see it (move pure "
                "helpers out of repro/routing/)"
            ),
        )

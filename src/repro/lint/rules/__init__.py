"""Built-in rule modules (imported lazily via registry.load_builtin_rules).

One module per invariant family:

* :mod:`repro.lint.rules.determinism` — seeded RNG, wall clock, unordered
  iteration;
* :mod:`repro.lint.rules.pool` — AckFeedback/PacketPool lifetime;
* :mod:`repro.lint.rules.hygiene` — registry-only topology/CC resolution;
* :mod:`repro.lint.rules.timeint` — integer-nanosecond time;
* :mod:`repro.lint.rules.scheduler` — fast-path vs cancellable timers;
* :mod:`repro.lint.rules.env` — ``os.environ`` isolation;
* :mod:`repro.lint.rules.meta` — the linter's own hygiene
  (stale suppressions).
"""

"""Determinism rules: every run must be a pure function of (config, seed).

Contract: ``docs/INVARIANTS.md#seeding-discipline`` — all randomness
flows from explicitly seeded ``random.Random(seed)`` instances threaded
through the call graph, never from process-global or wall-clock state,
and nothing in the hot packages iterates containers whose order depends
on hashing or object identity.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.framework import Finding, LintContext, Rule
from repro.lint.registry import register_rule

#: wall-clock call targets (dotted, post import-alias resolution)
WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.clock_gettime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


@register_rule(
    "unseeded-rng",
    category="determinism",
    contract="docs/INVARIANTS.md#seeding-discipline",
)
class UnseededRngRule(Rule):
    """No unseeded random.Random(), module-level random.*, or numpy.random.

    The module-level ``random.*`` functions and ``numpy.random.*`` draw
    from process-global generators whose state depends on import order
    and prior calls; ``random.Random()`` without arguments seeds from the
    OS.  Use ``random.Random(seed)`` instances threaded from the
    scenario config (see docs/INVARIANTS.md#seeding-discipline).
    """

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = ctx.imports.dotted(node.func)
            if dotted is None:
                continue
            if dotted == "random.Random":
                if not node.args and not node.keywords:
                    yield self.finding(
                        ctx,
                        node,
                        "unseeded random.Random() — pass an explicit seed "
                        "derived from the scenario config",
                    )
            elif dotted.startswith("random."):
                yield self.finding(
                    ctx,
                    node,
                    f"module-level {dotted}() uses the process-global RNG — "
                    "use a seeded random.Random(seed) instance",
                )
            elif dotted == "numpy.random" or dotted.startswith("numpy.random."):
                yield self.finding(
                    ctx,
                    node,
                    f"{dotted}() draws from numpy's global/unpinned RNG — "
                    "thread an explicitly seeded generator instead",
                )


@register_rule(
    "wall-clock",
    category="determinism",
    contract="docs/INVARIANTS.md#wall-clock-isolation",
)
class WallClockRule(Rule):
    """No wall-clock reads outside perf/, campaign/, and benchmarks/.

    ``time.time``/``perf_counter``/``datetime.now`` values differ across
    runs; any influence on simulation behaviour breaks byte identity.
    Simulation time is ``sim.now`` (integer nanoseconds).  Timing
    harnesses live in ``perf/`` and ``benchmarks/``, and the campaign
    orchestrator's job *is* wall-clock (cell timeouts, retry backoff,
    straggler detection) — all three are exempt; anything else measuring
    wall time for *provenance only* must carry a justifying
    ``# lint: disable=wall-clock``.
    """

    def applies(self, ctx: LintContext) -> bool:
        return not ctx.in_package_dirs("perf", "campaign") and not ctx.under_dir(
            "benchmarks"
        )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = ctx.imports.dotted(node.func)
            if dotted in WALL_CLOCK_CALLS:
                yield self.finding(
                    ctx,
                    node,
                    f"wall-clock read {dotted}() outside perf//benchmarks/ — "
                    "simulation behaviour must depend only on sim.now",
                )


def _is_builtin_call(node: ast.AST, ctx: LintContext, names) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in names
        and node.func.id not in ctx.imports.names
    )


@register_rule(
    "unordered-iteration",
    category="determinism",
    contract="docs/INVARIANTS.md#ordered-iteration",
)
class UnorderedIterationRule(Rule):
    """No iteration over set/frozenset or id()-keyed dicts in hot packages.

    Set iteration order follows hash order (stable for ints, but a
    refactor to str/object elements silently reorders events) and
    ``id()`` keys depend on allocator addresses.  In ``sim/``, ``cc/``,
    ``transport/``, ``topology/``, and ``routing/`` iterate lists or
    ``sorted(...)`` views, and key dicts by stable identifiers (port
    ids, flow ids).
    """

    def applies(self, ctx: LintContext) -> bool:
        return ctx.in_package_dirs("sim", "cc", "transport", "topology", "routing")

    def _iter_targets(self, ctx: LintContext) -> Iterator[ast.AST]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                yield node.iter
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                for gen in node.generators:
                    yield gen.iter

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for target in self._iter_targets(ctx):
            if isinstance(target, (ast.Set, ast.SetComp)) or _is_builtin_call(
                target, ctx, ("set", "frozenset")
            ):
                yield self.finding(
                    ctx,
                    target,
                    "iteration over a set/frozenset follows hash order — "
                    "iterate a list or sorted(...) view",
                )
        for node in ast.walk(ctx.tree):
            key = None
            if isinstance(node, ast.Subscript):
                key = node.slice
            elif isinstance(node, ast.Dict):
                for k in node.keys:
                    if k is not None and _is_builtin_call(k, ctx, ("id",)):
                        key = k
                        break
            elif isinstance(node, ast.DictComp):
                key = node.key
            if key is not None and _is_builtin_call(key, ctx, ("id",)):
                yield self.finding(
                    ctx,
                    key,
                    "id()-keyed mapping depends on allocator addresses — "
                    "key by a stable identifier instead",
                )

"""Scheduler-API rule: only *_cancellable scheduling returns handles.

Contract: ``docs/INVARIANTS.md#scheduler-cancellation-api`` — the PR 3
engine split scheduling into an allocation-free fast path (``at`` /
``after``, returns ``None``) and a cancellable timer API
(``at_cancellable`` / ``after_cancellable``, returns an ``Event``
handle).  Calling ``.cancel()`` on a fast-path result is an
``AttributeError`` waiting for the first run that takes that branch.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List

from repro.lint.framework import Finding, LintContext, Rule
from repro.lint.registry import register_rule

_FAST_PATH = ("at", "after")


def _is_fast_path_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in _FAST_PATH
    )


@register_rule(
    "cancel-fast-path",
    category="scheduler-api",
    contract="docs/INVARIANTS.md#scheduler-cancellation-api",
)
class CancelFastPathRule(Rule):
    """No .cancel() on the return of fast-path at()/after().

    Tracks, per function scope and in source order, simple names assigned
    from ``<obj>.at(...)``/``<obj>.after(...)`` calls (which return
    ``None``) and flags ``.cancel()`` on them, plus the direct
    ``sim.after(...).cancel()`` chain.  Timers that need cancelling must
    use ``at_cancellable``/``after_cancellable``.
    """

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        scopes: List[ast.AST] = [ctx.tree] + [
            n
            for n in ast.walk(ctx.tree)
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        for scope in scopes:
            yield from self._check_scope(ctx, scope)

    def _check_scope(self, ctx: LintContext, scope: ast.AST) -> Iterator[Finding]:
        # Only this scope's direct statements: nested functions are their
        # own scope (their assignments must not leak out here).
        nodes = []
        for node in ast.walk(scope):
            if node is scope:
                continue
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            owner = ctx.parents.get(node)
            while owner is not None and owner is not scope:
                if isinstance(owner, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    break
                owner = ctx.parents.get(owner)
            if owner is scope:
                nodes.append(node)
        fast_handles: Dict[str, ast.AST] = {}
        for node in sorted(
            (n for n in nodes if hasattr(n, "lineno")),
            key=lambda n: (n.lineno, n.col_offset),
        ):
            if isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Attribute) and func.attr == "cancel":
                    target = func.value
                    if _is_fast_path_call(target):
                        yield self._violation(ctx, node, target.func.attr)
                    elif (
                        isinstance(target, ast.Name)
                        and target.id in fast_handles
                    ):
                        yield self._violation(
                            ctx,
                            node,
                            fast_handles[target.id].func.attr,  # type: ignore[attr-defined]
                        )
            if isinstance(node, ast.Assign):
                for tgt in node.targets:
                    if isinstance(tgt, ast.Name):
                        if _is_fast_path_call(node.value):
                            fast_handles[tgt.id] = node.value
                        else:
                            fast_handles.pop(tgt.id, None)

    def _violation(self, ctx: LintContext, node: ast.AST, method: str) -> Finding:
        return self.finding(
            ctx,
            node,
            f".cancel() on the return of fast-path .{method}() — it "
            f"returns None; schedule with .{method}_cancellable() when "
            "the timer may need cancelling",
        )

"""Rule registry: id -> entry, mirroring :mod:`repro.cc.registry`.

Every rule class self-registers with the :func:`register_rule` class
decorator, declaring an id (the name used in findings and in
``# lint: disable=`` suppressions), a category, and the
``docs/INVARIANTS.md`` anchor of the contract it enforces.  Lookup is
lazy: the built-in rule modules are imported on first use, so importing
this module stays cheap and circular-import free.  Adding a rule is one
decorated class in one module — no registry edits::

    from repro.lint.framework import Rule
    from repro.lint.registry import register_rule

    @register_rule("my-rule", category="determinism",
                   contract="docs/INVARIANTS.md#seeded-rng-discipline")
    class MyRule(Rule):
        \"\"\"One-line summary shown by --list-rules.\"\"\"

        def check(self, ctx):
            ...
"""

from __future__ import annotations

import importlib
import inspect
from dataclasses import dataclass
from typing import Dict, List

#: the modules that self-register built-in rules
BUILTIN_RULE_MODULES = (
    "repro.lint.rules.determinism",
    "repro.lint.rules.pool",
    "repro.lint.rules.hygiene",
    "repro.lint.rules.timeint",
    "repro.lint.rules.scheduler",
    "repro.lint.rules.env",
    "repro.lint.rules.robustness",
    "repro.lint.rules.meta",
)

#: rule id of the stale-suppression meta check (registered in
#: :mod:`repro.lint.rules.meta`; findings produced by framework.run_paths)
UNUSED_SUPPRESSION = "unused-suppression"

#: rule id attached to files the linter cannot parse (not a registered
#: rule: a syntax error is unconditionally fatal and unsuppressable)
PARSE_ERROR = "parse-error"


@dataclass(frozen=True)
class RegisteredRule:
    """One registry entry: a named rule plus the contract it encodes."""

    id: str
    category: str
    cls: type
    #: first line of the rule class docstring
    description: str = ""
    #: ``docs/INVARIANTS.md`` anchor for the underlying contract
    contract: str = ""

    def make(self):
        """Instantiate a fresh rule object (rules may keep per-file state)."""
        return self.cls()


#: rule id -> entry
RULES: Dict[str, RegisteredRule] = {}


def _first_doc_line(obj) -> str:
    doc = inspect.getdoc(obj) or ""
    return doc.splitlines()[0].strip() if doc else ""


def register_rule(rule_id: str, *, category: str, contract: str = ""):
    """Class decorator: register a :class:`~repro.lint.framework.Rule`.

    Re-registration is allowed only for the identical class object
    (idempotent module re-import); any other id collision is an error.
    """

    def decorate(cls: type) -> type:
        existing = RULES.get(rule_id)
        if existing is not None and existing.cls is not cls:
            raise ValueError(f"lint rule id {rule_id!r} already registered")
        cls.id = rule_id
        cls.category = category
        cls.contract = contract
        RULES[rule_id] = RegisteredRule(
            id=rule_id,
            category=category,
            cls=cls,
            description=_first_doc_line(cls),
            contract=contract,
        )
        return cls

    return decorate


def load_builtin_rules() -> None:
    """Import every built-in rule module (idempotent)."""
    for module in BUILTIN_RULE_MODULES:
        importlib.import_module(module)


def get_rule(rule_id: str) -> RegisteredRule:
    """Look up a registry entry by id; KeyError with the catalog."""
    load_builtin_rules()
    entry = RULES.get(rule_id)
    if entry is None:
        raise KeyError(
            f"unknown lint rule: {rule_id!r} "
            f"(registered: {', '.join(rule_ids())})"
        )
    return entry


def rule_ids() -> List[str]:
    """Sorted ids of every registered rule."""
    load_builtin_rules()
    return sorted(RULES)

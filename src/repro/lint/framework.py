"""Core linting machinery: contexts, suppressions, and the file runner.

A :class:`Rule` inspects one parsed file through a :class:`LintContext`
(AST + parent links + an import-alias map + repo-relative path) and
yields :class:`Finding` records.  The runner applies per-line
``# lint: disable=<rule-id>[,<rule-id>...]`` suppressions (collected with
:mod:`tokenize`, so ``#`` inside strings never reads as a comment) and
reports suppressions that matched nothing as ``unused-suppression``
findings — stale escapes rot into silent blind spots otherwise.

Path scoping: rules see both the repo-relative path (``rel_path``) and
the package-relative path (``pkg_path``, the part after the last
``repro/`` component, e.g. ``cc/hpcc.py``), so "only in ``sim/``" and
"not under ``benchmarks/``" scopes are one-line predicates.  Test
fixtures exercise the scoping by living under directories that mimic the
package layout (``tests/lint_fixtures/repro/sim/...``).
"""

from __future__ import annotations

import ast
import io
import os
import re
import tokenize
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.lint import registry as rule_registry


def _repo_root() -> str:
    """Nearest ancestor that looks like this checkout (see scenarios.sweep)."""
    node = os.path.dirname(os.path.abspath(__file__))
    while True:
        if os.path.isdir(os.path.join(node, "benchmarks")) and os.path.isdir(
            os.path.join(node, "src", "repro")
        ):
            return node
        parent = os.path.dirname(node)
        if parent == node:
            return os.getcwd()
        node = parent


REPO_ROOT = _repo_root()

#: directories linted when the CLI is given no paths.  ``tests/`` is
#: deliberately absent: the lint fixtures contain intentional violations.
DEFAULT_TARGET_DIRS = ("src", "examples", "benchmarks")


@dataclass(frozen=True)
class Finding:
    """One rule violation (or meta finding) at a source location."""

    path: str  # repo-relative posix path
    line: int  # 1-based
    col: int  # 0-based
    rule_id: str
    message: str

    @property
    def sort_key(self) -> Tuple:
        return (self.path, self.line, self.col, self.rule_id, self.message)

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"

    def to_json_dict(self) -> Dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule_id": self.rule_id,
            "message": self.message,
        }


class ImportMap:
    """Local name -> dotted module/attribute map for one file.

    ``import numpy.random as npr`` maps ``npr -> numpy.random``;
    ``from time import perf_counter as pc`` maps
    ``pc -> time.perf_counter``.  Relative imports keep their module
    text with the leading dots stripped (``from ..topology import x`` ->
    ``topology.x``) — good enough for prefix matching.
    """

    def __init__(self, tree: ast.AST):
        names: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        names[alias.asname] = alias.name
                    else:
                        head = alias.name.split(".")[0]
                        names[head] = head
            elif isinstance(node, ast.ImportFrom):
                module = node.module or ""
                for alias in node.names:
                    local = alias.asname or alias.name
                    dotted = f"{module}.{alias.name}" if module else alias.name
                    names[local] = dotted
        self.names = names

    def dotted(self, node: ast.AST) -> Optional[str]:
        """Resolve a Name/Attribute chain to a dotted name.

        Uses the import map for the base name when available, else the
        literal text — ``time.time()`` resolves identically whether
        ``time`` was imported in this file or shadows a local (rules
        accept the rare false positive; suppressions exist).
        """
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = self.names.get(node.id, node.id)
        parts.append(base)
        return ".".join(reversed(parts))


class LintContext:
    """Everything one rule needs to inspect one parsed file."""

    def __init__(self, abs_path: str, rel_path: str, source: str, tree: ast.AST):
        self.abs_path = abs_path
        #: repo-relative posix path (as printed in findings)
        self.rel_path = rel_path
        self.source = source
        self.tree = tree
        self.imports = ImportMap(tree)
        #: child AST node -> parent (for "is this Name an attribute base?")
        self.parents: Dict[ast.AST, ast.AST] = {
            child: parent
            for parent in ast.walk(tree)
            for child in ast.iter_child_nodes(parent)
        }
        parts = rel_path.split("/")
        #: path inside the ``repro`` package (``cc/hpcc.py``) or None
        self.pkg_path: Optional[str] = None
        if "repro" in parts:
            idx = len(parts) - 1 - parts[::-1].index("repro")
            tail = parts[idx + 1:]
            if tail:
                self.pkg_path = "/".join(tail)

    # -- scope predicates ------------------------------------------------
    def in_package_dirs(self, *dirs: str) -> bool:
        """True when the file lives under ``repro/<dir>/`` for any dir."""
        if self.pkg_path is None:
            return False
        return self.pkg_path.split("/")[0] in dirs

    def under_dir(self, name: str) -> bool:
        """True when any component of the repo-relative path is ``name``."""
        return name in self.rel_path.split("/")[:-1]

    def basename(self) -> str:
        return self.rel_path.rsplit("/", 1)[-1]


class Rule:
    """Base class for lint rules; subclasses register via register_rule."""

    id: str = ""
    category: str = ""
    contract: str = ""

    def applies(self, ctx: LintContext) -> bool:
        """Path scope; default: every linted file."""
        return True

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: LintContext, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=ctx.rel_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule_id=self.id,
            message=message,
        )


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------
_SUPPRESS_RE = re.compile(r"lint:\s*disable=([A-Za-z0-9_\-]+(?:\s*,\s*[A-Za-z0-9_\-]+)*)")


def parse_suppressions(source: str) -> Dict[int, List[str]]:
    """line -> rule ids disabled on that line (source order preserved)."""
    out: Dict[int, List[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(tok.string)
            if match:
                ids = [part.strip() for part in match.group(1).split(",")]
                out.setdefault(tok.start[0], []).extend(i for i in ids if i)
    except tokenize.TokenError:  # unterminated string etc.: ast will fail too
        pass
    return out


# ----------------------------------------------------------------------
# Runner
# ----------------------------------------------------------------------
@dataclass
class LintReport:
    """Outcome of one lint run."""

    findings: List[Finding]
    files_checked: int
    suppressed: int

    @property
    def ok(self) -> bool:
        return not self.findings

    def to_json_dict(self) -> Dict:
        return {
            "version": 1,
            "ok": self.ok,
            "files_checked": self.files_checked,
            "suppressed": self.suppressed,
            "findings": [f.to_json_dict() for f in self.findings],
        }


def default_targets(repo_root: str = REPO_ROOT) -> List[str]:
    """The directories ``repro lint`` checks when given no paths."""
    return [
        os.path.join(repo_root, d)
        for d in DEFAULT_TARGET_DIRS
        if os.path.isdir(os.path.join(repo_root, d))
    ]


def iter_python_files(paths: Iterable[str]) -> Iterator[str]:
    """Expand files/directories into .py files (sorted, deduplicated)."""
    seen = set()
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames.sort()
                dirnames[:] = [d for d in dirnames if d != "__pycache__"]
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        full = os.path.join(dirpath, name)
                        if full not in seen:
                            seen.add(full)
                            yield full
        elif path not in seen:
            seen.add(path)
            yield path


def _rel_path(path: str, repo_root: str) -> str:
    abs_path = os.path.abspath(path)
    root = os.path.abspath(repo_root)
    if abs_path.startswith(root + os.sep):
        rel = abs_path[len(root) + 1:]
    else:
        rel = path
    return rel.replace(os.sep, "/")


def lint_file(
    path: str,
    rules: Sequence[Rule],
    *,
    repo_root: str = REPO_ROOT,
    check_unused: bool = True,
) -> Tuple[List[Finding], int]:
    """Lint one file; returns (findings, suppressed_count)."""
    rel = _rel_path(path, repo_root)
    try:
        with open(path, "r", encoding="utf-8") as fh:
            source = fh.read()
        tree = ast.parse(source, filename=path)
    except (OSError, SyntaxError, ValueError) as exc:
        return (
            [
                Finding(
                    path=rel,
                    line=getattr(exc, "lineno", None) or 1,
                    col=0,
                    rule_id=rule_registry.PARSE_ERROR,
                    message=f"cannot lint file: {exc}",
                )
            ],
            0,
        )
    ctx = LintContext(path, rel, source, tree)
    raw: List[Finding] = []
    for rule in rules:
        if rule.applies(ctx):
            raw.extend(rule.check(ctx))
    suppressions = parse_suppressions(source)
    used = set()
    kept: List[Finding] = []
    suppressed = 0
    for f in sorted(set(raw), key=lambda f: f.sort_key):
        if f.rule_id in suppressions.get(f.line, ()):
            used.add((f.line, f.rule_id))
            suppressed += 1
        else:
            kept.append(f)
    if check_unused:
        known = set(rule_registry.RULES)
        for line in sorted(suppressions):
            for rule_id in suppressions[line]:
                if (line, rule_id) in used:
                    continue
                if rule_id not in known:
                    msg = (
                        f"suppression names unknown rule {rule_id!r} "
                        "(see repro lint --list-rules)"
                    )
                else:
                    msg = (
                        f"suppression for {rule_id!r} matches no finding "
                        "on this line — remove the stale escape"
                    )
                kept.append(
                    Finding(
                        path=rel,
                        line=line,
                        col=0,
                        rule_id=rule_registry.UNUSED_SUPPRESSION,
                        message=msg,
                    )
                )
    return kept, suppressed


def run_paths(
    paths: Optional[Sequence[str]] = None,
    *,
    select: Optional[Iterable[str]] = None,
    repo_root: str = REPO_ROOT,
) -> LintReport:
    """Lint files/directories with the registered battery.

    ``select`` narrows to a subset of rule ids (unknown ids raise
    KeyError).  The unused-suppression check only runs with the full
    battery — under ``select``, a suppression for an unselected rule
    would read as stale when it is not.
    """
    rule_registry.load_builtin_rules()
    if select is not None:
        entries = [rule_registry.get_rule(rule_id) for rule_id in select]
    else:
        entries = [rule_registry.RULES[rule_id] for rule_id in sorted(rule_registry.RULES)]
    rules = [entry.make() for entry in entries]
    paths = list(paths) if paths is not None else []
    if not paths:
        paths = default_targets(repo_root)
    findings: List[Finding] = []
    files = 0
    suppressed = 0
    for path in iter_python_files(paths):
        files += 1
        file_findings, file_suppressed = lint_file(
            path, rules, repo_root=repo_root, check_unused=select is None
        )
        findings.extend(file_findings)
        suppressed += file_suppressed
    findings.sort(key=lambda f: f.sort_key)
    return LintReport(findings=findings, files_checked=files, suppressed=suppressed)

"""`repro lint` — AST-based invariant linter for the simulator's contracts.

The byte-identity suite (26 committed figure series) catches determinism
violations *after* they corrupt a run; this package rejects them at diff
time.  Each rule encodes one contract from ``docs/INVARIANTS.md``:

* **determinism** — seeded-RNG-only randomness, no wall-clock reads, no
  iteration over unordered containers in the hot packages;
* **pool-lifetime** — the :class:`~repro.cc.base.AckFeedback` /
  ``PacketPool`` contract: ``on_ack`` must copy scalars, never retain
  the feedback view or its ``HopRecord`` objects;
* **registry** — topology and CC resolution go through the registries,
  never through concrete-module imports;
* **integer-time** — the simulation clock is integer nanoseconds; floats
  must not flow into scheduling calls or ``*_ns`` arguments;
* **scheduler-api** — only ``*_cancellable`` scheduling returns handles;
* **env-isolation** — ``os.environ`` stays out of simulation code.

Rules self-register with :func:`repro.lint.registry.register_rule`
(mirroring ``cc/registry.py``); ``python -m repro lint --list-rules``
prints the catalog.  Findings are suppressable per line with
``# lint: disable=<rule-id>`` and stale suppressions are themselves
findings (``unused-suppression``).
"""

from repro.lint.framework import (  # noqa: F401
    Finding,
    LintContext,
    LintReport,
    Rule,
    default_targets,
    run_paths,
)
from repro.lint.registry import (  # noqa: F401
    RULES,
    RegisteredRule,
    get_rule,
    load_builtin_rules,
    register_rule,
    rule_ids,
)

__all__ = [
    "Finding",
    "LintContext",
    "LintReport",
    "Rule",
    "RULES",
    "RegisteredRule",
    "default_targets",
    "get_rule",
    "load_builtin_rules",
    "register_rule",
    "rule_ids",
    "run_paths",
]

"""``python -m repro`` — the figure-regeneration CLI."""

import sys

from repro.cli import main

sys.exit(main())

"""Tracked macro-benchmarks over the simulation hot path.

``repro.perf`` measures *simulator throughput* (events/second and wall
time) on a fixed set of macro workloads — incast, web-search FCT, and the
fat-tree permutation — so every PR leaves a perf trajectory behind
(``BENCH_perf.json``) instead of an anecdote.  See :mod:`repro.perf.bench`
for the case definitions and the JSON schema.

Usage::

    python -m repro perf                      # full grid -> BENCH_perf.json
    python -m repro perf --tiny               # CI smoke grid
    python -m repro perf --cases websearch_fct --compare old/BENCH_perf.json
"""

from repro.perf.bench import (
    PERF_CASES,
    PerfCase,
    append_history,
    case_names,
    load_bench,
    regression_warnings,
    run_case,
    run_perf,
    write_bench,
)

__all__ = [
    "PERF_CASES",
    "PerfCase",
    "append_history",
    "case_names",
    "load_bench",
    "regression_warnings",
    "run_case",
    "run_perf",
    "write_bench",
]

"""Macro perf-benchmark definitions and the BENCH_perf.json writer.

Each :class:`PerfCase` runs one registered scenario at a fixed, named
configuration and reports the engine-level throughput numbers that a
perf-focused PR must move: ``events_processed``, ``wall_time_s``, and
``events_per_sec``.  The scenario's scalar metrics ride along as a
determinism fingerprint — a perf change that alters simulation *results*
shows up as a metrics diff, not just a timing diff.

Three macro workloads cover the simulator's distinct hot-path mixes:

* ``incast``        — dumbbell, synchronized burst, probe-tick heavy;
* ``websearch_fct`` — fat-tree, Poisson arrivals, INT + ECMP heavy
  (the acceptance benchmark for hot-path PRs);
* ``permutation``   — fat-tree, all hosts active, long-lived windows.

Engine-configuration variants rerun a workload under non-default engine
settings (``PerfCase.engine`` → :func:`repro.sim.engine.engine_defaults`):
``incast_batched`` / ``websearch_batched`` / ``permutation_batched`` turn
on packet-train batching, and ``incast_compiled`` /
``websearch_compiled`` / ``permutation_compiled`` stack the compiled
event core on top of batching (skipped with a note when the extension is
not built).  When comparing against a reference document that predates a
variant, the variant borrows the reference entry with the same
``(scenario, overrides)`` workload and *default* engine config — so the
recorded speedup is engine-on vs engine-off over the identical workload.
``storm`` / ``storm_calendar`` run the deep-pending ``event_storm``
churn (~128k pending events, past the calendar crossover — see
``AUTO_CALENDAR_DEPTH``) under the heap and calendar schedulers; the
macro packet workloads never reach that depth, which is why no packet
case runs on the calendar (the retired ``incast_calendar`` case measured
exactly that mismatch, as a 0.61x regression).
``fluid_grid`` benchmarks the numpy-vectorized fluid integrator against
the scalar loop on a phase-portrait-sized grid (its ``events`` are
integration cell-steps, and its speedup is measured in-run against the
scalar path; skipped with a note when numpy is unavailable).

``run_perf`` executes a case list (optionally the reduced ``tiny`` grid
used by CI smoke jobs) and ``write_bench`` persists the document; pass a
previous document via ``compare`` to record per-case speedups so the
committed ``BENCH_perf.json`` carries the before/after evidence.
:func:`append_history` accumulates snapshots into the tracked
``benchmarks/results/perf_history.json`` consumed by
:func:`repro.analysis.results.perf_trend`.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

from repro.scenarios import get_scenario
from repro.sim.engine import engine_defaults
from repro.units import MSEC

#: schema version of the BENCH_perf.json document
BENCH_SCHEMA = 1

#: default persistence path (repo root when invoked from the checkout)
DEFAULT_BENCH_PATH = "BENCH_perf.json"

#: tracked history of per-PR snapshots (see :func:`append_history`)
DEFAULT_HISTORY_PATH = "benchmarks/results/perf_history.json"


@dataclass(frozen=True)
class PerfCase:
    """One named macro-benchmark over a registered scenario."""

    name: str
    scenario: str
    overrides: Dict[str, Any] = field(default_factory=dict)
    #: reduced configuration for CI smoke runs (``--tiny``)
    tiny: Dict[str, Any] = field(default_factory=dict)
    #: engine configuration applied via ``engine_defaults`` around the
    #: run (e.g. ``{"tx_batch_limit": 8}``); empty = engine defaults
    engine: Dict[str, Any] = field(default_factory=dict)
    #: "scenario" (default) or "fluid_grid" (vectorized fluid sweep)
    kind: str = "scenario"

    def config(self, tiny: bool = False) -> Dict[str, Any]:
        """The override set this case runs at."""
        return dict(self.tiny if tiny else self.overrides)


#: the tracked grid, in reporting order
PERF_CASES: Dict[str, PerfCase] = {
    case.name: case
    for case in (
        PerfCase(
            name="incast",
            scenario="incast",
            overrides=dict(
                algorithm="powertcp",
                fanout=64,
                burst_bytes=60_000,
                duration_ns=8 * MSEC,
            ),
            tiny=dict(
                algorithm="powertcp",
                fanout=8,
                burst_bytes=20_000,
                duration_ns=1 * MSEC,
            ),
        ),
        PerfCase(
            name="websearch_fct",
            scenario="websearch",
            overrides=dict(
                algorithm="powertcp",
                load=0.6,
                duration_ns=20 * MSEC,
                drain_ns=40 * MSEC,
                size_scale=1 / 16,
                max_flows=300,
                seed=1,
            ),
            tiny=dict(
                algorithm="powertcp",
                load=0.4,
                duration_ns=2 * MSEC,
                drain_ns=6 * MSEC,
                size_scale=1 / 16,
                max_flows=15,
                seed=1,
            ),
        ),
        PerfCase(
            name="permutation",
            scenario="permutation",
            overrides=dict(
                algorithm="powertcp",
                flow_bytes=1_000_000,
                duration_ns=4 * MSEC,
                drain_ns=16 * MSEC,
                seed=1,
            ),
            tiny=dict(
                algorithm="powertcp",
                flow_bytes=50_000,
                duration_ns=1 * MSEC,
                drain_ns=3 * MSEC,
                seed=1,
            ),
        ),
        # Engine-configuration variants: same workloads, non-default
        # engine.  Their --compare speedups measure the engine feature
        # itself (matched by workload against the default-config entry).
        PerfCase(
            name="incast_batched",
            scenario="incast",
            overrides=dict(
                algorithm="powertcp",
                fanout=64,
                burst_bytes=60_000,
                duration_ns=8 * MSEC,
            ),
            tiny=dict(
                algorithm="powertcp",
                fanout=8,
                burst_bytes=20_000,
                duration_ns=1 * MSEC,
            ),
            engine=dict(tx_batch_limit=8),
        ),
        PerfCase(
            name="websearch_batched",
            scenario="websearch",
            overrides=dict(
                algorithm="powertcp",
                load=0.6,
                duration_ns=20 * MSEC,
                drain_ns=40 * MSEC,
                size_scale=1 / 16,
                max_flows=300,
                seed=1,
            ),
            tiny=dict(
                algorithm="powertcp",
                load=0.4,
                duration_ns=2 * MSEC,
                drain_ns=6 * MSEC,
                size_scale=1 / 16,
                max_flows=15,
                seed=1,
            ),
            engine=dict(tx_batch_limit=8),
        ),
        PerfCase(
            name="permutation_batched",
            scenario="permutation",
            overrides=dict(
                algorithm="powertcp",
                flow_bytes=1_000_000,
                duration_ns=4 * MSEC,
                drain_ns=16 * MSEC,
                seed=1,
            ),
            tiny=dict(
                algorithm="powertcp",
                flow_bytes=50_000,
                duration_ns=1 * MSEC,
                drain_ns=3 * MSEC,
                seed=1,
            ),
            engine=dict(tx_batch_limit=8),
        ),
        # Compiled event core stacked on batching: the optional C drain
        # loop over the same workloads (skipped when the extension is
        # not built).  Their --compare speedups measure compiled+batched
        # vs the default engine on the identical workload.
        PerfCase(
            name="incast_compiled",
            scenario="incast",
            overrides=dict(
                algorithm="powertcp",
                fanout=64,
                burst_bytes=60_000,
                duration_ns=8 * MSEC,
            ),
            tiny=dict(
                algorithm="powertcp",
                fanout=8,
                burst_bytes=20_000,
                duration_ns=1 * MSEC,
            ),
            engine=dict(scheduler="compiled", tx_batch_limit=8),
        ),
        PerfCase(
            name="websearch_compiled",
            scenario="websearch",
            overrides=dict(
                algorithm="powertcp",
                load=0.6,
                duration_ns=20 * MSEC,
                drain_ns=40 * MSEC,
                size_scale=1 / 16,
                max_flows=300,
                seed=1,
            ),
            tiny=dict(
                algorithm="powertcp",
                load=0.4,
                duration_ns=2 * MSEC,
                drain_ns=6 * MSEC,
                size_scale=1 / 16,
                max_flows=15,
                seed=1,
            ),
            engine=dict(scheduler="compiled", tx_batch_limit=8),
        ),
        PerfCase(
            name="permutation_compiled",
            scenario="permutation",
            overrides=dict(
                algorithm="powertcp",
                flow_bytes=1_000_000,
                duration_ns=4 * MSEC,
                drain_ns=16 * MSEC,
                seed=1,
            ),
            tiny=dict(
                algorithm="powertcp",
                flow_bytes=50_000,
                duration_ns=1 * MSEC,
                drain_ns=3 * MSEC,
                seed=1,
            ),
            engine=dict(scheduler="compiled", tx_batch_limit=8),
        ),
        # Deep-pending scheduler stress: ~128k pending events, past the
        # calendar crossover (AUTO_CALENDAR_DEPTH) that the packet
        # workloads never approach.  storm_calendar's speedup against
        # storm's workload-matched baseline is the calendar queue's win
        # in its design regime.
        PerfCase(
            name="storm",
            scenario="event_storm",
            overrides=dict(depth=131_072, duration_ns=100_000, seed=7),
            tiny=dict(depth=4096, duration_ns=60_000, seed=7),
        ),
        PerfCase(
            name="storm_calendar",
            scenario="event_storm",
            overrides=dict(depth=131_072, duration_ns=100_000, seed=7),
            tiny=dict(depth=4096, duration_ns=60_000, seed=7),
            engine=dict(scheduler="calendar"),
        ),
        # Vectorized fluid integration: n_w x n_q initial states, one
        # simulate_grid call, compared in-run against the scalar loop
        # (extrapolated from scalar_sample trajectories).
        PerfCase(
            name="fluid_grid",
            scenario="fluid_grid",
            overrides=dict(n_w=24, n_q=24, duration_taus=50, scalar_sample=16),
            tiny=dict(n_w=8, n_q=8, duration_taus=20, scalar_sample=8),
            kind="fluid_grid",
        ),
    )
}


def case_names() -> List[str]:
    """Names of the tracked cases, in reporting order."""
    return list(PERF_CASES)


def run_case(
    case: PerfCase, *, tiny: bool = False, repeats: int = 1
) -> Dict[str, Any]:
    """Execute one case ``repeats`` times; report the best run.

    Simulations are deterministic, so repeats only de-noise the wall
    clock — the *fastest* run is the least-perturbed measurement and is
    what ``events_per_sec`` reports.  Scalar metrics come from the first
    run and double as a determinism fingerprint.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    if case.kind == "fluid_grid":
        return _run_fluid_grid_case(case, tiny=tiny, repeats=repeats)
    if case.engine.get("scheduler") in ("compiled", "best"):
        # Mirror the fluid_grid numpy probe: a missing optional
        # accelerator is a skip note, never a red grid (the no-compiler
        # install must run the whole suite on the pure-Python path).
        from repro.sim import compiled_available, compiled_error

        if not compiled_available():
            return {
                "case": case.name,
                "scenario": case.scenario,
                "overrides": case.config(tiny),
                "skipped": f"compiled core unavailable: {compiled_error()}",
            }
    scenario = get_scenario(case.scenario)
    overrides = case.config(tiny)
    runs: List[Dict[str, float]] = []
    metrics: Dict[str, Any] = {}
    with engine_defaults(**case.engine):
        for i in range(repeats):
            result = scenario.run(**overrides)
            events = int(result.provenance.get("events_processed") or 0)
            wall_s = float(result.provenance.get("wall_time_s") or 0.0)
            runs.append(
                {
                    "events_processed": events,
                    "wall_time_s": wall_s,
                    "events_per_sec": events / wall_s if wall_s > 0 else 0.0,
                }
            )
            if i == 0:
                metrics = {
                    k: v for k, v in sorted(result.metrics.items())
                    if v is None or isinstance(v, (int, float, bool, str))
                }
    best = max(runs, key=lambda r: r["events_per_sec"])
    entry = {
        "case": case.name,
        "scenario": case.scenario,
        "overrides": overrides,
        "events_processed": best["events_processed"],
        "wall_time_s": round(best["wall_time_s"], 4),
        "events_per_sec": round(best["events_per_sec"], 1),
        "runs": [
            {
                "events_processed": r["events_processed"],
                "wall_time_s": round(r["wall_time_s"], 4),
                "events_per_sec": round(r["events_per_sec"], 1),
            }
            for r in runs
        ],
        "metrics": metrics,
    }
    if case.engine:
        entry["engine"] = dict(case.engine)
    return entry


def _run_fluid_grid_case(
    case: PerfCase, *, tiny: bool, repeats: int
) -> Dict[str, Any]:
    """The vectorized-fluid benchmark: grid sweep vs scalar loop.

    ``events_processed`` counts integration *cell-steps* (time steps x
    trajectories) so ``events_per_sec`` is work-normalized like the
    scenario cases; ``ref_events_per_sec``/``speedup`` are measured
    in-run against the scalar integrator (extrapolated from
    ``scalar_sample`` trajectories — the scalar loop is per-trajectory,
    so the extrapolation is exact up to wall-clock noise).
    """
    cfg = case.config(tiny)
    try:
        import numpy  # noqa: F401 - probing the optional accelerator
    except ImportError:
        return {
            "case": case.name,
            "scenario": case.scenario,
            "overrides": cfg,
            "skipped": "numpy unavailable",
        }
    from repro.fluid import FluidParams, POWER_LAW, simulate, simulate_grid
    from repro.fluid.phase import dense_initial_grid

    params = FluidParams()
    params.beta_bytes = 0.01 * params.bdp_bytes
    states = dense_initial_grid(params.bdp_bytes, cfg["n_w"], cfg["n_q"])
    duration = cfg["duration_taus"] * params.tau_s
    cell_steps = (max(1, int(duration / params.dt_s)) + 1) * len(states)
    runs: List[Dict[str, float]] = []
    metrics: Dict[str, Any] = {}
    for i in range(repeats):
        t0 = time.perf_counter()
        grid = simulate_grid(POWER_LAW, params, states, duration)
        wall_s = time.perf_counter() - t0
        runs.append(
            {
                "events_processed": cell_steps,
                "wall_time_s": wall_s,
                "events_per_sec": cell_steps / wall_s if wall_s > 0 else 0.0,
            }
        )
        if i == 0:
            finals = grid.final_windows
            metrics = {
                "trajectories": len(states),
                "final_window_mean_bdp": round(
                    float(finals.sum()) / len(states) / params.bdp_bytes, 6
                ),
                "worst_loss_after_fill": round(
                    float(grid.loss_after_fill(params.bdp_bytes).max()), 6
                ),
            }
    sample = min(cfg["scalar_sample"], len(states))
    t0 = time.perf_counter()
    for w0, q0 in states[:sample]:
        simulate(POWER_LAW, params, w0, q0, duration)
    scalar_wall_s = (time.perf_counter() - t0) * len(states) / sample
    best = max(runs, key=lambda r: r["events_per_sec"])
    scalar_eps = cell_steps / scalar_wall_s if scalar_wall_s > 0 else 0.0
    entry = {
        "case": case.name,
        "scenario": case.scenario,
        "overrides": cfg,
        "events_processed": best["events_processed"],
        "wall_time_s": round(best["wall_time_s"], 4),
        "events_per_sec": round(best["events_per_sec"], 1),
        "runs": [
            {
                "events_processed": r["events_processed"],
                "wall_time_s": round(r["wall_time_s"], 4),
                "events_per_sec": round(r["events_per_sec"], 1),
            }
            for r in runs
        ],
        "metrics": metrics,
        "ref_events_per_sec": round(scalar_eps, 1),
        "speedup": round(best["events_per_sec"] / scalar_eps, 2)
        if scalar_eps
        else None,
    }
    return entry


def run_perf(
    cases: Optional[Iterable[str]] = None,
    *,
    tiny: bool = False,
    repeats: int = 1,
    compare: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Run the named cases (default: all) into one BENCH document.

    ``compare`` is a previously written document; when given, each case
    gains ``ref_events_per_sec`` / ``speedup`` fields relative to the
    matching case of the reference.  A reference case counts as matching
    only when its name *and* its full ``overrides`` agree with the
    current run — comparing a tiny grid against a full-grid document
    (or vice versa) silently yields no speedup fields instead of a
    meaningless ratio between different workloads.  Engine-variant cases
    absent from the reference fall back to the reference entry with the
    same ``(scenario, overrides)`` workload and default engine config,
    so a variant's first appearance still records an honest same-workload
    speedup (engine feature on vs off).  Cases that measure their own
    reference in-run (``fluid_grid``) keep it.
    """
    selected = list(cases) if cases is not None else case_names()
    unknown = sorted(set(selected) - set(PERF_CASES))
    if unknown:
        raise ValueError(
            f"unknown perf case(s): {', '.join(unknown)}; "
            f"available: {', '.join(case_names())}"
        )
    ref_cases = {}
    if compare is not None:
        ref_cases = {c["case"]: c for c in compare.get("cases", [])}
    results = []
    for name in selected:
        entry = run_case(PERF_CASES[name], tiny=tiny, repeats=repeats)
        if "skipped" in entry or "speedup" in entry:
            results.append(entry)
            continue
        ref = ref_cases.get(name)
        if not (
            ref is not None
            and ref.get("events_per_sec")
            and ref.get("overrides") == entry["overrides"]
        ):
            # Workload fallback for engine variants: same scenario and
            # overrides, default engine config, any case name.
            ref = next(
                (
                    c
                    for c in ref_cases.values()
                    if c.get("scenario") == entry["scenario"]
                    and c.get("overrides") == entry["overrides"]
                    and not c.get("engine")
                    and c.get("events_per_sec")
                ),
                None,
            )
        if ref is not None:
            entry["ref_events_per_sec"] = ref["events_per_sec"]
            entry["speedup"] = round(
                entry["events_per_sec"] / ref["events_per_sec"], 2
            )
        results.append(entry)
    return {
        "schema": BENCH_SCHEMA,
        "generated_utc": time.strftime("%Y-%m-%d", time.gmtime()),
        "python": platform.python_version(),
        "platform": sys.platform,
        "tiny": tiny,
        "repeats": repeats,
        "cases": results,
    }


def write_bench(doc: Dict[str, Any], path: str = DEFAULT_BENCH_PATH) -> str:
    """Persist a BENCH document as stable, diff-friendly JSON."""
    with open(path, "w") as handle:
        json.dump(doc, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return path


def load_bench(path: str) -> Dict[str, Any]:
    """Load a previously written BENCH document."""
    with open(path) as handle:
        return json.load(handle)


def append_history(
    doc: Dict[str, Any],
    path: str = DEFAULT_HISTORY_PATH,
    *,
    label: Optional[str] = None,
) -> str:
    """Append one compact snapshot of ``doc`` to the tracked history file.

    The history document is ``{"schema": 1, "snapshots": [...]}``; each
    snapshot keeps the label, grid flavor, and the per-case throughput
    numbers (metrics fingerprints are dropped — the full document is the
    place for those).  :func:`repro.analysis.results.perf_trend` expands
    history files transparently, so one tracked file carries the whole
    per-PR trajectory instead of one artifact per PR.
    """
    try:
        with open(path) as handle:
            history = json.load(handle)
    except FileNotFoundError:
        history = {"schema": 1, "snapshots": []}
    snapshot = {
        "label": label or doc.get("generated_utc") or "unlabeled",
        "generated_utc": doc.get("generated_utc"),
        "python": doc.get("python"),
        "tiny": bool(doc.get("tiny")),
        "cases": [
            {
                key: case[key]
                for key in (
                    "case",
                    "events_processed",
                    "wall_time_s",
                    "events_per_sec",
                    "speedup",
                )
                if key in case
            }
            for case in doc.get("cases", [])
            if "skipped" not in case
        ],
    }
    history.setdefault("snapshots", []).append(snapshot)
    with open(path, "w") as handle:
        json.dump(history, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return path


def regression_warnings(
    doc: Dict[str, Any], *, threshold: float = 0.10
) -> List[str]:
    """Cases whose events/sec fell more than ``threshold`` below their
    reference — one warning line per offender, empty when clean.

    Only cases with comparison fields participate (a missing reference is
    not a regression); ``fluid_grid``'s in-run scalar reference is
    excluded (its speedup is the feature, not a trend)."""
    warnings = []
    for case in doc.get("cases", []):
        ref = case.get("ref_events_per_sec")
        if not ref or case.get("kind") == "fluid_grid" or case.get(
            "case"
        ) == "fluid_grid":
            continue
        current = case.get("events_per_sec") or 0.0
        if current < (1.0 - threshold) * ref:
            warnings.append(
                f"perf regression: {case['case']} at {current:,.0f} events/sec "
                f"is {100 * (1 - current / ref):.1f}% below the reference "
                f"{ref:,.0f}"
            )
    return warnings


def engine_report() -> List[str]:
    """Which engine variants are live in this interpreter (one line each).

    The doctor surface behind ``repro perf --engines``: reports the
    always-available pure-Python schedulers, whether the optional
    compiled core loaded (with the failure reason when it did not), and
    what the selection modes would resolve to right now.
    """
    from repro.sim import AUTO_CALENDAR_DEPTH, compiled_available, compiled_error
    from repro.sim._compiled import load_compiled

    lines = [
        f"{'engine':>10s}  status",
        f"{'heap':>10s}  built-in (default; the behavioral reference)",
        f"{'calendar':>10s}  built-in (deep pending sets)",
    ]
    if compiled_available():
        module = load_compiled()
        where = getattr(module, "__file__", "built-in")
        lines.append(f"{'compiled':>10s}  loaded ({where})")
        lines.append(f"{'best':>10s}  -> compiled")
    else:
        lines.append(f"{'compiled':>10s}  unavailable: {compiled_error()}")
        lines.append(f"{'best':>10s}  -> heap (compiled core unavailable)")
    lines.append(
        f"{'auto':>10s}  -> heap or calendar at first run "
        f"(calendar at >= {AUTO_CALENDAR_DEPTH} pending events)"
    )
    return lines


def format_bench(doc: Dict[str, Any]) -> List[str]:
    """Human-readable table of one BENCH document."""
    lines = [
        f"{'case':>20s} {'events':>12s} {'wall_s':>8s} "
        f"{'events/sec':>12s} {'speedup':>8s}"
    ]
    for case in doc.get("cases", []):
        if "skipped" in case:
            lines.append(
                f"{case['case']:>20s} {'(skipped: ' + case['skipped'] + ')':>44s}"
            )
            continue
        speedup = case.get("speedup")
        lines.append(
            f"{case['case']:>20s} {case['events_processed']:>12d} "
            f"{case['wall_time_s']:>8.3f} {case['events_per_sec']:>12.0f} "
            f"{(f'{speedup:.2f}x' if speedup is not None else '-'):>8s}"
        )
    return lines

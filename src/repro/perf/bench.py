"""Macro perf-benchmark definitions and the BENCH_perf.json writer.

Each :class:`PerfCase` runs one registered scenario at a fixed, named
configuration and reports the engine-level throughput numbers that a
perf-focused PR must move: ``events_processed``, ``wall_time_s``, and
``events_per_sec``.  The scenario's scalar metrics ride along as a
determinism fingerprint — a perf change that alters simulation *results*
shows up as a metrics diff, not just a timing diff.

Three macro workloads cover the simulator's distinct hot-path mixes:

* ``incast``        — dumbbell, synchronized burst, probe-tick heavy;
* ``websearch_fct`` — fat-tree, Poisson arrivals, INT + ECMP heavy
  (the acceptance benchmark for hot-path PRs);
* ``permutation``   — fat-tree, all hosts active, long-lived windows.

``run_perf`` executes a case list (optionally the reduced ``tiny`` grid
used by CI smoke jobs) and ``write_bench`` persists the document; pass a
previous document via ``compare`` to record per-case speedups so the
committed ``BENCH_perf.json`` carries the before/after evidence.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

from repro.scenarios import get_scenario
from repro.units import MSEC

#: schema version of the BENCH_perf.json document
BENCH_SCHEMA = 1

#: default persistence path (repo root when invoked from the checkout)
DEFAULT_BENCH_PATH = "BENCH_perf.json"


@dataclass(frozen=True)
class PerfCase:
    """One named macro-benchmark over a registered scenario."""

    name: str
    scenario: str
    overrides: Dict[str, Any] = field(default_factory=dict)
    #: reduced configuration for CI smoke runs (``--tiny``)
    tiny: Dict[str, Any] = field(default_factory=dict)

    def config(self, tiny: bool = False) -> Dict[str, Any]:
        """The override set this case runs at."""
        return dict(self.tiny if tiny else self.overrides)


#: the tracked grid, in reporting order
PERF_CASES: Dict[str, PerfCase] = {
    case.name: case
    for case in (
        PerfCase(
            name="incast",
            scenario="incast",
            overrides=dict(
                algorithm="powertcp",
                fanout=64,
                burst_bytes=60_000,
                duration_ns=8 * MSEC,
            ),
            tiny=dict(
                algorithm="powertcp",
                fanout=8,
                burst_bytes=20_000,
                duration_ns=1 * MSEC,
            ),
        ),
        PerfCase(
            name="websearch_fct",
            scenario="websearch",
            overrides=dict(
                algorithm="powertcp",
                load=0.6,
                duration_ns=20 * MSEC,
                drain_ns=40 * MSEC,
                size_scale=1 / 16,
                max_flows=300,
                seed=1,
            ),
            tiny=dict(
                algorithm="powertcp",
                load=0.4,
                duration_ns=2 * MSEC,
                drain_ns=6 * MSEC,
                size_scale=1 / 16,
                max_flows=15,
                seed=1,
            ),
        ),
        PerfCase(
            name="permutation",
            scenario="permutation",
            overrides=dict(
                algorithm="powertcp",
                flow_bytes=1_000_000,
                duration_ns=4 * MSEC,
                drain_ns=16 * MSEC,
                seed=1,
            ),
            tiny=dict(
                algorithm="powertcp",
                flow_bytes=50_000,
                duration_ns=1 * MSEC,
                drain_ns=3 * MSEC,
                seed=1,
            ),
        ),
    )
}


def case_names() -> List[str]:
    """Names of the tracked cases, in reporting order."""
    return list(PERF_CASES)


def run_case(
    case: PerfCase, *, tiny: bool = False, repeats: int = 1
) -> Dict[str, Any]:
    """Execute one case ``repeats`` times; report the best run.

    Simulations are deterministic, so repeats only de-noise the wall
    clock — the *fastest* run is the least-perturbed measurement and is
    what ``events_per_sec`` reports.  Scalar metrics come from the first
    run and double as a determinism fingerprint.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    scenario = get_scenario(case.scenario)
    overrides = case.config(tiny)
    runs: List[Dict[str, float]] = []
    metrics: Dict[str, Any] = {}
    for i in range(repeats):
        result = scenario.run(**overrides)
        events = int(result.provenance.get("events_processed") or 0)
        wall_s = float(result.provenance.get("wall_time_s") or 0.0)
        runs.append(
            {
                "events_processed": events,
                "wall_time_s": wall_s,
                "events_per_sec": events / wall_s if wall_s > 0 else 0.0,
            }
        )
        if i == 0:
            metrics = {
                k: v for k, v in sorted(result.metrics.items())
                if v is None or isinstance(v, (int, float, bool, str))
            }
    best = max(runs, key=lambda r: r["events_per_sec"])
    return {
        "case": case.name,
        "scenario": case.scenario,
        "overrides": overrides,
        "events_processed": best["events_processed"],
        "wall_time_s": round(best["wall_time_s"], 4),
        "events_per_sec": round(best["events_per_sec"], 1),
        "runs": [
            {
                "events_processed": r["events_processed"],
                "wall_time_s": round(r["wall_time_s"], 4),
                "events_per_sec": round(r["events_per_sec"], 1),
            }
            for r in runs
        ],
        "metrics": metrics,
    }


def run_perf(
    cases: Optional[Iterable[str]] = None,
    *,
    tiny: bool = False,
    repeats: int = 1,
    compare: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Run the named cases (default: all) into one BENCH document.

    ``compare`` is a previously written document; when given, each case
    gains ``ref_events_per_sec`` / ``speedup`` fields relative to the
    matching case of the reference.  A reference case counts as matching
    only when its name *and* its full ``overrides`` agree with the
    current run — comparing a tiny grid against a full-grid document
    (or vice versa) silently yields no speedup fields instead of a
    meaningless ratio between different workloads.
    """
    selected = list(cases) if cases is not None else case_names()
    unknown = sorted(set(selected) - set(PERF_CASES))
    if unknown:
        raise ValueError(
            f"unknown perf case(s): {', '.join(unknown)}; "
            f"available: {', '.join(case_names())}"
        )
    ref_cases = {}
    if compare is not None:
        ref_cases = {c["case"]: c for c in compare.get("cases", [])}
    results = []
    for name in selected:
        entry = run_case(PERF_CASES[name], tiny=tiny, repeats=repeats)
        ref = ref_cases.get(name)
        if (
            ref is not None
            and ref.get("events_per_sec")
            and ref.get("overrides") == entry["overrides"]
        ):
            entry["ref_events_per_sec"] = ref["events_per_sec"]
            entry["speedup"] = round(
                entry["events_per_sec"] / ref["events_per_sec"], 2
            )
        results.append(entry)
    return {
        "schema": BENCH_SCHEMA,
        "generated_utc": time.strftime("%Y-%m-%d", time.gmtime()),
        "python": platform.python_version(),
        "platform": sys.platform,
        "tiny": tiny,
        "repeats": repeats,
        "cases": results,
    }


def write_bench(doc: Dict[str, Any], path: str = DEFAULT_BENCH_PATH) -> str:
    """Persist a BENCH document as stable, diff-friendly JSON."""
    with open(path, "w") as handle:
        json.dump(doc, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return path


def load_bench(path: str) -> Dict[str, Any]:
    """Load a previously written BENCH document."""
    with open(path) as handle:
        return json.load(handle)


def format_bench(doc: Dict[str, Any]) -> List[str]:
    """Human-readable table of one BENCH document."""
    lines = [
        f"{'case':>15s} {'events':>12s} {'wall_s':>8s} "
        f"{'events/sec':>12s} {'speedup':>8s}"
    ]
    for case in doc.get("cases", []):
        speedup = case.get("speedup")
        lines.append(
            f"{case['case']:>15s} {case['events_processed']:>12d} "
            f"{case['wall_time_s']:>8.3f} {case['events_per_sec']:>12.0f} "
            f"{(f'{speedup:.2f}x' if speedup is not None else '-'):>8s}"
        )
    return lines

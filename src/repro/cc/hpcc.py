"""HPCC — High Precision Congestion Control (Li et al., SIGCOMM 2019).

The paper's strongest baseline and the scheme PowerTCP shares its INT
feedback with.  HPCC steers the *inflight bytes* of each link toward
``η · B · T`` using per-hop utilization::

    u_j = min(qlen, qlen_prev) / (B·T)  +  txRate / B

taking the maximum across hops, EWMA-smoothed over one base RTT.  The
window update is multiplicative toward the reference window ``W_c``
(updated once per RTT) plus an additive term ``W_AI``, with at most
``maxStage`` consecutive additive-only stages between multiplicative
adjustments.

In the paper's classification HPCC is a *voltage-based* scheme: its
reaction is a function of queue length / inflight state only, which is
exactly the imprecision PowerTCP's power signal removes (Fig. 3a vs 3c).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.cc.base import CongestionControl
from repro.cc.registry import Requirements, register
from repro.units import BITS_PER_BYTE, SEC

DEFAULT_ETA = 0.95
DEFAULT_MAX_STAGE = 5
DEFAULT_EXPECTED_FLOWS = 8


@register(
    "hpcc",
    requirements=Requirements(int_stamping=True),
    description="HPCC: inflight-targeting INT control (SIGCOMM 2019)",
)
class Hpcc(CongestionControl):
    """HPCC sender logic (Algorithm 1 of the HPCC paper)."""

    def __init__(
        self,
        eta: float = DEFAULT_ETA,
        max_stage: int = DEFAULT_MAX_STAGE,
        expected_flows: int = DEFAULT_EXPECTED_FLOWS,
        **kwargs,
    ):
        super().__init__(**kwargs)
        if not 0.0 < eta <= 1.0:
            raise ValueError(f"eta must be in (0, 1], got {eta}")
        self.eta = eta
        self.max_stage = max_stage
        self.expected_flows = expected_flows
        # Per-port snapshot of the previous INT record as *scalars*
        # (ts_ns, qlen, tx_bytes) — never the HopRecord itself, which the
        # transport recycles once on_ack returns (AckFeedback contract).
        self._prev: Dict[int, Tuple[int, int, int]] = {}
        #: bandwidth_bps -> (bandwidth_Bps, bdp); pure functions of
        #: (bandwidth, τ), memoized to bit-identical floats
        self._link_consts: Dict[float, Tuple[float, float]] = {}
        self._u = 0.0
        self._inc_stage = 0
        self._w_c = 0.0
        self._w_ai = 0.0
        self._last_update_seq = 0

    # ------------------------------------------------------------------
    def on_start(self, sender) -> None:
        super().on_start(sender)
        bdp = self.host_bdp_bytes(sender)
        self._w_c = sender.cwnd
        self._w_ai = bdp * (1.0 - self.eta) / self.expected_flows
        self._u = 0.0
        self._inc_stage = 0
        self._prev.clear()
        self._link_consts.clear()  # τ-dependent; re-derive per deployment
        self._last_update_seq = 0

    # ------------------------------------------------------------------
    def _measure_inflight(self, sender, int_hops) -> Optional[float]:
        """MeasureInflight: max per-hop utilization, EWMA over base RTT."""
        if not int_hops:
            return None
        tau = sender.base_rtt_ns
        best_u = None
        best_dt = 0
        prev_map = self._prev
        link_consts = self._link_consts
        for hop in int_hops:
            prev = prev_map.get(hop.port_id)
            prev_map[hop.port_id] = (hop.ts_ns, hop.qlen, hop.tx_bytes)
            if prev is None:
                continue
            prev_ts, prev_qlen, prev_tx = prev
            dt_ns = hop.ts_ns - prev_ts
            if dt_ns <= 0:
                continue
            consts = link_consts.get(hop.bandwidth_bps)
            if consts is None:
                bandwidth_Bps = hop.bandwidth_bps / BITS_PER_BYTE
                consts = link_consts[hop.bandwidth_bps] = (
                    bandwidth_Bps,
                    bandwidth_Bps * tau / SEC,
                )
            bandwidth_Bps, bdp = consts
            tx_rate_Bps = (hop.tx_bytes - prev_tx) / (dt_ns / SEC)
            u = min(hop.qlen, prev_qlen) / bdp + tx_rate_Bps / bandwidth_Bps
            if best_u is None or u > best_u:
                best_u = u
                best_dt = dt_ns
        if best_u is None:
            return None
        dt = min(best_dt, tau)
        self._u = (self._u * (tau - dt) + best_u * dt) / tau
        return self._u

    def _compute_wind(self, sender, u: float, update_wc: bool) -> float:
        """ComputeWind: MI toward η, with bounded additive-only stages."""
        if u >= self.eta or self._inc_stage >= self.max_stage:
            w = self._w_c / (u / self.eta) + self._w_ai
            if update_wc:
                self._inc_stage = 0
                self._w_c = w
        else:
            w = self._w_c + self._w_ai
            if update_wc:
                self._inc_stage += 1
                self._w_c = w
        return w

    def on_ack(self, sender, feedback) -> None:
        u = self._measure_inflight(
            sender, feedback.require_int(type(self).__name__)
        )
        if u is None:
            return
        update_wc = feedback.ack_seq > self._last_update_seq
        w = self._compute_wind(sender, u, update_wc)
        if update_wc:
            self._last_update_seq = feedback.sent_high
        self.set_window(sender, w)

    @property
    def utilization_estimate(self) -> float:
        """Smoothed max-hop utilization U (for tests/diagnostics)."""
        return self._u

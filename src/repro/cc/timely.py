"""TIMELY (Mittal et al., SIGCOMM 2015) — RTT-gradient rate control.

The canonical *current-based* scheme in the paper's taxonomy: it reacts to
the RTT gradient (the rate of change of queueing), which detects congestion
onset quickly but — as §2.2 proves — has no unique equilibrium, so queue
lengths wander (Fig. 3b).  TIMELY also keeps two guard thresholds:

* below ``t_low`` it ignores the gradient and increases additively;
* above ``t_high`` it decreases proportionally to the RTT excess —
  this is exactly the "threshold fallback to voltage" the paper's Figure 1
  alludes to with "TIMELY (low thresh - high thresh)".

Defaults follow the TIMELY paper scaled to the simulated base RTT (the
original used T_low = 50 µs on a 10 Gbps fabric with ~20 µs base RTT).
"""

from __future__ import annotations

from typing import Optional

from repro.cc.base import CongestionControl
from repro.cc.registry import register

DEFAULT_EWMA_ALPHA = 0.875  # weight on the *old* rtt_diff
DEFAULT_BETA = 0.8
DEFAULT_HAI_THRESHOLD = 5
DEFAULT_ADD_STEP_FRACTION = 0.02  # δ as a fraction of line rate
DEFAULT_T_LOW_RTTS = 1.5
DEFAULT_T_HIGH_RTTS = 5.0
MIN_RATE_FRACTION = 0.001


@register(
    "timely",
    description="TIMELY: RTT-gradient rate control (SIGCOMM 2015)",
)
class Timely(CongestionControl):
    """TIMELY sender logic (rate-based)."""

    def __init__(
        self,
        ewma_alpha: float = DEFAULT_EWMA_ALPHA,
        beta: float = DEFAULT_BETA,
        add_step_bps: Optional[float] = None,
        t_low_ns: Optional[int] = None,
        t_high_ns: Optional[int] = None,
        hai_threshold: int = DEFAULT_HAI_THRESHOLD,
        **kwargs,
    ):
        super().__init__(**kwargs)
        self.ewma_alpha = ewma_alpha
        self.beta = beta
        self.add_step_bps = add_step_bps
        self.t_low_ns = t_low_ns
        self.t_high_ns = t_high_ns
        self.hai_threshold = hai_threshold

        self._rate = 0.0
        self._rtt_diff = 0.0
        self._prev_rtt: Optional[int] = None
        self._neg_gradient_count = 0

    def on_start(self, sender) -> None:
        self._rate = sender.host_bw_bps
        if self.add_step_bps is None:
            self.add_step_bps = DEFAULT_ADD_STEP_FRACTION * sender.host_bw_bps
        if self.t_low_ns is None:
            self.t_low_ns = int(DEFAULT_T_LOW_RTTS * sender.base_rtt_ns)
        if self.t_high_ns is None:
            self.t_high_ns = int(DEFAULT_T_HIGH_RTTS * sender.base_rtt_ns)
        self._prev_rtt = None
        self._rtt_diff = 0.0
        self._neg_gradient_count = 0
        self.set_rate(sender, self._rate)

    def on_ack(self, sender, feedback) -> None:
        rtt = feedback.rtt_ns
        if rtt is None:
            return
        if self._prev_rtt is None:
            self._prev_rtt = rtt
            return
        new_rtt_diff = rtt - self._prev_rtt
        self._prev_rtt = rtt
        a = self.ewma_alpha
        self._rtt_diff = a * self._rtt_diff + (1.0 - a) * new_rtt_diff
        normalized_gradient = self._rtt_diff / sender.base_rtt_ns

        if rtt < self.t_low_ns:
            self._rate += self.add_step_bps
            self._neg_gradient_count = 0
        elif rtt > self.t_high_ns:
            # Proportional decrease toward the high threshold (voltage mode).
            self._rate *= 1.0 - self.beta * (1.0 - self.t_high_ns / rtt)
            self._neg_gradient_count = 0
        elif normalized_gradient <= 0:
            # Pipe is draining: additive increase, hyper-active after a run
            # of negative gradients (HAI mode).
            self._neg_gradient_count += 1
            if self._neg_gradient_count >= self.hai_threshold:
                self._rate += self.hai_threshold * self.add_step_bps
            else:
                self._rate += self.add_step_bps
        else:
            # Queue is building: decrease proportionally to the gradient.
            self._neg_gradient_count = 0
            self._rate *= 1.0 - self.beta * normalized_gradient

        floor = MIN_RATE_FRACTION * sender.host_bw_bps
        self._rate = min(max(self._rate, floor), sender.host_bw_bps)
        self.set_rate(sender, self._rate)

    @property
    def rate_bps(self) -> float:
        """Current TIMELY rate."""
        return self._rate

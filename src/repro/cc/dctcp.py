"""DCTCP (Alizadeh et al., SIGCOMM 2010) — ECN-fraction window control.

The motivational voltage-based scheme of §2: switches mark above a step
threshold K, the sender maintains an EWMA ``alpha`` of the fraction of
marked bytes per RTT and decreases multiplicatively by ``alpha / 2``.
As the paper recalls, DCTCP needs a *standing queue* around the marking
threshold (K > BDP/7) and so cannot satisfy the near-zero-queue equilibrium
in Eq. 1 — the property PowerTCP is built to achieve.

DCTCP is an extension (the paper's packet-level evaluation compares against
DCQCN/TIMELY/HPCC/HOMA); it is included to make the §2 taxonomy executable.
"""

from __future__ import annotations

from repro.cc.base import CongestionControl
from repro.cc.registry import Requirements, register
from repro.sim.port import EcnConfig
from repro.units import BITS_PER_BYTE, SEC

DEFAULT_G = 1.0 / 16.0


def _ecn_config(link_bps: float, base_rtt_ns: int) -> EcnConfig:
    """Requirements factory: the step threshold K depends on the base RTT
    (previously a special case hardcoded in the flow driver)."""
    return Dctcp.ecn_config_for(link_bps, base_rtt_ns)


@register(
    "dctcp",
    requirements=Requirements(ecn_config=_ecn_config),
    description="DCTCP: ECN-fraction window control (SIGCOMM 2010)",
)
class Dctcp(CongestionControl):
    """DCTCP sender logic (window-based, per-RTT updates)."""

    def __init__(self, g: float = DEFAULT_G, **kwargs):
        super().__init__(**kwargs)
        self.g = g
        self._alpha = 1.0
        self._marked_bytes = 0
        self._acked_bytes = 0
        self._window_end_seq = 0

    @staticmethod
    def ecn_config_for(link_bps: float, base_rtt_ns: int) -> EcnConfig:
        """Step marking at K = BDP/7 (the paper's DCTCP characterization)."""
        bdp = link_bps * base_rtt_ns / (BITS_PER_BYTE * SEC)
        return EcnConfig.step(max(int(bdp / 7), 1))

    def on_start(self, sender) -> None:
        super().on_start(sender)
        self._alpha = 1.0
        self._marked_bytes = 0
        self._acked_bytes = 0
        self._window_end_seq = 0

    def on_ack(self, sender, feedback) -> None:
        delta = feedback.newly_acked_bytes
        if delta > 0:
            self._acked_bytes += delta
            if feedback.ecn_marked:
                self._marked_bytes += delta

        if feedback.ack_seq < self._window_end_seq:
            return
        # One RTT of data acknowledged: fold the marked fraction into alpha
        # and apply the DCTCP update.
        if self._acked_bytes > 0:
            fraction = self._marked_bytes / self._acked_bytes
            self._alpha = (1.0 - self.g) * self._alpha + self.g * fraction
            if fraction > 0:
                self.set_window(sender, sender.cwnd * (1.0 - self._alpha / 2.0))
            else:
                self.set_window(sender, sender.cwnd + sender.mtu_payload)
        self._marked_bytes = 0
        self._acked_bytes = 0
        self._window_end_seq = feedback.sent_high

    @property
    def alpha(self) -> float:
        """EWMA of the marked-byte fraction."""
        return self._alpha

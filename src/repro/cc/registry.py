"""Name -> algorithm wiring used by the experiment harness.

An :class:`AlgorithmSpec` bundles everything the harness must know to run
one scheme: the per-flow CC factory (window transports), the transport
style (window vs HOMA's receiver-driven), and the switch features to
enable (INT stamping, ECN marking, CNP generation).

The paper's evaluated set maps to::

    powertcp        PowerTCP with INT   ("PowerTCP-INT" in Fig. 6)
    theta-powertcp  θ-PowerTCP          ("PowerTCP-Delay")
    hpcc            HPCC
    dcqcn           DCQCN
    timely          TIMELY
    homa            HOMA (receiver-driven; overcommitment parameter)
    retcp           reTCP (RDCN case study only)

Extensions beyond the paper's set: ``swift``, ``dctcp``, ``static``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.cc.base import CongestionControl, StaticWindow
from repro.cc.cubic import Cubic
from repro.cc.dcqcn import Dcqcn
from repro.cc.dctcp import Dctcp
from repro.cc.hpcc import Hpcc
from repro.cc.newreno import NewReno
from repro.cc.retcp import ReTcp
from repro.cc.swift import Swift
from repro.cc.timely import Timely
from repro.core.powertcp import PowerTcp
from repro.core.theta import ThetaPowerTcp
from repro.sim.port import EcnConfig
from repro.transport.receiver import DCQCN_CNP_INTERVAL_NS

WINDOW_TRANSPORT = "window"
HOMA_TRANSPORT = "homa"


@dataclass
class AlgorithmSpec:
    """Everything the harness needs to deploy one CC scheme."""

    name: str
    transport: str = WINDOW_TRANSPORT
    #: per-flow factory; receives (flow, network) for schedule-aware CCs
    make_cc: Optional[Callable] = None
    needs_int: bool = False
    needs_ecn: bool = False
    cnp_interval_ns: Optional[int] = None
    #: builds the per-port marking config from the port line rate
    ecn_fn: Optional[Callable[[float], EcnConfig]] = None
    #: HOMA only: overcommitment level (paper Appendix D sweeps 1-6)
    homa_overcommit: int = 1
    params: Dict = field(default_factory=dict)

    @property
    def is_homa(self) -> bool:
        """True for the receiver-driven transport."""
        return self.transport == HOMA_TRANSPORT


def _window_spec(name: str, cls, needs_int: bool, **params) -> AlgorithmSpec:
    return AlgorithmSpec(
        name=name,
        make_cc=lambda flow, net: cls(**params),
        needs_int=needs_int,
        params=params,
    )


def make_algorithm(name: str, **params) -> AlgorithmSpec:
    """Build the spec for ``name``; ``params`` go to the CC constructor.

    Raises ``KeyError`` for unknown names.
    """
    key = name.lower().replace("_", "-")
    if key in ("powertcp", "powertcp-int"):
        return _window_spec("powertcp", PowerTcp, needs_int=True, **params)
    if key in ("theta-powertcp", "powertcp-delay", "theta"):
        return _window_spec("theta-powertcp", ThetaPowerTcp, needs_int=False, **params)
    if key == "hpcc":
        return _window_spec("hpcc", Hpcc, needs_int=True, **params)
    if key == "timely":
        return _window_spec("timely", Timely, needs_int=False, **params)
    if key == "swift":
        return _window_spec("swift", Swift, needs_int=False, **params)
    if key == "newreno":
        return _window_spec("newreno", NewReno, needs_int=False, **params)
    if key == "cubic":
        return _window_spec("cubic", Cubic, needs_int=False, **params)
    if key == "static":
        return _window_spec("static", StaticWindow, needs_int=False, **params)
    if key == "dcqcn":
        spec = _window_spec("dcqcn", Dcqcn, needs_int=False, **params)
        spec.needs_ecn = True
        spec.cnp_interval_ns = DCQCN_CNP_INTERVAL_NS
        spec.ecn_fn = Dcqcn.ecn_config_for
        return spec
    if key == "dctcp":
        spec = _window_spec("dctcp", Dctcp, needs_int=False, **params)
        spec.needs_ecn = True
        # The K threshold depends on the base RTT, bound by the harness.
        spec.ecn_fn = None
        return spec
    if key == "homa":
        overcommit = int(params.pop("overcommitment", 1))
        return AlgorithmSpec(
            name="homa",
            transport=HOMA_TRANSPORT,
            homa_overcommit=overcommit,
            params=params,
        )
    if key == "retcp":
        prebuffer_ns = int(params.pop("prebuffer_ns", 0))
        flows_per_pair = int(params.pop("flows_per_pair", 1))

        def make_retcp(flow, net):
            rdcn = net.extras["params"]
            return ReTcp(
                net.extras["schedule"],
                rdcn.tor_of_host(flow.src),
                rdcn.tor_of_host(flow.dst),
                prebuffer_ns=prebuffer_ns,
                flows_per_pair=flows_per_pair,
                **params,
            )

        return AlgorithmSpec(name="retcp", make_cc=make_retcp, params=params)
    raise KeyError(f"unknown congestion control algorithm: {name!r}")


#: canonical names of the paper's evaluated set (Figs. 4-7)
PAPER_ALGORITHMS = ("powertcp", "theta-powertcp", "hpcc", "dcqcn", "timely", "homa")

"""Pluggable congestion-control registry.

Mirrors :mod:`repro.scenarios.registry`: every CC scheme registers itself
with the :func:`register` class decorator (or :func:`register_algorithm`
for receiver-driven transports without a per-flow CC class), declaring a
typed :class:`Requirements` record — the switch and transport features the
harness must provide for that scheme to function:

* **INT stamping** — per-hop telemetry on data packets (PowerTCP, HPCC);
* an **ECN config factory** — ``(link_rate_bps, base_rtt_ns) -> EcnConfig``
  building per-port marking thresholds (DCQCN, DCTCP);
* a **CNP interval** — receiver-side congestion-notification pacing
  (DCQCN's notification point);
* the **transport style** — window-based senders vs HOMA's
  receiver-driven grant machinery.

Lookup is lazy: the built-in CC modules are imported on first use, so
``import repro.cc.registry`` stays cheap and free of circular imports.
Adding a scheme is one decorated class in one module — no registry edits::

    from repro.cc.base import CongestionControl
    from repro.cc.registry import Requirements, register

    @register("my-cc", aliases=("mycc",),
              requirements=Requirements(int_stamping=True))
    class MyCc(CongestionControl):
        ...

The paper's evaluated set maps to::

    powertcp        PowerTCP with INT   ("PowerTCP-INT" in Fig. 6)
    theta-powertcp  θ-PowerTCP          ("PowerTCP-Delay")
    hpcc            HPCC
    dcqcn           DCQCN
    timely          TIMELY
    homa            HOMA (receiver-driven; overcommitment parameter)
    retcp           reTCP (RDCN case study only)

Extensions beyond the paper's set: ``swift``, ``dctcp``, ``newreno``,
``cubic``, ``static``.
"""

from __future__ import annotations

import importlib
import inspect
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Tuple

WINDOW_TRANSPORT = "window"
HOMA_TRANSPORT = "homa"


@dataclass(frozen=True)
class Requirements:
    """Declarative features one CC scheme needs from the harness.

    ``ecn_config`` is the per-port marking factory
    ``(link_rate_bps, base_rtt_ns) -> EcnConfig``; a scheme needs ECN
    marking iff it declares a factory (this removes the old DCTCP special
    case where the harness had to know the threshold depends on the base
    RTT — the factory simply receives it).  ``cnp_interval_ns`` and
    ``transport`` are per-flow concerns; ``int_stamping`` and
    ``ecn_config`` are network-wide and participate in :meth:`union`.
    """

    int_stamping: bool = False
    ecn_config: Optional[Callable[[float, int], object]] = None
    cnp_interval_ns: Optional[int] = None
    transport: str = WINDOW_TRANSPORT

    @property
    def needs_int(self) -> bool:
        """True when the scheme consumes per-hop INT telemetry."""
        return self.int_stamping

    @property
    def needs_ecn(self) -> bool:
        """True when the scheme declared an ECN marking factory."""
        return self.ecn_config is not None

    @staticmethod
    def union(many: Iterable["Requirements"]) -> "Requirements":
        """Network-facing union of several schemes' requirements.

        INT stamping is enabled if *any* scheme needs it; the ECN factory
        must be unique across the ECN-needing schemes (two different
        marking configurations cannot share one port).  Per-flow fields
        (``cnp_interval_ns``, ``transport``) are not unioned — the driver
        reads them from each flow's own spec.
        """
        int_stamping = False
        ecn_config = None
        for req in many:
            int_stamping = int_stamping or req.int_stamping
            if req.ecn_config is None:
                continue
            if ecn_config is None:
                ecn_config = req.ecn_config
            elif ecn_config is not req.ecn_config:
                raise ValueError(
                    "conflicting ECN configurations in deployed algorithm "
                    f"set: {_callable_name(ecn_config)} vs "
                    f"{_callable_name(req.ecn_config)} cannot both configure "
                    "the same ports"
                )
        return Requirements(int_stamping=int_stamping, ecn_config=ecn_config)


def _callable_name(fn: Callable) -> str:
    return getattr(fn, "__qualname__", repr(fn))


def _class_params(cls: type) -> FrozenSet[str]:
    """Constructor parameters accepted anywhere in the class's MRO."""
    names = set()
    for klass in cls.__mro__:
        init = klass.__dict__.get("__init__")
        if init is None:
            continue
        for param in inspect.signature(init).parameters.values():
            if param.name == "self":
                continue
            if param.kind in (
                inspect.Parameter.POSITIONAL_OR_KEYWORD,
                inspect.Parameter.KEYWORD_ONLY,
            ):
                names.add(param.name)
    return frozenset(names)


@dataclass(frozen=True)
class RegisteredAlgorithm:
    """One registry entry: a named scheme plus its declared contract."""

    name: str
    requirements: Requirements
    cls: Optional[type] = None
    aliases: Tuple[str, ...] = ()
    #: accepted ``make_algorithm`` parameters (derived from the class
    #: constructor unless registered explicitly)
    param_names: FrozenSet[str] = frozenset()
    #: per-flow factory ``(flow, net, **params) -> CongestionControl``;
    #: defaults to ``cls(**params)``
    factory: Optional[Callable] = None
    #: True when the factory needs a built network (e.g. reTCP binds the
    #: circuit schedule) — such schemes cannot be driven standalone
    requires_network: bool = False
    description: str = ""

    def validate_params(self, params: Dict) -> None:
        """Reject unknown constructor parameters with a named error."""
        unknown = sorted(set(params) - set(self.param_names))
        if unknown:
            accepted = ", ".join(sorted(self.param_names)) or "(none)"
            raise TypeError(
                f"unknown parameter(s) {', '.join(map(repr, unknown))} for "
                f"congestion-control algorithm {self.name!r}; accepted "
                f"parameters: {accepted}"
            )

    def make_cc(self, flow, net, params: Dict):
        """Instantiate the per-flow CC object (None for receiver-driven)."""
        if self.factory is not None:
            return self.factory(flow, net, **params)
        if self.cls is not None:
            return self.cls(**params)
        return None


#: canonical name -> entry
ALGORITHMS: Dict[str, RegisteredAlgorithm] = {}
#: normalized alias -> canonical name (canonical names are self-aliases)
_ALIASES: Dict[str, str] = {}

#: the modules that self-register built-in algorithms (the PowerTCP
#: family lives in repro.core; everything else under repro.cc)
BUILTIN_MODULES = (
    "repro.cc.base",
    "repro.cc.cubic",
    "repro.cc.dcqcn",
    "repro.cc.dctcp",
    "repro.cc.homa",
    "repro.cc.hpcc",
    "repro.cc.newreno",
    "repro.cc.retcp",
    "repro.cc.swift",
    "repro.cc.timely",
    "repro.core.powertcp",
    "repro.core.theta",
)


def normalize(name: str) -> str:
    """Canonical key form: lowercase, underscores -> dashes."""
    return name.lower().replace("_", "-")


def _first_doc_line(obj) -> str:
    doc = inspect.getdoc(obj) or ""
    return doc.splitlines()[0].strip() if doc else ""


def _add_entry(entry: RegisteredAlgorithm) -> RegisteredAlgorithm:
    # Validate everything before mutating, so a rejected registration
    # leaves the registry untouched.
    existing = ALGORITHMS.get(entry.name)
    if existing is not None:
        # Re-registration is allowed only for the identical class/factory
        # object (idempotent module re-import); class-less entries have no
        # identity to match, so a name collision is always an error.
        same_cls = entry.cls is not None and existing.cls is entry.cls
        same_factory = (
            entry.factory is not None and existing.factory is entry.factory
        )
        if not (same_cls or same_factory):
            raise ValueError(
                f"congestion-control name {entry.name!r} already registered"
            )
    keys = [normalize(alias) for alias in (entry.name,) + entry.aliases]
    for alias, key in zip((entry.name,) + entry.aliases, keys):
        owner = _ALIASES.get(key)
        if owner is not None and owner != entry.name:
            raise ValueError(
                f"congestion-control alias {alias!r} already maps to {owner!r}"
            )
    ALGORITHMS[entry.name] = entry
    for key in keys:
        _ALIASES[key] = entry.name
    return entry


def register(
    name: str,
    *,
    aliases: Iterable[str] = (),
    requirements: Requirements = Requirements(),
    params: Optional[Iterable[str]] = None,
    factory: Optional[Callable] = None,
    requires_network: bool = False,
    description: str = "",
):
    """Class decorator: register a CC class under ``name`` (+ aliases).

    ``params`` overrides the accepted-parameter set (otherwise derived
    from the constructor signature across the MRO); ``factory`` replaces
    the default ``cls(**params)`` instantiation for schemes that need the
    built network (pass ``requires_network=True`` for those).
    """

    def decorate(cls: type) -> type:
        _add_entry(
            RegisteredAlgorithm(
                name=normalize(name),
                requirements=requirements,
                cls=cls,
                aliases=tuple(aliases),
                param_names=(
                    frozenset(params) if params is not None else _class_params(cls)
                ),
                factory=factory,
                requires_network=requires_network,
                description=description or _first_doc_line(cls),
            )
        )
        return cls

    return decorate


def register_algorithm(
    name: str,
    *,
    aliases: Iterable[str] = (),
    requirements: Requirements = Requirements(),
    params: Iterable[str] = (),
    description: str = "",
) -> RegisteredAlgorithm:
    """Register a scheme with no per-flow CC class (HOMA's receiver-driven
    transport: the machinery lives in the driver/receiver, not a CC law)."""
    return _add_entry(
        RegisteredAlgorithm(
            name=normalize(name),
            requirements=requirements,
            aliases=tuple(aliases),
            param_names=frozenset(params),
            description=description,
        )
    )


def load_builtin_algorithms() -> None:
    """Import every built-in CC module (idempotent)."""
    for module in BUILTIN_MODULES:
        importlib.import_module(module)


def get_algorithm(name: str) -> RegisteredAlgorithm:
    """Look up a registry entry by name or alias; KeyError with catalog."""
    load_builtin_algorithms()
    canonical = _ALIASES.get(normalize(name))
    if canonical is None:
        raise KeyError(
            f"unknown congestion control algorithm: {name!r} "
            f"(registered: {', '.join(algorithm_names())})"
        )
    return ALGORITHMS[canonical]


def algorithm_names() -> List[str]:
    """Sorted canonical names of every registered algorithm."""
    load_builtin_algorithms()
    return sorted(ALGORITHMS)


@dataclass
class AlgorithmSpec:
    """One deployable (algorithm, parameters) binding.

    Produced by :func:`make_algorithm`; consumed by
    :class:`repro.experiments.driver.FlowDriver`.  All harness-facing
    knowledge lives in ``requirements`` — there are no per-scheme special
    fields.
    """

    name: str
    requirements: Requirements = field(default_factory=Requirements)
    params: Dict = field(default_factory=dict)
    entry: Optional[RegisteredAlgorithm] = None

    @property
    def needs_int(self) -> bool:
        return self.requirements.needs_int

    @property
    def needs_ecn(self) -> bool:
        return self.requirements.needs_ecn

    @property
    def cnp_interval_ns(self) -> Optional[int]:
        return self.requirements.cnp_interval_ns

    @property
    def is_homa(self) -> bool:
        """True for the receiver-driven transport."""
        return self.requirements.transport == HOMA_TRANSPORT

    def make_cc(self, flow, net):
        """Instantiate this spec's per-flow CC object."""
        if self.entry is None:
            raise ValueError(
                f"algorithm spec {self.name!r} has no registry entry; build "
                "specs via make_algorithm() or register the scheme"
            )
        return self.entry.make_cc(flow, net, self.params)


def make_algorithm(name: str, **params) -> AlgorithmSpec:
    """Bind ``name`` and constructor ``params`` into a deployable spec.

    Raises ``KeyError`` for unknown names and ``TypeError`` for unknown
    parameters (naming the algorithm and its accepted parameter set).
    """
    entry = get_algorithm(name)
    entry.validate_params(params)
    return AlgorithmSpec(
        name=entry.name,
        requirements=entry.requirements,
        params=dict(params),
        entry=entry,
    )


#: canonical names of the paper's evaluated set (Figs. 4-7)
PAPER_ALGORITHMS = ("powertcp", "theta-powertcp", "hpcc", "dcqcn", "timely", "homa")

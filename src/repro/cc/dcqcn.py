"""DCQCN (Zhu et al., SIGCOMM 2015) — ECN-based rate control for RDMA.

Three cooperating pieces:

* **CP** (congestion point, the switch): RED-style ECN marking between
  ``kmin``/``kmax`` — configured by the harness via
  :meth:`Dcqcn.ecn_config_for`;
* **NP** (notification point, the receiver): returns a CNP at most once per
  50 µs while marked packets arrive (implemented in
  :class:`repro.transport.receiver.Receiver`);
* **RP** (reaction point, this class): multiplicative decrease on CNP and
  a three-phase increase — *fast recovery* (meet the target rate half-way),
  *additive increase*, and *hyper increase* — clocked by both a timer and a
  byte counter.

In the paper's taxonomy DCQCN is voltage-based (reacts to queue length via
ECN) and is one of the two schemes PowerTCP beats by ~80 % on short-flow
tail FCT.
"""

from __future__ import annotations

from typing import Optional

from repro.cc.base import CongestionControl
from repro.cc.registry import Requirements, register
from repro.sim.port import EcnConfig
from repro.transport.receiver import DCQCN_CNP_INTERVAL_NS
from repro.units import BITS_PER_BYTE, SEC, USEC

DEFAULT_G = 1.0 / 256.0
DEFAULT_F = 5  # fast-recovery stages
DEFAULT_TIMER_NS = 55 * USEC
DEFAULT_ALPHA_TIMER_NS = 55 * USEC
DEFAULT_BYTE_COUNTER = 10 * 1024 * 1024  # 10 MB, per the DCQCN paper
# Rai was 40 Mbps on 40G links in the original paper; keep the same ratio.
RAI_FRACTION_OF_LINE = 0.001


def _ecn_config(link_bps: float, base_rtt_ns: int) -> EcnConfig:
    """Requirements factory: RED thresholds from the line rate (the base
    RTT is part of the uniform factory signature but unused here)."""
    return Dcqcn.ecn_config_for(link_bps)


@register(
    "dcqcn",
    requirements=Requirements(
        ecn_config=_ecn_config,
        cnp_interval_ns=DCQCN_CNP_INTERVAL_NS,
    ),
    description="DCQCN: ECN/CNP rate control for RDMA (SIGCOMM 2015)",
)
class Dcqcn(CongestionControl):
    """DCQCN reaction-point logic (rate-based: the window stays loose)."""

    def __init__(
        self,
        g: float = DEFAULT_G,
        rai_bps: Optional[float] = None,
        rhai_bps: Optional[float] = None,
        timer_ns: int = DEFAULT_TIMER_NS,
        alpha_timer_ns: int = DEFAULT_ALPHA_TIMER_NS,
        byte_counter: int = DEFAULT_BYTE_COUNTER,
        fast_recovery_stages: int = DEFAULT_F,
        **kwargs,
    ):
        super().__init__(**kwargs)
        self.g = g
        self.rai_bps = rai_bps
        self.rhai_bps = rhai_bps
        self.timer_ns = timer_ns
        self.alpha_timer_ns = alpha_timer_ns
        self.byte_counter = byte_counter
        self.fast_recovery_stages = fast_recovery_stages

        self._sender = None
        self._alpha = 1.0
        self._rc = 0.0  # current rate
        self._rt = 0.0  # target rate
        self._time_stage = 0
        self._byte_stage = 0
        self._bytes_acc = 0
        self._timer_event = None
        self._alpha_event = None

    # ------------------------------------------------------------------
    @staticmethod
    def ecn_config_for(link_bps: float) -> EcnConfig:
        """Marking thresholds scaled from the 100 Gbps reference config
        (kmin 100 KB, kmax 400 KB, pmax 0.2), as in the HPCC evaluation."""
        scale = link_bps / 100e9
        return EcnConfig(int(100_000 * scale), int(400_000 * scale), 0.2)

    # ------------------------------------------------------------------
    def on_start(self, sender) -> None:
        self._sender = sender
        self._rc = self._rt = sender.host_bw_bps
        if self.rai_bps is None:
            self.rai_bps = sender.host_bw_bps * RAI_FRACTION_OF_LINE
        if self.rhai_bps is None:
            self.rhai_bps = 10.0 * self.rai_bps
        self._alpha = 1.0
        self.set_rate(sender, self._rc)
        self._timer_event = sender.sim.after_cancellable(self.timer_ns, self._on_timer)
        self._alpha_event = sender.sim.after_cancellable(
            self.alpha_timer_ns, self._on_alpha_timer
        )

    def on_ack(self, sender, feedback) -> None:
        """Drive the byte counter from acknowledged bytes."""
        delta = feedback.newly_acked_bytes
        if delta <= 0:
            return
        self._bytes_acc += delta
        while self._bytes_acc >= self.byte_counter:
            self._bytes_acc -= self.byte_counter
            self._byte_stage += 1
            self._raise_rate()
        if sender.done:
            self._stop_timers()

    def on_cnp(self, sender) -> None:
        """Multiplicative decrease and α refresh (RP reaction to NP)."""
        self._rt = self._rc
        self._rc *= 1.0 - self._alpha / 2.0
        self._alpha = (1.0 - self.g) * self._alpha + self.g
        self._time_stage = 0
        self._byte_stage = 0
        self._bytes_acc = 0
        self._restart_timer()
        self._restart_alpha_timer()
        self.set_rate(sender, self._rc)

    # ------------------------------------------------------------------
    # Rate-increase machinery
    # ------------------------------------------------------------------
    def _raise_rate(self) -> None:
        fr = self.fast_recovery_stages
        if self._time_stage < fr and self._byte_stage < fr:
            pass  # fast recovery: converge toward Rt only
        elif self._time_stage >= fr and self._byte_stage >= fr:
            self._rt += self.rhai_bps  # hyper increase
        else:
            self._rt += self.rai_bps  # additive increase
        self._rt = min(self._rt, self._sender.host_bw_bps)
        self._rc = (self._rt + self._rc) / 2.0
        self.set_rate(self._sender, self._rc)

    def _on_timer(self) -> None:
        self._timer_event = None
        if self._sender is None or self._sender.done:
            return
        self._time_stage += 1
        self._raise_rate()
        self._restart_timer()

    def _on_alpha_timer(self) -> None:
        self._alpha_event = None
        if self._sender is None or self._sender.done:
            return
        self._alpha = (1.0 - self.g) * self._alpha
        self._restart_alpha_timer()

    def _restart_timer(self) -> None:
        if self._timer_event is not None:
            self._timer_event.cancel()
        self._timer_event = self._sender.sim.after_cancellable(
            self.timer_ns, self._on_timer
        )

    def _restart_alpha_timer(self) -> None:
        if self._alpha_event is not None:
            self._alpha_event.cancel()
        self._alpha_event = self._sender.sim.after_cancellable(
            self.alpha_timer_ns, self._on_alpha_timer
        )

    def _stop_timers(self) -> None:
        if self._timer_event is not None:
            self._timer_event.cancel()
            self._timer_event = None
        if self._alpha_event is not None:
            self._alpha_event.cancel()
            self._alpha_event = None

    @property
    def current_rate_bps(self) -> float:
        """RP current rate Rc."""
        return self._rc

"""CUBIC (Ha, Rhee, Xu 2008) — the default loss-based law of Linux.

Cited by the paper (with NewReno) as the canonical loss/ECN-based
voltage class: reaction only on loss, window growth a cubic function of
time since the last decrease::

    W(t) = C·(t − K)³ + W_max ,   K = ∛(W_max·β / C)

Like NewReno it needs a standing queue to find capacity, so it cannot
meet the Eq. 1 equilibrium — included to make the §2 taxonomy executable
over the full spectrum of deployed algorithms.
"""

from __future__ import annotations

from repro.cc.base import CongestionControl
from repro.cc.registry import register
from repro.units import SEC

DEFAULT_C = 0.4  # MTU/s³, the standard constant
DEFAULT_BETA = 0.3  # multiplicative decrease fraction
INITIAL_WINDOW_MTUS = 10


@register(
    "cubic",
    description="CUBIC: loss-based cubic window growth (Linux default)",
)
class Cubic(CongestionControl):
    """CUBIC window growth with fast-convergence on repeated losses."""

    def __init__(self, c: float = DEFAULT_C, beta: float = DEFAULT_BETA, **kwargs):
        # See NewReno: loss-based laws need headroom to fill the buffer.
        kwargs.setdefault("cap_bdp_multiple", 16.0)
        super().__init__(**kwargs)
        self.c = c
        self.beta = beta
        self._w_max_mtus = 0.0
        self._epoch_start_ns = None
        self._k_s = 0.0

    def on_start(self, sender) -> None:
        sender.cwnd = INITIAL_WINDOW_MTUS * sender.mtu_payload
        sender.pacing_rate_bps = sender.host_bw_bps  # ACK-clocked
        self._w_max_mtus = 0.0
        self._epoch_start_ns = None

    def _set_cwnd(self, sender, cwnd: float) -> None:
        low, high = self.window_bounds(sender)
        sender.cwnd = min(max(cwnd, sender.mtu_payload), high)
        sender.pacing_rate_bps = sender.host_bw_bps

    def _cubic_window_mtus(self, t_s: float) -> float:
        return self.c * (t_s - self._k_s) ** 3 + self._w_max_mtus

    def on_ack(self, sender, feedback) -> None:
        acked = feedback.newly_acked_bytes
        if acked <= 0:
            return
        mtu = sender.mtu_payload
        if self._epoch_start_ns is None:
            # Before the first loss: slow-start-like doubling.
            self._set_cwnd(sender, sender.cwnd + acked)
            return
        t_s = (feedback.now_ns - self._epoch_start_ns) / SEC
        rtt_s = (feedback.rtt_ns or sender.base_rtt_ns) / SEC
        target_mtus = self._cubic_window_mtus(t_s + rtt_s)
        cwnd_mtus = sender.cwnd / mtu
        if target_mtus > cwnd_mtus:
            # Approach the cubic target over one RTT's worth of ACKs.
            increment = (target_mtus - cwnd_mtus) / cwnd_mtus
            self._set_cwnd(sender, sender.cwnd + increment * mtu)
        else:
            # Tiny growth keeps probing in the plateau region.
            self._set_cwnd(sender, sender.cwnd + 0.01 * mtu * acked / sender.cwnd)

    def _enter_epoch(self, sender) -> None:
        mtu = sender.mtu_payload
        cwnd_mtus = sender.cwnd / mtu
        if cwnd_mtus < self._w_max_mtus:
            # Fast convergence: release bandwidth faster on shrinking BDP.
            self._w_max_mtus = cwnd_mtus * (2.0 - self.beta) / 2.0
        else:
            self._w_max_mtus = cwnd_mtus
        self._k_s = (self._w_max_mtus * self.beta / self.c) ** (1.0 / 3.0)
        self._epoch_start_ns = sender.sim.now

    def on_loss(self, sender) -> None:
        self._enter_epoch(sender)
        self._set_cwnd(sender, sender.cwnd * (1.0 - self.beta))

    def on_timeout(self, sender) -> None:
        self._enter_epoch(sender)
        self._set_cwnd(sender, sender.mtu_payload)

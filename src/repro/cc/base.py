"""Congestion-control interface shared by all algorithms.

A CC object is *per flow*: the sender calls ``on_start`` once and then
``on_ack`` for every acknowledgment; rate-based schemes additionally react
to CNPs or their own timers.  The CC adjusts two sender fields:

* ``sender.cwnd`` — congestion window in bytes (may be fractional; values
  below one MTU throttle the flow through pacing), and
* ``sender.pacing_rate_bps`` — the NIC pacing rate.

Per the paper all flows start at line rate with
``cwnd_init = HostBw * tau`` so that a new flow can observe the bottleneck
within its first RTT.
"""

from __future__ import annotations

from repro.units import BITS_PER_BYTE, SEC

# A window below this fraction of one MTU is clamped; pure pacing takes
# over well before this point.
MIN_WINDOW_MTU_FRACTION = 0.01

# Windows are capped at this multiple of the host bandwidth-delay product.
DEFAULT_CAP_BDP_MULTIPLE = 2.0


class CongestionControl:
    """Base class: line-rate start, no reaction (i.e. a greedy sender)."""

    #: the harness enables INT stamping for flows whose CC requires it
    needs_int = False
    #: the harness configures switch ECN marking when required
    needs_ecn = False

    def __init__(self, cap_bdp_multiple: float = DEFAULT_CAP_BDP_MULTIPLE):
        self.cap_bdp_multiple = cap_bdp_multiple

    # ------------------------------------------------------------------
    # Helpers shared by subclasses
    # ------------------------------------------------------------------
    def host_bdp_bytes(self, sender) -> float:
        """Host line-rate bandwidth-delay product (the paper's cwnd_init)."""
        return sender.host_bw_bps * sender.base_rtt_ns / (BITS_PER_BYTE * SEC)

    def window_bounds(self, sender) -> tuple:
        """(min, max) window in bytes for this flow."""
        low = MIN_WINDOW_MTU_FRACTION * sender.mtu_payload
        high = self.cap_bdp_multiple * self.host_bdp_bytes(sender)
        return low, high

    def set_window(self, sender, cwnd_bytes: float) -> None:
        """Clamp and install a window; pacing follows as ``cwnd / tau``."""
        low, high = self.window_bounds(sender)
        if cwnd_bytes < low:
            cwnd_bytes = low
        elif cwnd_bytes > high:
            cwnd_bytes = high
        sender.cwnd = cwnd_bytes
        sender.pacing_rate_bps = min(
            cwnd_bytes * BITS_PER_BYTE * SEC / sender.base_rtt_ns,
            sender.host_bw_bps,
        )

    def set_rate(self, sender, rate_bps: float, *, window_rtts: float = 2.0) -> None:
        """Install a pacing rate (rate-based schemes); window stays loose."""
        rate_bps = min(max(rate_bps, 0.0), sender.host_bw_bps)
        sender.pacing_rate_bps = rate_bps
        sender.cwnd = max(
            window_rtts * rate_bps * sender.base_rtt_ns / (BITS_PER_BYTE * SEC),
            sender.mtu_payload,
        )

    # ------------------------------------------------------------------
    # Event hooks
    # ------------------------------------------------------------------
    def on_start(self, sender) -> None:
        """First-RTT behaviour: transmit at line rate (paper §3.3)."""
        self.set_window(sender, self.host_bdp_bytes(sender))
        sender.pacing_rate_bps = sender.host_bw_bps

    def on_ack(self, sender, ack) -> None:
        """React to an acknowledgment (and its INT/ECN feedback)."""

    def on_loss(self, sender) -> None:
        """Triple-duplicate-ACK loss: conservative multiplicative decrease."""
        self.set_window(sender, sender.cwnd / 2)

    def on_timeout(self, sender) -> None:
        """Retransmission timeout: collapse to a minimal window."""
        self.set_window(sender, sender.mtu_payload)

    def on_cnp(self, sender) -> None:
        """DCQCN congestion notification (ignored by other schemes)."""


class StaticWindow(CongestionControl):
    """A fixed window of ``bdp_multiple`` host BDPs; no reaction to feedback.

    This is both a debugging baseline and the endpoint behaviour of reTCP
    in the RDCN case study, where the interesting mechanism (VOQ
    prebuffering) lives in the ToR, not the end host.
    """

    def __init__(self, bdp_multiple: float = 1.0, **kwargs):
        super().__init__(**kwargs)
        self.bdp_multiple = bdp_multiple

    def on_start(self, sender) -> None:
        self.set_window(sender, self.bdp_multiple * self.host_bdp_bytes(sender))
        sender.pacing_rate_bps = sender.host_bw_bps

    def on_loss(self, sender) -> None:
        """Keep the window pinned — reTCP relies on in-network buffering."""

    def on_timeout(self, sender) -> None:
        """Keep the window pinned."""

"""Congestion-control interface shared by all algorithms.

A CC object is *per flow*: the sender calls ``on_start`` once and then
``on_ack`` for every acknowledgment; rate-based schemes additionally react
to CNPs or their own timers.  The CC adjusts two sender fields:

* ``sender.cwnd`` — congestion window in bytes (may be fractional; values
  below one MTU throttle the flow through pacing), and
* ``sender.pacing_rate_bps`` — the NIC pacing rate.

``on_ack`` receives an :class:`AckFeedback` — a typed view of everything
one acknowledgment may tell a control law (RTT sample, ECN echo, INT
records, cumulative/duplicate state) — so CC objects never reach into raw
:class:`~repro.sim.packet.Packet` or sender reliability internals.

Per the paper all flows start at line rate with
``cwnd_init = HostBw * tau`` so that a new flow can observe the bottleneck
within its first RTT.
"""

from __future__ import annotations

from typing import List, Optional

from repro.cc.registry import register
from repro.units import BITS_PER_BYTE, SEC

# A window below this fraction of one MTU is clamped; pure pacing takes
# over well before this point.
MIN_WINDOW_MTU_FRACTION = 0.01

# Windows are capped at this multiple of the host bandwidth-delay product.
DEFAULT_CAP_BDP_MULTIPLE = 2.0


class MissingFeedbackError(RuntimeError):
    """A CC law's declared feedback requirement was not satisfied.

    Raised when, e.g., an INT-based law (``Requirements.int_stamping``)
    receives acknowledgments without telemetry — a deployment error the
    driver prevents, surfaced loudly instead of silently stalling.
    """


class AckFeedback:
    """Typed view of one acknowledgment, passed to ``on_ack``.

    **Lifetime contract**: the view (and the :class:`HopRecord` objects in
    ``int_hops``) is only valid for the duration of the ``on_ack`` call —
    the transport reuses the view and recycles the hop records into the
    simulator's packet pool as soon as ``on_ack`` returns.  A CC law that
    needs feedback beyond the call must copy the *scalar values* it cares
    about (as the built-in INT laws do with their per-port ``(ts, qlen,
    tx_bytes)`` snapshots), never retain the objects.

    Attributes
    ----------
    ack_seq:
        cumulative acknowledgment (highest in-order byte + 1).
    acked_seq:
        sequence number of the data segment that triggered this ACK (for
        laws that look up per-segment state).
    newly_acked_bytes:
        bytes newly acknowledged by this ACK (0 for duplicates) — the
        increment byte-counting laws (DCQCN, DCTCP, NewReno, CUBIC)
        previously derived by tracking ``snd_una`` themselves.
    is_dup:
        True when this ACK did not advance the cumulative point.
    rtt_ns:
        the RTT sample carried by this ACK (echo-timestamp based); None
        before the first sample.
    now_ns:
        simulation clock at ACK processing time.
    ecn_marked:
        ECN congestion-experienced echo.
    int_hops:
        per-hop INT records, or None when the flow is not INT-enabled —
        INT-requiring laws raise :class:`MissingFeedbackError` on None.
    sent_high:
        the transport's highest transmitted byte offset (``snd_nxt``) at
        feedback time — the marker once-per-RTT update rules arm
        themselves with.
    """

    __slots__ = (
        "ack_seq",
        "acked_seq",
        "newly_acked_bytes",
        "is_dup",
        "rtt_ns",
        "now_ns",
        "ecn_marked",
        "int_hops",
        "sent_high",
    )

    def __init__(
        self,
        *,
        ack_seq: int,
        acked_seq: int = 0,
        newly_acked_bytes: int = 0,
        is_dup: bool = False,
        rtt_ns: Optional[int] = None,
        now_ns: int = 0,
        ecn_marked: bool = False,
        int_hops: Optional[List] = None,
        sent_high: int = 0,
    ):
        self.ack_seq = ack_seq
        self.acked_seq = acked_seq
        self.newly_acked_bytes = newly_acked_bytes
        self.is_dup = is_dup
        self.rtt_ns = rtt_ns
        self.now_ns = now_ns
        self.ecn_marked = ecn_marked
        self.int_hops = int_hops
        self.sent_high = sent_high

    def require_int(self, algorithm: str) -> List:
        """The INT records, or a loud error when telemetry is absent."""
        if self.int_hops is None:
            raise MissingFeedbackError(
                f"{algorithm} requires INT telemetry but this flow's "
                "acknowledgments carry none — deploy via FlowDriver (which "
                "enables INT from the declared Requirements) or construct "
                "the Sender with int_enabled=True"
            )
        return self.int_hops

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AckFeedback(ack_seq={self.ack_seq}, "
            f"new={self.newly_acked_bytes}, dup={self.is_dup}, "
            f"rtt={self.rtt_ns}, ecn={self.ecn_marked}, "
            f"hops={len(self.int_hops) if self.int_hops is not None else None})"
        )


class CongestionControl:
    """Base class: line-rate start, no reaction (i.e. a greedy sender).

    Feature needs (INT stamping, ECN marking, CNP pacing) are not class
    attributes: they are declared once, in the scheme's registered
    :class:`repro.cc.registry.Requirements`, which is the single source
    of truth the harness reads.
    """

    def __init__(self, cap_bdp_multiple: float = DEFAULT_CAP_BDP_MULTIPLE):
        self.cap_bdp_multiple = cap_bdp_multiple

    # ------------------------------------------------------------------
    # Helpers shared by subclasses
    # ------------------------------------------------------------------
    def host_bdp_bytes(self, sender) -> float:
        """Host line-rate bandwidth-delay product (the paper's cwnd_init)."""
        return sender.host_bw_bps * sender.base_rtt_ns / (BITS_PER_BYTE * SEC)

    def window_bounds(self, sender) -> tuple:
        """(min, max) window in bytes for this flow."""
        low = MIN_WINDOW_MTU_FRACTION * sender.mtu_payload
        high = self.cap_bdp_multiple * self.host_bdp_bytes(sender)
        return low, high

    def set_window(self, sender, cwnd_bytes: float) -> None:
        """Clamp and install a window; pacing follows as ``cwnd / tau``."""
        low, high = self.window_bounds(sender)
        if cwnd_bytes < low:
            cwnd_bytes = low
        elif cwnd_bytes > high:
            cwnd_bytes = high
        sender.cwnd = cwnd_bytes
        sender.pacing_rate_bps = min(
            cwnd_bytes * BITS_PER_BYTE * SEC / sender.base_rtt_ns,
            sender.host_bw_bps,
        )

    def set_rate(self, sender, rate_bps: float, *, window_rtts: float = 2.0) -> None:
        """Install a pacing rate (rate-based schemes); window stays loose."""
        rate_bps = min(max(rate_bps, 0.0), sender.host_bw_bps)
        sender.pacing_rate_bps = rate_bps
        sender.cwnd = max(
            window_rtts * rate_bps * sender.base_rtt_ns / (BITS_PER_BYTE * SEC),
            sender.mtu_payload,
        )

    # ------------------------------------------------------------------
    # Event hooks
    # ------------------------------------------------------------------
    def on_start(self, sender) -> None:
        """First-RTT behaviour: transmit at line rate (paper §3.3)."""
        self.set_window(sender, self.host_bdp_bytes(sender))
        sender.pacing_rate_bps = sender.host_bw_bps

    def on_ack(self, sender, feedback: AckFeedback) -> None:
        """React to one acknowledgment's :class:`AckFeedback`."""

    def on_loss(self, sender) -> None:
        """Triple-duplicate-ACK loss: conservative multiplicative decrease."""
        self.set_window(sender, sender.cwnd / 2)

    def on_timeout(self, sender) -> None:
        """Retransmission timeout: collapse to a minimal window."""
        self.set_window(sender, sender.mtu_payload)

    def on_cnp(self, sender) -> None:
        """DCQCN congestion notification (ignored by other schemes)."""


@register("static", description="fixed window of N host BDPs (debug baseline)")
class StaticWindow(CongestionControl):
    """A fixed window of ``bdp_multiple`` host BDPs; no reaction to feedback.

    This is both a debugging baseline and the endpoint behaviour of reTCP
    in the RDCN case study, where the interesting mechanism (VOQ
    prebuffering) lives in the ToR, not the end host.
    """

    def __init__(self, bdp_multiple: float = 1.0, **kwargs):
        super().__init__(**kwargs)
        self.bdp_multiple = bdp_multiple

    def on_start(self, sender) -> None:
        self.set_window(sender, self.bdp_multiple * self.host_bdp_bytes(sender))
        sender.pacing_rate_bps = sender.host_bw_bps

    def on_loss(self, sender) -> None:
        """Keep the window pinned — reTCP relies on in-network buffering."""

    def on_timeout(self, sender) -> None:
        """Keep the window pinned."""

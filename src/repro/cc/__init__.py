"""Congestion-control algorithms: the paper's baselines plus extensions.

Every algorithm is a per-flow object implementing the
:class:`repro.cc.base.CongestionControl` interface and consuming the
typed :class:`repro.cc.base.AckFeedback` view on every acknowledgment;
the PowerTCP family itself lives in :mod:`repro.core`.  Schemes register
themselves with :mod:`repro.cc.registry` (decorator registry + declarative
:class:`~repro.cc.registry.Requirements`), which is how the experiment
harness resolves names and derives the network features to enable.
"""

from repro.cc.base import (
    AckFeedback,
    CongestionControl,
    MissingFeedbackError,
    StaticWindow,
)
from repro.cc.cubic import Cubic
from repro.cc.dcqcn import Dcqcn
from repro.cc.dctcp import Dctcp
from repro.cc.hpcc import Hpcc
from repro.cc.newreno import NewReno
from repro.cc.retcp import ReTcp
from repro.cc.swift import Swift
from repro.cc.timely import Timely
from repro.cc.registry import (
    AlgorithmSpec,
    Requirements,
    algorithm_names,
    get_algorithm,
    make_algorithm,
    register,
    register_algorithm,
)

__all__ = [
    "AckFeedback",
    "AlgorithmSpec",
    "CongestionControl",
    "Cubic",
    "Dcqcn",
    "Dctcp",
    "Hpcc",
    "MissingFeedbackError",
    "NewReno",
    "ReTcp",
    "Requirements",
    "StaticWindow",
    "Swift",
    "Timely",
    "algorithm_names",
    "get_algorithm",
    "make_algorithm",
    "register",
    "register_algorithm",
]

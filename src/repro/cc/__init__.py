"""Congestion-control algorithms: the paper's baselines plus extensions.

Every algorithm is a per-flow object implementing the
:class:`repro.cc.base.CongestionControl` interface; the PowerTCP family
itself lives in :mod:`repro.core`.  See :mod:`repro.cc.registry` for the
name -> factory mapping used by the experiment harness.
"""

from repro.cc.base import CongestionControl, StaticWindow
from repro.cc.cubic import Cubic
from repro.cc.dcqcn import Dcqcn
from repro.cc.dctcp import Dctcp
from repro.cc.hpcc import Hpcc
from repro.cc.newreno import NewReno
from repro.cc.retcp import ReTcp
from repro.cc.swift import Swift
from repro.cc.timely import Timely

__all__ = [
    "CongestionControl",
    "Cubic",
    "Dcqcn",
    "Dctcp",
    "Hpcc",
    "NewReno",
    "ReTcp",
    "StaticWindow",
    "Swift",
    "Timely",
]

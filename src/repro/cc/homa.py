"""HOMA (Montazeri et al., SIGCOMM 2018) — receiver-driven transport.

The paper's representative of the receiver-driven school.  The model here
keeps the two mechanisms HOMA's behaviour in the paper's evaluation hinges
on:

* **unscheduled data** — the first ``RTTbytes`` of every message leave at
  line rate immediately (this is what builds ToR queues under incast);
* **receiver grants with overcommitment** — each receiver paces grants at
  its downlink rate to the ``overcommitment`` smallest-remaining messages
  (SRPT), keeping at most one BDP granted-but-undelivered per message.
  Overcommitment > 1 admits more traffic than the downlink can carry,
  trading latency for utilization (Figs. 9-11 sweep levels 1-6).

Packets carry priorities served by the switches' 8-level priority queues:
grants ride the highest priority, unscheduled data above scheduled data,
and scheduled data is ranked by the receiver (smaller remaining = higher
priority).

What is intentionally *not* modeled (documented substitution): HOMA's
priority-cutoff learning and its RESEND/timeout machinery — reliability
reuses the simulator's cumulative-ACK/go-back-N transport, which does not
change queue dynamics at the bottleneck.

Per the paper's configuration, ``RTTbytes = HostBw * base_rtt`` and the
best overcommitment level in their setup was 1.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cc.registry import (
    HOMA_TRANSPORT,
    Requirements,
    register_algorithm,
)
from repro.sim.engine import Simulator
from repro.sim.host import Host
from repro.sim.packet import DATA, GRANT, Packet, get_pool
from repro.transport.flow import Flow
from repro.transport.receiver import Receiver
from repro.transport.sender import Sender
from repro.units import tx_time_ns

register_algorithm(
    "homa",
    requirements=Requirements(transport=HOMA_TRANSPORT),
    params=("overcommitment",),
    description="HOMA: receiver-driven grants with overcommitment",
)

PRIO_CONTROL = 0
PRIO_UNSCHED_SMALL = 1
PRIO_UNSCHED_LARGE = 2
PRIO_SCHED_BASE = 3
PRIO_LOWEST = 7


class HomaSender(Sender):
    """Message sender: unscheduled prefix at line rate, then grant-gated."""

    def __init__(self, *args, rtt_bytes: int, **kwargs):
        super().__init__(*args, **kwargs)
        self.rtt_bytes = rtt_bytes
        self.granted = min(self.flow.size_bytes, rtt_bytes)
        # No congestion window: HOMA performs no sender-side CC.
        self.cwnd = float("inf")
        self.pacing_rate_bps = self.host_bw_bps
        # Priority changes between unscheduled and scheduled data can
        # reorder packets of one message in the fabric; HOMA tolerates
        # reordering (the receiver buffers), so duplicate-ACK rewind is
        # disabled and recovery relies on the RTO.
        self.dup_ack_threshold = 10 ** 9
        self.priority = (
            PRIO_UNSCHED_SMALL
            if self.flow.size_bytes <= rtt_bytes
            else PRIO_UNSCHED_LARGE
        )

    def _send_limit(self) -> int:
        return min(self.flow.size_bytes, self.granted)

    def on_packet(self, pkt: Packet) -> None:
        if pkt.kind == GRANT:
            if pkt.grant_bytes > self.granted:
                self.granted = pkt.grant_bytes
                self.priority = pkt.sched_priority  # receiver-assigned rank
                self._try_send()
            self._pool.release(pkt)
            return
        super().on_packet(pkt)


class HomaReceiver(Receiver):
    """Message receiver: feeds the per-host grant scheduler.

    Unlike the go-back-N base receiver, HOMA buffers out-of-order
    segments: priority changes legitimately reorder a message's packets in
    flight, and discarding them would misattribute loss.
    """

    def __init__(self, *args, scheduler: "HomaGrantScheduler", rtt_bytes: int, **kwargs):
        super().__init__(*args, **kwargs)
        self.scheduler = scheduler
        self.rtt_bytes = rtt_bytes
        self.granted = min(self.flow.size_bytes, rtt_bytes)
        self._ooo_ranges: Dict[int, int] = {}  # seq -> end_seq

    @property
    def remaining_bytes(self) -> int:
        """Bytes still missing (SRPT key)."""
        return self.flow.size_bytes - self.rcv_nxt

    @property
    def needs_grant(self) -> bool:
        """True while some suffix of the message is ungranted."""
        return self.granted < self.flow.size_bytes

    def start(self) -> None:
        super().start()
        if self.needs_grant:
            self.scheduler.add(self)

    def on_packet(self, pkt: Packet) -> None:
        if pkt.kind == DATA and pkt.seq > self.rcv_nxt:
            # Buffer the out-of-order range, then let the base class send
            # its (duplicate) cumulative ACK.
            end = self._ooo_ranges.get(pkt.seq, 0)
            if pkt.end_seq > end:
                self._ooo_ranges[pkt.seq] = pkt.end_seq
        super().on_packet(pkt)
        self._absorb_buffered()
        if self.flow.finish_ns is not None:
            self.scheduler.remove(self)
        elif self.needs_grant:
            self.scheduler.poke()

    def _absorb_buffered(self) -> None:
        """Advance rcv_nxt through any now-contiguous buffered ranges."""
        advanced = True
        while advanced and self._ooo_ranges:
            advanced = False
            for seq in sorted(self._ooo_ranges):
                if seq > self.rcv_nxt:
                    break
                end = self._ooo_ranges.pop(seq)
                if end > self.rcv_nxt:
                    self.rcv_nxt = end
                    advanced = True
        if self.rcv_nxt > self.flow.bytes_received:
            self.flow.bytes_received = self.rcv_nxt
        if (
            self.rcv_nxt >= self.flow.size_bytes
            and self.flow.finish_ns is None
        ):
            self.flow.finish_ns = self.sim.now
            if self.on_complete is not None:
                self.on_complete(self.flow)


class HomaGrantScheduler:
    """Per-host grant pacer with SRPT ranking and overcommitment.

    Every ``tick`` (one MTU at downlink rate) one grant of one MTU is
    issued to the highest-ranked message among the ``overcommitment``
    smallest-remaining active messages that still has grant headroom
    (granted − received < RTTbytes).
    """

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        *,
        overcommitment: int = 1,
        mtu_payload: int = 1000,
    ):
        if overcommitment < 1:
            raise ValueError(f"overcommitment must be >= 1, got {overcommitment}")
        self.sim = sim
        self.host = host
        self.overcommitment = overcommitment
        self.mtu_payload = mtu_payload
        self.active: Dict[int, HomaReceiver] = {}
        self.grants_sent = 0
        self._tick_ns = tx_time_ns(mtu_payload + 48, host.nic.rate_bps)
        self._running = False
        self._pool = get_pool(sim)

    # ------------------------------------------------------------------
    def add(self, receiver: HomaReceiver) -> None:
        """Track a new incoming message that will need grants."""
        self.active[receiver.flow.flow_id] = receiver
        self.poke()

    def remove(self, receiver: HomaReceiver) -> None:
        """Stop tracking a completed (or fully granted) message."""
        self.active.pop(receiver.flow.flow_id, None)

    def poke(self) -> None:
        """Ensure the grant pacer is running while work exists."""
        if not self._running and self.active:
            self._running = True
            self.sim.after(self._tick_ns, self._tick)

    # ------------------------------------------------------------------
    def _rank(self) -> List[HomaReceiver]:
        # SRPT with a deterministic flow-id tiebreak so equal-remaining
        # messages are served round-robin-stably rather than arbitrarily.
        return sorted(
            self.active.values(),
            key=lambda r: (r.remaining_bytes, r.flow.flow_id),
        )

    def _tick(self) -> None:
        self._running = False
        if not self.active:
            return
        candidates = self._rank()[: self.overcommitment]
        for rank, receiver in enumerate(candidates):
            if not receiver.needs_grant:
                continue
            outstanding = receiver.granted - receiver.rcv_nxt
            if outstanding >= receiver.rtt_bytes:
                continue
            receiver.granted = min(
                receiver.granted + self.mtu_payload, receiver.flow.size_bytes
            )
            priority = min(PRIO_SCHED_BASE + rank, PRIO_LOWEST)
            grant = self._pool.grant(
                receiver.flow.flow_id,
                receiver.flow.dst,
                receiver.flow.src,
                receiver.granted,
                sched_priority=priority,
            )
            self.host.send(grant)
            self.grants_sent += 1
            if not receiver.needs_grant:
                self.remove(receiver)
            break  # one grant per tick: grants are paced at downlink rate
        if self.active:
            self._running = True
            self.sim.after(self._tick_ns, self._tick)

"""TCP NewReno — the classic loss-based AIMD law (§2's motivation).

The paper's Appendix C recalls the behaviour this class exhibits: "TCP
NewReno flows fill the queue to maximum (say q_max) and then react by
reducing windows by half.  Consequently, the bottleneck queue-length
oscillates between q_max and q_max − b·τ" — i.e. a *standing queue* that
violates the Eq. 1 near-zero-queue equilibrium.  NewReno is implemented
so that claim is executable (see ``benchmarks/test_motivation.py``).

Loss-based TCP is ACK-clocked, not paced: the pacing rate is pinned to
the host line rate and only the window gates transmission.
"""

from __future__ import annotations

from repro.cc.base import CongestionControl
from repro.cc.registry import register

INITIAL_WINDOW_MTUS = 10  # RFC 6928 IW10


@register(
    "newreno",
    description="TCP NewReno: loss-based AIMD (motivation baseline)",
)
class NewReno(CongestionControl):
    """Slow start + congestion avoidance + AIMD on loss."""

    def __init__(self, **kwargs):
        # Loss-based laws must be able to fill BDP *plus* the buffer —
        # the default 2x-BDP cap would prevent the very overshoot that
        # drives them, so allow a much deeper window unless overridden.
        kwargs.setdefault("cap_bdp_multiple", 16.0)
        super().__init__(**kwargs)
        self._ssthresh = float("inf")

    def on_start(self, sender) -> None:
        sender.cwnd = INITIAL_WINDOW_MTUS * sender.mtu_payload
        sender.pacing_rate_bps = sender.host_bw_bps  # ACK-clocked
        self._ssthresh = float("inf")

    def _set_cwnd(self, sender, cwnd: float) -> None:
        low, high = self.window_bounds(sender)
        sender.cwnd = min(max(cwnd, sender.mtu_payload), high)
        sender.pacing_rate_bps = sender.host_bw_bps

    def on_ack(self, sender, feedback) -> None:
        acked = feedback.newly_acked_bytes
        if acked <= 0:
            return
        if sender.cwnd < self._ssthresh:
            # Slow start: one MTU per acked MTU (exponential per RTT).
            self._set_cwnd(sender, sender.cwnd + acked)
        else:
            # Congestion avoidance: one MTU per RTT, spread across ACKs.
            mtu = sender.mtu_payload
            increment = mtu * acked / max(sender.cwnd, mtu)
            self._set_cwnd(sender, sender.cwnd + increment)

    def on_loss(self, sender) -> None:
        """Fast retransmit: halve (the multiplicative decrease of AIMD)."""
        self._ssthresh = max(sender.cwnd / 2, 2 * sender.mtu_payload)
        self._set_cwnd(sender, self._ssthresh)

    def on_timeout(self, sender) -> None:
        """RTO: collapse to one MTU and re-enter slow start."""
        self._ssthresh = max(sender.cwnd / 2, 2 * sender.mtu_payload)
        self._set_cwnd(sender, sender.mtu_payload)

    @property
    def ssthresh(self) -> float:
        """Current slow-start threshold."""
        return self._ssthresh

"""Swift (Kumar et al., SIGCOMM 2020) — target-delay AIMD.

TIMELY's production successor at Google and, per the paper's taxonomy, a
pure *voltage-based* scheme: it compares the measured RTT against a fixed
target delay and reacts proportionally to the excess, never to the
gradient.  The paper notes Swift "cannot detect congestion onset and
intensity unless the distance from target delay significantly increases" —
this implementation exists so that claim can be exercised empirically
(it is an extension; Swift is not part of the paper's evaluated set).
"""

from __future__ import annotations

from typing import Optional

from repro.cc.base import CongestionControl
from repro.cc.registry import register

DEFAULT_TARGET_RTTS = 1.25  # target delay as a multiple of base RTT
DEFAULT_AI_MTUS = 1.0  # additive increase per RTT, in MTUs
DEFAULT_BETA = 0.8
DEFAULT_MAX_MDF = 0.5  # max multiplicative decrease factor per event


@register(
    "swift",
    description="Swift: target-delay AIMD (SIGCOMM 2020 extension)",
)
class Swift(CongestionControl):
    """Swift sender logic (window-based)."""

    def __init__(
        self,
        target_ns: Optional[int] = None,
        ai_mtus: float = DEFAULT_AI_MTUS,
        beta: float = DEFAULT_BETA,
        max_mdf: float = DEFAULT_MAX_MDF,
        **kwargs,
    ):
        super().__init__(**kwargs)
        self.target_ns = target_ns
        self.ai_mtus = ai_mtus
        self.beta = beta
        self.max_mdf = max_mdf
        self._last_decrease_seq = 0

    def on_start(self, sender) -> None:
        super().on_start(sender)
        if self.target_ns is None:
            self.target_ns = int(DEFAULT_TARGET_RTTS * sender.base_rtt_ns)
        self._last_decrease_seq = 0

    def on_ack(self, sender, feedback) -> None:
        rtt = feedback.rtt_ns
        if rtt is None:
            return
        mtu = sender.mtu_payload
        if rtt < self.target_ns:
            # Additive increase, spread across the ACKs of one window.
            cwnd_mtus = max(sender.cwnd / mtu, 1e-6)
            increment = self.ai_mtus * mtu / cwnd_mtus
            self.set_window(sender, sender.cwnd + increment)
        elif feedback.ack_seq > self._last_decrease_seq:
            # At most one multiplicative decrease per RTT.
            factor = max(
                1.0 - self.beta * (rtt - self.target_ns) / rtt,
                1.0 - self.max_mdf,
            )
            self.set_window(sender, sender.cwnd * factor)
            self._last_decrease_seq = feedback.sent_high

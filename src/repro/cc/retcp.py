"""reTCP (Mukerjee et al., NSDI 2020) — circuit-aware TCP for RDCNs.

reTCP's idea is *explicit circuit state feedback*: endpoints are told when
their ToR pair's circuit is (about to be) up and resize their window by a
fixed factor, while the ToR prebuffers packets into the circuit VOQ ahead
of the day.  The prebuffering interval is the knob Fig. 8 sweeps
(reTCP-600µs vs reTCP-1800µs): more prebuffering fills the circuit from
the first microsecond of the day at the cost of standing-queue latency.

The model here mirrors that split:

* the **ToR side** (VOQ admission ``prebuffer_ns`` before the day) lives in
  :class:`repro.topology.rdcn.RdcnToR`;
* the **endpoint side** (this class) switches between a *night window*
  sized for the flow's share of the packet network and a *day window*
  sized for line rate, driven by the circuit schedule — i.e. the explicit
  notification reTCP assumes.

reTCP performs no feedback-based congestion control beyond this — which is
exactly why it pays the latency cost Fig. 8b shows.
"""

from __future__ import annotations

from repro.cc.base import CongestionControl
from repro.cc.registry import register
from repro.sim.circuit import CircuitSchedule
from repro.units import BITS_PER_BYTE, SEC


def _retcp_factory(flow, net, **params):
    """Bind the ToR pair and circuit schedule from the built RDCN."""
    prebuffer_ns = int(params.pop("prebuffer_ns", 0))
    flows_per_pair = int(params.pop("flows_per_pair", 1))
    rdcn = net.extras["params"]
    return ReTcp(
        net.extras["schedule"],
        rdcn.tor_of_host(flow.src),
        rdcn.tor_of_host(flow.dst),
        prebuffer_ns=prebuffer_ns,
        flows_per_pair=flows_per_pair,
        **params,
    )


@register(
    "retcp",
    factory=_retcp_factory,
    requires_network=True,
    params=(
        "prebuffer_ns",
        "flows_per_pair",
        "day_window_multiple",
        "cap_bdp_multiple",
    ),
    description="reTCP: circuit-schedule-driven windows (RDCN case study)",
)
class ReTcp(CongestionControl):
    """Schedule-driven static windows (endpoint half of reTCP)."""

    def __init__(
        self,
        schedule: CircuitSchedule,
        src_tor: int,
        dst_tor: int,
        *,
        prebuffer_ns: int = 0,
        flows_per_pair: int = 1,
        day_window_multiple: float = 1.0,
        **kwargs,
    ):
        super().__init__(**kwargs)
        self.schedule = schedule
        self.src_tor = src_tor
        self.dst_tor = dst_tor
        self.prebuffer_ns = prebuffer_ns
        self.flows_per_pair = max(flows_per_pair, 1)
        self.day_window_multiple = day_window_multiple
        self._sender = None

    # ------------------------------------------------------------------
    def _night_window(self, sender) -> float:
        """Fair share of the packet network for this ToR pair's flows."""
        packet_bw = min(sender.host_bw_bps, self._packet_bw(sender))
        share = packet_bw / self.flows_per_pair
        return share * sender.base_rtt_ns / (BITS_PER_BYTE * SEC)

    def _packet_bw(self, sender) -> float:
        # The ToR packet uplink rate is not directly visible to the
        # endpoint; reTCP provisions for the host line rate upper bound.
        return sender.host_bw_bps

    def _day_window(self, sender) -> float:
        return self.day_window_multiple * self.host_bdp_bytes(sender)

    # ------------------------------------------------------------------
    def on_start(self, sender) -> None:
        self._sender = sender
        sender.pacing_rate_bps = sender.host_bw_bps
        self._apply(sender)

    def _apply(self, sender) -> None:
        """Set the window for the current phase and arm the next switch."""
        if sender.done:
            return
        now = sender.sim.now
        start, end = self.schedule.window_for(self.src_tor, self.dst_tor, now)
        in_window = start - self.prebuffer_ns <= now < end
        if in_window:
            self.set_window(sender, self._day_window(sender))
            next_transition = end
        else:
            self.set_window(sender, self._night_window(sender))
            next_transition = start - self.prebuffer_ns
        sender.pacing_rate_bps = sender.host_bw_bps
        sender.sim.at(next_transition, self._apply, sender)
        sender._try_send()

    def on_loss(self, sender) -> None:
        """Windows are schedule-pinned; losses do not shrink them."""

    def on_timeout(self, sender) -> None:
        """Windows are schedule-pinned."""

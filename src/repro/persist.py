"""Crash-safe file persistence helpers (the atomic-write contract).

Contract: ``docs/INVARIANTS.md#atomic-persistence`` — every JSON document
this project persists (sweep caches, campaign shard files, merged
outputs, failure reports) is written via a temp file in the *same
directory* followed by ``os.replace``, so a reader never observes a
half-written document and a killed writer never corrupts an existing
one.  The temp file is fsynced before the rename; the rename itself is
atomic on POSIX.

Readers use :func:`load_json_or_none`, which converts a missing,
truncated, or otherwise corrupt file into ``None`` plus a warning —
an unreadable cache must degrade to a cache miss, never a traceback.
"""

from __future__ import annotations

import json
import os
import tempfile
import warnings
from typing import Any, Optional


def atomic_write_text(path: str, text: str) -> str:
    """Write ``text`` to ``path`` atomically (tmp + fsync + os.replace)."""
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        dir=parent, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


def atomic_write_json(
    path: str, doc: Any, *, indent: int = 1, sort_keys: bool = True
) -> str:
    """Serialize ``doc`` and write it atomically; returns ``path``.

    The serialization (``indent=1, sort_keys=True`` + trailing newline)
    matches what :meth:`repro.scenarios.sweep.SweepResult.persist` has
    always produced, so identical documents stay byte-identical.
    """
    text = json.dumps(doc, indent=indent, sort_keys=sort_keys) + "\n"
    return atomic_write_text(path, text)


def load_json_or_none(path: str, *, label: str = "file") -> Optional[Any]:
    """Load a JSON document, degrading corruption to ``None`` + warning.

    A missing file is a silent ``None`` (the common first-run case); a
    present-but-unreadable one warns — a truncated cache from a killed
    run must surface, but as a cache miss rather than a crash.
    """
    try:
        with open(path) as handle:
            return json.load(handle)
    except FileNotFoundError:
        return None
    except (OSError, ValueError) as exc:
        warnings.warn(
            f"{label} {path!r} is unreadable ({exc}); treating it as absent",
            stacklevel=2,
        )
        return None

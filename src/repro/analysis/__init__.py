"""Result analysis: FCT slowdowns, CDFs, percentiles, fairness."""

from repro.analysis.stats import cdf_points, percentile
from repro.analysis.fct import (
    FctSummary,
    LONG_FLOW_MIN_BYTES,
    MEDIUM_FLOW_RANGE,
    SHORT_FLOW_MAX_BYTES,
    slowdown_by_size_bin,
    slowdowns,
    summarize_fct,
)
from repro.analysis.fairness import jain_index, throughput_shares
from repro.analysis.results import ResultCell, ResultSet

__all__ = [
    "FctSummary",
    "ResultCell",
    "ResultSet",
    "LONG_FLOW_MIN_BYTES",
    "MEDIUM_FLOW_RANGE",
    "SHORT_FLOW_MAX_BYTES",
    "cdf_points",
    "jain_index",
    "percentile",
    "slowdown_by_size_bin",
    "slowdowns",
    "summarize_fct",
    "throughput_shares",
]

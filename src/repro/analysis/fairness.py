"""Fairness metrics for the Fig. 5 / Fig. 9 experiments."""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.transport.flow import Flow
from repro.units import BITS_PER_BYTE, SEC


def jain_index(rates: Sequence[float]) -> float:
    """Jain's fairness index: 1.0 means perfectly equal shares."""
    if not rates:
        raise ValueError("jain index of empty sequence")
    total = sum(rates)
    squares = sum(r * r for r in rates)
    if squares == 0:
        return 1.0
    return (total * total) / (len(rates) * squares)


def throughput_shares(
    byte_counts: Dict[int, int], interval_ns: int
) -> Dict[int, float]:
    """Per-flow throughput (bits/s) from byte deltas over an interval."""
    if interval_ns <= 0:
        raise ValueError("interval must be positive")
    return {
        flow_id: count * BITS_PER_BYTE * SEC / interval_ns
        for flow_id, count in byte_counts.items()
    }


def average_goodput_bps(flow: Flow) -> float:
    """Whole-life goodput of a completed flow."""
    return flow.size_bytes * BITS_PER_BYTE * SEC / flow.fct_ns

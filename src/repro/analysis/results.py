"""Result-loading API over persisted sweep JSON (``benchmarks/results/``).

Plotting and perf-trend tooling should never re-run simulations: every
sweep the runner persists (``python -m repro sweep ... --out f.json``) is
a self-describing document of cells.  This module loads those documents
into a small queryable container:

* :meth:`ResultSet.load` / :meth:`ResultSet.load_dir` — one file, or every
  ``*_sweep.json`` under a directory;
* :meth:`ResultSet.filter` — keep cells whose params (falling back to the
  full overrides) match;
* :meth:`ResultSet.values` — one metric as a list;
* :meth:`ResultSet.pivot` — a (rows × cols) table of one metric, e.g.
  load × algorithm → p99 slowdown, ready to print or plot.

Example::

    rs = ResultSet.load("benchmarks/results/websearch_sweep.json")
    rows, cols, table = rs.pivot("load", "algorithm", "fct_p99_short")
"""

from __future__ import annotations

import glob
import json
import os
import re
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple


def _canonical(value: Any) -> str:
    """A stable string form of one parameter value (dedup/sort fallback)."""
    try:
        return json.dumps(value, sort_keys=True)
    except (TypeError, ValueError):
        return repr(value)


def _param_sort_key(value: Any) -> Tuple[int, float, str]:
    """Type-aware sort key: numbers first (numerically), then everything
    else by canonical string — mixed axes must never raise TypeError."""
    if isinstance(value, bool):
        return (1, float(value), "")
    if isinstance(value, (int, float)):
        return (0, float(value), "")
    return (2, 0.0, _canonical(value))


@dataclass
class ResultCell:
    """One executed sweep cell, as persisted."""

    scenario: str
    params: Dict[str, Any] = field(default_factory=dict)
    overrides: Dict[str, Any] = field(default_factory=dict)
    metrics: Dict[str, Any] = field(default_factory=dict)
    series: Dict[str, List] = field(default_factory=dict)
    provenance: Dict[str, Any] = field(default_factory=dict)
    #: file the cell was loaded from (provenance for merged sets)
    source: str = ""
    #: terminal state: "ok", or "failed"/"timeout" from a campaign run
    status: str = "ok"
    #: error provenance (kind/type/message/traceback) for non-ok cells
    error: Optional[Dict[str, Any]] = None
    #: executions including retries (1 = first-try success)
    attempts: int = 1

    def param(self, key: str, default: Any = None) -> Any:
        """A cell parameter: grid params first, then the full override
        set, then the provenance config (which records *every* field, so
        defaulted values — e.g. ``segments`` left at 2 — still pivot)."""
        if key in self.params:
            return self.params[key]
        if key in self.overrides:
            return self.overrides[key]
        config = self.provenance.get("config")
        if isinstance(config, dict) and key in config:
            return config[key]
        return default

    def matches(self, **params: Any) -> bool:
        """True when every given key=value matches this cell."""
        return all(self.param(k) == v for k, v in params.items())


class ResultSet:
    """A queryable collection of :class:`ResultCell`."""

    def __init__(self, cells: Optional[Sequence[ResultCell]] = None):
        self.cells: List[ResultCell] = list(cells or [])

    # -- loading -------------------------------------------------------
    @classmethod
    def load(cls, path: str) -> "ResultSet":
        """Load one persisted sweep document."""
        with open(path) as handle:
            doc = json.load(handle)
        cells = []
        for cell in doc.get("cells", []):
            if "scenario" not in cell:
                continue
            cells.append(cls._cell_from_dict(cell, path))
        return cls(cells)

    @staticmethod
    def _cell_from_dict(cell: Dict[str, Any], source: str) -> "ResultCell":
        return ResultCell(
            scenario=cell["scenario"],
            params=cell.get("params", {}) or {},
            overrides=cell.get("overrides", {}) or {},
            metrics=cell.get("metrics", {}) or {},
            series=cell.get("series", {}) or {},
            provenance=cell.get("provenance", {}) or {},
            source=source,
            status=cell.get("status", "ok"),
            error=cell.get("error"),
            attempts=cell.get("attempts", 1),
        )

    @classmethod
    def load_journal(cls, path: str) -> "ResultSet":
        """Cells recovered from a campaign journal (``*.journal.jsonl``).

        The journal is append-only JSON-lines; only ``cell_ok`` records
        carry full cell payloads.  A torn trailing line (the writer was
        killed mid-append) is tolerated; later duplicates of a cell win
        (a retry that eventually succeeded journals the success last).
        """
        by_key: Dict[str, ResultCell] = {}
        try:
            with open(path) as handle:
                lines = handle.readlines()
        except OSError:
            return cls()
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue  # torn tail from a killed writer
            if record.get("event") != "cell_ok":
                continue
            cell = record.get("cell")
            if not isinstance(cell, dict) or "scenario" not in cell:
                continue
            key = json.dumps(
                {
                    "scenario": cell["scenario"],
                    "overrides": cell.get("overrides"),
                },
                sort_keys=True,
                default=repr,
            )
            by_key[key] = cls._cell_from_dict(cell, path)
        return cls(list(by_key.values()))

    @classmethod
    def load_dir(
        cls, directory: str, pattern: str = "*_sweep.json"
    ) -> "ResultSet":
        """Load and merge every matching sweep file under ``directory``."""
        merged = cls()
        for path in sorted(glob.glob(os.path.join(directory, pattern))):
            merged.cells.extend(cls.load(path).cells)
        return merged

    @classmethod
    def merge_shards(
        cls, directory: str, base: Optional[str] = None
    ) -> "ResultSet":
        """Merge the per-shard files a ``sweep --shard I/N`` run persisted.

        Shards are named ``<base>.shard-I-of-N.json``; ``base`` narrows
        the merge to one sweep's shards (e.g. ``"coexistence_sweep"`` —
        the stem without ``.json``), otherwise every shard file under
        ``directory`` merges.  Raises when shard files disagree on the
        shard count or indices are missing (a partial merge would
        silently under-report the grid); duplicate cells across shards
        (same scenario + overrides) are dropped.
        """
        pattern = f"{base or '*'}.shard-*-of-*.json"
        paths = sorted(glob.glob(os.path.join(directory, pattern)))
        if not paths:
            raise ValueError(
                f"no shard files matching {pattern!r} under {directory!r}"
            )
        shard_re = re.compile(r"\.shard-(\d+)-of-(\d+)\.json$")
        #: stem -> set of (index, count) pairs seen in file names
        by_stem: Dict[str, set] = {}
        merged = cls()
        seen = set()
        for path in paths:
            match = shard_re.search(path)
            if match is None:
                continue
            index, count = int(match.group(1)), int(match.group(2))
            stem = path[: match.start()]
            by_stem.setdefault(stem, set()).add((index, count))
            for cell in cls.load(path).cells:
                key = json.dumps(
                    {"scenario": cell.scenario, "overrides": cell.overrides},
                    sort_keys=True,
                    default=repr,
                )
                if key in seen:
                    continue
                seen.add(key)
                merged.cells.append(cell)
        for stem, pairs in by_stem.items():
            counts = {count for _index, count in pairs}
            if len(counts) > 1:
                raise ValueError(
                    f"{stem}: shard files disagree on the shard count "
                    f"({sorted(counts)})"
                )
            count = counts.pop()
            indices = {index for index, _count in pairs}
            missing = sorted(set(range(1, count + 1)) - indices)
            if missing:
                raise ValueError(
                    f"{stem}: missing shard(s) {missing} of {count}"
                )
        return merged

    # -- querying ------------------------------------------------------
    def __len__(self) -> int:
        return len(self.cells)

    def __iter__(self):
        return iter(self.cells)

    def filter(self, **params: Any) -> "ResultSet":
        """Cells whose params (or overrides) match every key=value."""
        return ResultSet([c for c in self.cells if c.matches(**params)])

    def scenarios(self) -> List[str]:
        """Distinct scenario names present, sorted."""
        return sorted({c.scenario for c in self.cells})

    def for_scenario(self, name: str) -> "ResultSet":
        """Cells belonging to one scenario (load_dir merges many)."""
        return ResultSet([c for c in self.cells if c.scenario == name])

    def param_values(self, key: str) -> List[Any]:
        """Distinct values of one parameter, sorted.

        Numbers sort numerically regardless of int/float mixing (the CLI's
        ``ast.literal_eval`` happily yields ``[1, 1.5, 2.0]`` for one
        axis); non-numeric values follow, ordered by their canonical string
        form.  The sort key is fully type-aware, so a string-valued axis
        (``algorithm``) merged with a numeric axis file via
        :meth:`load_dir` never raises ``TypeError``, and unhashable values
        (a ``segment_bw_bps`` list, a ``cc_params`` dict) deduplicate by
        their canonical JSON form instead of crashing the set build.
        """
        distinct: Dict[Any, Any] = {}
        for cell in self.cells:
            value = cell.param(key)
            if value is None:
                continue
            try:
                distinct.setdefault(value, value)
            except TypeError:  # unhashable (list/dict axis values)
                distinct.setdefault(_canonical(value), value)
        return sorted(distinct.values(), key=_param_sort_key)

    def values(self, metric: str) -> List[Any]:
        """One metric across all cells (cells lacking it are skipped)."""
        return [c.metrics[metric] for c in self.cells if metric in c.metrics]

    def only(self) -> ResultCell:
        """The single cell in this set; raises unless exactly one."""
        if len(self.cells) != 1:
            raise KeyError(f"expected exactly one cell, have {len(self.cells)}")
        return self.cells[0]

    def ok(self) -> "ResultSet":
        """Cells that completed successfully (status == "ok")."""
        return ResultSet([c for c in self.cells if c.status == "ok"])

    def failures(self) -> "ResultSet":
        """Cells that exhausted their retries (failed/timeout)."""
        return ResultSet([c for c in self.cells if c.status != "ok"])

    # -- pivoting ------------------------------------------------------
    def pivot(
        self,
        row_key: str,
        col_key: str,
        metric: str,
        agg: Optional[Callable[[List[float]], float]] = None,
    ) -> Tuple[List[Any], List[Any], List[List[Optional[float]]]]:
        """A (rows × cols) table of one metric.

        Returns ``(row_labels, col_labels, table)``; empty groups are
        None.  ``agg`` collapses multiple matching cells (e.g. seeds) —
        the default requires exactly one cell per (row, col) group and
        raises otherwise, so accidental duplicates never average silently.
        """
        rows = self.param_values(row_key)
        cols = self.param_values(col_key)
        table: List[List[Optional[float]]] = []
        for row in rows:
            out_row: List[Optional[float]] = []
            for col in cols:
                group = self.filter(**{row_key: row, col_key: col})
                values = group.values(metric)
                if not values:
                    out_row.append(None)
                elif agg is not None:
                    out_row.append(agg(values))
                elif len(values) == 1:
                    out_row.append(values[0])
                else:
                    raise ValueError(
                        f"{len(values)} cells match ({row_key}={row!r}, "
                        f"{col_key}={col!r}); pass agg= to collapse them"
                    )
            table.append(out_row)
        return rows, cols, table

    def format_pivot(
        self,
        row_key: str,
        col_key: str,
        metric: str,
        agg: Optional[Callable[[List[float]], float]] = None,
        fmt: str = "{:>12.4g}",
    ) -> List[str]:
        """The pivot as printable table lines."""
        rows, cols, table = self.pivot(row_key, col_key, metric, agg)
        width = max((len(str(r)) for r in rows), default=4)
        header = " " * width + " " + " ".join(f"{str(c):>12s}" for c in cols)
        lines = [f"{metric} by {row_key} x {col_key}", header]
        for row, out_row in zip(rows, table):
            cells = " ".join(
                fmt.format(v) if v is not None else f"{'-':>12s}"
                for v in out_row
            )
            lines.append(f"{str(row):>{width}s} {cells}")
        return lines


def parking_lot_pivot(
    results: ResultSet,
    metric: str = "e2e_cross_ratio",
    row_key: str = "segments",
    agg: Optional[Callable[[List[float]], float]] = None,
) -> Tuple[List[Any], List[Any], List[List[Optional[float]]]]:
    """The §3.5 view over a persisted ``multi_bottleneck`` sweep.

    Rows are chain lengths (``segments``), columns are CC algorithms, and
    the default metric is the end-to-end flow's goodput relative to the
    cross traffic on its most-bottlenecked segment — the quantity the
    INT-vs-delay-feedback argument is about (the delay law over-throttles
    the multi-hop flow as the summed queueing grows with chain length).
    """
    return _parking_lot_cells(results).pivot(row_key, "algorithm", metric, agg)


def format_parking_lot(
    results: ResultSet,
    metric: str = "e2e_cross_ratio",
    row_key: str = "segments",
    agg: Optional[Callable[[List[float]], float]] = None,
) -> List[str]:
    """:func:`parking_lot_pivot` as printable table lines."""
    return _parking_lot_cells(results).format_pivot(
        row_key, "algorithm", metric, agg
    )


def _parking_lot_cells(results: ResultSet) -> ResultSet:
    """The multi_bottleneck subset; empty sets fail with a pointer."""
    rs = results.for_scenario("multi_bottleneck")
    if not rs.cells:
        raise ValueError(
            "no multi_bottleneck cells in this result set; run "
            "`python -m repro sweep multi_bottleneck ...` first"
        )
    return rs


def lb_pivot(
    results: ResultSet,
    metric: str = "uplink_imbalance",
    row_key: str = "routing",
    agg: Optional[Callable[[List[float]], float]] = None,
) -> Tuple[List[Any], List[Any], List[List[Optional[float]]]]:
    """The CC × load-balancing view over a persisted ``lb_matrix`` sweep.

    Rows are routing policies, columns are CC algorithms, and the default
    metric is the fabric's per-uplink load imbalance (max/mean of
    transmitted bytes) — the quantity a load balancer exists to minimize.
    Pass ``metric="hotspot_peak_qlen_bytes"`` for the collision symptom or
    ``metric="fct_p99_overall"`` for what it costs the flows.
    """
    return _lb_cells(results).pivot(row_key, "algorithm", metric, agg)


def format_lb_matrix(
    results: ResultSet,
    metric: str = "uplink_imbalance",
    row_key: str = "routing",
    agg: Optional[Callable[[List[float]], float]] = None,
) -> List[str]:
    """:func:`lb_pivot` as printable table lines."""
    return _lb_cells(results).format_pivot(row_key, "algorithm", metric, agg)


def _lb_cells(results: ResultSet) -> ResultSet:
    """The lb_matrix subset; empty sets fail with a pointer."""
    rs = results.for_scenario("lb_matrix")
    if not rs.cells:
        raise ValueError(
            "no lb_matrix cells in this result set; run "
            "`python -m repro sweep lb_matrix ...` first"
        )
    return rs


def merge_shards(directory: str, base: Optional[str] = None) -> ResultSet:
    """Module-level alias of :meth:`ResultSet.merge_shards`."""
    return ResultSet.merge_shards(directory, base)


def merge_campaign(
    directory: str, base: Optional[str] = None, journal: Optional[str] = None
) -> ResultSet:
    """Journal-aware shard merge for a campaign's output family.

    Merges the ``<base>.shard-I-of-N.json`` files exactly like
    :func:`merge_shards`, then adopts any ``cell_ok`` journal records for
    cells the shard files do not contain — results completed after the
    last shard flush but before a crash live only in the journal, and a
    merge that ignored them would re-run (or under-report) those cells.
    """
    merged = ResultSet.merge_shards(directory, base)
    if journal:
        have = {
            json.dumps(
                {"scenario": c.scenario, "overrides": c.overrides},
                sort_keys=True,
                default=repr,
            )
            for c in merged.cells
        }
        for cell in ResultSet.load_journal(journal).cells:
            key = json.dumps(
                {"scenario": cell.scenario, "overrides": cell.overrides},
                sort_keys=True,
                default=repr,
            )
            if key not in have:
                have.add(key)
                merged.cells.append(cell)
    return merged


def failure_report(results: ResultSet) -> Dict[str, Any]:
    """A JSON-able report of every non-ok cell in a result set.

    The campaign orchestrator persists this next to the merged output
    (``<stem>.failures.json``); each entry carries the cell's params,
    final status, attempt count, and error provenance so an operator can
    see *which* cells died and *why* without grepping worker logs.
    """
    failures = results.failures()
    entries = []
    for cell in failures.cells:
        entries.append(
            {
                "scenario": cell.scenario,
                "params": cell.params,
                "status": cell.status,
                "attempts": cell.attempts,
                "error": cell.error,
                "source": cell.source,
            }
        )
    return {
        "total_cells": len(results),
        "failed_cells": len(entries),
        "failures": entries,
    }


def format_failure_report(results: ResultSet) -> List[str]:
    """:func:`failure_report` as printable lines (one per failed cell)."""
    report = failure_report(results)
    lines = [
        f"{report['failed_cells']} of {report['total_cells']} cells failed"
    ]
    for entry in report["failures"]:
        params = " ".join(
            f"{k}={v}" for k, v in sorted(entry["params"].items())
        )
        error = entry.get("error") or {}
        reason = error.get("message") or error.get("kind") or "unknown error"
        lines.append(
            f"  [{entry['status']}] {entry['scenario']} {params} "
            f"(attempts={entry['attempts']}): {reason}"
        )
    return lines


def rollout_pivot(
    results: ResultSet,
    metric: str = "cross_group_ratio",
    col_key: str = "topology",
    agg: Optional[Callable[[List[float]], float]] = None,
) -> Tuple[List[Any], List[Any], List[List[Optional[float]]]]:
    """The deployment-mix view over a persisted ``coexistence`` sweep.

    Rows are rollout fractions (``rollout_fraction``), columns default to
    the topology axis, and the default metric is the newcomer-vs-
    incumbent per-flow throughput ratio — the §6 deployment question as
    one table: how the mix shares at every rollout step, on every fabric.
    """
    return _coexistence_cells(results).pivot(
        "rollout_fraction", col_key, metric, agg
    )


def format_rollout(
    results: ResultSet,
    metric: str = "cross_group_ratio",
    col_key: str = "topology",
    agg: Optional[Callable[[List[float]], float]] = None,
) -> List[str]:
    """:func:`rollout_pivot` as printable table lines."""
    return _coexistence_cells(results).format_pivot(
        "rollout_fraction", col_key, metric, agg
    )


def _coexistence_cells(results: ResultSet) -> ResultSet:
    """The coexistence subset; empty sets fail with a pointer."""
    rs = results.for_scenario("coexistence")
    if not rs.cells:
        raise ValueError(
            "no coexistence cells in this result set; run "
            "`python -m repro sweep coexistence ...` first"
        )
    return rs


# ----------------------------------------------------------------------
# perf trend: events/sec over historical BENCH_perf.json documents
# ----------------------------------------------------------------------
def perf_trend(
    paths: Sequence[str], *, include_tiny: bool = False
) -> Dict[str, List[Dict[str, Any]]]:
    """Per-case events/sec series over historical BENCH documents.

    ``paths`` is an ordered list of ``BENCH_perf.json`` snapshots
    (oldest first — e.g. one per PR, extracted from git history or CI
    artifacts).  A path may also be an accumulated *history* document
    (``{"snapshots": [...]}`` as written by
    :func:`repro.perf.bench.append_history` / ``repro perf --history``);
    its snapshots expand in order, each labeled by its own ``label``.
    Returns ``{case: [{label, events_per_sec, events_processed,
    wall_time_s}, ...]}`` with one entry per document that contains the
    case, labeled by the document's ``generated_utc`` date (file basename
    when absent).  Reduced CI-smoke documents (``tiny: true``) are
    skipped unless ``include_tiny`` — their grids are not comparable to
    the full macro grid.
    """
    trend: Dict[str, List[Dict[str, Any]]] = {}
    for path in paths:
        with open(path) as handle:
            doc = json.load(handle)
        docs = doc.get("snapshots", [doc]) if "snapshots" in doc else [doc]
        for snapshot in docs:
            if snapshot.get("tiny") and not include_tiny:
                continue
            label = (
                snapshot.get("label")
                or snapshot.get("generated_utc")
                or os.path.basename(path)
            )
            for case in snapshot.get("cases", []):
                name = case.get("case")
                if not name or not case.get("events_per_sec"):
                    continue
                trend.setdefault(name, []).append(
                    {
                        "label": label,
                        "events_per_sec": case["events_per_sec"],
                        "events_processed": case.get("events_processed"),
                        "wall_time_s": case.get("wall_time_s"),
                    }
                )
    return trend


def format_perf_trend(
    paths: Sequence[str], *, include_tiny: bool = False
) -> List[str]:
    """:func:`perf_trend` as printable table lines (one row per case)."""
    trend = perf_trend(paths, include_tiny=include_tiny)
    lines = []
    for case in sorted(trend):
        entries = trend[case]
        series = " -> ".join(
            f"{e['label']}:{e['events_per_sec']:,.0f}" for e in entries
        )
        lines.append(f"{case:>15s} {series}")
    return lines

"""Flow-completion-time analysis: the paper's headline metrics.

The paper reports **99.9-percentile FCT slowdown** — FCT normalized by the
ideal (propagation + serialization) FCT — split by flow size:

* *short* flows: < 10 KB (Figs. 6, 7a, 7c, 7e),
* *medium* flows: 100 KB – 1 MB (discussed with Fig. 6),
* *long* flows: > 1 MB (Figs. 7b, 7d, 7f),

plus per-size-bin curves over the web-search bins
5K/20K/50K/100K/400K/800K/5M/30M (Fig. 6 x-axis).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.stats import percentile
from repro.transport.flow import Flow

SHORT_FLOW_MAX_BYTES = 10_000
MEDIUM_FLOW_RANGE = (100_000, 1_000_000)
LONG_FLOW_MIN_BYTES = 1_000_000

#: Fig. 6 x-axis bin upper edges (bytes).
WEB_SEARCH_BINS = (
    5_000,
    20_000,
    50_000,
    100_000,
    400_000,
    800_000,
    5_000_000,
    30_000_000,
)


def _slowdown(flow: Flow, base_rtt_ns: int, bottleneck_bps: float, ideal_fn):
    if ideal_fn is not None:
        return flow.fct_ns / ideal_fn(flow)
    return flow.slowdown(base_rtt_ns, bottleneck_bps)


def slowdowns(
    flows: Iterable[Flow],
    base_rtt_ns: int,
    bottleneck_bps: float,
    ideal_fn=None,
) -> List[float]:
    """Per-flow FCT slowdown for all completed flows.

    ``ideal_fn(flow) -> ns`` supplies an exact per-path ideal FCT (see
    :meth:`repro.topology.network.Network.ideal_fct_ns`); without it the
    scalar ``base_rtt_ns`` + bottleneck-serialization model is used.
    """
    return [
        _slowdown(f, base_rtt_ns, bottleneck_bps, ideal_fn)
        for f in flows
        if f.completed
    ]


def _class_of(size: int, size_scale: float) -> str:
    if size < SHORT_FLOW_MAX_BYTES * size_scale:
        return "short"
    if (
        MEDIUM_FLOW_RANGE[0] * size_scale
        <= size
        <= MEDIUM_FLOW_RANGE[1] * size_scale
    ):
        return "medium"
    if size > LONG_FLOW_MIN_BYTES * size_scale:
        return "long"
    return "other"


@dataclass
class FctSummary:
    """Slowdown percentiles per flow class for one experiment run."""

    algorithm: str
    pct: float
    short: Optional[float]
    medium: Optional[float]
    long: Optional[float]
    overall: Optional[float]
    completed: int
    total: int

    def row(self) -> str:
        """One printable result row (used by the bench harness)."""

        def fmt(v: Optional[float]) -> str:
            return f"{v:8.2f}" if v is not None else "       -"

        return (
            f"{self.algorithm:>16s}  p{self.pct:<5g} "
            f"short={fmt(self.short)} medium={fmt(self.medium)} "
            f"long={fmt(self.long)} all={fmt(self.overall)} "
            f"({self.completed}/{self.total} flows)"
        )


def summarize_fct(
    algorithm: str,
    flows: Sequence[Flow],
    base_rtt_ns: int,
    bottleneck_bps: float,
    pct: float = 99.9,
    ideal_fn=None,
    size_scale: float = 1.0,
) -> FctSummary:
    """Percentile slowdowns by class (None when a class has no flows).

    ``size_scale`` rescales the short/medium/long class boundaries for
    experiments run with a scaled-down flow-size distribution.
    """
    by_class: Dict[str, List[float]] = {"short": [], "medium": [], "long": [], "other": []}
    all_values: List[float] = []
    completed = 0
    for flow in flows:
        if not flow.completed:
            continue
        completed += 1
        value = _slowdown(flow, base_rtt_ns, bottleneck_bps, ideal_fn)
        by_class[_class_of(flow.size_bytes, size_scale)].append(value)
        all_values.append(value)

    def pct_or_none(values: List[float]) -> Optional[float]:
        return percentile(values, pct) if values else None

    return FctSummary(
        algorithm=algorithm,
        pct=pct,
        short=pct_or_none(by_class["short"]),
        medium=pct_or_none(by_class["medium"]),
        long=pct_or_none(by_class["long"]),
        overall=pct_or_none(all_values),
        completed=completed,
        total=len(flows),
    )


def slowdown_by_size_bin(
    flows: Sequence[Flow],
    base_rtt_ns: int,
    bottleneck_bps: float,
    pct: float = 99.9,
    bins: Sequence[int] = WEB_SEARCH_BINS,
    ideal_fn=None,
    size_scale: float = 1.0,
) -> List[Tuple[int, Optional[float], int]]:
    """Fig. 6 series: (bin upper edge, percentile slowdown, flow count).

    Bin edges are rescaled by ``size_scale`` to match a scaled workload;
    reported edges stay in original (paper) units.
    """
    grouped: Dict[int, List[float]] = {edge: [] for edge in bins}
    for flow in flows:
        if not flow.completed:
            continue
        for edge in bins:
            if flow.size_bytes <= edge * size_scale:
                grouped[edge].append(
                    _slowdown(flow, base_rtt_ns, bottleneck_bps, ideal_fn)
                )
                break
    return [
        (edge, percentile(vals, pct) if vals else None, len(vals))
        for edge, vals in grouped.items()
    ]

"""Small statistics helpers (percentiles, CDFs) used across experiments."""

from __future__ import annotations

from typing import List, Sequence, Tuple


def percentile(values: Sequence[float], pct: float) -> float:
    """Linear-interpolation percentile; ``pct`` in [0, 100].

    Implemented locally (rather than via numpy) so hot experiment paths
    avoid array conversions for short lists.
    """
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= pct <= 100.0:
        raise ValueError(f"pct must be in [0,100], got {pct}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (pct / 100.0) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    fraction = rank - low
    value = ordered[low] * (1.0 - fraction) + ordered[high] * fraction
    # Interpolation must stay within its bracket; floating-point rounding
    # can violate that for extreme magnitudes, so clamp.
    return min(max(value, ordered[low]), ordered[high])


def cdf_points(values: Sequence[float]) -> Tuple[List[float], List[float]]:
    """(sorted values, cumulative fractions) — ready to print or plot."""
    if not values:
        return [], []
    ordered = sorted(values)
    n = len(ordered)
    return ordered, [(i + 1) / n for i in range(n)]


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean."""
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)

"""Fig. 2 reaction curves: what each law class can and cannot see.

* Fig. 2a — multiplicative decrease vs **queue buildup rate**: voltage
  laws are flat (oblivious), the gradient law is linear in the rate.
* Fig. 2b — multiplicative decrease vs **queue length**: the gradient law
  is flat (oblivious), voltage laws grow with the queue.
* Fig. 2c — three concrete cases showing the two blind spots are
  *orthogonal*: voltage cannot distinguish case-2 from case-3 (same queue
  length), current cannot distinguish case-1 from case-3 (same buildup
  rate); only power separates all three.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.fluid.laws import (
    ControlLaw,
    DELAY_LAW,
    GRADIENT_LAW,
    POWER_LAW,
    QUEUE_LAW,
)


def decrease_vs_buildup_rate(
    *,
    bandwidth_Bps: float,
    tau_s: float,
    queue_bytes: float,
    rate_multiples: Sequence[float],
    laws: Sequence[ControlLaw] = (QUEUE_LAW, GRADIENT_LAW),
) -> Dict[str, List[float]]:
    """Fig. 2a series: MD factor as the queue builds at ``r × b``.

    A buildup rate of ``r × b`` means arrivals of ``(1 + r) · b`` while
    the link drains at ``b``.
    """
    series: Dict[str, List[float]] = {law.name: [] for law in laws}
    for r in rate_multiples:
        qdot = r * bandwidth_Bps
        for law in laws:
            series[law.name].append(
                law.multiplicative_factor(
                    queue_bytes, qdot, bandwidth_Bps, bandwidth_Bps, tau_s
                )
            )
    return series


def decrease_vs_queue_length(
    *,
    bandwidth_Bps: float,
    tau_s: float,
    queue_lengths_bytes: Sequence[float],
    buildup_rate_multiple: float = 0.0,
    laws: Sequence[ControlLaw] = (QUEUE_LAW, GRADIENT_LAW),
) -> Dict[str, List[float]]:
    """Fig. 2b series: MD factor as a function of standing queue length."""
    series: Dict[str, List[float]] = {law.name: [] for law in laws}
    qdot = buildup_rate_multiple * bandwidth_Bps
    for q in queue_lengths_bytes:
        for law in laws:
            series[law.name].append(
                law.multiplicative_factor(
                    q, qdot, bandwidth_Bps, bandwidth_Bps, tau_s
                )
            )
    return series


@dataclass
class CaseReaction:
    """MD factors of the three law classes for one (q, q̇) scenario."""

    label: str
    queue_bytes: float
    buildup_rate_multiple: float
    voltage: float
    current: float
    power: float


def three_case_comparison(
    *,
    bandwidth_Bps: float,
    tau_s: float,
    cases: Sequence[Tuple[str, float, float]] = None,
) -> List[CaseReaction]:
    """Fig. 2c: the orthogonal-blindness demonstration.

    Default cases mirror the figure: case-1 — small queue building fast;
    case-2 — large queue draining at full rate; case-3 — large queue
    building fast.  (q expressed in BDP fractions, q̇ in multiples of b.)
    """
    bdp = bandwidth_Bps * tau_s
    if cases is None:
        cases = (
            ("case-1: q=0.5·BDP building at 8x", 0.5 * bdp, 8.0),
            ("case-2: q=1.0·BDP draining at max", 1.0 * bdp, -1.0),
            ("case-3: q=1.0·BDP building at 8x", 1.0 * bdp, 8.0),
        )
    reactions = []
    for label, q, r in cases:
        qdot = r * bandwidth_Bps
        # While draining at max rate nothing arrives: µ = b still (the
        # link transmits from the backlog).
        mu = bandwidth_Bps
        reactions.append(
            CaseReaction(
                label=label,
                queue_bytes=q,
                buildup_rate_multiple=r,
                voltage=QUEUE_LAW.multiplicative_factor(q, qdot, mu, bandwidth_Bps, tau_s),
                current=GRADIENT_LAW.multiplicative_factor(q, qdot, mu, bandwidth_Bps, tau_s),
                power=POWER_LAW.multiplicative_factor(q, qdot, mu, bandwidth_Bps, tau_s),
            )
        )
    return reactions

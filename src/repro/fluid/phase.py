"""Fig. 3 phase portraits: trajectories from a grid of initial states.

The paper plots (window, inflight) trajectories for the three law types;
the diagnostic quantities we extract per law:

* **equilibrium spread** — the dispersion of final states across initial
  conditions.  Voltage and power laws converge to one point (spread ≈ 0);
  the RTT-gradient law does not (Fig. 3b "no unique equilibrium").
* **throughput loss** — whether any trajectory dips below the BDP line
  (Fig. 3a: voltage-based CC overreacts and loses throughput; Fig. 3c:
  the power law does not).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from repro.fluid.laws import ControlLaw
from repro.fluid.model import FluidParams, FluidTrace, simulate


@dataclass
class PhasePortrait:
    """All trajectories of one law plus summary diagnostics."""

    law_name: str
    traces: List[FluidTrace] = field(default_factory=list)
    initial_states: List[Tuple[float, float]] = field(default_factory=list)
    bdp_bytes: float = 0.0

    @property
    def final_windows(self) -> List[float]:
        """Final window of every trajectory."""
        return [t.final_window for t in self.traces]

    def equilibrium_spread(self) -> float:
        """Relative spread of final windows (max−min over mean).

        ~0 for a unique equilibrium; O(1) when final states depend on the
        initial state.
        """
        finals = self.final_windows
        mean = sum(finals) / len(finals)
        return (max(finals) - min(finals)) / mean if mean else float("inf")

    def worst_throughput_loss(self) -> float:
        """Deepest post-fill dip below the BDP across trajectories, as a
        fraction of BDP (0 = no trajectory starved the link after filling
        the pipe).  This is the overreaction signature of Fig. 3a."""
        return max(t.loss_after_fill(self.bdp_bytes) for t in self.traces)

    def fraction_with_loss(self, threshold: float = 0.01) -> float:
        """Fraction of trajectories that, after filling the pipe, dipped
        more than ``threshold``·BDP below it (Fig. 3a: "almost every
        initial point" for voltage-based CC)."""
        losing = sum(
            1
            for t in self.traces
            if t.loss_after_fill(self.bdp_bytes) > threshold
        )
        return losing / len(self.traces)


def default_initial_grid(bdp: float) -> List[Tuple[float, float]]:
    """Initial (window, queue) states spanning under- and over-shoot."""
    return [
        (0.1 * bdp, 0.0),
        (0.5 * bdp, 0.0),
        (1.0 * bdp, 0.5 * bdp),
        (2.0 * bdp, 1.0 * bdp),
        (4.0 * bdp, 3.0 * bdp),
        (8.0 * bdp, 7.0 * bdp),
    ]


def dense_initial_grid(
    bdp: float, n_w: int = 16, n_q: int = 16
) -> List[Tuple[float, float]]:
    """A ``n_w × n_q`` cartesian grid of initial states.

    Windows span 0.1–8 BDP and queues 0–7 BDP (the same envelope as
    :func:`default_initial_grid`), evenly spaced.  Sized for the
    vectorized sweep (:func:`phase_portrait_grid`) — hundreds of
    trajectories are one :func:`~repro.fluid.vectorized.simulate_grid`
    call, not hundreds of scalar integrations.
    """
    states = []
    for i in range(n_w):
        w0 = (0.1 + (8.0 - 0.1) * i / max(1, n_w - 1)) * bdp
        for j in range(n_q):
            q0 = 7.0 * bdp * j / max(1, n_q - 1)
            states.append((w0, q0))
    return states


def phase_portrait(
    law: ControlLaw,
    params: FluidParams,
    *,
    initial_states: Sequence[Tuple[float, float]] = None,
    duration_s: float = None,
) -> PhasePortrait:
    """Integrate the law from every initial state (Fig. 3 for one panel)."""
    bdp = params.bdp_bytes
    states = list(initial_states) if initial_states else default_initial_grid(bdp)
    horizon = duration_s if duration_s is not None else 200 * params.tau_s
    portrait = PhasePortrait(law.name, bdp_bytes=bdp, initial_states=states)
    for w0, q0 in states:
        portrait.traces.append(simulate(law, params, w0, q0, horizon))
    return portrait


def phase_portrait_grid(
    law: ControlLaw,
    params: FluidParams,
    *,
    initial_states: Sequence[Tuple[float, float]] = None,
    duration_s: float = None,
) -> PhasePortrait:
    """Vectorized :func:`phase_portrait`: one grid sweep, same result.

    All trajectories integrate in a single
    :func:`repro.fluid.vectorized.simulate_grid` call (requires numpy)
    and are unpacked into the same :class:`PhasePortrait` the scalar path
    produces — column *i* matches the scalar trace of ``states[i]``
    bit-for-bit (see the vectorized module's equivalence contract), so
    every diagnostic (`equilibrium_spread`, `worst_throughput_loss`, …)
    is interchangeable between the two entry points.
    """
    from repro.fluid.vectorized import simulate_grid

    bdp = params.bdp_bytes
    states = list(initial_states) if initial_states else default_initial_grid(bdp)
    horizon = duration_s if duration_s is not None else 200 * params.tau_s
    grid = simulate_grid(law, params, states, horizon)
    portrait = PhasePortrait(law.name, bdp_bytes=bdp, initial_states=states)
    portrait.traces = [grid.trace(i) for i in range(len(states))]
    return portrait

"""Appendix A made executable: equilibria, linearization, convergence.

* :func:`equilibrium` — the fixed point (w_e, q_e) of a law (Appendix C):
  queue/delay/power laws have the unique ``(b·τ + β̂, β̂)``; the gradient
  law has none (any queue length with q̇ = 0 is stationary).
* :func:`linearized_eigenvalues` — Theorem 1: the power-law system
  linearized around its equilibrium is upper-triangular with eigenvalues
  ``−1/τ`` and ``−γ_r``, both negative, hence Lyapunov- and asymptotically
  stable.
* :func:`convergence_time_constant` — Theorem 2: after a perturbation the
  window error decays as ``exp(−γ_r · t)``, i.e. time constant ``δt/γ``;
  this function fits the constant from a simulated trace so the theorem
  can be checked numerically.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Tuple

from repro.fluid.laws import ControlLaw, GRADIENT_LAW, POWER_LAW
from repro.fluid.model import FluidParams


def equilibrium(
    law: ControlLaw, params: FluidParams, beta_bytes: Optional[float] = None
) -> Optional[Tuple[float, float]]:
    """(w_e, q_e) for laws with a unique equilibrium; None for the
    gradient law (no unique equilibrium — the paper's key negative
    result for current-based CC)."""
    if law.kind == "current":
        return None
    beta = params.beta_bytes if beta_bytes is None else beta_bytes
    return params.bdp_bytes + beta, beta


def linearized_eigenvalues(params: FluidParams) -> Tuple[float, float]:
    """Eigenvalues of the power-law system linearized at equilibrium.

    The Jacobian (Appendix A) is ``[[−1/τ, 1/τ], [0, −γ_r]]`` in (δq, δw)
    coordinates, upper-triangular, so the eigenvalues are the diagonal.
    """
    return (-1.0 / params.tau_s, -params.gamma_rate)


def is_asymptotically_stable(params: FluidParams) -> bool:
    """Theorem 1: both eigenvalues strictly negative."""
    eig1, eig2 = linearized_eigenvalues(params)
    return eig1 < 0.0 and eig2 < 0.0


def theoretical_time_constant_s(params: FluidParams) -> float:
    """Theorem 2: δt / γ."""
    return 1.0 / params.gamma_rate


def convergence_time_constant(
    times_s: Sequence[float],
    window_bytes: Sequence[float],
    w_equilibrium: float,
) -> float:
    """Fit the exponential decay constant of |w(t) − w_e|.

    Least-squares on ``ln|error|`` over samples where the error is still
    at least 0.1 % of the initial error (below that, integration noise
    dominates).  Returns the fitted time constant in seconds.
    """
    if len(times_s) != len(window_bytes) or len(times_s) < 3:
        raise ValueError("need at least three (time, window) samples")
    initial_error = abs(window_bytes[0] - w_equilibrium)
    if initial_error == 0:
        raise ValueError("trace starts at equilibrium; nothing to fit")
    xs, ys = [], []
    for t, w in zip(times_s, window_bytes):
        error = abs(w - w_equilibrium)
        if error > 1e-3 * initial_error:
            xs.append(t)
            ys.append(math.log(error))
    if len(xs) < 3:
        raise ValueError("error decayed too fast to fit")
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    var = sum((x - mean_x) ** 2 for x in xs)
    slope = cov / var
    if slope >= 0:
        raise ValueError("window error is not decaying")
    return -1.0 / slope


def convergence_time_scan(
    law: ControlLaw,
    params: FluidParams,
    w0_factors: Sequence[float],
    *,
    duration_s: Optional[float] = None,
) -> Tuple[Tuple[float, ...], Tuple[float, ...]]:
    """Fitted convergence time constants over a perturbation sweep.

    For every factor *k* in ``w0_factors`` the system starts at
    ``(k · w_e, q_e)`` — a window perturbation around equilibrium — and
    the decay constant of ``|w(t) − w_e|`` is fitted with
    :func:`convergence_time_constant`.  The expensive part (integration)
    runs as *one* vectorized grid sweep via
    :func:`repro.fluid.vectorized.simulate_grid` (requires numpy); only
    the cheap per-trajectory log-linear fits loop in Python.  Returns
    ``(w0_factors, fitted_time_constants_s)`` as matching tuples —
    Theorem 2 predicts every constant ≈ ``theoretical_time_constant_s``.
    """
    from repro.fluid.vectorized import simulate_grid

    point = equilibrium(law, params)
    if point is None:
        raise ValueError(f"law {law.name!r} has no unique equilibrium to scan")
    w_e, q_e = point
    factors = tuple(float(k) for k in w0_factors)
    if not factors:
        raise ValueError("need at least one perturbation factor")
    if any(k == 1.0 for k in factors):
        raise ValueError("factor 1.0 starts at equilibrium; nothing to fit")
    horizon = (
        duration_s
        if duration_s is not None
        else 20.0 * theoretical_time_constant_s(params)
    )
    states = [(k * w_e, q_e) for k in factors]
    grid = simulate_grid(law, params, states, horizon)
    times = grid.times_s.tolist()
    fitted = tuple(
        convergence_time_constant(times, grid.window_bytes[:, i].tolist(), w_e)
        for i in range(len(factors))
    )
    return factors, fitted


def gradient_law_equilibria_are_degenerate(
    params: FluidParams, queue_levels: Sequence[float]
) -> bool:
    """Check the Appendix C result directly: for the gradient law, *every*
    queue level with q̇ = 0 makes the feedback stationary (f = e = 1), so
    there is a continuum of equilibria."""
    b = params.bandwidth_Bps
    return all(
        math.isclose(
            GRADIENT_LAW.f(q, 0.0, b, b, params.tau_s),
            GRADIENT_LAW.e(b, params.tau_s),
        )
        for q in queue_levels
    )

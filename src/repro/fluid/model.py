"""Coupled window/queue fluid dynamics (paper Eqs. 3, 4, 9).

Aggregate window ``w`` and bottleneck queue ``q`` evolve as::

    θ(t)  = q/b + τ                     (RTT)
    q̇(t)  = w/θ − b        if q > 0     (Eq. 9; clamped at q = 0)
    ẇ(t)  = γ_r · ( w·e/f − w + β̂ )     (Eq. 3 with γ_r = γ/δt)

``f`` is evaluated on the current state (the paper's feedback delay only
shifts trajectories; shapes and equilibria are unchanged, and the delayed
variant is available via ``feedback_delay_s``).

Forward-Euler integration with a small fixed step is deliberately chosen
over an adaptive solver: the q=0 clamp makes the RHS non-smooth, which
trips adaptive steppers, while Euler with dt << τ is robust and exactly
reproducible.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import List, Optional

from repro.fluid.laws import ControlLaw


@dataclass
class FluidParams:
    """Fluid-model configuration (defaults: the paper's Fig. 3 example —
    100 Gbps bottleneck, 20 µs base RTT)."""

    bandwidth_Bps: float = 100e9 / 8.0
    tau_s: float = 20e-6
    gamma: float = 0.9
    #: window-update interval δt (defaults to one RTT)
    update_interval_s: Optional[float] = None
    #: aggregate additive increase β̂ (bytes per update)
    beta_bytes: float = 0.0
    dt_s: float = 1e-7
    feedback_delay_s: float = 0.0

    @property
    def bdp_bytes(self) -> float:
        """Bandwidth-delay product of the modeled pipe."""
        return self.bandwidth_Bps * self.tau_s

    @property
    def gamma_rate(self) -> float:
        """γ_r = γ / δt."""
        interval = self.update_interval_s or self.tau_s
        return self.gamma / interval


@dataclass
class FluidTrace:
    """Time series produced by :func:`simulate`."""

    times_s: List[float] = field(default_factory=list)
    window_bytes: List[float] = field(default_factory=list)
    queue_bytes: List[float] = field(default_factory=list)
    inflight_bytes: List[float] = field(default_factory=list)

    @property
    def final_window(self) -> float:
        """Window at the end of the run."""
        return self.window_bytes[-1]

    @property
    def final_queue(self) -> float:
        """Queue at the end of the run."""
        return self.queue_bytes[-1]

    def min_inflight(self, after_s: float = 0.0) -> float:
        """Minimum inflight bytes after ``after_s`` — inflight below the
        BDP means throughput loss (the region below Fig. 3's dotted line)."""
        values = [
            v
            for t, v in zip(self.times_s, self.inflight_bytes)
            if t >= after_s
        ]
        return min(values) if values else float("nan")

    def loss_after_fill(self, bdp_bytes: float, tolerance: float = 0.999) -> float:
        """Deepest dip below the BDP *after* the pipe first filled, as a
        fraction of BDP.

        This is the overreaction signature of Fig. 3a: a trajectory that
        reaches full utilization and then starves the link.  Trajectories
        that never fill the pipe return 0 (they are growth-limited, not
        overreacting).
        """
        filled_at = None
        for i, v in enumerate(self.inflight_bytes):
            if v >= tolerance * bdp_bytes:
                filled_at = i
                break
        if filled_at is None:
            return 0.0
        min_after = min(self.inflight_bytes[filled_at:])
        dip = (bdp_bytes - min_after) / bdp_bytes
        return dip if dip > 0.0 else 0.0


def simulate(
    law: ControlLaw,
    params: FluidParams,
    w0_bytes: float,
    q0_bytes: float,
    duration_s: float,
    *,
    sample_every: int = 10,
) -> FluidTrace:
    """Integrate the fluid system from ``(w0, q0)`` for ``duration_s``.

    Inflight bytes are ``min(w, b·τ) + q`` — the pipe contents plus the
    queue, which is the y-axis of the paper's Fig. 3.

    Equivalence with the vectorized path: a column of
    :func:`repro.fluid.vectorized.simulate_grid` performs the same
    IEEE-754 double operations in the same order, so it matches this
    scalar integrator bit-for-bit in practice (the benches assert exact
    equality); the guaranteed bound is 1e-12 relative per sample.
    """
    p = params
    b = p.bandwidth_Bps
    tau = p.tau_s
    gamma_r = p.gamma_rate
    dt = p.dt_s
    steps = max(1, int(duration_s / dt))

    delay_steps = int(p.feedback_delay_s / dt)
    history: deque = deque(maxlen=delay_steps + 1)

    w = float(w0_bytes)
    q = float(q0_bytes)
    trace = FluidTrace()
    for step in range(steps + 1):
        theta = q / b + tau
        arrival = w / theta
        qdot = arrival - b
        if q <= 0.0 and qdot < 0.0:
            qdot = 0.0
        mu = b if q > 0.0 else min(arrival, b)

        history.append((q, qdot, mu))
        q_fb, qdot_fb, mu_fb = history[0]

        if step % sample_every == 0:
            trace.times_s.append(step * dt)
            trace.window_bytes.append(w)
            trace.queue_bytes.append(q)
            trace.inflight_bytes.append(min(w, b * tau) + q)

        f = law.f(q_fb, qdot_fb, mu_fb, b, tau)
        if f <= 0.0:
            f = 1e-12  # the gradient law can hit f -> 0 while draining
        e = law.e(b, tau)
        wdot = gamma_r * (w * e / f - w + p.beta_bytes)

        w = max(w + wdot * dt, 1.0)
        q = max(q + qdot * dt, 0.0)
    return trace

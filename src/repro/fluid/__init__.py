"""Fluid (ODE) models of the §2 control-law taxonomy.

This package makes the paper's analytical motivation executable:

* :mod:`repro.fluid.laws` — the simplified control-law family of Eq. 2 /
  Appendix C (queue-length, delay, RTT-gradient) plus the power law;
* :mod:`repro.fluid.model` — the coupled window/queue dynamics (Eqs. 3, 4,
  9) integrated with forward Euler;
* :mod:`repro.fluid.phase` — Fig. 3 phase portraits (trajectories from a
  grid of initial states);
* :mod:`repro.fluid.reaction` — Fig. 2 reaction curves (multiplicative
  decrease versus queue length / buildup rate);
* :mod:`repro.fluid.stability` — Appendix A: equilibria, linearization,
  eigenvalues, and convergence time constants (Theorems 1-2).
"""

from repro.fluid.laws import (
    ControlLaw,
    DELAY_LAW,
    GRADIENT_LAW,
    POWER_LAW,
    QUEUE_LAW,
)
from repro.fluid.model import FluidParams, FluidTrace, simulate
from repro.fluid.phase import PhasePortrait, phase_portrait
from repro.fluid.reaction import (
    decrease_vs_buildup_rate,
    decrease_vs_queue_length,
    three_case_comparison,
)
from repro.fluid.stability import (
    convergence_time_constant,
    equilibrium,
    gradient_law_equilibria_are_degenerate,
    is_asymptotically_stable,
    linearized_eigenvalues,
    theoretical_time_constant_s,
)

__all__ = [
    "ControlLaw",
    "DELAY_LAW",
    "FluidParams",
    "FluidTrace",
    "GRADIENT_LAW",
    "POWER_LAW",
    "PhasePortrait",
    "QUEUE_LAW",
    "convergence_time_constant",
    "decrease_vs_buildup_rate",
    "decrease_vs_queue_length",
    "equilibrium",
    "gradient_law_equilibria_are_degenerate",
    "is_asymptotically_stable",
    "linearized_eigenvalues",
    "phase_portrait",
    "simulate",
    "theoretical_time_constant_s",
    "three_case_comparison",
]

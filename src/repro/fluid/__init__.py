"""Fluid (ODE) models of the §2 control-law taxonomy.

This package makes the paper's analytical motivation executable:

* :mod:`repro.fluid.laws` — the simplified control-law family of Eq. 2 /
  Appendix C (queue-length, delay, RTT-gradient) plus the power law;
* :mod:`repro.fluid.model` — the coupled window/queue dynamics (Eqs. 3, 4,
  9) integrated with forward Euler;
* :mod:`repro.fluid.phase` — Fig. 3 phase portraits (trajectories from a
  grid of initial states);
* :mod:`repro.fluid.reaction` — Fig. 2 reaction curves (multiplicative
  decrease versus queue length / buildup rate);
* :mod:`repro.fluid.stability` — Appendix A: equilibria, linearization,
  eigenvalues, and convergence time constants (Theorems 1-2);
* :mod:`repro.fluid.vectorized` — numpy-backed grid integration: whole
  sets of initial states per call, bit-identical to the scalar path
  (numpy is optional; the entry points raise ImportError without it).
"""

from repro.fluid.laws import (
    ControlLaw,
    DELAY_LAW,
    GRADIENT_LAW,
    POWER_LAW,
    QUEUE_LAW,
)
from repro.fluid.model import FluidParams, FluidTrace, simulate
from repro.fluid.phase import (
    PhasePortrait,
    dense_initial_grid,
    phase_portrait,
    phase_portrait_grid,
)
from repro.fluid.reaction import (
    decrease_vs_buildup_rate,
    decrease_vs_queue_length,
    three_case_comparison,
)
from repro.fluid.stability import (
    convergence_time_constant,
    convergence_time_scan,
    equilibrium,
    gradient_law_equilibria_are_degenerate,
    is_asymptotically_stable,
    linearized_eigenvalues,
    theoretical_time_constant_s,
)
from repro.fluid.vectorized import GridTrace, simulate_grid

__all__ = [
    "ControlLaw",
    "DELAY_LAW",
    "FluidParams",
    "FluidTrace",
    "GRADIENT_LAW",
    "GridTrace",
    "POWER_LAW",
    "PhasePortrait",
    "QUEUE_LAW",
    "convergence_time_constant",
    "convergence_time_scan",
    "decrease_vs_buildup_rate",
    "decrease_vs_queue_length",
    "dense_initial_grid",
    "equilibrium",
    "gradient_law_equilibria_are_degenerate",
    "is_asymptotically_stable",
    "linearized_eigenvalues",
    "phase_portrait",
    "phase_portrait_grid",
    "simulate",
    "simulate_grid",
    "theoretical_time_constant_s",
    "three_case_comparison",
]

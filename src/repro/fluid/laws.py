"""The simplified control-law family of Eq. 2 / Appendix C.

Every law is described by its equilibrium target ``e`` and its feedback
``f(q, q̇)``; the per-update multiplicative factor applied to the window is
``e / f`` (plus additive increase).  The paper's taxonomy:

=============  ===========  ==========================  =================
law            type         e                           f(q, q̇)
=============  ===========  ==========================  =================
queue-length   voltage      b·τ                         q + b·τ
delay          voltage      τ                           q/b + τ
RTT-gradient   current      1                           q̇/b + 1
power          power        b²·τ                        (q̇+µ)·(q+b·τ)
=============  ===========  ==========================  =================

Units here are *bytes* and *seconds* with bandwidth in bytes/second (the
fluid model has no packets).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

VOLTAGE = "voltage"
CURRENT = "current"
POWER = "power"


@dataclass(frozen=True)
class ControlLaw:
    """One row of the taxonomy table.

    ``e_fn(b, tau)`` returns the equilibrium target; ``f_fn(q, qdot, mu,
    b, tau)`` the feedback.  ``mu`` is the bottleneck transmission rate
    (``b`` while the queue is backlogged).
    """

    name: str
    kind: str
    e_fn: Callable[[float, float], float]
    f_fn: Callable[[float, float, float, float, float], float]

    def e(self, b: float, tau: float) -> float:
        """Equilibrium target."""
        return self.e_fn(b, tau)

    def f(self, q: float, qdot: float, mu: float, b: float, tau: float) -> float:
        """Feedback signal."""
        return self.f_fn(q, qdot, mu, b, tau)

    def multiplicative_factor(
        self, q: float, qdot: float, mu: float, b: float, tau: float
    ) -> float:
        """``f / e`` — the *decrease* factor the window is divided by.

        This is the quantity plotted in Fig. 2: > 1 shrinks the window,
        < 1 grows it.
        """
        return self.f(q, qdot, mu, b, tau) / self.e(b, tau)


QUEUE_LAW = ControlLaw(
    name="queue-length",
    kind=VOLTAGE,
    e_fn=lambda b, tau: b * tau,
    f_fn=lambda q, qdot, mu, b, tau: q + b * tau,
)

DELAY_LAW = ControlLaw(
    name="delay",
    kind=VOLTAGE,
    e_fn=lambda b, tau: tau,
    f_fn=lambda q, qdot, mu, b, tau: q / b + tau,
)

GRADIENT_LAW = ControlLaw(
    name="rtt-gradient",
    kind=CURRENT,
    e_fn=lambda b, tau: 1.0,
    f_fn=lambda q, qdot, mu, b, tau: qdot / b + 1.0,
)

POWER_LAW = ControlLaw(
    name="power",
    kind=POWER,
    e_fn=lambda b, tau: b * b * tau,
    f_fn=lambda q, qdot, mu, b, tau: (qdot + mu) * (q + b * tau),
)

ALL_LAWS = (QUEUE_LAW, DELAY_LAW, GRADIENT_LAW, POWER_LAW)

"""Numpy-vectorized fluid integration: whole parameter grids per call.

:func:`simulate_grid` integrates N independent ``(w0, q0)`` trajectories
of one control law simultaneously, replacing N Python-level calls to
:func:`repro.fluid.model.simulate` with one loop over time steps whose
body is a handful of elementwise float64 array operations.  Phase
portraits (:func:`repro.fluid.phase.phase_portrait_grid`) and stability
scans (:func:`repro.fluid.stability.convergence_time_scan`) build on it;
on a Fig.-3-sized grid the speedup over the scalar loop is one to two
orders of magnitude (see ``repro perf --cases fluid_grid``).

Equivalence with the scalar path
--------------------------------
The step body performs the *same* IEEE-754 double operations in the
*same* order as the scalar integrator (``q/b + tau``, ``w/theta``, the
``q <= 0`` / ``f <= 0`` clamps as ``np.where``, the ``max`` floors as
``np.maximum``), so columns of a grid are bit-identical to the scalar
trajectories on every platform whose numpy uses ordinary IEEE doubles —
the fig2/fig3 benches assert exact equality, and the guaranteed bound is
1e-12 relative.  The control-law lambdas in :mod:`repro.fluid.laws` are
pure arithmetic and evaluate unchanged on arrays.

numpy is an *optional* accelerator dependency: importing this module
always succeeds, and every entry point raises a descriptive
``ImportError`` when numpy is unavailable (the scalar path never needs
it).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.fluid.laws import ControlLaw
from repro.fluid.model import FluidParams, FluidTrace

try:  # gated: numpy is an optional accelerator, not a hard dependency
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only without numpy
    _np = None


def _require_numpy():
    if _np is None:  # pragma: no cover - exercised only without numpy
        raise ImportError(
            "repro.fluid.vectorized requires numpy; install it or use the "
            "scalar repro.fluid.model.simulate path"
        )
    return _np


@dataclass
class GridTrace:
    """Sampled trajectories of one :func:`simulate_grid` call.

    ``times_s`` has shape ``(samples,)``; the other arrays are
    ``(samples, n)`` with one column per initial state, in input order.
    Column *i* is bit-identical to the scalar trace from the same
    ``(w0[i], q0[i])`` (see the module docstring for the tolerance).
    """

    times_s: "object"
    window_bytes: "object"
    queue_bytes: "object"
    inflight_bytes: "object"

    @property
    def n_trajectories(self) -> int:
        """Number of integrated columns."""
        return self.window_bytes.shape[1]

    @property
    def final_windows(self):
        """Final window of every trajectory — shape ``(n,)``."""
        return self.window_bytes[-1]

    @property
    def final_queues(self):
        """Final queue of every trajectory — shape ``(n,)``."""
        return self.queue_bytes[-1]

    def trace(self, i: int) -> FluidTrace:
        """Column ``i`` as a scalar-compatible :class:`FluidTrace`."""
        return FluidTrace(
            times_s=self.times_s.tolist(),
            window_bytes=self.window_bytes[:, i].tolist(),
            queue_bytes=self.queue_bytes[:, i].tolist(),
            inflight_bytes=self.inflight_bytes[:, i].tolist(),
        )

    def loss_after_fill(self, bdp_bytes: float, tolerance: float = 0.999):
        """Per-trajectory deepest post-fill dip below the BDP (fraction).

        Vectorized equivalent of :meth:`FluidTrace.loss_after_fill`:
        trajectories that never reach ``tolerance * bdp`` inflight return
        0 (growth-limited, not overreacting).  Shape ``(n,)``.
        """
        np = _require_numpy()
        inflight = self.inflight_bytes
        filled = inflight >= tolerance * bdp_bytes
        has_filled = filled.any(axis=0)
        first = filled.argmax(axis=0)  # 0 where never filled (masked below)
        # Minimum of each column's suffix starting at its own fill index.
        suffix_min = np.minimum.accumulate(inflight[::-1], axis=0)[::-1]
        min_after = suffix_min[first, np.arange(inflight.shape[1])]
        dip = (bdp_bytes - min_after) / bdp_bytes
        return np.where(has_filled & (dip > 0.0), dip, 0.0)


def simulate_grid(
    law: ControlLaw,
    params: FluidParams,
    initial_states: Sequence[Tuple[float, float]],
    duration_s: float,
    *,
    sample_every: int = 10,
) -> GridTrace:
    """Integrate every ``(w0, q0)`` in ``initial_states`` at once.

    One forward-Euler time loop over ``duration_s`` whose body operates
    on length-``n`` float64 arrays; identical step-for-step to
    :func:`repro.fluid.model.simulate` (same operations, same order, same
    clamps — see the module docstring for the equivalence contract,
    including the ``feedback_delay_s`` history).
    """
    np = _require_numpy()
    if not initial_states:
        raise ValueError("need at least one initial state")
    p = params
    b = p.bandwidth_Bps
    tau = p.tau_s
    gamma_r = p.gamma_rate
    beta = p.beta_bytes
    dt = p.dt_s
    steps = max(1, int(duration_s / dt))

    delay_steps = int(p.feedback_delay_s / dt)
    history: deque = deque(maxlen=delay_steps + 1)

    w = np.array([s[0] for s in initial_states], dtype=np.float64)
    q = np.array([s[1] for s in initial_states], dtype=np.float64)
    n = w.shape[0]
    n_samples = steps // sample_every + 1
    times = np.empty(n_samples)
    windows = np.empty((n_samples, n))
    queues = np.empty((n_samples, n))
    inflights = np.empty((n_samples, n))
    e = law.e(b, tau)
    bdp = b * tau
    sample = 0
    for step in range(steps + 1):
        theta = q / b + tau
        arrival = w / theta
        qdot = arrival - b
        qdot = np.where((q <= 0.0) & (qdot < 0.0), 0.0, qdot)
        mu = np.where(q > 0.0, b, np.minimum(arrival, b))

        history.append((q, qdot, mu))
        q_fb, qdot_fb, mu_fb = history[0]

        if step % sample_every == 0:
            times[sample] = step * dt
            windows[sample] = w
            queues[sample] = q
            inflights[sample] = np.minimum(w, bdp) + q
            sample += 1

        f = law.f(q_fb, qdot_fb, mu_fb, b, tau)
        f = np.where(f <= 0.0, 1e-12, f)
        wdot = gamma_r * (w * e / f - w + beta)

        w = np.maximum(w + wdot * dt, 1.0)
        q = np.maximum(q + qdot * dt, 0.0)
    return GridTrace(
        times_s=times[:sample],
        window_bytes=windows[:sample],
        queue_bytes=queues[:sample],
        inflight_bytes=inflights[:sample],
    )

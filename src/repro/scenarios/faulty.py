"""A fault-injection scenario for exercising orchestration failure paths.

Registered as ``faulty`` — but deliberately *not* in
``BUILTIN_MODULES``: it only exists once this module is imported, which
campaign manifests do via their ``modules`` list (and tests do
directly).  Each cell misbehaves according to its config:

* ``behavior="ok"``    — succeed immediately;
* ``behavior="fail"``  — raise :class:`InjectedFailure`;
* ``behavior="crash"`` — hard-exit the worker process (``os._exit``),
  simulating a segfault/OOM kill (never run this in-process!);
* ``behavior="hang"``  — sleep ``hang_s`` seconds, simulating a
  straggler/deadlock that only a wall-clock timeout can reclaim.

``fail_times`` gates the misbehaviour: the first ``fail_times``
*attempts* of a cell misbehave and later attempts succeed (exercising
retry-then-succeed and worker respawn); ``-1`` means every attempt
misbehaves (exercising retries-exhausted reporting).  Attempts are
counted across processes in ``state_dir`` via single-byte ``O_APPEND``
writes — one file per cell, its size *is* the attempt count — so the
same counters double as execution-count evidence for kill-and-resume
tests (a journal-recovered cell's counter must not grow on resume).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

from repro.scenarios.base import Scenario
from repro.scenarios.registry import register

BEHAVIORS = ("ok", "fail", "crash", "hang")


class InjectedFailure(RuntimeError):
    """The deliberate failure raised by ``behavior="fail"`` cells."""


@dataclass
class FaultyConfig:
    """One faulty cell: what to do, and for how many attempts."""

    x: int = 0  # the grid axis; also keys the attempt counter
    behavior: str = "ok"
    fail_times: int = -1  # attempts that misbehave; -1 = all of them
    state_dir: str = ""  # cross-process attempt counters live here
    hang_s: float = 60.0
    work_s: float = 0.0  # honest work per attempt (a kill window)
    seed: int = 1

    def __post_init__(self):
        if self.behavior not in BEHAVIORS:
            raise ValueError(
                f"faulty behavior must be one of {', '.join(BEHAVIORS)}; "
                f"got {self.behavior!r}"
            )


def counter_path(state_dir: str, x: int, behavior: str) -> str:
    """The attempt-counter file for one cell (size == attempt count)."""
    return os.path.join(state_dir, f"attempts-{behavior}-x{x}.n")


def attempt_count(state_dir: str, x: int, behavior: str) -> int:
    """How many times a cell has *started* executing (0 if never)."""
    try:
        return os.stat(counter_path(state_dir, x, behavior)).st_size
    except OSError:
        return 0


def _record_attempt(config: FaultyConfig) -> int:
    """Bump this cell's attempt counter; returns the 1-based attempt.

    Single-byte ``O_APPEND`` writes are atomic on POSIX, so concurrent
    workers cannot lose counts.  Without a ``state_dir`` there is no
    cross-attempt memory: every attempt reads as the first, so gated
    behaviours misbehave on every attempt.
    """
    if not config.state_dir:
        return 1
    os.makedirs(config.state_dir, exist_ok=True)
    path = counter_path(config.state_dir, config.x, config.behavior)
    fd = os.open(path, os.O_APPEND | os.O_CREAT | os.O_WRONLY)
    try:
        os.write(fd, b"1")
        return os.fstat(fd).st_size
    finally:
        os.close(fd)


@register
class FaultyScenario(Scenario):
    name = "faulty"
    description = (
        "fault-injection cells (fail/crash/hang on demand) for testing "
        "the campaign orchestrator; not a simulation"
    )
    config_cls = FaultyConfig

    def tiny_overrides(self) -> Dict[str, Any]:
        return {"work_s": 0.0}

    def build(self, config: FaultyConfig):
        def run_once() -> Dict[str, Any]:
            attempt = _record_attempt(config)
            misbehaving = config.fail_times < 0 or attempt <= config.fail_times
            if config.work_s > 0:
                time.sleep(config.work_s)
            if misbehaving and config.behavior == "fail":
                raise InjectedFailure(
                    f"injected failure for x={config.x} (attempt {attempt})"
                )
            if misbehaving and config.behavior == "crash":
                # Bypass all exception handling, like a segfault would.
                os._exit(3)
            if misbehaving and config.behavior == "hang":
                time.sleep(config.hang_s)
            return {"attempt": attempt}

        return run_once

    def collect(
        self, config: FaultyConfig, raw: Dict[str, Any]
    ) -> Tuple[Dict[str, Any], Dict[str, List]]:
        # A deterministic function of the config, so resumed/merged
        # outputs are checkable for completeness by value.
        metrics = {
            "value": float(config.x * 10 + config.seed % 7),
            "attempt": raw["attempt"],
        }
        return metrics, {}

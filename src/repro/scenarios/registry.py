"""Name -> scenario wiring, mirroring :mod:`repro.cc.registry`.

Experiment modules register their scenario classes with the
:func:`register` decorator::

    @register
    class WebsearchScenario(Scenario):
        name = "websearch"
        ...

Lookup is lazy: :func:`get_scenario` / :func:`scenario_names` import the
built-in experiment modules on first use, so ``import repro.scenarios``
stays cheap and free of circular imports.
"""

from __future__ import annotations

import importlib
from typing import Dict, List, Type

from repro.scenarios.base import Scenario

#: name -> singleton scenario instance
SCENARIOS: Dict[str, Scenario] = {}

#: the experiment modules that self-register built-in scenarios
BUILTIN_MODULES = (
    "repro.experiments.websearch",
    "repro.experiments.incast",
    "repro.experiments.fairness",
    "repro.experiments.rdcn",
    "repro.experiments.bursty",
    "repro.experiments.coexistence",
    "repro.experiments.permutation",
    "repro.experiments.multibottleneck",
    "repro.experiments.lbmatrix",
    "repro.experiments.storm",
)


def register(cls: Type[Scenario]) -> Type[Scenario]:
    """Class decorator: instantiate and index a scenario by its name."""
    instance = cls()
    if not instance.name:
        raise ValueError(f"{cls.__name__} must set a non-empty name")
    if instance.config_cls is None:
        raise ValueError(f"{cls.__name__} must set config_cls")
    existing = SCENARIOS.get(instance.name)
    if existing is not None and type(existing) is not cls:
        raise ValueError(
            f"scenario name {instance.name!r} already registered "
            f"by {type(existing).__name__}"
        )
    SCENARIOS[instance.name] = instance
    return cls


def load_builtin_scenarios() -> None:
    """Import every built-in experiment module (idempotent)."""
    for module in BUILTIN_MODULES:
        importlib.import_module(module)


def get_scenario(name: str) -> Scenario:
    """Look up a scenario by name; raises KeyError with the catalog."""
    load_builtin_scenarios()
    try:
        return SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario: {name!r} "
            f"(registered: {', '.join(scenario_names())})"
        ) from None


def scenario_names() -> List[str]:
    """Sorted names of every registered scenario."""
    load_builtin_scenarios()
    return sorted(SCENARIOS)

"""First-class scenario layer: registry + parallel sweep runner.

Usage::

    from repro.scenarios import get_scenario, run_sweep

    result = get_scenario("websearch").run(load=0.6, max_flows=100)
    sweep = run_sweep(
        "websearch",
        grid={"algorithm": ["powertcp", "hpcc"], "load": [0.2, 0.6]},
        jobs=4,
    )
    sweep.persist()

See :mod:`repro.scenarios.base` for the Scenario protocol and
:mod:`repro.scenarios.sweep` for the grid/seeding semantics.
"""

from repro.scenarios.base import Scenario, ScenarioResult
from repro.scenarios.registry import (
    SCENARIOS,
    get_scenario,
    load_builtin_scenarios,
    register,
    scenario_names,
)
from repro.scenarios.sweep import (
    SweepCell,
    SweepResult,
    SweepRunner,
    SweepSpec,
    run_sweep,
)

__all__ = [
    "SCENARIOS",
    "Scenario",
    "ScenarioResult",
    "SweepCell",
    "SweepResult",
    "SweepRunner",
    "SweepSpec",
    "get_scenario",
    "load_builtin_scenarios",
    "register",
    "run_sweep",
    "scenario_names",
]

"""The Scenario protocol: one uniform lifecycle for every experiment.

A *scenario* wraps one experiment module (web-search, incast, fairness,
RDCN, bursty) behind a four-step protocol::

    configure(**overrides) -> config      # validated config dataclass
    build(config)          -> runnable    # zero-arg callable -> raw result
    run(config)            -> ScenarioResult   # times build()() + collect()
    collect(config, raw)   -> (metrics, series)

Every scenario returns the same :class:`ScenarioResult` record — a flat
``metrics`` dict (scalar figures of merit), a ``series`` dict (the lists a
figure would plot), and ``provenance`` (seed, config, wall time, events
processed) — so sweeps, benchmarks, and the CLI can treat all experiments
interchangeably.  Concrete scenarios register themselves with
:mod:`repro.scenarios.registry` from their own experiment modules.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple


def config_to_jsonable(value: Any) -> Any:
    """Recursively convert a config (dataclasses, tuples, ...) into
    JSON-serializable primitives; non-serializable leaves become repr()."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: config_to_jsonable(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {str(k): config_to_jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [config_to_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


@dataclass
class ScenarioResult:
    """Uniform result record returned by every scenario.

    ``raw`` carries the experiment module's native result object for
    in-process callers (benchmarks, notebooks); it is dropped when the
    result crosses a process boundary or is persisted to JSON.
    """

    scenario: str
    metrics: Dict[str, Optional[float]] = field(default_factory=dict)
    series: Dict[str, List] = field(default_factory=dict)
    provenance: Dict[str, Any] = field(default_factory=dict)
    raw: Any = None

    def to_json_dict(self) -> Dict[str, Any]:
        """The persistable view (raw stripped)."""
        return {
            "scenario": self.scenario,
            "metrics": dict(self.metrics),
            "series": {k: list(v) for k, v in self.series.items()},
            "provenance": config_to_jsonable(self.provenance),
        }

    def without_raw(self) -> "ScenarioResult":
        """A copy safe to pickle across a process boundary."""
        return ScenarioResult(
            scenario=self.scenario,
            metrics=self.metrics,
            series=self.series,
            provenance=self.provenance,
        )


class Scenario:
    """Base class for registered scenarios.

    Subclasses set ``name``, ``description``, and ``config_cls`` and
    implement :meth:`build` and :meth:`collect`.  ``tiny_overrides``
    names a sub-second configuration used by smoke tests and
    ``python -m repro run <scenario> --tiny``.
    """

    name: str = ""
    description: str = ""
    config_cls: type = None

    # -- step 1: configure -------------------------------------------------
    def configure(self, **overrides):
        """Instantiate the config dataclass, rejecting unknown fields."""
        valid = {f.name for f in dataclasses.fields(self.config_cls)}
        unknown = sorted(set(overrides) - valid)
        if unknown:
            raise ValueError(
                f"scenario {self.name!r}: unknown config field(s) "
                f"{', '.join(unknown)}; valid fields: {', '.join(sorted(valid))}"
            )
        return self.config_cls(**overrides)

    def config_fields(self) -> List[str]:
        """Names of the tunable config fields."""
        return [f.name for f in dataclasses.fields(self.config_cls)]

    def tiny_overrides(self) -> Dict[str, Any]:
        """Overrides for a fast (sub-second) smoke run."""
        return {}

    # -- step 2: build -----------------------------------------------------
    def build(self, config):
        """Return a zero-arg callable executing the experiment once."""
        raise NotImplementedError

    # -- step 4: collect ---------------------------------------------------
    def collect(self, config, raw) -> Tuple[Dict[str, Any], Dict[str, List]]:
        """Derive (metrics, series) from the raw experiment result."""
        raise NotImplementedError

    # -- step 3: run (orchestrates the other three) ------------------------
    def run(self, config=None, **overrides) -> ScenarioResult:
        """configure -> build -> execute -> collect, with provenance."""
        if config is not None and overrides:
            raise ValueError(
                f"scenario {self.name!r}: pass either a config object or "
                f"keyword overrides, not both (got config and "
                f"{', '.join(sorted(overrides))})"
            )
        if config is None:
            config = self.configure(**overrides)
        runnable = self.build(config)
        # Wall time feeds the wall_time_s provenance field only — it never
        # influences simulation behaviour or persisted metric values.
        start = time.perf_counter()  # lint: disable=wall-clock
        raw = runnable()
        wall_s = time.perf_counter() - start  # lint: disable=wall-clock
        metrics, series = self.collect(config, raw)
        provenance = {
            "scenario": self.name,
            "algorithm": getattr(config, "algorithm", None),
            "seed": getattr(config, "seed", None),
            "config": config_to_jsonable(config),
            "wall_time_s": wall_s,
            "events_processed": getattr(raw, "events_processed", 0),
        }
        return ScenarioResult(
            scenario=self.name,
            metrics=metrics,
            series=series,
            provenance=provenance,
            raw=raw,
        )

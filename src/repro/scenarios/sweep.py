"""Parameter-grid sweeps over registered scenarios, fanned across processes.

Every paper figure is a sweep — algorithm x load x fanout x buffer — so
the runner is figure-agnostic: a :class:`SweepSpec` names a scenario, a
grid of config-field values, and base overrides; :class:`SweepRunner`
expands the grid into cells, derives a deterministic per-cell seed, and
executes the cells inline (``jobs=1``) or across a
``ProcessPoolExecutor`` (``jobs>1``).  Simulations are single-threaded
pure Python, so cells parallelize perfectly across processes.

Determinism: cell order is the itertools.product over *sorted* grid
keys, and each cell's seed is a pure function of (base seed, cell
parameters) — two identical invocations produce identical metric values
regardless of ``jobs``.

Results persist to JSON (default ``benchmarks/results/<scenario>_sweep.json``
under the *repository root*, regardless of the caller's cwd — the file
doubles as the ``(config, seed)`` incremental cache, so a cwd-relative
default would silently grow a fresh tree and defeat cell reuse) as
``{spec, cells: [{params, metrics, series, provenance}]}``.
"""

from __future__ import annotations

import itertools
import json
import os
import warnings
import zlib
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.persist import atomic_write_json, load_json_or_none
from repro.scenarios.base import Scenario, ScenarioResult, config_to_jsonable
from repro.scenarios.registry import get_scenario

#: terminal cell states persisted alongside results ("ok" is implicit in
#: older files; anything else means the cell has no usable metrics and
#: carries ``error`` provenance instead — see docs/INVARIANTS.md).
CELL_STATES = ("ok", "failed", "timeout")

def _repo_root() -> str:
    """The repository root: the nearest ancestor of this file that looks
    like *this* checkout (has both ``benchmarks/`` and ``src/repro/``).
    Falls back to the cwd when the package is installed outside a
    checkout — deliberately not keyed on ``.git`` alone, so a
    site-packages install living under some unrelated git repo never
    writes sweep caches into that foreign tree."""
    node = os.path.dirname(os.path.abspath(__file__))
    while True:
        if os.path.isdir(os.path.join(node, "benchmarks")) and os.path.isdir(
            os.path.join(node, "src", "repro")
        ):
            return node
        parent = os.path.dirname(node)
        if parent == node:
            return os.getcwd()
        node = parent


#: default persistence directory: the repo's benchmarks/results, anchored on
#: the repository root so ``python -m repro sweep`` finds (and reuses) the
#: same incremental cache no matter where it is invoked from.
DEFAULT_RESULTS_DIR = os.path.join(_repo_root(), "benchmarks", "results")


def default_results_path(scenario: str) -> str:
    """Default JSON persistence path for one scenario's sweep."""
    return os.path.join(DEFAULT_RESULTS_DIR, f"{scenario}_sweep.json")


def shard_results_path(path: str, shard: Tuple[int, int]) -> str:
    """The per-shard variant of a sweep output path.

    ``results.json`` + shard (2, 4) -> ``results.shard-2-of-4.json``, the
    naming :func:`repro.analysis.results.merge_shards` recombines.
    """
    index, count = shard
    stem, ext = os.path.splitext(path)
    return f"{stem}.shard-{index}-of-{count}{ext or '.json'}"


def parse_shard(text: str) -> Tuple[int, int]:
    """Parse a ``I/N`` shard designator (1-based; 1 <= I <= N)."""
    index_text, sep, count_text = text.partition("/")
    try:
        index, count = int(index_text), int(count_text)
    except ValueError:
        index = count = 0
    if not sep or count < 1 or not 1 <= index <= count:
        raise ValueError(
            f"shard must be I/N with 1 <= I <= N, got {text!r}"
        )
    return index, count


def cell_key(scenario: str, overrides: Dict[str, Any]) -> str:
    """Canonical identity of one cell: scenario + full config overrides
    (base + grid params + derived seed), the '(config, seed)' of a cell.
    The campaign orchestrator, journal replay, and shard merge all key
    cells by this exact string."""
    return json.dumps(
        {"scenario": scenario, "overrides": config_to_jsonable(overrides)},
        sort_keys=True,
    )


_cell_key = cell_key


@dataclass
class SweepSpec:
    """A parameter grid over one scenario's config fields.

    ``grid`` maps config-field names to value lists; ``base`` holds
    overrides shared by every cell.  An explicit ``seed`` in ``base`` or
    ``grid`` disables per-cell seed derivation.
    """

    scenario: str
    grid: Dict[str, List[Any]] = field(default_factory=dict)
    base: Dict[str, Any] = field(default_factory=dict)
    seed: int = 1

    def validate(self) -> None:
        """Check grid/base keys against the scenario's config fields."""
        fields = set(get_scenario(self.scenario).config_fields())
        unknown = sorted((set(self.grid) | set(self.base)) - fields)
        if unknown:
            raise ValueError(
                f"sweep over {self.scenario!r}: unknown config field(s) "
                f"{', '.join(unknown)}; valid: {', '.join(sorted(fields))}"
            )
        for key, values in self.grid.items():
            if not values:
                raise ValueError(f"sweep grid axis {key!r} is empty")


def derive_cell_seed(base_seed: int, params: Dict[str, Any]) -> int:
    """Deterministic per-cell seed: a pure function of the base seed and
    the cell's parameter assignment (stable across runs and job counts)."""
    blob = json.dumps(config_to_jsonable(params), sort_keys=True).encode()
    return (base_seed * 1_000_003 + zlib.crc32(blob)) & 0x7FFFFFFF


def expand_cells(spec: SweepSpec) -> List[Dict[str, Any]]:
    """Grid -> ordered cell parameter dicts (product over sorted keys)."""
    keys = sorted(spec.grid)
    cells = []
    for values in itertools.product(*(spec.grid[k] for k in keys)):
        cells.append(dict(zip(keys, values)))
    return cells


def cell_overrides(spec: SweepSpec, params: Dict[str, Any]) -> Dict[str, Any]:
    """Full config overrides for one cell: base + cell params + seed."""
    overrides = dict(spec.base)
    overrides.update(params)
    scenario = get_scenario(spec.scenario)
    if "seed" in scenario.config_fields() and "seed" not in overrides:
        overrides["seed"] = derive_cell_seed(spec.seed, params)
    return overrides


def _execute_cell(scenario_name: str, overrides: Dict[str, Any]) -> ScenarioResult:
    """Worker entry point (top-level so ProcessPoolExecutor can pickle it);
    returns the result with the unpicklable raw payload stripped."""
    return get_scenario(scenario_name).run(**overrides).without_raw()


def validate_cached_cell(
    scenario: Scenario, overrides: Dict[str, Any], provenance: Dict[str, Any]
) -> bool:
    """True when a cached cell's provenance config is still current.

    Re-deriving the config from the cell's own overrides and comparing
    it to the provenance snapshot catches *silent* grid edits: a changed
    config default, a renamed field, or an edited scenario schema all
    make the stored config diverge from what ``configure(**overrides)``
    produces today, and such cells must re-run rather than be reused.
    Cells persisted before provenance configs existed are kept.
    """
    recorded = provenance.get("config") if isinstance(provenance, dict) else None
    if not isinstance(recorded, dict):
        return True  # pre-provenance format: nothing to check against
    try:
        config = scenario.configure(**overrides)
    except (TypeError, ValueError):
        return False  # overrides no longer fit the schema at all
    return config_to_jsonable(config) == recorded


@dataclass
class SweepCell:
    """One executed grid cell.

    ``status`` is ``"ok"`` for a successfully executed cell; the
    campaign orchestrator also persists ``"failed"``/``"timeout"`` cells
    (``result`` empty, ``error`` carrying type/message/traceback/kind
    provenance) so a merged output can be *complete* — every grid cell
    present — even when some cells never produced metrics.  ``attempts``
    counts executions including retries (1 for a first-try success).
    """

    params: Dict[str, Any]
    overrides: Dict[str, Any]
    result: ScenarioResult
    status: str = "ok"
    error: Optional[Dict[str, Any]] = None
    attempts: int = 1


@dataclass
class SweepResult:
    """All executed cells plus the spec that produced them."""

    spec: SweepSpec
    cells: List[SweepCell] = field(default_factory=list)
    #: cells written by the last :meth:`persist` (current + carried over)
    persisted_cell_count: int = 0

    def cell(self, **params) -> SweepCell:
        """The unique cell whose grid assignment matches ``params``."""
        matches = [
            c for c in self.cells
            if all(c.params.get(k) == v for k, v in params.items())
        ]
        if len(matches) != 1:
            raise KeyError(f"{len(matches)} cells match {params!r}")
        return matches[0]

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "scenario": self.spec.scenario,
            "grid": config_to_jsonable(self.spec.grid),
            "base": config_to_jsonable(self.spec.base),
            "seed": self.spec.seed,
            "cells": [self._cell_json(c) for c in self.cells],
        }

    def _cell_json(self, cell: SweepCell) -> Dict[str, Any]:
        doc = {
            "params": config_to_jsonable(cell.params),
            "overrides": config_to_jsonable(cell.overrides),
            **(
                cell.result.to_json_dict()
                if cell.result is not None
                else {
                    "scenario": self.spec.scenario,
                    "metrics": {},
                    "series": {},
                    "provenance": {},
                }
            ),
        }
        # Defaults stay implicit so documents from pre-state-aware runs
        # (and byte-for-byte reruns of them) are unchanged on disk.
        if cell.status != "ok":
            doc["status"] = cell.status
        if cell.error is not None:
            doc["error"] = config_to_jsonable(cell.error)
        if cell.attempts != 1:
            doc["attempts"] = cell.attempts
        return doc

    def persist(
        self, path: Optional[str] = None, *, keep_existing: bool = False
    ) -> str:
        """Write the sweep as JSON; returns the path written.

        With ``keep_existing=True``, cells already present in the target
        file that are *not* part of this sweep (e.g. from a wider grid
        persisted earlier) are carried over after this sweep's cells, so
        a file doubling as an incremental cache never loses results to a
        narrower re-run.  Note the file's top-level ``grid``/``base``/
        ``seed`` header always describes the *latest* sweep; carried-over
        cells keep their own per-cell ``overrides`` as provenance.  The
        default overwrites exactly (byte-identical output for identical
        sweeps).

        Sets ``self.persisted_cell_count`` to the number of cells written
        (current + carried over).
        """
        if path is None:
            os.makedirs(DEFAULT_RESULTS_DIR, exist_ok=True)
            path = default_results_path(self.spec.scenario)
        else:
            parent = os.path.dirname(path)
            if parent:
                os.makedirs(parent, exist_ok=True)
        doc = self.to_json_dict()
        if keep_existing:
            doc["cells"].extend(self._foreign_cells(path, doc["cells"]))
        self.persisted_cell_count = len(doc["cells"])
        # tmp + os.replace: a run killed mid-persist can never leave a
        # torn document behind (docs/INVARIANTS.md#atomic-persistence) —
        # the file doubles as the incremental cache, so corruption here
        # would silently cost every previously executed cell.
        return atomic_write_json(path, doc)

    @staticmethod
    def _foreign_cells(path: str, current_cells: List[Dict]) -> List[Dict]:
        """Cells in the existing file at ``path`` outside this sweep.

        Pre-incremental files (cells without an ``overrides`` key) are
        preserved too, deduplicated against this sweep by (scenario,
        params) — never silently dropped.
        """
        old = load_json_or_none(path, label="sweep cache")
        if old is None:
            return []

        def params_key(cell: Dict) -> str:
            return json.dumps(
                {"scenario": cell.get("scenario"), "params": cell.get("params")},
                sort_keys=True,
            )

        current = {
            _cell_key(c["scenario"], c["overrides"]) for c in current_cells
        }
        current_params = {params_key(c) for c in current_cells}
        kept = []
        for cell in old.get("cells", []):
            if "scenario" not in cell:
                continue
            if "overrides" in cell:
                if _cell_key(cell["scenario"], cell["overrides"]) not in current:
                    kept.append(cell)
            elif params_key(cell) not in current_params:
                kept.append(cell)
        return kept


class SweepRunner:
    """Expand a :class:`SweepSpec` and execute its cells.

    ``jobs=1`` runs inline (raw experiment results stay attached, which
    benchmarks rely on); ``jobs>1`` fans cells across worker processes
    in deterministic cell order.

    **Incremental re-runs**: pass ``reuse_path`` (a previously persisted
    sweep JSON) and cells whose (config, seed) — i.e. full override set —
    already appear in that file are loaded instead of re-simulated, so
    growing a grid or re-running a persisted sweep only pays for the
    missing cells.  ``force=True`` re-runs everything regardless.

    **Sharding**: ``shard=(i, n)`` (1-based) keeps only the cells whose
    position in the deterministic grid expansion is congruent to
    ``i - 1`` modulo ``n``, so ``n`` machines each running one shard
    cover the grid exactly once.  Per-cell seeds are a pure function of
    the cell parameters, so shard results are identical to the cells an
    unsharded run would produce, and
    :func:`repro.analysis.results.merge_shards` recombines the persisted
    shard files.
    """

    def __init__(
        self,
        spec: SweepSpec,
        jobs: int = 1,
        *,
        reuse_path: Optional[str] = None,
        force: bool = False,
        shard: Optional[Tuple[int, int]] = None,
    ):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if shard is not None:
            index, count = shard
            if count < 1 or not 1 <= index <= count:
                raise ValueError(
                    f"shard must be (i, n) with 1 <= i <= n, got {shard}"
                )
        spec.validate()
        self.spec = spec
        self.jobs = jobs
        self.reuse_path = reuse_path
        self.force = force
        self.shard = shard
        #: cells served from ``reuse_path`` by the last :meth:`run`
        self.reused_cells = 0
        #: cached cells dropped by the last :meth:`run` because their
        #: provenance config no longer matches the current schema
        self.stale_cells = 0

    def _load_cached(self) -> Dict[str, ScenarioResult]:
        """Prior results keyed by cell identity (empty when unavailable).

        A corrupt/truncated cache file (e.g. from a run killed before
        atomic writes existed) degrades to an empty cache with a warning.
        Cells persisted with a non-``ok`` status have no usable metrics
        — they are skipped here so failed/timeout cells always re-run.
        """
        if self.force or not self.reuse_path:
            return {}
        doc = load_json_or_none(self.reuse_path, label="sweep cache")
        if doc is None:
            return {}
        cached: Dict[str, ScenarioResult] = {}
        for cell in doc.get("cells", []):
            overrides = cell.get("overrides")
            if overrides is None:  # pre-incremental file format
                continue
            if cell.get("status", "ok") != "ok":
                continue
            key = _cell_key(cell.get("scenario", ""), overrides)
            cached[key] = ScenarioResult(
                scenario=cell.get("scenario", ""),
                metrics=cell.get("metrics", {}),
                series=cell.get("series", {}),
                provenance=cell.get("provenance", {}),
            )
        return cached

    def run(self) -> SweepResult:
        """Execute every cell; cells come back in grid order."""
        spec = self.spec
        cells = expand_cells(spec)
        if self.shard is not None:
            index, count = self.shard
            cells = [
                c for k, c in enumerate(cells) if k % count == index - 1
            ]
        overrides = [cell_overrides(spec, params) for params in cells]
        cached = self._load_cached()
        keys = [_cell_key(spec.scenario, ov) for ov in overrides]
        results: List[Optional[ScenarioResult]] = [
            cached.get(key) for key in keys
        ]
        # Stale-cache validation: a hit whose provenance config no longer
        # matches what configure(**overrides) produces today came from an
        # edited grid/scenario — drop it (re-run) rather than silently
        # reuse a result the current schema can no longer reproduce.
        self.stale_cells = 0
        if any(r is not None for r in results):
            scenario_obj = get_scenario(spec.scenario)
            for i, result in enumerate(results):
                if result is None:
                    continue
                if not validate_cached_cell(
                    scenario_obj, overrides[i], result.provenance
                ):
                    results[i] = None
                    self.stale_cells += 1
            if self.stale_cells:
                warnings.warn(
                    f"sweep cache {self.reuse_path!r}: dropped "
                    f"{self.stale_cells} cached cell(s) whose provenance "
                    "config no longer matches the current scenario schema; "
                    "they will re-run",
                    stacklevel=2,
                )
        self.reused_cells = sum(1 for r in results if r is not None)
        pending = [i for i, r in enumerate(results) if r is None]
        if self.jobs == 1:
            scenario = get_scenario(spec.scenario)
            for i in pending:
                results[i] = scenario.run(**overrides[i])
        elif pending:
            with ProcessPoolExecutor(max_workers=self.jobs) as pool:
                fresh = pool.map(
                    _execute_cell,
                    [spec.scenario] * len(pending),
                    [overrides[i] for i in pending],
                )
                for i, result in zip(pending, fresh):
                    results[i] = result
        return SweepResult(
            spec=spec,
            cells=[
                SweepCell(params=p, overrides=ov, result=r)
                for p, ov, r in zip(cells, overrides, results)
            ],
        )


def run_sweep(
    scenario: str,
    grid: Dict[str, List[Any]],
    base: Optional[Dict[str, Any]] = None,
    seed: int = 1,
    jobs: int = 1,
    reuse_path: Optional[str] = None,
    force: bool = False,
    shard: Optional[Tuple[int, int]] = None,
) -> SweepResult:
    """One-call convenience wrapper around :class:`SweepRunner`."""
    spec = SweepSpec(scenario=scenario, grid=grid, base=base or {}, seed=seed)
    return SweepRunner(
        spec, jobs=jobs, reuse_path=reuse_path, force=force, shard=shard
    ).run()

"""PowerTCP — Algorithm 1 of the paper.

The control law (Eq. 7)::

    w_i(t) <- γ · ( w_i(t − θ) · e / f(t) + β ) + (1 − γ) · w_i(t)
    e = b²·τ ,   f(t) = Γ(t − θ + t_f)

where ``e / f`` is the inverse of *normalized power* computed from INT
feedback (:class:`repro.core.power.INTPowerEstimator`).  The "old" window
``w_i(t − θ)`` — the window at the time the acknowledged segment was sent —
is approximated as in the paper by remembering the current window once per
RTT (``UPDATE_OLD``).

Parameters (§3.3):

* ``gamma`` — EWMA weight, recommended 0.9;
* ``beta`` — additive increase ``HostBw · τ / N`` with N the expected
  number of flows sharing the host NIC (``expected_flows``), so the host
  NIC itself never becomes the bottleneck.
"""

from __future__ import annotations

from typing import Optional

from repro.cc.base import CongestionControl
from repro.cc.registry import Requirements, register
from repro.core.power import INTPowerEstimator

DEFAULT_GAMMA = 0.9
# β = HostBw·τ/N.  The equilibrium queue is the *sum* of β over the flows
# sharing the bottleneck (Appendix A: q_e = β̂), so N must upper-bound the
# realistic flow concurrency for queues to stay near zero — 64 matches the
# paper's near-zero-queue operating point under the web-search workload
# while still converging to fairness within milliseconds.
DEFAULT_EXPECTED_FLOWS = 64


@register(
    "powertcp",
    aliases=("powertcp-int",),
    requirements=Requirements(int_stamping=True),
    description="PowerTCP: INT-based power control law (paper Algorithm 1)",
)
class PowerTcp(CongestionControl):
    """INT-based power control law (paper Algorithm 1)."""

    def __init__(
        self,
        gamma: float = DEFAULT_GAMMA,
        expected_flows: int = DEFAULT_EXPECTED_FLOWS,
        beta_bytes: Optional[float] = None,
        once_per_rtt: bool = False,
        **kwargs,
    ):
        super().__init__(**kwargs)
        if not 0.0 < gamma <= 1.0:
            raise ValueError(f"gamma must be in (0, 1], got {gamma}")
        if expected_flows < 1:
            raise ValueError(f"expected_flows must be >= 1, got {expected_flows}")
        self.gamma = gamma
        self.expected_flows = expected_flows
        self.beta_bytes = beta_bytes  # explicit override; else HostBw·τ/N
        #: update the window only once per RTT (the paper uses this mode
        #: in the RDCN case study "for a fair comparison with reTCP");
        #: power smoothing still folds in every ACK.
        self.once_per_rtt = once_per_rtt
        self._estimator: Optional[INTPowerEstimator] = None
        self._cwnd_old: float = 0.0
        self._last_update_seq = 0

    # ------------------------------------------------------------------
    def on_start(self, sender) -> None:
        super().on_start(sender)  # line-rate first RTT: cwnd = HostBw·τ
        self._estimator = INTPowerEstimator(sender.base_rtt_ns)
        if self.beta_bytes is None:
            self.beta_bytes = self.host_bdp_bytes(sender) / self.expected_flows
        self._cwnd_old = sender.cwnd
        self._last_update_seq = 0

    def on_ack(self, sender, feedback) -> None:
        """NEW_ACK (Algorithm 1 lines 2-7)."""
        norm_power = self._estimator.update(
            feedback.require_int(type(self).__name__)
        )
        if norm_power is None:
            return
        if self.once_per_rtt and feedback.ack_seq < self._last_update_seq:
            return  # smoothing continues; the window waits for a full RTT
        cwnd_old = self._cwnd_old  # GET_CWND(ack.seq)
        gamma = self.gamma
        new_cwnd = (
            gamma * (cwnd_old / norm_power + self.beta_bytes)
            + (1.0 - gamma) * sender.cwnd
        )
        self.set_window(sender, new_cwnd)  # also sets rate = cwnd / τ
        self._update_old(sender, feedback)

    def _update_old(self, sender, feedback) -> None:
        """UPDATE_OLD: remember the current window once per RTT."""
        if feedback.ack_seq > self._last_update_seq:
            self._cwnd_old = sender.cwnd
            self._last_update_seq = feedback.sent_high

    @property
    def smoothed_norm_power(self) -> Optional[float]:
        """Latest smoothed normalized power (None before first feedback)."""
        if self._estimator is None:
            return None
        return self._estimator.smoothed

"""θ-PowerTCP — Algorithm 2: the standalone, switch-support-free variant.

Where PowerTCP reads queue lengths and txBytes from INT, θ-PowerTCP only
needs accurate RTT timestamps.  Rearranging ``e/f`` (Eq. 8) with
``q/b + τ = θ`` and ``q̇/b = θ̇``::

    normalized power  f/e = (θ̇ + 1) · θ / τ

The trade-offs the paper calls out (§3.5) fall out of this signal:

* RTT cannot signal *under-utilization* — the law assumes the bottleneck
  transmits at full rate, so ramp-up relies on the slow additive term;
* with multiple bottlenecks, RTT sums queueing delays instead of isolating
  the most-congested hop.

Per Algorithm 2, the window is updated only **once per RTT** (the simpler
logic the paper highlights as reducing CC function calls), while the
smoothed power folds in every ACK sample.
"""

from __future__ import annotations

from typing import Optional

from repro.cc.base import CongestionControl
from repro.cc.registry import register
from repro.core.power import MIN_NORM_POWER, normalized_power_from_delay
from repro.core.powertcp import DEFAULT_EXPECTED_FLOWS, DEFAULT_GAMMA


@register(
    "theta-powertcp",
    aliases=("powertcp-delay", "theta"),
    description="θ-PowerTCP: delay-based power control law (Algorithm 2)",
)
class ThetaPowerTcp(CongestionControl):
    """Delay-based power control law (paper Algorithm 2)."""

    def __init__(
        self,
        gamma: float = DEFAULT_GAMMA,
        expected_flows: int = DEFAULT_EXPECTED_FLOWS,
        beta_bytes: Optional[float] = None,
        **kwargs,
    ):
        super().__init__(**kwargs)
        if not 0.0 < gamma <= 1.0:
            raise ValueError(f"gamma must be in (0, 1], got {gamma}")
        self.gamma = gamma
        self.expected_flows = expected_flows
        self.beta_bytes = beta_bytes
        self._smoothed = 1.0
        self._prev_rtt_ns: Optional[int] = None
        self._prev_ack_time_ns: Optional[int] = None
        self._cwnd_old = 0.0
        self._last_update_seq = 0

    def on_start(self, sender) -> None:
        super().on_start(sender)
        if self.beta_bytes is None:
            self.beta_bytes = self.host_bdp_bytes(sender) / self.expected_flows
        self._cwnd_old = sender.cwnd
        self._smoothed = 1.0
        self._prev_rtt_ns = None
        self._prev_ack_time_ns = None
        self._last_update_seq = 0

    def on_ack(self, sender, feedback) -> None:
        """NEW_ACK (Algorithm 2): smooth per ACK, update once per RTT."""
        now = feedback.now_ns
        rtt = feedback.rtt_ns
        if rtt is None:
            return
        if self._prev_rtt_ns is None:
            self._prev_rtt_ns = rtt
            self._prev_ack_time_ns = now
            return
        dt = now - self._prev_ack_time_ns
        norm = normalized_power_from_delay(
            rtt, self._prev_rtt_ns, dt, sender.base_rtt_ns
        )
        self._prev_rtt_ns = rtt
        self._prev_ack_time_ns = now
        if norm is None:
            return
        tau = sender.base_rtt_ns
        dt_c = min(dt, tau)
        self._smoothed = (self._smoothed * (tau - dt_c) + norm * dt_c) / tau
        if self._smoothed < MIN_NORM_POWER:
            self._smoothed = MIN_NORM_POWER

        # UPDATE_WINDOW: skip until one RTT's worth of data is acknowledged.
        if feedback.ack_seq < self._last_update_seq:
            return
        gamma = self.gamma
        new_cwnd = (
            gamma * (self._cwnd_old / self._smoothed + self.beta_bytes)
            + (1.0 - gamma) * sender.cwnd
        )
        self.set_window(sender, new_cwnd)
        self._cwnd_old = sender.cwnd
        self._last_update_seq = feedback.sent_high

    @property
    def smoothed_norm_power(self) -> float:
        """Latest smoothed normalized power estimate."""
        return self._smoothed

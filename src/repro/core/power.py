"""The notion of power (paper §3.1) and its estimation from feedback.

Power is the product of network *current* and *voltage* (Table 1):

    current  λ = q̇ + µ          (aggregate arrival rate at the bottleneck)
    voltage  ν = q + b·τ        (buffered bytes + bandwidth-delay product)
    power    Γ = λ · ν           [bytes²/second]

Property 1 gives ``Γ(t) = b · w(t − t_f)``: power equals the bandwidth-
window product, which is what lets a sender recover the *aggregate* window
from local measurements.  The control law consumes power normalized by its
equilibrium value ``e = b²·τ``, so a normalized power of 1 means the
aggregate window exactly fills the pipe.

Two estimators are provided, matching the two algorithms in the paper:

* :class:`INTPowerEstimator` — per-hop telemetry (Algorithm 1, lines 8-25):
  q̇ and µ are finite differences of queue length and txBytes between the
  INT records of consecutive ACKs; the *maximum* normalized power across
  hops is smoothed over one base RTT.
* :func:`normalized_power_from_delay` — the θ-PowerTCP rearrangement
  (Eq. 8): ``f/e = (θ̇ + 1)·θ / τ`` using only RTT samples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional

from repro.sim.packet import HopRecord
from repro.units import BITS_PER_BYTE, SEC

# Normalized power is clamped to this floor before dividing: it bounds the
# multiplicative *increase* per update (e.g. 1/16 -> at most 16x), which
# keeps the ramp-up sane when a hop reports a nearly idle link.
MIN_NORM_POWER = 1.0 / 16.0


@dataclass
class PowerSample:
    """One hop's power computation, exposed for tests and introspection."""

    current_Bps: float  # λ, bytes/second
    voltage_bytes: float  # ν
    power: float  # Γ = λ·ν
    base_power: float  # e = (b/8)²·τ
    norm: float  # Γ / e
    dt_ns: int


def normalized_power_from_hop(
    hop: HopRecord, prev: HopRecord, base_rtt_ns: int
) -> Optional[PowerSample]:
    """Normalized power at one egress port from two consecutive INT records.

    Implements Algorithm 1 lines 11-19.  Returns None when the two records
    carry the same timestamp (no information).
    """
    dt_ns = hop.ts_ns - prev.ts_ns
    if dt_ns <= 0:
        return None
    dt_s = dt_ns / SEC
    qdot_Bps = (hop.qlen - prev.qlen) / dt_s
    mu_Bps = (hop.tx_bytes - prev.tx_bytes) / dt_s
    current = qdot_Bps + mu_Bps  # λ : Current
    bandwidth_Bps = hop.bandwidth_bps / BITS_PER_BYTE
    bdp = bandwidth_Bps * base_rtt_ns / SEC
    voltage = hop.qlen + bdp  # ν : Voltage
    power = current * voltage  # Γ'
    base_power = bandwidth_Bps * bandwidth_Bps * base_rtt_ns / SEC  # e = b²τ
    return PowerSample(
        current_Bps=current,
        voltage_bytes=voltage,
        power=power,
        base_power=base_power,
        norm=power / base_power,
        dt_ns=dt_ns,
    )


def normalized_power_from_delay(
    rtt_ns: int, prev_rtt_ns: int, dt_ns: int, base_rtt_ns: int
) -> Optional[float]:
    """θ-PowerTCP's normalized power from RTT samples (Eq. 8).

    ``f/e = (θ̇ + 1) · θ / τ`` where θ̇ is the RTT gradient over the ACK
    inter-arrival time ``dt``.
    """
    if dt_ns <= 0:
        return None
    theta_dot = (rtt_ns - prev_rtt_ns) / dt_ns
    return (theta_dot + 1.0) * rtt_ns / base_rtt_ns


class INTPowerEstimator:
    """Per-flow INT power state: prevInt records plus the smoothed value.

    The smoothing is the paper's sliding window over one base RTT
    (Algorithm 1 line 24)::

        Γ_smooth = (Γ_smooth · (τ − Δt) + Γ_norm · Δt) / τ

    where Δt is the INT-record spacing of the hop with the largest
    normalized power, capped at τ.
    """

    __slots__ = ("base_rtt_ns", "prev", "smoothed")

    def __init__(self, base_rtt_ns: int):
        self.base_rtt_ns = base_rtt_ns
        self.prev: Dict[int, HopRecord] = {}
        self.smoothed: float = 1.0

    def update(self, hops: Optional[Iterable[HopRecord]]) -> Optional[float]:
        """Fold one ACK's INT records in; returns the smoothed normalized
        power, or None while no hop has two samples yet."""
        if not hops:
            return None
        best_norm = None
        best_dt = 0
        for hop in hops:
            prev = self.prev.get(hop.port_id)
            self.prev[hop.port_id] = hop
            if prev is None:
                continue
            sample = normalized_power_from_hop(hop, prev, self.base_rtt_ns)
            if sample is None:
                continue
            if best_norm is None or sample.norm > best_norm:
                best_norm = sample.norm
                best_dt = sample.dt_ns
        if best_norm is None:
            return None
        dt = min(best_dt, self.base_rtt_ns)
        tau = self.base_rtt_ns
        self.smoothed = (self.smoothed * (tau - dt) + best_norm * dt) / tau
        if self.smoothed < MIN_NORM_POWER:
            self.smoothed = MIN_NORM_POWER
        return self.smoothed

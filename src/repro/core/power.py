"""The notion of power (paper §3.1) and its estimation from feedback.

Power is the product of network *current* and *voltage* (Table 1):

    current  λ = q̇ + µ          (aggregate arrival rate at the bottleneck)
    voltage  ν = q + b·τ        (buffered bytes + bandwidth-delay product)
    power    Γ = λ · ν           [bytes²/second]

Property 1 gives ``Γ(t) = b · w(t − t_f)``: power equals the bandwidth-
window product, which is what lets a sender recover the *aggregate* window
from local measurements.  The control law consumes power normalized by its
equilibrium value ``e = b²·τ``, so a normalized power of 1 means the
aggregate window exactly fills the pipe.

Two estimators are provided, matching the two algorithms in the paper:

* :class:`INTPowerEstimator` — per-hop telemetry (Algorithm 1, lines 8-25):
  q̇ and µ are finite differences of queue length and txBytes between the
  INT records of consecutive ACKs; the *maximum* normalized power across
  hops is smoothed over one base RTT.
* :func:`normalized_power_from_delay` — the θ-PowerTCP rearrangement
  (Eq. 8): ``f/e = (θ̇ + 1)·θ / τ`` using only RTT samples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional

from repro.sim.packet import HopRecord
from repro.units import BITS_PER_BYTE, SEC

# Normalized power is clamped to this floor before dividing: it bounds the
# multiplicative *increase* per update (e.g. 1/16 -> at most 16x), which
# keeps the ramp-up sane when a hop reports a nearly idle link.
MIN_NORM_POWER = 1.0 / 16.0


@dataclass
class PowerSample:
    """One hop's power computation, exposed for tests and introspection."""

    current_Bps: float  # λ, bytes/second
    voltage_bytes: float  # ν
    power: float  # Γ = λ·ν
    base_power: float  # e = (b/8)²·τ
    norm: float  # Γ / e
    dt_ns: int


def normalized_power_from_hop(
    hop: HopRecord, prev: HopRecord, base_rtt_ns: int
) -> Optional[PowerSample]:
    """Normalized power at one egress port from two consecutive INT records.

    Implements Algorithm 1 lines 11-19.  Returns None when the two records
    carry the same timestamp (no information).
    """
    dt_ns = hop.ts_ns - prev.ts_ns
    if dt_ns <= 0:
        return None
    dt_s = dt_ns / SEC
    qdot_Bps = (hop.qlen - prev.qlen) / dt_s
    mu_Bps = (hop.tx_bytes - prev.tx_bytes) / dt_s
    current = qdot_Bps + mu_Bps  # λ : Current
    bandwidth_Bps = hop.bandwidth_bps / BITS_PER_BYTE
    bdp = bandwidth_Bps * base_rtt_ns / SEC
    voltage = hop.qlen + bdp  # ν : Voltage
    power = current * voltage  # Γ'
    base_power = bandwidth_Bps * bandwidth_Bps * base_rtt_ns / SEC  # e = b²τ
    return PowerSample(
        current_Bps=current,
        voltage_bytes=voltage,
        power=power,
        base_power=base_power,
        norm=power / base_power,
        dt_ns=dt_ns,
    )


def normalized_power_from_delay(
    rtt_ns: int, prev_rtt_ns: int, dt_ns: int, base_rtt_ns: int
) -> Optional[float]:
    """θ-PowerTCP's normalized power from RTT samples (Eq. 8).

    ``f/e = (θ̇ + 1) · θ / τ`` where θ̇ is the RTT gradient over the ACK
    inter-arrival time ``dt``.
    """
    if dt_ns <= 0:
        return None
    theta_dot = (rtt_ns - prev_rtt_ns) / dt_ns
    return (theta_dot + 1.0) * rtt_ns / base_rtt_ns


class INTPowerEstimator:
    """Per-flow INT power state: prevInt snapshots plus the smoothed value.

    The smoothing is the paper's sliding window over one base RTT
    (Algorithm 1 line 24)::

        Γ_smooth = (Γ_smooth · (τ − Δt) + Γ_norm · Δt) / τ

    where Δt is the INT-record spacing of the hop with the largest
    normalized power, capped at τ.

    Per-port previous state is kept as *scalars* ``(ts_ns, qlen,
    tx_bytes)``, never as retained :class:`HopRecord` objects: the
    transport recycles an ACK's records into the packet pool the moment
    ``on_ack`` returns (the :class:`~repro.cc.base.AckFeedback` contract),
    and the inlined arithmetic below is operation-for-operation identical
    to :func:`normalized_power_from_hop`.
    """

    __slots__ = ("base_rtt_ns", "prev", "smoothed", "_link_consts")

    def __init__(self, base_rtt_ns: int):
        self.base_rtt_ns = base_rtt_ns
        #: port_id -> (ts_ns, qlen, tx_bytes) of the previous record
        self.prev: Dict[int, tuple] = {}
        self.smoothed: float = 1.0
        #: bandwidth_bps -> (bdp, base_power); both are pure functions of
        #: (bandwidth, τ), so memoizing yields bit-identical floats
        self._link_consts: Dict[float, tuple] = {}

    def update(self, hops: Optional[Iterable[HopRecord]]) -> Optional[float]:
        """Fold one ACK's INT records in; returns the smoothed normalized
        power, or None while no hop has two samples yet."""
        if not hops:
            return None
        # -inf sentinel instead of None: one float compare per hop, and
        # every real norm exceeds it.  The float arithmetic itself is
        # untouched — results stay bit-identical.
        best_norm = float("-inf")
        best_dt = 0
        base_rtt_ns = self.base_rtt_ns
        prev_map = self.prev
        link_consts = self._link_consts
        for hop in hops:
            port_id = hop.port_id
            ts_ns = hop.ts_ns
            qlen = hop.qlen
            tx_bytes = hop.tx_bytes
            try:
                prev = prev_map[port_id]
            except KeyError:
                prev_map[port_id] = (ts_ns, qlen, tx_bytes)
                continue
            prev_map[port_id] = (ts_ns, qlen, tx_bytes)
            dt_ns = ts_ns - prev[0]
            if dt_ns <= 0:
                continue
            # Algorithm 1 lines 11-19, inlined (identical float ops to
            # normalized_power_from_hop, with the per-link constants
            # e = b²τ and BDP memoized).
            bandwidth_bps = hop.bandwidth_bps
            try:
                bdp, base_power = link_consts[bandwidth_bps]
            except KeyError:
                bandwidth_Bps = bandwidth_bps / BITS_PER_BYTE
                bdp = bandwidth_Bps * base_rtt_ns / SEC
                base_power = bandwidth_Bps * bandwidth_Bps * base_rtt_ns / SEC
                link_consts[bandwidth_bps] = (bdp, base_power)
            dt_s = dt_ns / SEC
            qdot_Bps = (qlen - prev[1]) / dt_s
            mu_Bps = (tx_bytes - prev[2]) / dt_s
            norm = (qdot_Bps + mu_Bps) * (qlen + bdp) / base_power
            if norm > best_norm:
                best_norm = norm
                best_dt = dt_ns
        if best_dt == 0:
            return None
        dt = min(best_dt, base_rtt_ns)
        tau = base_rtt_ns
        self.smoothed = (self.smoothed * (tau - dt) + best_norm * dt) / tau
        if self.smoothed < MIN_NORM_POWER:
            self.smoothed = MIN_NORM_POWER
        return self.smoothed

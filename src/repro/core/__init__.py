"""The paper's contribution: power-based congestion control.

* :mod:`repro.core.power` — the notion of power (§3.1): current, voltage,
  and normalized power computed from INT feedback or RTT samples.
* :mod:`repro.core.powertcp` — Algorithm 1, the INT-based control law.
* :mod:`repro.core.theta` — Algorithm 2, θ-PowerTCP, the standalone
  (timestamp-only) variant for legacy switches.
"""

from repro.core.power import (
    INTPowerEstimator,
    PowerSample,
    normalized_power_from_delay,
    normalized_power_from_hop,
)
from repro.core.powertcp import PowerTcp
from repro.core.theta import ThetaPowerTcp

__all__ = [
    "INTPowerEstimator",
    "PowerSample",
    "PowerTcp",
    "ThetaPowerTcp",
    "normalized_power_from_delay",
    "normalized_power_from_hop",
]

"""Optional compiled event core (C extension).

This package holds ``corekernel.c`` and, after ``python setup.py
build_ext --inplace`` (or a wheel built with a C compiler present), the
``corekernel`` extension module.  The build is *optional*: ``setup.py``
marks the extension ``optional=True``, so a failed build degrades to the
pure-Python engine with a warning, never an install error.

Do not import ``repro._ckernel.corekernel`` directly — the gated loader
:mod:`repro.sim._compiled` is the only sanctioned importer (enforced by
the ``compiled-core-import`` lint rule), and
``Simulator(scheduler="compiled"|"best")`` is the public surface.
"""

/* corekernel: compiled event core for repro.sim.engine (optional).
 *
 * Implements the scheduler hot path as a CPython extension:
 *
 *   - heappush(heap, entry) / heappop(heap): binary-heap ops over the
 *     engine's (time, seq, fn, args) tuples, comparing time and seq as
 *     C int64 instead of generic Python tuple comparison;
 *   - drain(sim, heap, until, max_events) -> (processed, budget_hit):
 *     the run loop — pop-first, lazy cancellation compaction, horizon
 *     and budget re-push with the original sequence number — executed
 *     without interpreter dispatch between events.
 *
 * Contract (docs/INVARIANTS.md#compiled-parity): the pure-Python heap
 * loop in Simulator.run is the reference.  drain() operates on the SAME
 * Python list the ports' inlined pushes target, and (time, seq) is a
 * total order (seq is unique), so the pop sequence is identical for any
 * valid heap layout — mixing heapq pushes with compiled pops is safe.
 *
 * Only repro.sim._compiled may import this module (compiled-core-import
 * lint rule); everything else goes through Simulator(scheduler=...).
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>

/* ------------------------------------------------------------------ */
/* Interned attribute names (created once at module init).             */
/* ------------------------------------------------------------------ */

static PyObject *str_now;               /* "now"               */
static PyObject *str_cancelled;         /* "cancelled"         */
static PyObject *str_fired;             /* "_fired"            */
static PyObject *str_fn;                /* "fn"                */
static PyObject *str_args;              /* "args"              */
static PyObject *str_events_processed;  /* "_events_processed" */
static PyObject *str_live;              /* "_live"             */

/* ------------------------------------------------------------------ */
/* Entry comparison: (time, seq) as int64 with a generic fallback.     */
/* ------------------------------------------------------------------ */

/* a < b for two heap entries.  Returns 1/0, or -1 with an exception
 * set.  Fast path: both entries are tuples whose first two items are
 * machine-sized ints — the engine's invariant (integer nanoseconds,
 * itertools.count sequence numbers).  Anything else falls back to
 * PyObject_RichCompareBool on the full tuples, which reproduces
 * heapq's ordering exactly (seq uniqueness means items 2/3 are never
 * reached by tuple comparison either way). */
static int
entry_lt(PyObject *a, PyObject *b)
{
    if (PyTuple_CheckExact(a) && PyTuple_CheckExact(b) &&
        PyTuple_GET_SIZE(a) >= 2 && PyTuple_GET_SIZE(b) >= 2) {
        PyObject *ta = PyTuple_GET_ITEM(a, 0);
        PyObject *tb = PyTuple_GET_ITEM(b, 0);
        PyObject *sa = PyTuple_GET_ITEM(a, 1);
        PyObject *sb = PyTuple_GET_ITEM(b, 1);
        if (PyLong_CheckExact(ta) && PyLong_CheckExact(tb) &&
            PyLong_CheckExact(sa) && PyLong_CheckExact(sb)) {
            int oa = 0, ob = 0;
            long long va = PyLong_AsLongLongAndOverflow(ta, &oa);
            long long vb = PyLong_AsLongLongAndOverflow(tb, &ob);
            if (!oa && !ob) {
                if (va != vb)
                    return va < vb;
                va = PyLong_AsLongLongAndOverflow(sa, &oa);
                vb = PyLong_AsLongLongAndOverflow(sb, &ob);
                if (!oa && !ob)
                    return va < vb;
            }
            /* int64 overflow (~292-year clocks): generic fallback. */
        }
    }
    return PyObject_RichCompareBool(a, b, Py_LT);
}

/* ------------------------------------------------------------------ */
/* Heap primitives (heapq-compatible sift logic).                      */
/* ------------------------------------------------------------------ */

/* Bubble heap[pos] toward the root until it finds its place.  The
 * generic comparison fallback can run arbitrary Python code, so the
 * list size is re-checked after every compare. */
static int
siftdown_(PyObject *heap, Py_ssize_t startpos, Py_ssize_t pos)
{
    Py_ssize_t size = PyList_GET_SIZE(heap);
    while (pos > startpos) {
        Py_ssize_t parentpos = (pos - 1) >> 1;
        PyObject *item = PyList_GET_ITEM(heap, pos);
        PyObject *parent = PyList_GET_ITEM(heap, parentpos);
        Py_INCREF(item);
        Py_INCREF(parent);
        int cmp = entry_lt(item, parent);
        Py_DECREF(item);
        Py_DECREF(parent);
        if (cmp < 0)
            return -1;
        if (PyList_GET_SIZE(heap) != size) {
            PyErr_SetString(PyExc_RuntimeError,
                            "heap changed size during sift");
            return -1;
        }
        if (!cmp)
            break;
        /* swap heap[pos] <-> heap[parentpos] in place */
        PyObject **arr = ((PyListObject *)heap)->ob_item;
        PyObject *tmp = arr[pos];
        arr[pos] = arr[parentpos];
        arr[parentpos] = tmp;
        pos = parentpos;
    }
    return 0;
}

/* Sink heap[pos]: follow the smaller child down to a leaf, then bubble
 * back up (heapq's two-phase sift, fewer comparisons per level). */
static int
siftup_(PyObject *heap, Py_ssize_t pos)
{
    Py_ssize_t size = PyList_GET_SIZE(heap);
    Py_ssize_t startpos = pos;
    Py_ssize_t limit = size >> 1; /* nodes below have no children */
    while (pos < limit) {
        Py_ssize_t childpos = 2 * pos + 1;
        if (childpos + 1 < size) {
            PyObject *left = PyList_GET_ITEM(heap, childpos);
            PyObject *right = PyList_GET_ITEM(heap, childpos + 1);
            Py_INCREF(left);
            Py_INCREF(right);
            int cmp = entry_lt(left, right);
            Py_DECREF(left);
            Py_DECREF(right);
            if (cmp < 0)
                return -1;
            if (PyList_GET_SIZE(heap) != size) {
                PyErr_SetString(PyExc_RuntimeError,
                                "heap changed size during sift");
                return -1;
            }
            if (!cmp)
                childpos += 1;
        }
        PyObject **arr = ((PyListObject *)heap)->ob_item;
        PyObject *tmp = arr[pos];
        arr[pos] = arr[childpos];
        arr[childpos] = tmp;
        pos = childpos;
    }
    return siftdown_(heap, startpos, pos);
}

/* Append + sift; 0 on success, -1 with exception set. */
static int
heappush_internal(PyObject *heap, PyObject *item)
{
    if (PyList_Append(heap, item) < 0)
        return -1;
    return siftdown_(heap, 0, PyList_GET_SIZE(heap) - 1);
}

/* Pop the smallest entry; new reference, NULL with exception set
 * (IndexError on an empty heap, matching heapq). */
static PyObject *
heappop_internal(PyObject *heap)
{
    Py_ssize_t n = PyList_GET_SIZE(heap);
    if (n == 0) {
        PyErr_SetString(PyExc_IndexError, "index out of range");
        return NULL;
    }
    PyObject *last = PyList_GET_ITEM(heap, n - 1);
    Py_INCREF(last);
    if (PyList_SetSlice(heap, n - 1, n, NULL) < 0) {
        Py_DECREF(last);
        return NULL;
    }
    if (PyList_GET_SIZE(heap) == 0)
        return last; /* it was the only entry */
    PyObject *smallest = PyList_GET_ITEM(heap, 0);
    Py_INCREF(smallest);
    if (PyList_SetItem(heap, 0, last) < 0) { /* steals ref to last */
        Py_DECREF(smallest);
        return NULL;
    }
    if (siftup_(heap, 0) < 0) {
        Py_DECREF(smallest);
        return NULL;
    }
    return smallest;
}

/* ------------------------------------------------------------------ */
/* Module-level heappush / heappop.                                    */
/* ------------------------------------------------------------------ */

static PyObject *
ck_heappush(PyObject *self, PyObject *args)
{
    PyObject *heap, *item;
    if (!PyArg_ParseTuple(args, "O!O:heappush", &PyList_Type, &heap, &item))
        return NULL;
    if (heappush_internal(heap, item) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *
ck_heappop(PyObject *self, PyObject *args)
{
    PyObject *heap;
    if (!PyArg_ParseTuple(args, "O!:heappop", &PyList_Type, &heap))
        return NULL;
    return heappop_internal(heap);
}

/* ------------------------------------------------------------------ */
/* drain: the run loop.                                                */
/* ------------------------------------------------------------------ */

/* Counter accounting mirrors the reference loop's finally clause:
 * sim._events_processed += processed; sim._live -= processed — on
 * every exit path, including a callback exception (the original
 * exception is preserved around the attribute arithmetic). */
static int
account(PyObject *sim, long long processed)
{
    if (processed == 0)
        return 0;
    PyObject *delta = PyLong_FromLongLong(processed);
    if (delta == NULL)
        return -1;

    PyObject *old = PyObject_GetAttr(sim, str_events_processed);
    if (old == NULL)
        goto fail;
    PyObject *updated = PyNumber_Add(old, delta);
    Py_DECREF(old);
    if (updated == NULL)
        goto fail;
    int rc = PyObject_SetAttr(sim, str_events_processed, updated);
    Py_DECREF(updated);
    if (rc < 0)
        goto fail;

    old = PyObject_GetAttr(sim, str_live);
    if (old == NULL)
        goto fail;
    updated = PyNumber_Subtract(old, delta);
    Py_DECREF(old);
    if (updated == NULL)
        goto fail;
    rc = PyObject_SetAttr(sim, str_live, updated);
    Py_DECREF(updated);
    if (rc < 0)
        goto fail;

    Py_DECREF(delta);
    return 0;
fail:
    Py_DECREF(delta);
    return -1;
}

static PyObject *
ck_drain(PyObject *self, PyObject *args)
{
    PyObject *sim, *heap, *until, *max_events;
    if (!PyArg_ParseTuple(args, "OO!OO:drain",
                          &sim, &PyList_Type, &heap, &until, &max_events))
        return NULL;

    int has_horizon = 0;
    long long horizon = 0;
    if (until != Py_None) {
        horizon = PyLong_AsLongLong(until);
        if (horizon == -1 && PyErr_Occurred())
            return NULL;
        has_horizon = 1;
    }
    long long limit = -1;
    if (max_events != Py_None) {
        limit = PyLong_AsLongLong(max_events);
        if (limit == -1 && PyErr_Occurred())
            return NULL;
    }

    long long processed = 0;
    int budget_hit = 0;
    int err = 0;

    while (PyList_GET_SIZE(heap) > 0) {
        PyObject *entry = heappop_internal(heap);
        if (entry == NULL) {
            err = 1;
            break;
        }
        if (!PyTuple_CheckExact(entry) || PyTuple_GET_SIZE(entry) != 4) {
            PyErr_SetString(PyExc_TypeError,
                            "heap entry is not a (time, seq, fn, args) tuple");
            Py_DECREF(entry);
            err = 1;
            break;
        }
        PyObject *time_obj = PyTuple_GET_ITEM(entry, 0); /* borrowed */
        PyObject *fn = PyTuple_GET_ITEM(entry, 2);       /* borrowed */
        PyObject *cargs = PyTuple_GET_ITEM(entry, 3);    /* borrowed */

        PyObject *callee;    /* strong: callable to invoke */
        PyObject *callargs;  /* strong: argument tuple      */

        if (fn == Py_None) {
            /* Cancellable entry: the Event handle rides in the args
             * slot.  Cancelled entries are compacted lazily — they
             * consume no budget and the live count was already
             * decremented by Event.cancel. */
            PyObject *event = cargs;
            PyObject *flag = PyObject_GetAttr(event, str_cancelled);
            if (flag == NULL) {
                Py_DECREF(entry);
                err = 1;
                break;
            }
            int is_cancelled = PyObject_IsTrue(flag);
            Py_DECREF(flag);
            if (is_cancelled < 0) {
                Py_DECREF(entry);
                err = 1;
                break;
            }
            if (is_cancelled) {
                Py_DECREF(entry);
                continue;
            }
            long long t = PyLong_AsLongLong(time_obj);
            if (t == -1 && PyErr_Occurred()) {
                Py_DECREF(entry);
                err = 1;
                break;
            }
            if (has_horizon && t > horizon) {
                if (heappush_internal(heap, entry) < 0)
                    err = 1;
                Py_DECREF(entry);
                break;
            }
            if (limit >= 0 && processed == limit) {
                if (heappush_internal(heap, entry) < 0)
                    err = 1;
                else
                    budget_hit = 1;
                Py_DECREF(entry);
                break;
            }
            if (PyObject_SetAttr(event, str_fired, Py_True) < 0) {
                Py_DECREF(entry);
                err = 1;
                break;
            }
            callee = PyObject_GetAttr(event, str_fn);
            callargs = callee ? PyObject_GetAttr(event, str_args) : NULL;
            if (callargs == NULL) {
                Py_XDECREF(callee);
                Py_DECREF(entry);
                err = 1;
                break;
            }
        }
        else {
            long long t = PyLong_AsLongLong(time_obj);
            if (t == -1 && PyErr_Occurred()) {
                Py_DECREF(entry);
                err = 1;
                break;
            }
            if (has_horizon && t > horizon) {
                if (heappush_internal(heap, entry) < 0)
                    err = 1;
                Py_DECREF(entry);
                break;
            }
            if (limit >= 0 && processed == limit) {
                if (heappush_internal(heap, entry) < 0)
                    err = 1;
                else
                    budget_hit = 1;
                Py_DECREF(entry);
                break;
            }
            callee = fn;
            callargs = cargs;
            Py_INCREF(callee);
            Py_INCREF(callargs);
        }

        if (PyObject_SetAttr(sim, str_now, time_obj) < 0) {
            Py_DECREF(callee);
            Py_DECREF(callargs);
            Py_DECREF(entry);
            err = 1;
            break;
        }
        processed += 1;
        PyObject *res = PyObject_Call(callee, callargs, NULL);
        Py_DECREF(callee);
        Py_DECREF(callargs);
        Py_DECREF(entry);
        if (res == NULL) {
            err = 1;
            break;
        }
        Py_DECREF(res);
    }

    if (err) {
        /* Preserve the propagating exception around the accounting. */
        PyObject *etype, *evalue, *etb;
        PyErr_Fetch(&etype, &evalue, &etb);
        if (account(sim, processed) < 0) {
            /* Accounting itself failed: the counters are broken, which
             * is worse than losing the callback traceback — but keep
             * the original error when there was one. */
            if (etype == NULL)
                return NULL;
            PyErr_Clear();
        }
        if (etype != NULL)
            PyErr_Restore(etype, evalue, etb);
        return NULL;
    }
    if (account(sim, processed) < 0)
        return NULL;
    return Py_BuildValue("(Li)", processed, budget_hit);
}

/* ------------------------------------------------------------------ */
/* Module definition.                                                  */
/* ------------------------------------------------------------------ */

PyDoc_STRVAR(ck_heappush_doc,
"heappush(heap, entry)\n\n"
"Push an entry onto the heap list, comparing (time, seq) as int64.");

PyDoc_STRVAR(ck_heappop_doc,
"heappop(heap)\n\n"
"Pop and return the smallest entry (IndexError when empty).");

PyDoc_STRVAR(ck_drain_doc,
"drain(sim, heap, until, max_events) -> (processed, budget_hit)\n\n"
"Run the event loop over the simulator's heap list: pop entries in\n"
"(time, seq) order, skip cancelled entries, honor the horizon and the\n"
"event budget (re-pushing the boundary entry with its original seq),\n"
"advance sim.now per event, and call each callback.  Counter\n"
"accounting (sim._events_processed, sim._live) happens on every exit\n"
"path, matching the pure-Python loop's finally clause.  The final\n"
"clock advance to the horizon is the caller's job.");

static PyMethodDef ck_methods[] = {
    {"heappush", ck_heappush, METH_VARARGS, ck_heappush_doc},
    {"heappop", ck_heappop, METH_VARARGS, ck_heappop_doc},
    {"drain", ck_drain, METH_VARARGS, ck_drain_doc},
    {NULL, NULL, 0, NULL},
};

PyDoc_STRVAR(ck_module_doc,
"Compiled event core for repro.sim.engine.\n\n"
"Import only through repro.sim._compiled (compiled-core-import rule);\n"
"select it with Simulator(scheduler=\"compiled\") or \"best\".");

static struct PyModuleDef ck_module = {
    PyModuleDef_HEAD_INIT,
    "repro._ckernel.corekernel",
    ck_module_doc,
    -1,
    ck_methods,
};

PyMODINIT_FUNC
PyInit_corekernel(void)
{
    str_now = PyUnicode_InternFromString("now");
    str_cancelled = PyUnicode_InternFromString("cancelled");
    str_fired = PyUnicode_InternFromString("_fired");
    str_fn = PyUnicode_InternFromString("fn");
    str_args = PyUnicode_InternFromString("args");
    str_events_processed = PyUnicode_InternFromString("_events_processed");
    str_live = PyUnicode_InternFromString("_live");
    if (!str_now || !str_cancelled || !str_fired || !str_fn || !str_args ||
        !str_events_processed || !str_live)
        return NULL;
    return PyModule_Create(&ck_module);
}

"""Empirical flow-size distributions.

:data:`WEB_SEARCH` is the web-search workload of the DCTCP paper
(Alizadeh et al. 2010), in the tabulated form used by the HPCC and
PowerTCP evaluations: heavy-tailed, with ~60 % of flows under 200 KB but
most *bytes* in multi-megabyte flows — the paper calls it
"buffer-intensive".  Sizes span 1 B to 30 MB, matching the x-axis of the
paper's Fig. 6.
"""

from __future__ import annotations

import bisect
import random
from typing import List, Sequence, Tuple


class EmpiricalCdf:
    """Piecewise-linear inverse-CDF sampler over (size, cum_prob) points."""

    def __init__(self, points: Sequence[Tuple[float, float]]):
        if len(points) < 2:
            raise ValueError("need at least two CDF points")
        sizes = [float(s) for s, _ in points]
        probs = [float(p) for _, p in points]
        if sorted(sizes) != sizes or sorted(probs) != probs:
            raise ValueError("CDF points must be sorted in size and probability")
        if probs[0] != 0.0 or probs[-1] != 1.0:
            raise ValueError("CDF must start at probability 0 and end at 1")
        self.sizes = sizes
        self.probs = probs

    def quantile(self, u: float) -> float:
        """Inverse CDF by linear interpolation; ``u`` in [0, 1]."""
        if not 0.0 <= u <= 1.0:
            raise ValueError(f"u must be in [0,1], got {u}")
        index = bisect.bisect_left(self.probs, u)
        if index == 0:
            return self.sizes[0]
        p0, p1 = self.probs[index - 1], self.probs[index]
        s0, s1 = self.sizes[index - 1], self.sizes[index]
        if p1 == p0:
            return s1
        return s0 + (s1 - s0) * (u - p0) / (p1 - p0)

    def sample(self, rng: random.Random) -> int:
        """Draw one flow size in bytes (at least 1)."""
        return max(1, int(round(self.quantile(rng.random()))))

    def mean_bytes(self) -> float:
        """Exact mean of the piecewise-linear distribution."""
        total = 0.0
        for i in range(1, len(self.sizes)):
            mass = self.probs[i] - self.probs[i - 1]
            midpoint = (self.sizes[i] + self.sizes[i - 1]) / 2.0
            total += mass * midpoint
        return total

    def scaled(self, factor: float) -> "EmpiricalCdf":
        """The same distribution with all sizes multiplied by ``factor``.

        Used to shrink the workload for the pure-Python event budget while
        preserving its shape; analysis bins are rescaled symmetrically
        (see ``size_scale`` in :mod:`repro.analysis.fct`).
        """
        if factor <= 0:
            raise ValueError(f"factor must be positive, got {factor}")
        return EmpiricalCdf(
            [(max(s * factor, 1.0), p) for s, p in zip(self.sizes, self.probs)]
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EmpiricalCdf({len(self.sizes)} points, mean={self.mean_bytes():.0f}B)"


#: DCTCP web-search flow sizes (bytes, cumulative probability).
WEB_SEARCH = EmpiricalCdf(
    [
        (1, 0.0),
        (10_000, 0.15),
        (20_000, 0.20),
        (30_000, 0.30),
        (50_000, 0.40),
        (80_000, 0.53),
        (200_000, 0.60),
        (1_000_000, 0.70),
        (2_000_000, 0.80),
        (5_000_000, 0.90),
        (10_000_000, 0.97),
        (30_000_000, 1.0),
    ]
)

"""ToR-pair traffic for the RDCN case study (§5).

The Fig. 8 scenario watches one ToR pair: hosts under the source ToR run
long flows to distinct hosts under the destination ToR.  With enough
parallel flows the pair can fill the 100 Gbps circuit during its day
(hosts are 25 Gbps each) and falls back to the 25 Gbps packet network
between days.
"""

from __future__ import annotations

from typing import List, Tuple


def pair_flows(
    src_tor: int,
    dst_tor: int,
    hosts_per_tor: int,
    *,
    flows_per_pair: int,
    size_bytes: int,
) -> List[Tuple[int, int, int]]:
    """(src_host, dst_host, size) tuples for one ToR pair.

    Flows are spread over distinct host pairs round-robin so no host NIC
    is double-booked until ``flows_per_pair > hosts_per_tor``.
    """
    if src_tor == dst_tor:
        raise ValueError("source and destination ToR must differ")
    if flows_per_pair < 1:
        raise ValueError("need at least one flow")
    flows = []
    for i in range(flows_per_pair):
        src = src_tor * hosts_per_tor + (i % hosts_per_tor)
        dst = dst_tor * hosts_per_tor + (i % hosts_per_tor)
        flows.append((src, dst, size_bytes))
    return flows


def all_pairs_flows(
    num_tors: int,
    hosts_per_tor: int,
    *,
    flows_per_pair: int,
    size_bytes: int,
) -> List[Tuple[int, int, int]]:
    """Pair flows for every ordered ToR pair (uniform RDCN demand)."""
    flows = []
    for src_tor in range(num_tors):
        for dst_tor in range(num_tors):
            if src_tor != dst_tor:
                flows.extend(
                    pair_flows(
                        src_tor,
                        dst_tor,
                        hosts_per_tor,
                        flows_per_pair=flows_per_pair,
                        size_bytes=size_bytes,
                    )
                )
    return flows

"""Permutation traffic: ToR-pair demand (§5) and host-level permutations.

Two flavours:

* :func:`pair_flows` / :func:`all_pairs_flows` — the RDCN case-study
  demand (Fig. 8): hosts under one ToR run long flows to distinct hosts
  under another, filling the 100 Gbps circuit during its day;
* :func:`permutation_pairs` — the classic host-level permutation
  stress: every host sends to exactly one other host and receives from
  exactly one other host (a seeded derangement), so no receiver is
  oversubscribed and any unfairness is the CC scheme's own doing.  Used
  by the registered ``permutation`` scenario.
"""

from __future__ import annotations

import random
from typing import List, Tuple


def permutation_pairs(
    rng: random.Random, num_hosts: int
) -> List[Tuple[int, int]]:
    """A seeded random derangement: ``(src, dst)`` with ``dst != src``.

    Every host appears exactly once as a source and once as a
    destination.  Deterministic for a given RNG state.
    """
    if num_hosts < 2:
        raise ValueError(f"need at least 2 hosts, got {num_hosts}")
    targets = list(range(num_hosts))
    rng.shuffle(targets)
    for i in range(num_hosts):
        if targets[i] == i:
            j = (i + 1) % num_hosts
            targets[i], targets[j] = targets[j], targets[i]
    return [(src, dst) for src, dst in enumerate(targets)]


def pair_flows(
    src_tor: int,
    dst_tor: int,
    hosts_per_tor: int,
    *,
    flows_per_pair: int,
    size_bytes: int,
) -> List[Tuple[int, int, int]]:
    """(src_host, dst_host, size) tuples for one ToR pair.

    Flows are spread over distinct host pairs round-robin so no host NIC
    is double-booked until ``flows_per_pair > hosts_per_tor``.
    """
    if src_tor == dst_tor:
        raise ValueError("source and destination ToR must differ")
    if flows_per_pair < 1:
        raise ValueError("need at least one flow")
    flows = []
    for i in range(flows_per_pair):
        src = src_tor * hosts_per_tor + (i % hosts_per_tor)
        dst = dst_tor * hosts_per_tor + (i % hosts_per_tor)
        flows.append((src, dst, size_bytes))
    return flows


def all_pairs_flows(
    num_tors: int,
    hosts_per_tor: int,
    *,
    flows_per_pair: int,
    size_bytes: int,
) -> List[Tuple[int, int, int]]:
    """Pair flows for every ordered ToR pair (uniform RDCN demand)."""
    flows = []
    for src_tor in range(num_tors):
        for dst_tor in range(num_tors):
            if src_tor != dst_tor:
                flows.extend(
                    pair_flows(
                        src_tor,
                        dst_tor,
                        hosts_per_tor,
                        flows_per_pair=flows_per_pair,
                        size_bytes=size_bytes,
                    )
                )
    return flows

"""Poisson open-loop flow arrivals calibrated to a target network load.

The paper's realistic-workload experiments offer web-search flows at an
"average load (on the ToR uplinks) in the range of 20 % − 95 %".  Every
inter-rack flow crosses exactly one source-ToR uplink, so for a fat-tree
with per-ToR uplink capacity ``C_up`` the flow arrival rate that offers
load ρ is::

    λ = ρ · num_tors · C_up / E[flow size in bits]

Source/destination pairs are drawn uniformly among *inter-rack* host pairs
(the intra-rack case would bypass the oversubscribed uplinks the load is
defined over).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.topology.fattree import FatTreeParams
from repro.units import BITS_PER_BYTE, SEC
from repro.workloads.distributions import EmpiricalCdf


@dataclass
class FlowRequest:
    """One scheduled flow: who sends how much to whom, starting when."""

    start_ns: int
    src: int
    dst: int
    size_bytes: int


def inter_rack_pair(
    rng: random.Random, num_hosts: int, hosts_per_tor: int
) -> tuple:
    """Uniform (src, dst) pair with src and dst in different racks."""
    src = rng.randrange(num_hosts)
    while True:
        dst = rng.randrange(num_hosts)
        if dst // hosts_per_tor != src // hosts_per_tor:
            return src, dst


def fattree_load_to_rate(params: FatTreeParams, load: float) -> float:
    """Flow arrival rate (flows/s per byte of mean size) numerator:
    offered bits/s across all ToR uplinks at ``load``."""
    uplink_bps = params.aggs_per_pod * params.fabric_bw_bps
    return load * params.num_tors * uplink_bps


def poisson_flows(
    rng: random.Random,
    params: FatTreeParams,
    distribution: EmpiricalCdf,
    load: float,
    duration_ns: int,
    *,
    start_ns: int = 0,
    max_flows: Optional[int] = None,
) -> List[FlowRequest]:
    """Generate web-search-style Poisson arrivals for the fat-tree.

    Flow inter-arrival times are exponential with the rate that offers
    ``load`` on the ToR uplinks; sizes are i.i.d. from ``distribution``;
    endpoints are uniform inter-rack pairs.
    """
    if not 0.0 < load < 1.5:
        raise ValueError(f"load should be a fraction like 0.6, got {load}")
    mean_bits = distribution.mean_bytes() * BITS_PER_BYTE
    rate_per_sec = fattree_load_to_rate(params, load) / mean_bits
    mean_gap_ns = SEC / rate_per_sec

    requests: List[FlowRequest] = []
    t = float(start_ns)
    end = start_ns + duration_ns
    while True:
        t += rng.expovariate(1.0) * mean_gap_ns
        if t >= end:
            break
        src, dst = inter_rack_pair(rng, params.num_hosts, params.hosts_per_tor)
        requests.append(
            FlowRequest(int(t), src, dst, distribution.sample(rng))
        )
        if max_flows is not None and len(requests) >= max_flows:
            break
    return requests

"""Traffic generation: flow-size distributions and arrival processes.

* :data:`repro.workloads.distributions.WEB_SEARCH` — the DCTCP web-search
  flow-size distribution the paper evaluates with (§4.1);
* :mod:`repro.workloads.arrivals` — Poisson open-loop arrivals calibrated
  to a target load on the fat-tree's ToR uplinks;
* :mod:`repro.workloads.incast` — the synthetic distributed-file-system
  query workload that creates fan-in bursts (§4.1);
* :mod:`repro.workloads.permutation` — ToR-pair traffic for the RDCN
  case study (§5).
"""

from repro.workloads.distributions import WEB_SEARCH, EmpiricalCdf
from repro.workloads.arrivals import FlowRequest, poisson_flows
from repro.workloads.incast import IncastEvent, incast_events
from repro.workloads.permutation import pair_flows

__all__ = [
    "EmpiricalCdf",
    "FlowRequest",
    "IncastEvent",
    "WEB_SEARCH",
    "incast_events",
    "pair_flows",
    "poisson_flows",
]

"""The paper's synthetic incast workload (§4.1).

"The synthetic workload represents a distributed file system where each
server requests a file from a set of servers chosen uniformly at random
from a different rack.  All the servers which receive the request respond
at the same time by transmitting the requested part of the file.  As a
result, each file request creates an incast scenario."

An :class:`IncastEvent` is one such query: ``fanout`` responders each send
``request_size / fanout`` bytes to the requester simultaneously.  The
paper sweeps the request *rate* (Fig. 7c/d — incast frequency) and the
request *size* (Fig. 7e/f — congestion duration).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence

from repro.units import SEC


@dataclass
class IncastEvent:
    """One file request: ``responders`` all answer ``requester`` at once."""

    start_ns: int
    requester: int
    responders: Sequence[int]
    bytes_per_responder: int

    @property
    def total_bytes(self) -> int:
        """Aggregate response size (the request size)."""
        return self.bytes_per_responder * len(self.responders)


def incast_events(
    rng: random.Random,
    *,
    num_hosts: int,
    hosts_per_tor: int,
    request_rate_per_sec: float,
    request_size_bytes: int,
    fanout: int,
    duration_ns: int,
    start_ns: int = 0,
) -> List[IncastEvent]:
    """Poisson query arrivals at ``request_rate_per_sec`` over the cluster.

    Responders are sampled uniformly from racks other than the
    requester's, so every response crosses the oversubscribed fabric.
    """
    if fanout < 1:
        raise ValueError(f"fanout must be >= 1, got {fanout}")
    if request_rate_per_sec <= 0:
        raise ValueError("request rate must be positive")
    events: List[IncastEvent] = []
    mean_gap_ns = SEC / request_rate_per_sec
    bytes_per_responder = max(1, request_size_bytes // fanout)
    t = float(start_ns)
    end = start_ns + duration_ns
    while True:
        t += rng.expovariate(1.0) * mean_gap_ns
        if t >= end:
            break
        requester = rng.randrange(num_hosts)
        rack = requester // hosts_per_tor
        candidates = [
            h for h in range(num_hosts) if h // hosts_per_tor != rack
        ]
        responders = rng.sample(candidates, min(fanout, len(candidates)))
        events.append(
            IncastEvent(int(t), requester, responders, bytes_per_responder)
        )
    return events


def synchronized_incast(
    requester: int,
    responders: Sequence[int],
    total_bytes: int,
    start_ns: int = 0,
) -> IncastEvent:
    """A single deterministic N:1 incast (the Fig. 4 microbenchmark)."""
    if not responders:
        raise ValueError("need at least one responder")
    return IncastEvent(
        start_ns,
        requester,
        list(responders),
        max(1, total_bytes // len(responders)),
    )

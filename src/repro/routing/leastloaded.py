"""Weighted-least-loaded path assignment (flow-level).

The sdn-loadbalance controllers' weighted-least-connections policy,
moved into the switch: a new flow is pinned to the candidate port with
the smallest weighted load *at arrival time*, read from live per-port
state rather than a hash.  Two load metrics:

* ``metric="flows"`` — weighted-least-connections proper: the count of
  flows this policy has assigned to each port.  Cheap, and exactly the
  controller logic (connection counts per server, divided by weight).
* ``metric="qlen"`` — instantaneous queue occupancy
  (``port.qlen_bytes``), the congestion-aware variant: a port hot from
  *other* traffic (cross-rack collisions, incast) repels new flows even
  when its assignment count is low.

Either way the pick is pinned for the flow's lifetime, so INT hop
indices stay stable (docs/INVARIANTS.md#path-stability).  Ties break by
candidate position, deterministically.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.routing.base import RoutingPolicy
from repro.routing.registry import register_policy

_METRICS = ("flows", "qlen")


@register_policy(
    "least-loaded",
    aliases=("least-connections", "wlc"),
    description="pin new flows to the least-loaded candidate port",
)
class LeastLoadedPolicy(RoutingPolicy):
    """Pin each new flow to the candidate with the smallest weighted load."""

    def __init__(
        self, metric: str = "flows", weights: Optional[Sequence[int]] = None
    ):
        if metric not in _METRICS:
            raise ValueError(
                f"least-loaded metric must be one of {_METRICS}, got {metric!r}"
            )
        self.metric = metric
        self.weights: Tuple[int, ...] = tuple(int(w) for w in (weights or ()))
        if any(w <= 0 for w in self.weights):
            raise ValueError(
                f"least-loaded weights must be positive integers, got "
                f"{self.weights}"
            )
        #: (flow_id, dst) -> pinned port
        self._pins: Dict[Tuple[int, int], object] = {}
        #: port_id -> flows assigned here (the "connections" counter)
        self._counts: Dict[int, int] = {}

    def _load(self, port, index: int) -> float:
        weight = self.weights[index % len(self.weights)] if self.weights else 1
        if self.metric == "qlen":
            return port.qlen_bytes / weight
        return self._counts.get(port.port_id, 0) / weight

    def select(self, pkt, options: Sequence):
        pin = (pkt.flow_id, pkt.dst)
        port = self._pins.get(pin)
        if port is None:
            best = min(
                range(len(options)),
                key=lambda i: (self._load(options[i], i), i),
            )
            port = options[best]
            self._pins[pin] = port
            self._counts[port.port_id] = self._counts.get(port.port_id, 0) + 1
        return port

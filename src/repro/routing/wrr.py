"""Weighted round-robin path assignment (flow-level).

The sdn-loadbalance controller family's WRR policy, adapted to switches:
new flows are dealt onto candidate ports in weighted rotation, then
pinned — all packets of one flow keep one path, so INT hop indices stay
stable (docs/INVARIANTS.md#path-stability).  Unlike ECMP's stateless
hash, WRR cannot collide: the k-th flow through a switch lands on a port
determined by arrival order, not by hash luck, at the cost of per-switch
cursor state.

``weights`` cycles over the candidate ports by position (default: all 1,
i.e. plain round-robin).  A rotation cursor is kept per *candidate set*
— ToRs deal uplink flows independently of downlink (single-candidate)
routes, which never reach the policy at all.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.routing.base import RoutingPolicy
from repro.routing.registry import register_policy


@register_policy(
    "wrr",
    aliases=("weighted-rr", "weighted-round-robin"),
    description="deal new flows onto ports in weighted rotation, then pin",
)
class WeightedRoundRobinPolicy(RoutingPolicy):
    """Weighted round-robin over candidate ports, pinned per flow."""

    def __init__(self, weights: Optional[Sequence[int]] = None):
        self.weights: Tuple[int, ...] = tuple(int(w) for w in (weights or ()))
        if any(w <= 0 for w in self.weights):
            raise ValueError(
                f"wrr weights must be positive integers, got {self.weights}"
            )
        #: (flow_id, dst) -> pinned candidate index
        self._pins: Dict[Tuple[int, int], int] = {}
        #: candidate set -> [cursor index, remaining credit at cursor]
        self._state: Dict[tuple, list] = {}

    def _weight(self, index: int) -> int:
        if not self.weights:
            return 1
        return self.weights[index % len(self.weights)]

    def _deal(self, options: Sequence) -> int:
        """Advance the weighted rotation for this candidate set by one."""
        key = tuple(options)
        state = self._state.get(key)
        if state is None:
            state = self._state[key] = [0, self._weight(0)]
        index = state[0]
        state[1] -= 1
        if state[1] <= 0:
            nxt = (index + 1) % len(options)
            state[0] = nxt
            state[1] = self._weight(nxt)
        return index

    def select(self, pkt, options: Sequence):
        pin = (pkt.flow_id, pkt.dst)
        index = self._pins.get(pin)
        if index is None:
            index = self._deal(options)
            self._pins[pin] = index
        return options[index % len(options)]

"""The RoutingPolicy protocol: per-switch path selection.

A policy instance belongs to exactly one switch (builders call
``PolicySpec.create()`` once per switch), mirroring hardware: ECMP seeds,
round-robin cursors, and load counters live in each switch's forwarding
plane.  :meth:`RoutingPolicy.attach` enforces that ownership.

``select`` is the single hot-path hook: given a packet and the candidate
egress ports for its destination (always >= 2 — single-candidate routes
never consult the policy), return the port to enqueue on.  Policies must
be deterministic functions of (their own state, the packet, the
candidates): any randomness comes from a ``random.Random`` seeded from
policy params and the switch id (see the ``spray`` policy), never from
ambient state — the determinism lint rules cover ``routing/`` too.
"""

from __future__ import annotations

from typing import Sequence

from repro.routing.registry import Requirements


class RoutingPolicy:
    """Base class for registered routing policies (see module docstring)."""

    #: stamped by :func:`repro.routing.registry.register_policy`
    policy_name: str = ""
    requirements: Requirements = Requirements()

    _switch = None
    #: id of the owning switch (hash input for ECMP-style policies)
    switch_id: int = 0

    def attach(self, switch) -> None:
        """Bind this instance to its owning switch (once).

        Called by ``Switch.__init__``/``set_policy``.  Re-attaching the
        same instance to a *different* switch would silently share pins
        and cursors across switches, so it is an error — create one
        instance per switch via ``PolicySpec.create()``.
        """
        if self._switch is not None and self._switch is not switch:
            raise ValueError(
                f"routing policy {self.policy_name or type(self).__name__!r} "
                f"is already attached to switch {self._switch.name!r}; "
                "policy instances are per-switch — create a fresh one via "
                "PolicySpec.create()"
            )
        self._switch = switch
        self.switch_id = switch.switch_id

    def select(self, pkt, options: Sequence):
        """Pick the egress port for ``pkt`` among >= 2 candidates."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        owner = self._switch.name if self._switch is not None else "unattached"
        return f"{type(self).__name__}({owner})"

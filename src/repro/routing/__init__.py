"""Per-switch routing/load-balancing policies (see ``registry``)."""

from repro.routing.base import RoutingPolicy
from repro.routing.registry import (
    DEFAULT_POLICY,
    POLICIES,
    PolicySpec,
    RegisteredPolicy,
    Requirements,
    get_policy,
    load_builtin_policies,
    make_policy,
    policy_names,
    register_policy,
)

__all__ = [
    "DEFAULT_POLICY",
    "POLICIES",
    "PolicySpec",
    "RegisteredPolicy",
    "Requirements",
    "RoutingPolicy",
    "get_policy",
    "load_builtin_policies",
    "make_policy",
    "policy_names",
    "register_policy",
]

"""Pluggable routing/load-balancing policy registry.

Mirrors :mod:`repro.cc.registry`: every policy registers itself with the
:func:`register_policy` class decorator, declaring a typed
:class:`Requirements` record — what the *transport* must provide for the
policy to be safe.  Flow-level policies (ECMP, WRR, least-loaded) keep a
flow on one path for its lifetime, so INT hop indices stay stable and
the go-back-N receiver never sees reordering; per-packet policies
(spray) give that up and therefore declare
``reordering_tolerant_receiver=True``, which
:class:`repro.experiments.driver.FlowDriver` translates into
out-of-order accumulation at the receiver and a raised duplicate-ACK
threshold at the sender (see docs/INVARIANTS.md#path-stability).

Lookup is lazy: the built-in policy modules are imported on first use,
so ``import repro.routing.registry`` stays cheap and free of circular
imports.  Adding a policy is one decorated class in one module — no
registry edits::

    from repro.routing.base import RoutingPolicy
    from repro.routing.registry import Requirements, register_policy

    @register_policy("my-policy", aliases=("mine",))
    class MyPolicy(RoutingPolicy):
        ...

Topology builders consume the registry through their ``routing`` /
``routing_params`` knobs: ``build_topology(sim, "fattree",
routing="least-loaded")`` gives every switch its own policy instance.
The default ``ecmp`` with no parameters is special-cased by
:class:`repro.sim.switch.Switch` into an inline fast path (class swap),
so the 26 committed figure series are byte-identical by construction.
"""

from __future__ import annotations

import importlib
import inspect
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

#: canonical name of the policy the fast path inlines
DEFAULT_POLICY = "ecmp"


@dataclass(frozen=True)
class Requirements:
    """Declarative transport features one routing policy needs.

    ``reordering_tolerant_receiver`` — the policy may deliver one flow's
    packets over different paths, so receivers must buffer out-of-order
    segments (and senders must not treat a handful of duplicate ACKs as
    loss).  ``flow_stable`` — all packets of one flow take one path, the
    property INT-based CC schemes rely on for stable hop indices.
    """

    reordering_tolerant_receiver: bool = False
    flow_stable: bool = True

    @staticmethod
    def union(many: Iterable["Requirements"]) -> "Requirements":
        """Network-facing union across the deployed policies.

        Reorder tolerance is needed if *any* policy sprays; the network
        is flow-stable only if *every* policy is.  An empty iterable
        yields the default (flow-stable ECMP) requirements.
        """
        reordering = False
        flow_stable = True
        for req in many:
            reordering = reordering or req.reordering_tolerant_receiver
            flow_stable = flow_stable and req.flow_stable
        return Requirements(
            reordering_tolerant_receiver=reordering, flow_stable=flow_stable
        )


def _class_params(cls: type) -> FrozenSet[str]:
    """Constructor parameters accepted anywhere in the class's MRO."""
    names = set()
    for klass in cls.__mro__:
        init = klass.__dict__.get("__init__")
        if init is None:
            continue
        for param in inspect.signature(init).parameters.values():
            if param.name == "self":
                continue
            if param.kind in (
                inspect.Parameter.POSITIONAL_OR_KEYWORD,
                inspect.Parameter.KEYWORD_ONLY,
            ):
                names.add(param.name)
    return frozenset(names)


@dataclass(frozen=True)
class RegisteredPolicy:
    """One registry entry: a named policy class plus its declared contract."""

    name: str
    cls: type
    requirements: Requirements = Requirements()
    aliases: Tuple[str, ...] = ()
    #: accepted ``make_policy`` parameters (derived from the class
    #: constructor unless registered explicitly)
    param_names: FrozenSet[str] = frozenset()
    description: str = ""

    def validate_params(self, params: Dict) -> None:
        """Reject unknown constructor parameters with a named error."""
        unknown = sorted(set(params) - set(self.param_names))
        if unknown:
            accepted = ", ".join(sorted(self.param_names)) or "(none)"
            raise TypeError(
                f"unknown parameter(s) {', '.join(map(repr, unknown))} for "
                f"routing policy {self.name!r}; accepted parameters: "
                f"{accepted}"
            )


#: canonical name -> entry
POLICIES: Dict[str, RegisteredPolicy] = {}
#: normalized alias -> canonical name (canonical names are self-aliases)
_ALIASES: Dict[str, str] = {}

#: the modules that self-register built-in policies
BUILTIN_MODULES = (
    "repro.routing.ecmp",
    "repro.routing.wrr",
    "repro.routing.leastloaded",
    "repro.routing.spray",
)


def normalize(name: str) -> str:
    """Canonical key form: lowercase, underscores -> dashes."""
    return name.lower().replace("_", "-")


def _first_doc_line(obj) -> str:
    doc = inspect.getdoc(obj) or ""
    return doc.splitlines()[0].strip() if doc else ""


def _add_entry(entry: RegisteredPolicy) -> RegisteredPolicy:
    # Validate everything before mutating, so a rejected registration
    # leaves the registry untouched.
    existing = POLICIES.get(entry.name)
    if existing is not None and existing.cls is not entry.cls:
        raise ValueError(
            f"routing policy name {entry.name!r} already registered"
        )
    keys = [normalize(alias) for alias in (entry.name,) + entry.aliases]
    for alias, key in zip((entry.name,) + entry.aliases, keys):
        owner = _ALIASES.get(key)
        if owner is not None and owner != entry.name:
            raise ValueError(
                f"routing policy alias {alias!r} already maps to {owner!r}"
            )
    POLICIES[entry.name] = entry
    for key in keys:
        _ALIASES[key] = entry.name
    return entry


def register_policy(
    name: str,
    *,
    aliases: Iterable[str] = (),
    requirements: Requirements = Requirements(),
    params: Optional[Iterable[str]] = None,
    description: str = "",
):
    """Class decorator: register a policy class under ``name`` (+ aliases).

    ``params`` overrides the accepted-parameter set (otherwise derived
    from the constructor signature across the MRO).  The decorator also
    stamps ``policy_name`` and ``requirements`` onto the class so a live
    policy instance carries its own contract.
    """

    def decorate(cls: type) -> type:
        entry = _add_entry(
            RegisteredPolicy(
                name=normalize(name),
                cls=cls,
                requirements=requirements,
                aliases=tuple(aliases),
                param_names=(
                    frozenset(params) if params is not None else _class_params(cls)
                ),
                description=description or _first_doc_line(cls),
            )
        )
        cls.policy_name = entry.name
        cls.requirements = requirements
        return cls

    return decorate


def load_builtin_policies() -> None:
    """Import every built-in policy module (idempotent)."""
    for module in BUILTIN_MODULES:
        importlib.import_module(module)


def get_policy(name: str) -> RegisteredPolicy:
    """Look up a registry entry by name or alias; KeyError with catalog."""
    load_builtin_policies()
    canonical = _ALIASES.get(normalize(name))
    if canonical is None:
        raise KeyError(
            f"unknown routing policy: {name!r} "
            f"(registered: {', '.join(policy_names())})"
        )
    return POLICIES[canonical]


def policy_names() -> List[str]:
    """Sorted canonical names of every registered policy."""
    load_builtin_policies()
    return sorted(POLICIES)


@dataclass
class PolicySpec:
    """One deployable (policy, parameters) binding.

    Produced by :func:`make_policy`; consumed by topology builders, which
    call :meth:`create` once per switch — policy state (round-robin
    cursors, flow pins, load counters) is strictly per-switch, exactly as
    it would be on real hardware.
    """

    name: str
    requirements: Requirements = field(default_factory=Requirements)
    params: Dict = field(default_factory=dict)
    entry: Optional[RegisteredPolicy] = None

    @property
    def is_default_ecmp(self) -> bool:
        """True for parameterless ECMP — the byte-identical inline path.

        Builders pass ``policy=None`` to :class:`repro.sim.switch.Switch`
        in this case, which class-swaps to the inlined fast path; any
        parameterized or non-default policy gets a real instance.
        """
        return self.name == DEFAULT_POLICY and not self.params

    def create(self):
        """Instantiate a fresh per-switch policy object."""
        if self.entry is None:
            raise ValueError(
                f"policy spec {self.name!r} has no registry entry; build "
                "specs via make_policy() or register the policy"
            )
        return self.entry.cls(**self.params)


def make_policy(name: str, **params) -> PolicySpec:
    """Bind ``name`` and constructor ``params`` into a deployable spec.

    Raises ``KeyError`` for unknown names and ``TypeError`` for unknown
    parameters (naming the policy and its accepted parameter set).
    """
    entry = get_policy(name)
    entry.validate_params(params)
    return PolicySpec(
        name=entry.name,
        requirements=entry.requirements,
        params=dict(params),
        entry=entry,
    )

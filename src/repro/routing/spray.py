"""Per-packet spraying: every packet re-picks its path.

The load-balancing endpoint Ousterhout's "It's Time to Replace TCP in
the Datacenter" argues for: spreading *packets* (not flows) across equal
candidates erases hash-collision hotspots entirely, at the price of
reordering — so this policy's :class:`Requirements` declare
``reordering_tolerant_receiver=True`` and give up ``flow_stable``.
:class:`repro.experiments.driver.FlowDriver` reads that union off the
built network and launches receivers that buffer out-of-order segments
(cumulative-ACK semantics preserved) and senders with a raised
duplicate-ACK threshold, so spraying does not manufacture spurious
go-back-N storms.  This is the documented exception to the path-stability
contract (docs/INVARIANTS.md#path-stability): INT hop indices are *not*
comparable across one flow's ACKs under spray.

Two modes: ``mode="rr"`` (default) sprays in strict rotation per
candidate set; ``mode="random"`` draws uniformly from a
``random.Random`` seeded from (``seed``, switch id), deterministic per
run yet uncorrelated across switches.
"""

from __future__ import annotations

import random
from typing import Dict, Sequence

from repro.routing.base import RoutingPolicy
from repro.routing.registry import Requirements, register_policy

_MODES = ("rr", "random")

#: mixes the user seed with the switch id so neighbouring switches do not
#: spray in lockstep (any odd multiplier works; primes mix well)
_SEED_MIX = 1_000_003


@register_policy(
    "spray",
    aliases=("packet-spray", "per-packet"),
    requirements=Requirements(
        reordering_tolerant_receiver=True, flow_stable=False
    ),
    description="per-packet rotation/seeded spraying; needs reorder-tolerant receivers",
)
class SprayPolicy(RoutingPolicy):
    """Per-packet path spraying (round-robin or seeded random)."""

    def __init__(self, mode: str = "rr", seed: int = 1):
        if mode not in _MODES:
            raise ValueError(
                f"spray mode must be one of {_MODES}, got {mode!r}"
            )
        self.mode = mode
        self.seed = int(seed)
        #: candidate set -> next rotation index (rr mode)
        self._cursors: Dict[tuple, int] = {}
        self._rng: random.Random = random.Random(self.seed)

    def attach(self, switch) -> None:
        super().attach(switch)
        # Re-seed with the owning switch folded in, so every switch
        # sprays its own deterministic sequence.
        self._rng = random.Random(self.seed * _SEED_MIX ^ switch.switch_id)

    def select(self, pkt, options: Sequence):
        n = len(options)
        if self.mode == "random":
            return options[self._rng.randrange(n)]
        key = tuple(options)
        cursor = self._cursors.get(key, 0)
        self._cursors[key] = cursor + 1
        return options[cursor % n]

"""Flow-level ECMP: the Fibonacci-hash pick every figure in the repo uses.

This is the registered form of the arithmetic
:class:`repro.sim.switch.Switch` inlines on its default fast path; with
``salt=0`` the two are bit-for-bit identical (a test pins this), so
``routing="ecmp"`` and the default are the same experiment.  A non-zero
``salt`` re-rolls every hash — the standard operator move when a
polarized fabric needs its collisions shuffled — and forces the policy
onto the pluggable path.
"""

from __future__ import annotations

from typing import Sequence

from repro.routing.base import RoutingPolicy
from repro.routing.registry import register_policy
from repro.sim.switch import ecmp_index


@register_policy(
    "ecmp",
    aliases=("ecmp-hash", "hash"),
    description="flow-level Fibonacci hash of (flow, switch); the default",
)
class EcmpPolicy(RoutingPolicy):
    """Flow-level ECMP hash; ``salt`` re-rolls path assignments."""

    def __init__(self, salt: int = 0):
        self.salt = int(salt)

    def select(self, pkt, options: Sequence):
        return options[
            ecmp_index(pkt.flow_id, self.switch_id, len(options), self.salt)
        ]

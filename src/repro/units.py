"""Unit conventions and conversion helpers.

The whole simulator uses one consistent unit system:

* **time** — integer nanoseconds.  An integer clock makes event ordering
  exact and reproducible (no floating-point drift between runs).
* **bandwidth** — bits per second, as a float (e.g. ``100e9`` for 100 Gbps).
* **data sizes** — bytes, as integers.

This module centralizes the constants and the conversions between them so
the rest of the code never hand-rolls a ``* 8 / rate`` expression.
"""

from __future__ import annotations

# Time constants (nanoseconds).
NSEC = 1
USEC = 1_000
MSEC = 1_000_000
SEC = 1_000_000_000

# Bandwidth constants (bits per second).
KBPS = 1e3
MBPS = 1e6
GBPS = 1e9

BITS_PER_BYTE = 8


def tx_time_ns(size_bytes: int, rate_bps: float) -> int:
    """Serialization delay of ``size_bytes`` on a link of ``rate_bps``.

    Rounded up to a whole nanosecond so that a transmitter never finishes
    "early", which would let a queue drain faster than the physical rate.
    """
    if rate_bps <= 0:
        raise ValueError(f"rate must be positive, got {rate_bps}")
    ns = size_bytes * BITS_PER_BYTE * SEC / rate_bps
    whole = int(ns)
    if ns > whole:
        whole += 1
    return whole


def bytes_in_time(duration_ns: int, rate_bps: float) -> int:
    """How many whole bytes a link of ``rate_bps`` carries in ``duration_ns``."""
    return int(duration_ns * rate_bps / (BITS_PER_BYTE * SEC))


def bdp_bytes(rate_bps: float, rtt_ns: int) -> int:
    """Bandwidth-delay product in bytes for a path of ``rtt_ns``."""
    return int(rate_bps * rtt_ns / (BITS_PER_BYTE * SEC))


def rate_bps_from(size_bytes: int, duration_ns: int) -> float:
    """Average rate in bits/s of ``size_bytes`` over ``duration_ns``."""
    if duration_ns <= 0:
        raise ValueError(f"duration must be positive, got {duration_ns}")
    return size_bytes * BITS_PER_BYTE * SEC / duration_ns

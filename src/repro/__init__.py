"""PowerTCP (NSDI 2022) reproduction.

A packet-level discrete-event simulator plus the paper's power-based
congestion control (PowerTCP / θ-PowerTCP), every baseline it is evaluated
against (HPCC, DCQCN, TIMELY, HOMA, reTCP, and the Swift/DCTCP extensions),
the §2 fluid-model analysis, and an experiment harness regenerating every
figure of the paper.

Quickstart::

    from repro import Simulator, build_dumbbell, PowerTcp
    from repro.experiments import incast

See ``examples/quickstart.py`` for a complete runnable scenario.
"""

from repro.units import GBPS, MSEC, SEC, USEC
from repro.sim import Simulator
from repro.core import PowerTcp, ThetaPowerTcp
from repro.cc import Dcqcn, Dctcp, Hpcc, StaticWindow, Swift, Timely
from repro.topology import (
    DumbbellParams,
    FatTreeParams,
    Network,
    RdcnParams,
    build_dumbbell,
    build_fattree,
    build_rdcn,
    build_topology,
    get_topology,
    topology_names,
)
from repro.transport import Flow, Receiver, Sender

__version__ = "1.0.0"

__all__ = [
    "Dcqcn",
    "Dctcp",
    "DumbbellParams",
    "FatTreeParams",
    "Flow",
    "GBPS",
    "Hpcc",
    "MSEC",
    "Network",
    "PowerTcp",
    "RdcnParams",
    "Receiver",
    "SEC",
    "Sender",
    "Simulator",
    "StaticWindow",
    "Swift",
    "ThetaPowerTcp",
    "Timely",
    "USEC",
    "build_dumbbell",
    "build_fattree",
    "build_rdcn",
    "build_topology",
    "get_topology",
    "topology_names",
]

"""Packet-level discrete-event network simulator.

This package is the substrate the paper runs on (the authors used NS3): an
event-driven model of hosts, switches, links, shared buffers, and the INT
telemetry PowerTCP consumes.  The public surface is re-exported here.
"""

from repro.sim.engine import (
    AUTO_CALENDAR_DEPTH,
    SCHEDULER_MODES,
    SCHEDULERS,
    CalendarQueue,
    Event,
    Simulator,
    engine_defaults,
)
from repro.sim._compiled import compiled_available, compiled_error
from repro.sim.packet import (
    ACK,
    CNP,
    DATA,
    GRANT,
    HopRecord,
    Packet,
    PacketPool,
    get_pool,
)
from repro.sim.buffer import SharedBuffer
from repro.sim.port import EcnConfig, EgressPort
from repro.sim.switch import Switch
from repro.sim.host import Host
from repro.sim.circuit import CircuitPort, CircuitSchedule

__all__ = [
    "ACK",
    "AUTO_CALENDAR_DEPTH",
    "CNP",
    "CalendarQueue",
    "CircuitPort",
    "CircuitSchedule",
    "DATA",
    "EcnConfig",
    "EgressPort",
    "Event",
    "GRANT",
    "Host",
    "HopRecord",
    "Packet",
    "PacketPool",
    "SCHEDULER_MODES",
    "SCHEDULERS",
    "SharedBuffer",
    "Simulator",
    "Switch",
    "compiled_available",
    "compiled_error",
    "engine_defaults",
    "get_pool",
]

"""End hosts: a NIC egress port plus transport endpoint dispatch.

A host's NIC is itself an :class:`~repro.sim.port.EgressPort` — flows
sharing a host serialize through it, which is exactly why the paper sets
the additive increase to ``HostBw * tau / N``: to avoid making the host
NIC the bottleneck.

Incoming packets are dispatched by flow id: the data receiver of flow *f*
lives on the destination host, while ACK/CNP/grant packets for *f* are
dispatched to the sender endpoint registered on the source host.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.sim.packet import Packet
from repro.sim.port import EgressPort


class Host:
    """A server with one NIC."""

    __slots__ = ("sim", "host_id", "name", "nic", "endpoints", "rx_packets", "default_handler")

    def __init__(self, sim, host_id: int, name: str = ""):
        self.sim = sim
        self.host_id = host_id
        self.name = name or f"host-{host_id}"
        self.nic: Optional[EgressPort] = None
        self.endpoints: Dict[int, object] = {}
        self.rx_packets = 0
        self.default_handler: Optional[Callable[[Packet], None]] = None

    def attach_nic(self, nic: EgressPort) -> EgressPort:
        """Install the NIC port (created by the topology builder)."""
        self.nic = nic
        return nic

    def register(self, flow_id: int, endpoint) -> None:
        """Register a transport endpoint for a flow terminating here.

        The endpoint must expose ``on_packet(packet)``.
        """
        self.endpoints[flow_id] = endpoint

    def unregister(self, flow_id: int) -> None:
        """Remove a completed flow's endpoint."""
        self.endpoints.pop(flow_id, None)

    def send(self, pkt: Packet) -> None:
        """Push a packet out through the NIC."""
        if self.nic is None:
            raise RuntimeError(f"{self.name} has no NIC attached")
        self.nic.enqueue(pkt)

    def receive(self, pkt: Packet) -> None:
        """Dispatch an arriving packet to the flow's endpoint."""
        self.rx_packets += 1
        endpoint = self.endpoints.get(pkt.flow_id)
        if endpoint is not None:
            endpoint.on_packet(pkt)
        elif self.default_handler is not None:
            self.default_handler(pkt)
        # Packets for unknown flows (e.g. late ACKs after teardown) are dropped.

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Host({self.name})"

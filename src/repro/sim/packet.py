"""Packets and in-band network telemetry (INT) records.

A single :class:`Packet` class covers all packet kinds the simulated
protocols need: data segments, cumulative ACKs, DCQCN congestion
notification packets (CNPs), and HOMA grants.  Using one class with
``__slots__`` keeps allocation cheap — millions of packets are created per
experiment.

INT follows the paper (§3.3, same header layout as HPCC): every traversed
egress port appends a :class:`HopRecord` with the values *at the time the
packet is scheduled for transmission* — queue length, timestamp, cumulative
transmitted bytes, and link bandwidth.  The receiver copies the records into
the ACK so the sender sees per-hop feedback one RTT later.
"""

from __future__ import annotations

from typing import List, Optional

# Packet kinds.
DATA = 0
ACK = 1
CNP = 2
GRANT = 3

KIND_NAMES = {DATA: "DATA", ACK: "ACK", CNP: "CNP", GRANT: "GRANT"}

# Wire-size bookkeeping: per-packet header overhead (Ethernet + IP + TCP-ish)
# and the size of control packets.
HEADER_BYTES = 48
ACK_BYTES = 64
CNP_BYTES = 64
GRANT_BYTES = 64
INT_HOP_BYTES = 8  # the paper appends 64-bit per-hop headers


class HopRecord:
    """Telemetry pushed by one egress port (paper Fig. nomenclature: ``ack.H[i]``).

    Attributes
    ----------
    qlen:
        egress queue length in bytes when the packet started transmission.
    ts_ns:
        switch timestamp (simulation clock) at that moment.
    tx_bytes:
        cumulative bytes this port has transmitted, *including* this packet.
    bandwidth_bps:
        the port's current line rate.
    port_id:
        stable identifier of the stamping port, so senders can track per-hop
        state across ACKs even if path lengths differ between flows.
    """

    __slots__ = ("qlen", "ts_ns", "tx_bytes", "bandwidth_bps", "port_id")

    def __init__(
        self,
        qlen: int,
        ts_ns: int,
        tx_bytes: int,
        bandwidth_bps: float,
        port_id: int,
    ):
        self.qlen = qlen
        self.ts_ns = ts_ns
        self.tx_bytes = tx_bytes
        self.bandwidth_bps = bandwidth_bps
        self.port_id = port_id

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"HopRecord(port={self.port_id}, qlen={self.qlen}B, "
            f"ts={self.ts_ns}ns, tx={self.tx_bytes}B, b={self.bandwidth_bps/1e9:g}Gbps)"
        )


class Packet:
    """One simulated packet.

    ``size`` is the wire size in bytes (payload + headers) and is what
    queues, links, and telemetry account.  ``seq``/``end_seq`` delimit the
    payload byte range for DATA; for ACK, ``ack_seq`` is the cumulative
    acknowledgment and ``acked_seq`` identifies the data segment that
    triggered the ACK (used by CC laws that look up per-segment state).
    """

    __slots__ = (
        "kind",
        "flow_id",
        "src",
        "dst",
        "seq",
        "end_seq",
        "size",
        "priority",
        "ecn_capable",
        "ecn_marked",
        "int_enabled",
        "int_hops",
        "ack_seq",
        "acked_seq",
        "ts_tx",
        "ts_echo",
        "grant_bytes",
        "sched_priority",
        "enqueue_ts",
    )

    def __init__(
        self,
        kind: int,
        flow_id: int,
        src: int,
        dst: int,
        seq: int = 0,
        end_seq: int = 0,
        size: int = 0,
        priority: int = 0,
    ):
        self.kind = kind
        self.flow_id = flow_id
        self.src = src
        self.dst = dst
        self.seq = seq
        self.end_seq = end_seq
        self.size = size
        self.priority = priority
        self.ecn_capable = False
        self.ecn_marked = False
        self.int_enabled = False
        self.int_hops: Optional[List[HopRecord]] = None
        self.ack_seq = 0
        self.acked_seq = 0
        self.ts_tx = 0
        self.ts_echo = 0
        self.grant_bytes = 0
        self.sched_priority = 0
        self.enqueue_ts = 0

    # ------------------------------------------------------------------
    # Constructors for the common packet kinds
    # ------------------------------------------------------------------
    @staticmethod
    def data(
        flow_id: int,
        src: int,
        dst: int,
        seq: int,
        payload: int,
        *,
        priority: int = 0,
        int_enabled: bool = False,
        ecn_capable: bool = False,
        ts_tx: int = 0,
    ) -> "Packet":
        """A data segment carrying ``payload`` bytes starting at ``seq``."""
        pkt = Packet(
            DATA,
            flow_id,
            src,
            dst,
            seq=seq,
            end_seq=seq + payload,
            size=payload + HEADER_BYTES,
            priority=priority,
        )
        pkt.ts_tx = ts_tx
        pkt.ecn_capable = ecn_capable
        if int_enabled:
            pkt.int_enabled = True
            pkt.int_hops = []
        return pkt

    @staticmethod
    def ack(
        data_pkt: "Packet",
        ack_seq: int,
        *,
        now: int,
        echo_int: bool = True,
    ) -> "Packet":
        """Cumulative ACK for ``data_pkt``, echoing its INT records and
        transmit timestamp back to the sender."""
        pkt = Packet(
            ACK,
            data_pkt.flow_id,
            src=data_pkt.dst,
            dst=data_pkt.src,
            size=ACK_BYTES
            + (
                INT_HOP_BYTES * len(data_pkt.int_hops)
                if (echo_int and data_pkt.int_hops)
                else 0
            ),
        )
        pkt.ack_seq = ack_seq
        pkt.acked_seq = data_pkt.seq
        pkt.ts_echo = data_pkt.ts_tx
        pkt.ts_tx = now
        pkt.ecn_marked = data_pkt.ecn_marked
        if echo_int and data_pkt.int_hops is not None:
            pkt.int_hops = data_pkt.int_hops
        return pkt

    @staticmethod
    def cnp(flow_id: int, src: int, dst: int) -> "Packet":
        """DCQCN congestion notification packet (receiver -> sender)."""
        return Packet(CNP, flow_id, src, dst, size=CNP_BYTES)

    @staticmethod
    def grant(
        flow_id: int, src: int, dst: int, grant_bytes: int, sched_priority: int
    ) -> "Packet":
        """HOMA grant authorizing transmission up to byte ``grant_bytes``.

        The grant itself transits at the highest priority (0);
        ``sched_priority`` is the rank the *granted data* should carry.
        """
        pkt = Packet(GRANT, flow_id, src, dst, size=GRANT_BYTES, priority=0)
        pkt.grant_bytes = grant_bytes
        pkt.sched_priority = sched_priority
        return pkt

    # ------------------------------------------------------------------
    @property
    def payload(self) -> int:
        """Payload bytes carried (zero for control packets)."""
        if self.kind == DATA:
            return self.end_seq - self.seq
        return 0

    def stamp_int(self, record: HopRecord) -> None:
        """Append one hop's telemetry (switch-side operation)."""
        if self.int_hops is None:
            self.int_hops = []
        self.int_hops.append(record)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = KIND_NAMES.get(self.kind, str(self.kind))
        return (
            f"Packet({kind}, flow={self.flow_id}, {self.src}->{self.dst}, "
            f"seq={self.seq}, size={self.size})"
        )


class PacketPool:
    """Per-simulator free lists for :class:`Packet`, :class:`HopRecord`,
    and INT hop lists.

    Millions of packets are created per experiment; recycling the shells
    instead of allocating fresh ones keeps the hot path allocation-free
    (and lets :class:`~repro.sim.engine.Simulator` pause the GC during
    ``run`` without growing the heap).  The constructors mirror the
    :class:`Packet` static constructors exactly — a pooled packet is
    field-for-field identical to a fresh one, so pooling cannot change
    simulation results.

    Ownership contract:

    * the transport endpoint that *consumes* a packet releases it — DATA
      at the receiver, ACK/CNP/GRANT at the sender (see
      ``transport/receiver.py`` and ``transport/sender.py``);
    * :meth:`release` recycles the shell only and detaches ``int_hops``
      (used when the hop list's ownership moved elsewhere, e.g. into the
      echoing ACK);
    * :meth:`release_with_hops` additionally recycles the hop records and
      the list itself — callers must guarantee nothing retains them.
      Congestion-control laws therefore must **copy** any INT values they
      need beyond ``on_ack`` (see :class:`repro.cc.base.AckFeedback`);
    * packets that die anywhere else (drops, unknown-flow arrivals) are
      simply left to the garbage collector — correctness never depends on
      a release happening.
    """

    __slots__ = ("_packets", "_hops", "_lists")

    def __init__(self) -> None:
        self._packets: List[Packet] = []
        self._hops: List[HopRecord] = []
        self._lists: List[list] = []

    # -- allocation ----------------------------------------------------
    def _blank(
        self,
        kind: int,
        flow_id: int,
        src: int,
        dst: int,
        seq: int,
        end_seq: int,
        size: int,
        priority: int,
    ) -> Packet:
        """A packet with every field reset, reusing a shell when possible."""
        free = self._packets
        if free:
            pkt = free.pop()
            pkt.kind = kind
            pkt.flow_id = flow_id
            pkt.src = src
            pkt.dst = dst
            pkt.seq = seq
            pkt.end_seq = end_seq
            pkt.size = size
            pkt.priority = priority
            pkt.ecn_capable = False
            pkt.ecn_marked = False
            pkt.int_enabled = False
            pkt.int_hops = None
            pkt.ack_seq = 0
            pkt.acked_seq = 0
            pkt.ts_tx = 0
            pkt.ts_echo = 0
            pkt.grant_bytes = 0
            pkt.sched_priority = 0
            pkt.enqueue_ts = 0
            return pkt
        return Packet(
            kind, flow_id, src, dst,
            seq=seq, end_seq=end_seq, size=size, priority=priority,
        )

    def data(
        self,
        flow_id: int,
        src: int,
        dst: int,
        seq: int,
        payload: int,
        *,
        priority: int = 0,
        int_enabled: bool = False,
        ecn_capable: bool = False,
        ts_tx: int = 0,
    ) -> Packet:
        """Pooled equivalent of :meth:`Packet.data`."""
        pkt = self._blank(
            DATA, flow_id, src, dst,
            seq, seq + payload, payload + HEADER_BYTES, priority,
        )
        pkt.ts_tx = ts_tx
        pkt.ecn_capable = ecn_capable
        if int_enabled:
            pkt.int_enabled = True
            lists = self._lists
            pkt.int_hops = lists.pop() if lists else []
        return pkt

    def ack(
        self,
        data_pkt: Packet,
        ack_seq: int,
        *,
        now: int,
        echo_int: bool = True,
    ) -> Packet:
        """Pooled equivalent of :meth:`Packet.ack`.

        With ``echo_int`` the hop list's ownership transfers from the data
        packet to the ACK (the records are shared by reference, exactly as
        in :meth:`Packet.ack`); release the data packet with
        :meth:`release`, not :meth:`release_with_hops`.
        """
        echo = echo_int and data_pkt.int_hops is not None
        pkt = self._blank(
            ACK, data_pkt.flow_id, data_pkt.dst, data_pkt.src,
            0, 0,
            ACK_BYTES + (INT_HOP_BYTES * len(data_pkt.int_hops) if echo else 0),
            0,
        )
        pkt.ack_seq = ack_seq
        pkt.acked_seq = data_pkt.seq
        pkt.ts_echo = data_pkt.ts_tx
        pkt.ts_tx = now
        pkt.ecn_marked = data_pkt.ecn_marked
        if echo:
            pkt.int_hops = data_pkt.int_hops
        return pkt

    def cnp(self, flow_id: int, src: int, dst: int) -> Packet:
        """Pooled equivalent of :meth:`Packet.cnp`."""
        return self._blank(CNP, flow_id, src, dst, 0, 0, CNP_BYTES, 0)

    def grant(
        self, flow_id: int, src: int, dst: int, grant_bytes: int, sched_priority: int
    ) -> Packet:
        """Pooled equivalent of :meth:`Packet.grant`."""
        pkt = self._blank(GRANT, flow_id, src, dst, 0, 0, GRANT_BYTES, 0)
        pkt.grant_bytes = grant_bytes
        pkt.sched_priority = sched_priority
        return pkt

    def hop(
        self,
        qlen: int,
        ts_ns: int,
        tx_bytes: int,
        bandwidth_bps: float,
        port_id: int,
    ) -> HopRecord:
        """Pooled equivalent of the :class:`HopRecord` constructor."""
        free = self._hops
        if free:
            rec = free.pop()
            rec.qlen = qlen
            rec.ts_ns = ts_ns
            rec.tx_bytes = tx_bytes
            rec.bandwidth_bps = bandwidth_bps
            rec.port_id = port_id
            return rec
        return HopRecord(qlen, ts_ns, tx_bytes, bandwidth_bps, port_id)

    def recycle_hop(self, rec: HopRecord) -> None:
        """Return one hop record to the free list without a carrier packet.

        Used by train truncation: records pre-allocated for packets that
        end up returned to the queue were never attached to anything.
        """
        self._hops.append(rec)

    # -- release -------------------------------------------------------
    def release(self, pkt: Packet) -> None:
        """Recycle the shell only; any hop list is detached, not recycled
        (its ownership moved elsewhere — e.g. into the echoing ACK)."""
        pkt.int_hops = None
        self._packets.append(pkt)

    def release_with_hops(self, pkt: Packet) -> None:
        """Recycle the shell *and* its hop records + list.

        Only valid when nothing else retains the records — the consuming
        endpoint's contract (CC laws copy INT scalars during ``on_ack``).
        """
        hops = pkt.int_hops
        if hops is not None:
            self._hops.extend(hops)
            hops.clear()
            self._lists.append(hops)
            pkt.int_hops = None
        self._packets.append(pkt)


def get_pool(sim) -> PacketPool:
    """The per-simulator packet pool, attached lazily to ``sim.pool``."""
    pool = sim.pool
    if pool is None:
        pool = sim.pool = PacketPool()
    return pool

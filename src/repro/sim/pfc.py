"""Priority Flow Control — hop-by-hop pausing for lossless fabrics.

The paper's deployment context is RDMA, which in production runs over
PFC-enabled (lossless) Ethernet: when a switch's shared buffer fills past
a high watermark it pauses its upstream neighbours; they resume when the
buffer drains below a low watermark.  The main experiments substitute
generously sized Dynamic-Thresholds buffers (drops are rare and go-back-N
recovers); this module provides the lossless alternative so experiments
can opt into it and so head-of-line-blocking effects can be studied.

Model granularity: pause/resume acts on whole upstream egress ports (the
coarse, class-less PFC of most testbeds).  The pause frame's propagation
is modeled with the link's delay.

Headroom matters, exactly as on real ASICs: the high watermark must leave
room for (i) the bytes in flight during one poll interval plus one pause-
frame propagation per upstream port, and (ii) Dynamic Thresholds' own
admission knee — with ``alpha = 1`` a single hot queue is cut off at
*half* the buffer, so watermarks above ~capacity/4 can still see DT drops
before the pause takes effect.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.sim.buffer import SharedBuffer
from repro.sim.engine import Simulator
from repro.sim.port import EgressPort
from repro.sim.switch import Switch


class PfcController:
    """Watermark-driven pause/resume of a switch's upstream ports.

    Parameters
    ----------
    switch:
        the congestion point whose shared buffer is being protected.
    upstream_ports:
        the egress ports of *neighbouring* nodes that feed this switch.
    high_watermark / low_watermark:
        byte thresholds on ``switch.buffer.used``; pause above high,
        resume below low (hysteresis avoids pause flapping).
    """

    def __init__(
        self,
        sim: Simulator,
        switch: Switch,
        upstream_ports: Sequence[EgressPort],
        *,
        high_watermark: int,
        low_watermark: int,
        poll_interval_ns: int = 1_000,
    ):
        if switch.buffer is None:
            raise ValueError("PFC requires a shared buffer on the switch")
        if not 0 <= low_watermark < high_watermark <= switch.buffer.capacity:
            raise ValueError(
                f"watermarks must satisfy 0 <= low < high <= capacity, got "
                f"{low_watermark}/{high_watermark}/{switch.buffer.capacity}"
            )
        self.sim = sim
        # PFC may pause upstream ports mid-train: turn on per-packet
        # train bookkeeping so a pause can truncate at the exact packet
        # boundary (off by default — it costs on the batched hot path).
        sim.pause_tracking = True
        self.switch = switch
        self.upstream_ports = list(upstream_ports)
        self.high_watermark = high_watermark
        self.low_watermark = low_watermark
        self.poll_interval_ns = poll_interval_ns
        self.paused = False
        self.pause_events = 0
        self.resume_events = 0
        self._running = False

    def start(self) -> "PfcController":
        """Begin monitoring the buffer."""
        if not self._running:
            self._running = True
            self.sim.after(self.poll_interval_ns, self._poll)
        return self

    def _poll(self) -> None:
        # Fires every poll interval for the whole run: keep it lean (the
        # engine's tuple fast path makes the reschedule allocation-free).
        sim = self.sim
        buffer = self.switch.buffer
        if sim.now >= buffer._next_release:
            # Train batching defers releases; flush so the watermark
            # comparison sees the true occupancy (one compare otherwise).
            buffer.release_due(sim.now)
        used = buffer.used
        if not self.paused and used >= self.high_watermark:
            self.paused = True
            self.pause_events += 1
            for port in self.upstream_ports:
                # The pause frame takes one propagation delay to act.
                sim.after(port.prop_delay_ns, port.pause)
        elif self.paused and used <= self.low_watermark:
            self.paused = False
            self.resume_events += 1
            for port in self.upstream_ports:
                sim.after(port.prop_delay_ns, port.resume)
        sim.after(self.poll_interval_ns, self._poll)


def enable_pfc(
    net,
    *,
    high_fraction: float = 0.7,
    low_fraction: float = 0.5,
    poll_interval_ns: int = 1_000,
) -> List[PfcController]:
    """Wire PFC on every switch of a built network.

    Upstream ports are discovered from the wiring: any egress port whose
    peer is the switch counts as an upstream source (host NICs included —
    PFC pausing the server NIC is exactly the head-of-line-blocking
    hazard the literature warns about).
    """
    # Discover feeders: all ports in the network (switch egress + host NICs).
    all_ports: List[EgressPort] = [h.nic for h in net.hosts if h.nic is not None]
    for switch in net.switches:
        all_ports.extend(switch.ports)

    controllers = []
    for switch in net.switches:
        if switch.buffer is None:
            continue
        upstream = [port for port in all_ports if port.peer is switch]
        if not upstream:
            continue
        controller = PfcController(
            net.sim,
            switch,
            upstream,
            high_watermark=int(high_fraction * switch.buffer.capacity),
            low_watermark=int(low_fraction * switch.buffer.capacity),
            poll_interval_ns=poll_interval_ns,
        ).start()
        controllers.append(controller)
    net.extras["pfc_controllers"] = controllers
    return controllers

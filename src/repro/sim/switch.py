"""Output-queued switch with pluggable path selection.

A switch owns a set of :class:`~repro.sim.port.EgressPort` objects sharing
one :class:`~repro.sim.buffer.SharedBuffer` (Dynamic Thresholds).  Routing
is a precomputed table: destination host id -> tuple of candidate egress
ports.  When several candidates exist (fat-tree uplinks) the pick belongs
to the switch's routing *policy* (:mod:`repro.routing`): flow-level ECMP
by default, or any registered policy (WRR, least-loaded, spray) passed as
``policy=``.

The default — parameterless ECMP, ``policy=None`` — is special-cased the
same way :class:`repro.sim.port.EgressPort` specializes its hot path:
``__new__`` swaps construction to :class:`_EcmpSwitch`, whose
``route_for``/``receive`` inline the exact historical hash arithmetic
with no policy indirection, so the 26 committed figure series are
byte-identical by construction.  Subclasses (e.g. the RDCN ToR) are
never swapped.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.sim.buffer import SharedBuffer
from repro.sim.packet import Packet
from repro.sim.port import EgressPort

_HASH_MIX = 0x9E3779B1  # Fibonacci hashing constant; cheap deterministic mix


def ecmp_index(flow_id: int, switch_id: int, n: int, salt: int = 0) -> int:
    """The flow-level ECMP pick: deterministic per (flow, switch, salt).

    With ``salt=0`` this is bit-for-bit the arithmetic the fast path
    inlines (and every committed figure series was produced with) —
    :mod:`repro.routing.ecmp` wraps it as the registered policy.
    """
    return ((((flow_id ^ switch_id) + salt) * _HASH_MIX) & 0xFFFFFFFF) % n


class RoutingError(KeyError):
    """A switch has no route for a packet's destination.

    Subclasses ``KeyError`` so pre-existing ``except KeyError`` handlers
    keep working, but names the switch, the destination, and the known
    routes instead of the bare ``KeyError(dst)`` that used to escape
    ``Switch.receive``.
    """

    def __init__(self, switch_name: str, dst: int, known: Sequence[int]):
        super().__init__(dst)
        self.switch_name = switch_name
        self.dst = dst
        self.known_destinations = tuple(known)

    def __str__(self) -> str:
        known = ", ".join(map(str, self.known_destinations)) or "(none)"
        return (
            f"switch {self.switch_name!r} has no route for destination "
            f"{self.dst} (known destinations: {known})"
        )


class Switch:
    """A store-and-forward switch node."""

    __slots__ = (
        "sim",
        "switch_id",
        "name",
        "buffer",
        "ports",
        "routes",
        "_single",
        "rx_packets",
        "policy",
    )

    def __new__(cls, sim, *args, **kwargs):
        # Class-swap specialization, mirroring EgressPort.__new__: the
        # overwhelmingly common configuration (no policy object = default
        # ECMP) gets a subclass whose route_for/receive inline the seed-
        # exact hash with no policy branch.  Subclasses (RdcnToR) are
        # never swapped; set_policy() re-swaps after construction.
        policy = kwargs.get("policy") if len(args) < 4 else args[3]
        if cls is Switch and policy is None:
            return object.__new__(_EcmpSwitch)
        return object.__new__(cls)

    def __init__(
        self,
        sim,
        switch_id: int,
        name: str = "",
        buffer: Optional[SharedBuffer] = None,
        policy=None,
    ):
        self.sim = sim
        self.switch_id = switch_id
        self.name = name or f"switch-{switch_id}"
        self.buffer = buffer
        self.ports: list[EgressPort] = []
        self.routes: Dict[int, Tuple[EgressPort, ...]] = {}
        #: dst -> the sole egress port, for single-candidate rows only
        #: (maintained by :meth:`set_route`): the hot receive path does
        #: one dict probe instead of row lookup + length dispatch.  A
        #: single-candidate row has no selection to make, so this can
        #: never change a pick.
        self._single: Dict[int, EgressPort] = {}
        self.rx_packets = 0
        self.policy = policy
        if policy is not None:
            policy.attach(self)

    def add_port(self, port: EgressPort) -> EgressPort:
        """Register an egress port (its shared buffer is wired here)."""
        if self.buffer is not None and port.buffer is None:
            port.buffer = self.buffer
        self.ports.append(port)
        return port

    def set_route(self, dst: int, ports: Sequence[EgressPort]) -> None:
        """Set the candidate egress ports for destination host ``dst``."""
        if not ports:
            raise ValueError(f"no ports given for destination {dst}")
        row = tuple(ports)
        self.routes[dst] = row
        if len(row) == 1:
            self._single[dst] = row[0]
        else:
            self._single.pop(dst, None)

    def set_policy(self, policy) -> None:
        """Per-switch policy override after construction.

        ``None`` restores the default ECMP fast path.  The swap between
        :class:`Switch` and :class:`_EcmpSwitch` is safe because their
        slot layouts are identical (``_EcmpSwitch.__slots__ == ()``);
        subclasses keep their own class either way.
        """
        if policy is None:
            self.policy = None
            if type(self) is Switch:
                self.__class__ = _EcmpSwitch
            return
        if type(self) is _EcmpSwitch:
            self.__class__ = Switch
        policy.attach(self)
        self.policy = policy

    def candidates(self, dst: int) -> Tuple[EgressPort, ...]:
        """The route-table row for ``dst``; :class:`RoutingError` if absent."""
        try:
            return self.routes[dst]
        except KeyError:
            raise RoutingError(self.name, dst, sorted(self.routes)) from None

    def route_for(self, pkt: Packet) -> EgressPort:
        """Path selection: the policy's pick among the candidates."""
        options = self.candidates(pkt.dst)
        if len(options) == 1:
            return options[0]
        policy = self.policy
        if policy is None:
            # Subclasses built without a policy (RDCN ToR) fall back to
            # the default flow-level ECMP arithmetic.
            index = ((pkt.flow_id ^ self.switch_id) * _HASH_MIX) & 0xFFFFFFFF
            return options[index % len(options)]
        return policy.select(pkt, options)

    def receive(self, pkt: Packet) -> None:
        """Forward an arriving packet to the routed egress port."""
        self.rx_packets += 1
        self.route_for(pkt).enqueue(pkt)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Switch({self.name}, ports={len(self.ports)})"


class _EcmpSwitch(Switch):
    """Class-swap fast path: default flow-level ECMP, no policy branch.

    ``Switch.__new__`` swaps construction to this class whenever no
    policy object is given.  ``route_for``/``receive`` are the historical
    seed-exact bodies — the ECMP pick is inlined in ``receive`` (same
    arithmetic as ``route_for``) to avoid the extra call per packet.
    """

    __slots__ = ()

    def route_for(self, pkt: Packet) -> EgressPort:
        """ECMP selection: deterministic per (flow, switch)."""
        options = self.candidates(pkt.dst)
        if len(options) == 1:
            return options[0]
        index = ((pkt.flow_id ^ self.switch_id) * _HASH_MIX) & 0xFFFFFFFF
        return options[index % len(options)]

    def receive(self, pkt: Packet) -> None:
        """Forward an arriving packet to the ECMP-routed egress port."""
        self.rx_packets += 1
        # Single-candidate destinations (ToR downlinks, dumbbell hops —
        # the bulk of every macro workload) resolve in one dict probe;
        # multi-candidate rows fall through to the inlined ECMP pick.
        port = self._single.get(pkt.dst)
        if port is not None:
            port.enqueue(pkt)
            return
        try:
            options = self.routes[pkt.dst]
        except KeyError:
            raise RoutingError(self.name, pkt.dst, sorted(self.routes)) from None
        if len(options) == 1:
            options[0].enqueue(pkt)
        else:
            index = ((pkt.flow_id ^ self.switch_id) * _HASH_MIX) & 0xFFFFFFFF
            options[index % len(options)].enqueue(pkt)

"""Output-queued switch with ECMP forwarding.

A switch owns a set of :class:`~repro.sim.port.EgressPort` objects sharing
one :class:`~repro.sim.buffer.SharedBuffer` (Dynamic Thresholds).  Routing
is a precomputed table: destination host id -> tuple of candidate egress
ports.  When several candidates exist (fat-tree uplinks) the port is picked
by a per-flow hash, i.e. flow-level ECMP: all packets of one flow take one
path, so INT hop indices are stable across the flow's lifetime.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.sim.buffer import SharedBuffer
from repro.sim.packet import Packet
from repro.sim.port import EgressPort

_HASH_MIX = 0x9E3779B1  # Fibonacci hashing constant; cheap deterministic mix


class Switch:
    """A store-and-forward switch node."""

    __slots__ = ("sim", "switch_id", "name", "buffer", "ports", "routes", "rx_packets")

    def __init__(
        self,
        sim,
        switch_id: int,
        name: str = "",
        buffer: Optional[SharedBuffer] = None,
    ):
        self.sim = sim
        self.switch_id = switch_id
        self.name = name or f"switch-{switch_id}"
        self.buffer = buffer
        self.ports: list[EgressPort] = []
        self.routes: Dict[int, Tuple[EgressPort, ...]] = {}
        self.rx_packets = 0

    def add_port(self, port: EgressPort) -> EgressPort:
        """Register an egress port (its shared buffer is wired here)."""
        if self.buffer is not None and port.buffer is None:
            port.buffer = self.buffer
        self.ports.append(port)
        return port

    def set_route(self, dst: int, ports: Sequence[EgressPort]) -> None:
        """Set the candidate egress ports for destination host ``dst``."""
        if not ports:
            raise ValueError(f"no ports given for destination {dst}")
        self.routes[dst] = tuple(ports)

    def route_for(self, pkt: Packet) -> EgressPort:
        """ECMP selection: deterministic per (flow, switch)."""
        options = self.routes[pkt.dst]
        if len(options) == 1:
            return options[0]
        index = ((pkt.flow_id ^ self.switch_id) * _HASH_MIX) & 0xFFFFFFFF
        return options[index % len(options)]

    def receive(self, pkt: Packet) -> None:
        """Forward an arriving packet to the routed egress port.

        Fires once per packet per switch; the ECMP pick is inlined from
        :meth:`route_for` (same arithmetic) to avoid the extra call.
        """
        self.rx_packets += 1
        options = self.routes[pkt.dst]
        if len(options) == 1:
            options[0].enqueue(pkt)
        else:
            index = ((pkt.flow_id ^ self.switch_id) * _HASH_MIX) & 0xFFFFFFFF
            options[index % len(options)].enqueue(pkt)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Switch({self.name}, ports={len(self.ports)})"

"""Discrete-event simulation engine.

A single binary heap of ``(time, seq, fn, args)`` tuples.  The sequence
number breaks ties in insertion order, which makes runs fully
deterministic: two events scheduled for the same nanosecond always fire
in the order they were scheduled.  Because entries are plain tuples,
heap sifting compares at C speed and the ~95 % of events that are never
cancelled (tx completions, packet deliveries, probe ticks) cost **zero
object allocations** — this is the engine's fast path (:meth:`Simulator.at`
/ :meth:`Simulator.after`), and it returns no handle.

Cancellable events — retransmission timers, pacing timers, DCQCN's rate
timers — go through the explicit :meth:`Simulator.at_cancellable` /
:meth:`Simulator.after_cancellable` API, which allocates an :class:`Event`
handle.  Cancellation only marks the handle; its heap entry is skipped
lazily when popped, keeping both operations O(log n) / O(1).  The live
count (:attr:`Simulator.pending`) is maintained eagerly, so diagnostics
never over-report cancelled entries awaiting compaction.

``Simulator.run`` optionally pauses the cyclic garbage collector for the
duration of the loop (on by default): the hot path allocates almost
nothing, so GC passes are pure overhead mid-run.  Pass ``pause_gc=False``
to the constructor to opt out.
"""

from __future__ import annotations

import gc
import heapq
from itertools import count
from typing import Any, Callable, Optional

#: sentinel horizon for ``run(until=None)`` — far beyond any nanosecond
#: clock a simulation can reach (≈292 years)
_FOREVER = 1 << 63


class Event:
    """A cancellable scheduled callback.

    Returned only by :meth:`Simulator.at_cancellable` /
    :meth:`Simulator.after_cancellable`; the non-cancellable fast path
    (:meth:`Simulator.at` / ``after``) never allocates one.  Call
    :meth:`cancel` to prevent the callback from firing (e.g.
    retransmission timers superseded by an ACK).
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "_fired", "_sim")

    def __init__(
        self,
        sim: "Simulator",
        time: int,
        seq: int,
        fn: Callable[..., Any],
        args: tuple,
    ):
        self._sim = sim
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self._fired = False

    def cancel(self) -> None:
        """Mark the event so the engine skips it when its time comes.

        Idempotent; cancelling an event that already fired is a no-op.
        """
        if not self.cancelled and not self._fired:
            self.cancelled = True
            self._sim._live -= 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (
            "cancelled" if self.cancelled
            else "fired" if self._fired
            else "pending"
        )
        return f"Event(t={self.time}, fn={getattr(self.fn, '__name__', self.fn)}, {state})"


class Simulator:
    """Event loop with an integer-nanosecond clock.

    Typical usage::

        sim = Simulator()
        sim.after(1_000, port.enqueue, packet)
        timer = sim.after_cancellable(rto_ns, sender.on_rto)
        sim.run(until=10 * SEC)
        timer.cancel()
    """

    __slots__ = (
        "now",
        "_heap",
        "_seq",
        "_events_processed",
        "_live",
        "pause_gc",
        "pool",
        "__weakref__",
    )

    def __init__(self, *, pause_gc: bool = True) -> None:
        self.now: int = 0
        #: entries are (time, seq, fn, args) — fn is None for cancellable
        #: events, whose Event handle then rides in the args slot
        self._heap: list = []
        self._seq = count()
        self._events_processed = 0
        self._live = 0
        #: pause the cyclic GC while :meth:`run` executes (re-enabled on
        #: return); the event loop allocates almost nothing, so collector
        #: passes mid-run are pure overhead
        self.pause_gc = pause_gc
        #: lazily attached per-simulator :class:`repro.sim.packet.PacketPool`
        #: (opaque to the engine; see ``repro.sim.packet.get_pool``)
        self.pool: Optional[object] = None

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def at(self, time_ns: int, fn: Callable[..., Any], *args: Any) -> None:
        """Schedule ``fn(*args)`` at absolute time ``time_ns`` (fast path).

        Allocation-free apart from the heap tuple; returns no handle.
        Use :meth:`at_cancellable` when the caller may need to cancel.
        """
        if time_ns < self.now:
            raise ValueError(
                f"cannot schedule in the past: {time_ns} < now={self.now}"
            )
        heapq.heappush(self._heap, (time_ns, next(self._seq), fn, args))
        self._live += 1

    def after(self, delay_ns: int, fn: Callable[..., Any], *args: Any) -> None:
        """Schedule ``fn(*args)`` ``delay_ns`` nanoseconds from now (fast path)."""
        if delay_ns < 0:
            raise ValueError(f"negative delay: {delay_ns}")
        heapq.heappush(
            self._heap, (self.now + delay_ns, next(self._seq), fn, args)
        )
        self._live += 1

    def at_cancellable(
        self, time_ns: int, fn: Callable[..., Any], *args: Any
    ) -> Event:
        """Schedule ``fn(*args)`` at ``time_ns``; returns a cancellable handle.

        This is the timer API: retransmission/pacing/rate timers that an
        ACK may supersede.  Costs one :class:`Event` allocation.
        """
        if time_ns < self.now:
            raise ValueError(
                f"cannot schedule in the past: {time_ns} < now={self.now}"
            )
        event = Event(self, time_ns, next(self._seq), fn, args)
        heapq.heappush(self._heap, (time_ns, event.seq, None, event))
        self._live += 1
        return event

    def after_cancellable(
        self, delay_ns: int, fn: Callable[..., Any], *args: Any
    ) -> Event:
        """Schedule ``fn(*args)`` after ``delay_ns``; returns a cancellable handle."""
        if delay_ns < 0:
            raise ValueError(f"negative delay: {delay_ns}")
        return self.at_cancellable(self.now + delay_ns, fn, *args)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Process events in order.

        Stops when the heap is empty, when the next event is past ``until``
        (the clock is then advanced to ``until``), or after ``max_events``
        events.  When the ``max_events`` budget trips first the clock is
        *not* advanced to ``until`` — live events at or before the horizon
        remain pending, so a later ``run`` resumes without time-travel.
        Cancelled events are compacted without consuming the budget.
        Returns the number of events processed by this call.
        """
        heap = self._heap
        pop = heapq.heappop
        push = heapq.heappush
        horizon = _FOREVER if until is None else until
        limit = -1 if max_events is None else max_events
        processed = 0
        budget_hit = False
        pause = self.pause_gc and gc.isenabled()
        if pause:
            gc.disable()
        try:
            # Pop-first loop: one heappop per event instead of a peek +
            # pop pair.  An entry past the horizon or budget is re-pushed
            # with its original sequence number, so ordering is unaffected
            # (and it happens at most once per run call).
            while heap:
                time_, seq, fn, args = pop(heap)
                if fn is None:
                    event = args
                    if event.cancelled:
                        continue
                    if time_ > horizon:
                        push(heap, (time_, seq, fn, args))
                        break
                    if processed == limit:
                        push(heap, (time_, seq, fn, args))
                        budget_hit = True
                        break
                    event._fired = True
                    self.now = time_
                    processed += 1
                    event.fn(*event.args)
                else:
                    if time_ > horizon:
                        push(heap, (time_, seq, fn, args))
                        break
                    if processed == limit:
                        push(heap, (time_, seq, fn, args))
                        budget_hit = True
                        break
                    self.now = time_
                    processed += 1
                    fn(*args)
        finally:
            if pause:
                gc.enable()
            self._events_processed += processed
            self._live -= processed
        if until is not None and not budget_hit and self.now < until:
            self.now = until
        return processed

    def step(self) -> bool:
        """Process exactly one pending event.  Returns False if none left."""
        heap = self._heap
        while heap:
            time_, _seq, fn, args = heapq.heappop(heap)
            if fn is None:
                event = args
                if event.cancelled:
                    continue
                event._fired = True
                fn = event.fn
                args = event.args
            self.now = time_
            self._events_processed += 1
            self._live -= 1
            fn(*args)
            return True
        return False

    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Number of *live* scheduled events (cancelled entries excluded)."""
        return self._live

    @property
    def heap_entries(self) -> int:
        """Raw heap length, including cancelled entries awaiting lazy
        compaction (diagnostics only — see :attr:`pending` for the live
        count)."""
        return len(self._heap)

    @property
    def events_processed(self) -> int:
        """Total events executed since construction."""
        return self._events_processed

    def peek_time(self) -> Optional[int]:
        """Time of the next live event, or None if none is scheduled.

        Physically removes any cancelled prefix (the same lazy compaction
        the run loop performs); the live count is unaffected because
        cancellation already discounted those entries.
        """
        heap = self._heap
        while heap:
            head = heap[0]
            if head[2] is None and head[3].cancelled:
                heapq.heappop(heap)
                continue
            return head[0]
        return None

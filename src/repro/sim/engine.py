"""Discrete-event simulation engine with pluggable event schedulers.

Events are ``(time, seq, fn, args)`` tuples.  The sequence number breaks
ties in insertion order, which makes runs fully deterministic: two events
scheduled for the same nanosecond always fire in the order they were
scheduled.  Because entries are plain tuples, ordering compares at C
speed and the ~95 % of events that are never cancelled (tx completions,
packet deliveries, probe ticks) cost **zero object allocations** — this
is the engine's fast path (:meth:`Simulator.at` / :meth:`Simulator.after`),
and it returns no handle.

Three schedulers store those entries (``Simulator(scheduler=...)``),
plus two selection modes:

* ``"heap"`` (default) — a single binary heap drained by ``heapq``.  The
  run loop and the ports' inlined pushes go straight at the raw list, so
  the default path is exactly the PR-3 hot path.
* ``"calendar"`` — a :class:`CalendarQueue`: a two-level calendar with
  O(1) appends into fixed-width time buckets and one C-speed ``sort``
  per bucket on activation.  It reproduces the heap's ``(time, seq)``
  order *exactly* (asserted by the determinism suite), and targets very
  deep pending sets (beyond roughly :data:`AUTO_CALENDAR_DEPTH` pending
  events) where heap sift depth grows with log(pending).  See
  ``benchmarks/perf/test_scheduler_microbench.py`` for the measured
  crossover.
* ``"compiled"`` — the same binary heap, drained by the optional C
  extension (``repro._ckernel.corekernel`` via the gated loader
  :mod:`repro.sim._compiled`).  The drain loop operates on the *same*
  ``_heap`` list the ports' inlined pushes target, and ``(time, seq)``
  is a total order, so the pop sequence — and therefore every
  simulation result — is byte-identical to the pure-Python heap
  (``docs/INVARIANTS.md#compiled-parity``).  Raises at construction
  when the extension is not built.
* ``"best"`` — resolves to ``"compiled"`` when the extension loaded,
  else falls back to ``"heap"``.  The right default for perf-sensitive
  callers that must still run on boxes without a C compiler.
* ``"auto"`` — resolves to ``"heap"`` or ``"calendar"`` at the first
  :meth:`Simulator.run` call, from the live pending depth against
  :data:`AUTO_CALENDAR_DEPTH` (the documented calendar crossover).
  Shallow workloads keep the heap; only genuinely deep pending sets pay
  the calendar's activation sorts.

Cancellable events — retransmission timers, pacing timers, DCQCN's rate
timers — go through the explicit :meth:`Simulator.at_cancellable` /
:meth:`Simulator.after_cancellable` API, which allocates an :class:`Event`
handle.  Cancellation only marks the handle; its stored entry is skipped
lazily when popped, keeping both operations O(log n) / O(1).  The live
count (:attr:`Simulator.pending`) is maintained eagerly, so diagnostics
never over-report cancelled entries awaiting compaction.

``Simulator.run`` optionally pauses the cyclic garbage collector for the
duration of the loop (on by default): the hot path allocates almost
nothing, so GC passes are pure overhead mid-run.  Pass ``pause_gc=False``
to the constructor to opt out.

Process-wide defaults for the scheduler and the ports' packet-train
batching limit can be set temporarily with :func:`engine_defaults`, so
benchmarks and tests can flip engine configurations without threading
parameters through every experiment constructor.
"""

from __future__ import annotations

import gc
import heapq
from contextlib import contextmanager
from itertools import count
from typing import Any, Callable, Optional

#: sentinel horizon for ``run(until=None)`` — far beyond any nanosecond
#: clock a simulation can reach (≈292 years)
_FOREVER = 1 << 63

#: concrete scheduler names a ``Simulator`` can resolve to
SCHEDULERS = ("heap", "calendar", "compiled")

#: everything ``Simulator(scheduler=...)`` accepts: concrete schedulers
#: plus the selection modes ("best" -> compiled-when-available, "auto"
#: -> heap/calendar by pending depth at first run)
SCHEDULER_MODES = SCHEDULERS + ("best", "auto")

#: pending-depth crossover for ``scheduler="auto"``: below this many
#: live events the binary heap wins (sift depth is shallow and pushes
#: are one C call); at or above it the calendar queue's O(1) bucket
#: appends beat log(pending) sifts.  Measured by
#: ``benchmarks/perf/test_scheduler_microbench.py`` (crossover ~64k on
#: the hold-model churn); chosen conservatively so shallow macro
#: workloads (incast included) never migrate.
AUTO_CALENDAR_DEPTH = 65536

#: process-wide defaults picked up by ``Simulator()`` when the
#: corresponding constructor argument is omitted (see
#: :func:`engine_defaults`)
_ENGINE_DEFAULTS = {"scheduler": "heap", "tx_batch_limit": 1}


@contextmanager
def engine_defaults(
    *, scheduler: Optional[str] = None, tx_batch_limit: Optional[int] = None
):
    """Temporarily override the process-wide engine defaults.

    Every ``Simulator()`` constructed inside the ``with`` block picks up
    the overridden ``scheduler`` / ``tx_batch_limit`` unless the caller
    passes them explicitly.  This is how the perf suite and the
    determinism tests flip engine configurations for scenarios that
    construct their own simulators internally.  The previous defaults are
    restored on exit (also on exceptions); nesting composes.
    """
    previous = dict(_ENGINE_DEFAULTS)
    if scheduler is not None:
        if scheduler not in SCHEDULER_MODES:
            raise ValueError(
                f"unknown scheduler {scheduler!r}; available: {SCHEDULER_MODES}"
            )
        _ENGINE_DEFAULTS["scheduler"] = scheduler
    if tx_batch_limit is not None:
        if tx_batch_limit < 1:
            raise ValueError(f"tx_batch_limit must be >= 1, got {tx_batch_limit}")
        _ENGINE_DEFAULTS["tx_batch_limit"] = int(tx_batch_limit)
    try:
        yield
    finally:
        _ENGINE_DEFAULTS.update(previous)


class CalendarQueue:
    """Calendar-queue event store preserving exact ``(time, seq)`` order.

    A two-level structure: entries land in fixed-width time buckets via
    an O(1) ``list.append`` keyed by ``time // width_ns``; a small heap
    of active bucket epochs finds the next bucket, which is sorted once
    (C-speed Timsort) when activated and then drained by index.  Entries
    that arrive for the *currently draining* (or an earlier) epoch go to
    a side heap that is merged entry-by-entry during :meth:`pop`, so the
    global ``(time, seq)`` order is identical to a binary heap's — the
    scheduler swap can never change simulation results.

    Compared to one big heap, pushes touch O(1) list memory instead of
    sifting log(pending) tuples, which is the win on very deep pending
    sets; the cost is the per-bucket activation sort and the epoch heap
    (tiny: one entry per distinct non-empty bucket).
    """

    __slots__ = (
        "width_ns",
        "_buckets",
        "_epochs",
        "_cur_epoch",
        "_cur",
        "_cur_idx",
        "_side",
        "_count",
    )

    def __init__(self, width_ns: int = 4096):
        if width_ns <= 0:
            raise ValueError(f"bucket width must be positive, got {width_ns}")
        self.width_ns = width_ns
        self._buckets = {}  # epoch -> unsorted list of entries
        self._epochs: list = []  # heap of not-yet-activated epochs
        self._cur_epoch = -1
        self._cur: list = []  # activated (sorted) bucket, drained by index
        self._cur_idx = 0
        self._side: list = []  # heap: entries at or before the current epoch
        self._count = 0

    def push(self, entry) -> None:
        """Store one ``(time, seq, fn, args)`` entry."""
        epoch = entry[0] // self.width_ns
        if epoch <= self._cur_epoch:
            heapq.heappush(self._side, entry)
        else:
            bucket = self._buckets.get(epoch)
            if bucket is None:
                self._buckets[epoch] = [entry]
                heapq.heappush(self._epochs, epoch)
            else:
                bucket.append(entry)
        self._count += 1

    def pop(self):
        """Remove and return the next entry, or None when empty."""
        while True:
            cur = self._cur
            idx = self._cur_idx
            side = self._side
            if idx < len(cur):
                entry = cur[idx]
                if side and side[0] < entry:
                    self._count -= 1
                    return heapq.heappop(side)
                idx += 1
                if idx == len(cur):  # bucket drained: drop the refs early
                    self._cur = []
                    self._cur_idx = 0
                else:
                    self._cur_idx = idx
                self._count -= 1
                return entry
            if side:
                # Entries at or before the current epoch always precede
                # anything in a later bucket (time < (epoch+1) * width).
                self._count -= 1
                return heapq.heappop(side)
            if not self._epochs:
                return None
            epoch = heapq.heappop(self._epochs)
            self._cur = self._buckets.pop(epoch)
            self._cur.sort()
            self._cur_idx = 0
            self._cur_epoch = epoch

    def peek(self):
        """The next entry without removing it (None when empty).

        Implemented as pop + re-push: the re-pushed entry keeps its
        sequence number, so ordering is unaffected.
        """
        entry = self.pop()
        if entry is not None:
            self.push(entry)
        return entry

    def remove(self, entry) -> None:
        """Remove one specific scheduled entry (raises ValueError if absent).

        Rare path — PFC train truncation un-schedules the deliveries of
        packets returned to the queue.  The entry may sit in a future
        bucket, the active run, or the side heap; cost is O(size of that
        store).  An emptied future bucket is left in place (its epoch
        stays in the heap); :meth:`pop` activates it, finds it drained,
        and moves on.
        """
        bucket = self._buckets.get(entry[0] // self.width_ns)
        if bucket is not None:
            try:
                bucket.remove(entry)
            except ValueError:
                pass
            else:
                self._count -= 1
                return
        cur = self._cur
        for i in range(self._cur_idx, len(cur)):
            if cur[i] == entry:
                del cur[i]
                self._count -= 1
                return
        self._side.remove(entry)  # ValueError when truly absent
        heapq.heapify(self._side)
        self._count -= 1

    def __len__(self) -> int:
        return self._count


class Event:
    """A cancellable scheduled callback.

    Returned only by :meth:`Simulator.at_cancellable` /
    :meth:`Simulator.after_cancellable`; the non-cancellable fast path
    (:meth:`Simulator.at` / ``after``) never allocates one.  Call
    :meth:`cancel` to prevent the callback from firing (e.g.
    retransmission timers superseded by an ACK).
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "_fired", "_sim")

    def __init__(
        self,
        sim: "Simulator",
        time: int,
        seq: int,
        fn: Callable[..., Any],
        args: tuple,
    ):
        self._sim = sim
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self._fired = False

    def cancel(self) -> None:
        """Mark the event so the engine skips it when its time comes.

        Idempotent; cancelling an event that already fired is a no-op.
        """
        if not self.cancelled and not self._fired:
            self.cancelled = True
            self._sim._live -= 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (
            "cancelled" if self.cancelled
            else "fired" if self._fired
            else "pending"
        )
        return f"Event(t={self.time}, fn={getattr(self.fn, '__name__', self.fn)}, {state})"


class Simulator:
    """Event loop with an integer-nanosecond clock.

    Typical usage::

        sim = Simulator()
        sim.after(1_000, port.enqueue, packet)
        timer = sim.after_cancellable(rto_ns, sender.on_rto)
        sim.run(until=10 * SEC)
        timer.cancel()
    """

    __slots__ = (
        "now",
        "_heap",
        "_seq",
        "_events_processed",
        "_live",
        "pause_gc",
        "pool",
        "scheduler",
        "_sched",
        "_drain",
        "_auto_pending",
        "tx_batch_limit",
        "events_coalesced",
        "pause_tracking",
        "__weakref__",
    )

    def __init__(
        self,
        *,
        pause_gc: bool = True,
        scheduler: Optional[str] = None,
        tx_batch_limit: Optional[int] = None,
    ) -> None:
        if scheduler is None:
            scheduler = _ENGINE_DEFAULTS["scheduler"]
        if scheduler not in SCHEDULER_MODES:
            raise ValueError(
                f"unknown scheduler {scheduler!r}; available: {SCHEDULER_MODES}"
            )
        if tx_batch_limit is None:
            tx_batch_limit = _ENGINE_DEFAULTS["tx_batch_limit"]
        if tx_batch_limit < 1:
            raise ValueError(f"tx_batch_limit must be >= 1, got {tx_batch_limit}")
        self.now: int = 0
        #: entries are (time, seq, fn, args) — fn is None for cancellable
        #: events, whose Event handle then rides in the args slot
        self._heap: list = []
        self._seq = count()
        self._events_processed = 0
        self._live = 0
        #: pause the cyclic GC while :meth:`run` executes (re-enabled on
        #: return); the event loop allocates almost nothing, so collector
        #: passes mid-run are pure overhead
        self.pause_gc = pause_gc
        #: lazily attached per-simulator :class:`repro.sim.packet.PacketPool`
        #: (opaque to the engine; see ``repro.sim.packet.get_pool``)
        self.pool: Optional[object] = None
        #: compiled drain loop (corekernel.drain) when the compiled
        #: engine is active, else None
        self._drain = None
        #: "auto" mode not yet resolved — the first :meth:`run` picks
        #: heap vs calendar from the live pending depth
        self._auto_pending = False
        if scheduler == "best":
            from repro.sim._compiled import compiled_available

            scheduler = "compiled" if compiled_available() else "heap"
        if scheduler == "compiled":
            from repro.sim._compiled import compiled_error, load_compiled

            module = load_compiled()
            if module is None:
                raise RuntimeError(
                    "scheduler='compiled' requested but the compiled event "
                    f"core is unavailable ({compiled_error()}); build it "
                    "with 'python setup.py build_ext --inplace' or use "
                    "scheduler='best' for automatic fallback"
                )
            self._drain = module.drain
        elif scheduler == "auto":
            self._auto_pending = True
        #: name of the active event scheduler ("heap", "calendar", or
        #: "compiled"; "auto" until the first run resolves it)
        self.scheduler = scheduler
        #: non-heap event store, or None on the default heap path (ports
        #: check this before inlining pushes into ``_heap`` directly)
        self._sched: Optional[CalendarQueue] = (
            CalendarQueue() if scheduler == "calendar" else None
        )
        #: max packets an egress port may serialize under one finish
        #: event (1 = batching off; see ``repro.sim.port.EgressPort``)
        self.tx_batch_limit = int(tx_batch_limit)
        #: per-packet completions folded into train-finish events; these
        #: are *added into* :attr:`events_processed` so the count stays
        #: comparable across ``tx_batch_limit`` settings
        self.events_coalesced = 0
        #: must train-batched ports keep per-packet train entries so a
        #: mid-train pause can truncate?  Off by default (the entries are
        #: pure bookkeeping overhead); anything that may pause ports
        #: mid-run — a PFC controller, a pause/resume test — sets this
        #: True *before* traffic starts.  Without it, a pause on a
        #: batched port takes effect at the end of the committed train
        #: rather than at the next packet boundary.
        self.pause_tracking = False

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def at(self, time_ns: int, fn: Callable[..., Any], *args: Any) -> None:
        """Schedule ``fn(*args)`` at absolute time ``time_ns`` (fast path).

        Allocation-free apart from the heap tuple; returns no handle.
        Use :meth:`at_cancellable` when the caller may need to cancel.
        """
        if time_ns < self.now:
            raise ValueError(
                f"cannot schedule in the past: {time_ns} < now={self.now}"
            )
        entry = (time_ns, next(self._seq), fn, args)
        if self._sched is None:
            heapq.heappush(self._heap, entry)
        else:
            self._sched.push(entry)
        self._live += 1

    def after(self, delay_ns: int, fn: Callable[..., Any], *args: Any) -> None:
        """Schedule ``fn(*args)`` ``delay_ns`` nanoseconds from now (fast path)."""
        if delay_ns < 0:
            raise ValueError(f"negative delay: {delay_ns}")
        entry = (self.now + delay_ns, next(self._seq), fn, args)
        if self._sched is None:
            heapq.heappush(self._heap, entry)
        else:
            self._sched.push(entry)
        self._live += 1

    def at_cancellable(
        self, time_ns: int, fn: Callable[..., Any], *args: Any
    ) -> Event:
        """Schedule ``fn(*args)`` at ``time_ns``; returns a cancellable handle.

        This is the timer API: retransmission/pacing/rate timers that an
        ACK may supersede.  Costs one :class:`Event` allocation.
        """
        if time_ns < self.now:
            raise ValueError(
                f"cannot schedule in the past: {time_ns} < now={self.now}"
            )
        event = Event(self, time_ns, next(self._seq), fn, args)
        entry = (time_ns, event.seq, None, event)
        if self._sched is None:
            heapq.heappush(self._heap, entry)
        else:
            self._sched.push(entry)
        self._live += 1
        return event

    def after_cancellable(
        self, delay_ns: int, fn: Callable[..., Any], *args: Any
    ) -> Event:
        """Schedule ``fn(*args)`` after ``delay_ns``; returns a cancellable handle."""
        if delay_ns < 0:
            raise ValueError(f"negative delay: {delay_ns}")
        return self.at_cancellable(self.now + delay_ns, fn, *args)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Process events in order.

        Stops when the heap is empty, when the next event is past ``until``
        (the clock is then advanced to ``until``), or after ``max_events``
        events.  When the ``max_events`` budget trips first the clock is
        *not* advanced to ``until`` — live events at or before the horizon
        remain pending, so a later ``run`` resumes without time-travel.
        Cancelled events are compacted without consuming the budget.
        Returns the number of events processed by this call (coalesced
        per-packet completions folded into train-finish events are *not*
        counted here — they accrue to :attr:`events_processed` via
        :attr:`events_coalesced`).
        """
        if self._auto_pending:
            self._resolve_auto()
        if self._sched is not None:
            return self._run_sched(until, max_events)
        if self._drain is not None:
            return self._run_compiled(until, max_events)
        heap = self._heap
        pop = heapq.heappop
        push = heapq.heappush
        horizon = _FOREVER if until is None else until
        limit = -1 if max_events is None else max_events
        processed = 0
        budget_hit = False
        pause = self.pause_gc and gc.isenabled()
        if pause:
            gc.disable()
        try:
            # Pop-first loop: one heappop per event instead of a peek +
            # pop pair.  An entry past the horizon or budget is re-pushed
            # with its original sequence number, so ordering is unaffected
            # (and it happens at most once per run call).  The unbudgeted
            # loop — how every scenario drives the engine — is split out
            # so the common path pays no budget compare per event, and
            # the plain-entry branch (the ~95 % case) falls through first.
            if limit == -1:
                while heap:
                    time_, seq, fn, args = pop(heap)
                    if fn is not None:
                        if time_ > horizon:
                            push(heap, (time_, seq, fn, args))
                            break
                        self.now = time_
                        processed += 1
                        fn(*args)
                    else:
                        event = args
                        if event.cancelled:
                            continue
                        if time_ > horizon:
                            push(heap, (time_, seq, fn, args))
                            break
                        event._fired = True
                        self.now = time_
                        processed += 1
                        event.fn(*event.args)
            else:
                while heap:
                    time_, seq, fn, args = pop(heap)
                    if fn is None:
                        event = args
                        if event.cancelled:
                            continue
                        if time_ > horizon:
                            push(heap, (time_, seq, fn, args))
                            break
                        if processed == limit:
                            push(heap, (time_, seq, fn, args))
                            budget_hit = True
                            break
                        event._fired = True
                        self.now = time_
                        processed += 1
                        event.fn(*event.args)
                    else:
                        if time_ > horizon:
                            push(heap, (time_, seq, fn, args))
                            break
                        if processed == limit:
                            push(heap, (time_, seq, fn, args))
                            budget_hit = True
                            break
                        self.now = time_
                        processed += 1
                        fn(*args)
        finally:
            if pause:
                gc.enable()
            self._events_processed += processed
            self._live -= processed
        if until is not None and not budget_hit and self.now < until:
            self.now = until
        return processed

    def _run_sched(
        self, until: Optional[int], max_events: Optional[int]
    ) -> int:
        """:meth:`run` over the pluggable scheduler — identical semantics."""
        sched = self._sched
        horizon = _FOREVER if until is None else until
        limit = -1 if max_events is None else max_events
        processed = 0
        budget_hit = False
        pause = self.pause_gc and gc.isenabled()
        if pause:
            gc.disable()
        try:
            while True:
                entry = sched.pop()
                if entry is None:
                    break
                time_, seq, fn, args = entry
                if fn is None:
                    event = args
                    if event.cancelled:
                        continue
                    if time_ > horizon:
                        sched.push(entry)
                        break
                    if processed == limit:
                        sched.push(entry)
                        budget_hit = True
                        break
                    event._fired = True
                    self.now = time_
                    processed += 1
                    event.fn(*event.args)
                else:
                    if time_ > horizon:
                        sched.push(entry)
                        break
                    if processed == limit:
                        sched.push(entry)
                        budget_hit = True
                        break
                    self.now = time_
                    processed += 1
                    fn(*args)
        finally:
            if pause:
                gc.enable()
            self._events_processed += processed
            self._live -= processed
        if until is not None and not budget_hit and self.now < until:
            self.now = until
        return processed

    def _run_compiled(
        self, until: Optional[int], max_events: Optional[int]
    ) -> int:
        """:meth:`run` via the compiled drain loop — identical semantics.

        ``corekernel.drain`` pops from the *same* ``_heap`` list the
        Python fast path (and the ports' inlined pushes) use, mirroring
        the reference loop event for event: lazy cancellation
        compaction, horizon/budget re-push with the original sequence
        number, per-event clock advance, and the counter accounting of
        the ``finally`` clause (also on callback exceptions).  Only the
        GC pause and the final clock advance to ``until`` live here.
        """
        pause = self.pause_gc and gc.isenabled()
        if pause:
            gc.disable()
        try:
            processed, budget_hit = self._drain(
                self, self._heap, until, max_events
            )
        finally:
            if pause:
                gc.enable()
        if until is not None and not budget_hit and self.now < until:
            self.now = until
        return processed

    def _resolve_auto(self) -> None:
        """Pick heap vs calendar from the pending depth (``"auto"`` mode).

        Runs once, at the first :meth:`run` call: by then the workload
        has seeded its initial event population, which is the best
        available signal for eventual depth.  At or above
        :data:`AUTO_CALENDAR_DEPTH` live events the existing heap
        entries migrate into a :class:`CalendarQueue`; otherwise the
        simulator stays on the heap path.  Either store preserves the
        exact ``(time, seq)`` order, so resolution never changes
        results — only the constant factors.
        """
        self._auto_pending = False
        if self._live >= AUTO_CALENDAR_DEPTH:
            sched = CalendarQueue()
            heap = self._heap
            for entry in heap:
                sched.push(entry)
            del heap[:]
            self._sched = sched
            self.scheduler = "calendar"
        else:
            self.scheduler = "heap"

    def _remove_entries(self, entries) -> None:
        """Un-schedule plain fast-path entries (rare path).

        Used by PFC train truncation to cancel the delivery events of
        packets returned to the queue.  O(heap) on the default scheduler
        (one heapify), O(store) per entry on the calendar queue —
        acceptable because pauses are rare relative to transmissions.
        Every entry must currently be scheduled.
        """
        sched = self._sched
        if sched is None:
            heap = self._heap
            for entry in entries:
                heap.remove(entry)
            heapq.heapify(heap)
        else:
            for entry in entries:
                sched.remove(entry)
        self._live -= len(entries)

    def step(self) -> bool:
        """Process exactly one pending event.  Returns False if none left."""
        if self._sched is not None:
            sched = self._sched
            while True:
                entry = sched.pop()
                if entry is None:
                    return False
                time_, _seq, fn, args = entry
                if fn is None:
                    event = args
                    if event.cancelled:
                        continue
                    event._fired = True
                    fn = event.fn
                    args = event.args
                self.now = time_
                self._events_processed += 1
                self._live -= 1
                fn(*args)
                return True
        heap = self._heap
        while heap:
            time_, _seq, fn, args = heapq.heappop(heap)
            if fn is None:
                event = args
                if event.cancelled:
                    continue
                event._fired = True
                fn = event.fn
                args = event.args
            self.now = time_
            self._events_processed += 1
            self._live -= 1
            fn(*args)
            return True
        return False

    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Number of *live* scheduled events (cancelled entries excluded)."""
        return self._live

    @property
    def heap_entries(self) -> int:
        """Raw event-store length, including cancelled entries awaiting
        lazy compaction (diagnostics only — see :attr:`pending` for the
        live count)."""
        if self._sched is not None:
            return len(self._sched)
        return len(self._heap)

    @property
    def events_processed(self) -> int:
        """Total events executed since construction.

        Includes coalesced per-packet tx completions (see
        :attr:`events_coalesced`): a train of *n* packets serialized
        under one finish event counts as *n*, so the total is comparable
        across ``tx_batch_limit`` settings.  The two counters are summed
        here rather than maintained jointly so the ports' batched commit
        paths touch a single counter per packet.
        """
        return self._events_processed + self.events_coalesced

    def peek_time(self) -> Optional[int]:
        """Time of the next live event, or None if none is scheduled.

        Physically removes any cancelled prefix (the same lazy compaction
        the run loop performs); the live count is unaffected because
        cancellation already discounted those entries.
        """
        if self._sched is not None:
            sched = self._sched
            while True:
                entry = sched.pop()
                if entry is None:
                    return None
                if entry[2] is None and entry[3].cancelled:
                    continue
                sched.push(entry)
                return entry[0]
        heap = self._heap
        while heap:
            head = heap[0]
            if head[2] is None and head[3].cancelled:
                heapq.heappop(heap)
                continue
            return head[0]
        return None

"""Discrete-event simulation engine.

A single binary heap of events keyed by ``(time, sequence)``.  The sequence
number breaks ties in insertion order, which makes runs fully deterministic:
two events scheduled for the same nanosecond always fire in the order they
were scheduled.

Events are cancellable.  Cancellation only marks the event; the heap entry
is skipped lazily when popped, which keeps both operations O(log n) / O(1).
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, Callable, Optional


class Event:
    """A scheduled callback.  Returned by :meth:`Simulator.at` / ``after``.

    Call :meth:`cancel` to prevent it from firing (e.g. retransmission
    timers that are superseded by an ACK).
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: int, seq: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event so the engine skips it when its time comes."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time}, fn={getattr(self.fn, '__name__', self.fn)}, {state})"


class Simulator:
    """Event loop with an integer-nanosecond clock.

    Typical usage::

        sim = Simulator()
        sim.after(1_000, port.enqueue, packet)
        sim.run(until=10 * SEC)
    """

    __slots__ = ("now", "_heap", "_seq", "_events_processed")

    def __init__(self) -> None:
        self.now: int = 0
        self._heap: list[Event] = []
        self._seq = count()
        self._events_processed = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def at(self, time_ns: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute time ``time_ns``."""
        if time_ns < self.now:
            raise ValueError(
                f"cannot schedule in the past: {time_ns} < now={self.now}"
            )
        event = Event(time_ns, next(self._seq), fn, args)
        heapq.heappush(self._heap, event)
        return event

    def after(self, delay_ns: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` ``delay_ns`` nanoseconds from now."""
        if delay_ns < 0:
            raise ValueError(f"negative delay: {delay_ns}")
        return self.at(self.now + delay_ns, fn, *args)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Process events in order.

        Stops when the heap is empty, when the next event is past ``until``
        (the clock is then advanced to ``until``), or after ``max_events``
        events.  When the ``max_events`` budget trips first the clock is
        *not* advanced to ``until`` — live events at or before the horizon
        remain pending, so a later ``run`` resumes without time-travel.
        Returns the number of events processed by this call.
        """
        heap = self._heap
        processed = 0
        budget_hit = False
        while heap:
            event = heap[0]
            if event.cancelled:
                heapq.heappop(heap)
                continue
            if until is not None and event.time > until:
                break
            if max_events is not None and processed >= max_events:
                budget_hit = True
                break
            heapq.heappop(heap)
            self.now = event.time
            event.fn(*event.args)
            processed += 1
        if until is not None and not budget_hit and self.now < until:
            self.now = until
        self._events_processed += processed
        return processed

    def step(self) -> bool:
        """Process exactly one pending event.  Returns False if none left."""
        heap = self._heap
        while heap:
            event = heapq.heappop(heap)
            if event.cancelled:
                continue
            self.now = event.time
            event.fn(*event.args)
            self._events_processed += 1
            return True
        return False

    @property
    def pending(self) -> int:
        """Number of heap entries, including cancelled ones."""
        return len(self._heap)

    @property
    def events_processed(self) -> int:
        """Total events executed since construction."""
        return self._events_processed

    def peek_time(self) -> Optional[int]:
        """Time of the next live event, or None if the heap is empty."""
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)
        if heap:
            return heap[0].time
        return None

"""Optical circuit switching for reconfigurable datacenter networks (§5).

The paper's RDCN case study: ToR switches share one optical circuit switch
that cycles through a fixed permutation schedule.  Each *matching* connects
every ToR to exactly one other ToR for a "day" (circuit on, e.g. 225 µs),
separated by "nights" (reconfiguration, e.g. 20 µs).  Over one "week"
(all matchings) every ToR pair is directly connected exactly once.

Components
----------
* :class:`CircuitSchedule` — pure time arithmetic: which matching is active
  at time *t*, and when the next window for a ToR pair opens.
* :class:`CircuitPort` — a ToR's circuit uplink with per-destination VOQs;
  only the VOQ of the currently-matched ToR drains, at circuit rate.
* :class:`RotorController` — drives day/night transitions on the event loop
  and accounts circuit utilization.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.sim.packet import DATA, Packet
from repro.sim.port import EgressPort
from repro.units import tx_time_ns


class CircuitSchedule:
    """Rotation schedule over ``num_tors`` ToRs.

    The default matchings are cyclic shifts: in matching *m*, ToR *i*'s
    circuit connects to ToR ``(i + m + 1) mod N``, so N-1 matchings cover
    every ordered pair once per week — the paper's "each pair of ToR
    switches has direct connectivity once over a length of 24 matchings"
    with 25 ToRs.

    A slot is night-then-day: reconfiguration happens first, then the
    circuit is up for ``day_ns``.
    """

    def __init__(
        self,
        num_tors: int,
        day_ns: int,
        night_ns: int,
        matchings: Optional[Sequence[Sequence[int]]] = None,
    ):
        if num_tors < 2:
            raise ValueError("need at least two ToRs")
        if day_ns <= 0 or night_ns < 0:
            raise ValueError("day must be positive, night non-negative")
        self.num_tors = num_tors
        self.day_ns = day_ns
        self.night_ns = night_ns
        if matchings is None:
            matchings = [
                [(i + m + 1) % num_tors for i in range(num_tors)]
                for m in range(num_tors - 1)
            ]
        self.matchings: List[Tuple[int, ...]] = [tuple(m) for m in matchings]
        for m, matching in enumerate(self.matchings):
            if sorted(matching) != list(range(num_tors)):
                raise ValueError(f"matching {m} is not a permutation: {matching}")
        self.slot_ns = night_ns + day_ns
        self.period_ns = len(self.matchings) * self.slot_ns
        # Per-ToR lookup: destination ToR -> matching index.
        self._matching_of: List[Dict[int, int]] = []
        for tor in range(num_tors):
            lookup = {}
            for m, matching in enumerate(self.matchings):
                peer = matching[tor]
                if peer != tor:
                    lookup[peer] = m
            self._matching_of.append(lookup)

    # ------------------------------------------------------------------
    def slot_at(self, t_ns: int) -> Tuple[int, bool, int]:
        """Return ``(matching_index, is_day, time_into_phase)`` at ``t_ns``."""
        cycle = t_ns % self.period_ns
        matching = cycle // self.slot_ns
        within = cycle % self.slot_ns
        if within < self.night_ns:
            return matching, False, within
        return matching, True, within - self.night_ns

    def peer_of(self, tor: int, t_ns: int) -> Optional[int]:
        """The ToR that ``tor``'s circuit reaches at ``t_ns`` (None at night)."""
        matching, is_day, _ = self.slot_at(t_ns)
        if not is_day:
            return None
        peer = self.matchings[matching][tor]
        return peer if peer != tor else None

    def window_for(self, tor: int, dst_tor: int, t_ns: int) -> Tuple[int, int]:
        """Next (or current) ``[start, end)`` day window connecting the pair."""
        matching = self._matching_of[tor].get(dst_tor)
        if matching is None:
            raise ValueError(f"no matching connects ToR {tor} to ToR {dst_tor}")
        period_start = (t_ns // self.period_ns) * self.period_ns
        start = period_start + matching * self.slot_ns + self.night_ns
        end = start + self.day_ns
        if t_ns >= end:
            start += self.period_ns
            end += self.period_ns
        return start, end

    def circuit_admits(
        self, tor: int, dst_tor: int, t_ns: int, prebuffer_ns: int = 0
    ) -> bool:
        """Should a packet for ``dst_tor`` enter the circuit VOQ at ``t_ns``?

        True while the pair's circuit is up, or within ``prebuffer_ns``
        before it comes up (reTCP's prebuffering policy).
        """
        start, end = self.window_for(tor, dst_tor, t_ns)
        return start - prebuffer_ns <= t_ns < end


class CircuitPort(EgressPort):
    """A ToR circuit uplink with per-destination-ToR virtual output queues.

    Only the VOQ of the currently matched destination drains.  INT records
    report the length of the packet's *own* VOQ, which is the queue a flow
    crossing this port actually waits in.
    """

    __slots__ = ("tor_id", "dst_tor_of", "voqs", "voq_bytes", "active_dst")

    def __init__(
        self,
        sim,
        rate_bps: float,
        prop_delay_ns: int,
        *,
        tor_id: int,
        dst_tor_of: Callable[[int], int],
        **kwargs,
    ):
        super().__init__(sim, rate_bps, prop_delay_ns, **kwargs)
        # VOQ ports are circuit-scheduled (day/night), not work-conserving
        # FIFOs — packet-train batching does not apply; force the exact
        # per-packet path regardless of the simulator-wide batch limit.
        self._batch_limit = 1
        self.tor_id = tor_id
        self.dst_tor_of = dst_tor_of
        self.voqs: Dict[int, deque] = {}
        self.voq_bytes: Dict[int, int] = {}
        self.active_dst: Optional[int] = None
        self.paused = True  # circuits start dark until the controller runs

    # ------------------------------------------------------------------
    def enqueue(self, pkt: Packet) -> bool:
        """Admit to the VOQ of the packet's destination ToR."""
        dst_tor = self.dst_tor_of(pkt.dst)
        size = pkt.size
        buffer = self.buffer
        voq_len = self.voq_bytes.get(dst_tor, 0)
        if buffer is not None:
            if self.sim.now >= buffer._next_release:
                # Flush train-batched deferred releases (other ports of
                # this switch) so DT admission sees the true occupancy.
                buffer.release_due(self.sim.now)
            if pkt.kind == DATA and not buffer.admits(voq_len, size):
                self.drops += 1
                buffer.on_drop()
                return False
            buffer.on_enqueue(size)

        if self.ecn is not None and pkt.ecn_capable:
            if self.ecn.should_mark(voq_len, self.rng):
                pkt.ecn_marked = True
                self.marks += 1

        pkt.enqueue_ts = self.sim.now
        voq = self.voqs.get(dst_tor)
        if voq is None:
            voq = self.voqs[dst_tor] = deque()
        voq.append(pkt)
        self.voq_bytes[dst_tor] = voq_len + size
        self.qlen_bytes += size
        if self.qlen_bytes > self.max_qlen_bytes:
            self.max_qlen_bytes = self.qlen_bytes
        if not self.busy and not self.paused:
            self._start_tx()
        return True

    def _pop_next(self) -> Optional[Packet]:
        if self.active_dst is None:
            return None
        voq = self.voqs.get(self.active_dst)
        if not voq:
            return None
        pkt = voq.popleft()
        self.voq_bytes[self.active_dst] -= pkt.size
        return pkt

    def _stamp_qlen(self, pkt: Packet) -> int:
        return self.voq_bytes.get(self.dst_tor_of(pkt.dst), 0)

    def _start_tx(self) -> None:
        # The generic (non-inlined) transmit path: the base class fuses
        # the strict-priority pop and qlen stamp into its hot loop, which
        # a VOQ port cannot share — drain and telemetry go through the
        # _pop_next / _stamp_qlen hooks here instead.  Circuit uplinks are
        # a tiny fraction of a run's events, so the indirection is cheap.
        pkt = self._pop_next()
        if pkt is None:
            return
        self.busy = True
        size = pkt.size
        self.qlen_bytes -= size
        sim = self.sim
        now = sim.now
        tx_bytes = self.tx_bytes + size
        self.tx_bytes = tx_bytes
        if self.int_stamping and pkt.int_enabled:
            hops = pkt.int_hops
            if hops is None:
                hops = pkt.int_hops = []
            hops.append(
                self._pool.hop(
                    self._stamp_qlen(pkt), now, tx_bytes,
                    self.rate_bps, self.port_id,
                )
            )
        if self.record_queuing and pkt.kind == DATA:
            self.queuing_delays_ns.append(now - pkt.enqueue_ts)
        ser = self._ser_cache.get(size)
        if ser is None:
            ser = self._ser_cache[size] = tx_time_ns(size, self.rate_bps)
        sim.at(now + ser, self._finish_cb, pkt)

    # ------------------------------------------------------------------
    def activate(self, dst_tor: int, peer) -> None:
        """Day start: connect to ``dst_tor`` (delivered to node ``peer``)."""
        self.active_dst = dst_tor
        self.peer = peer
        self._deliver = peer.receive if peer is not None else None
        self.resume()

    def deactivate(self) -> None:
        """Night: stop draining (the in-flight packet completes)."""
        self.active_dst = None
        self.pause()

    def voq_len_bytes(self, dst_tor: int) -> int:
        """Current occupancy of one destination's VOQ."""
        return self.voq_bytes.get(dst_tor, 0)


class RotorController:
    """Drives day/night transitions for all circuit ports of an RDCN.

    Also accounts per-day transmitted bytes so experiments can compute
    circuit utilization (paper reports 80–85 % for PowerTCP).
    """

    def __init__(
        self,
        sim,
        schedule: CircuitSchedule,
        circuit_ports: Sequence[CircuitPort],
        tor_nodes: Sequence,
    ):
        if len(circuit_ports) != schedule.num_tors:
            raise ValueError("one circuit port per ToR required")
        self.sim = sim
        self.schedule = schedule
        self.circuit_ports = list(circuit_ports)
        self.tor_nodes = list(tor_nodes)
        self.day_tx_bytes = 0
        self.days_elapsed = 0
        self._day_start_tx: List[int] = [0] * len(self.circuit_ports)
        self._matching = 0

    def start(self) -> None:
        """Begin the rotation (first night starts at the current time)."""
        self.sim.after(self.schedule.night_ns, self._day_start)

    def _day_start(self) -> None:
        matching = self.schedule.matchings[self._matching]
        for tor, port in enumerate(self.circuit_ports):
            peer = matching[tor]
            self._day_start_tx[tor] = port.tx_bytes
            if peer != tor:
                port.activate(peer, self.tor_nodes[peer])
        self.sim.after(self.schedule.day_ns, self._day_end)

    def _day_end(self) -> None:
        for tor, port in enumerate(self.circuit_ports):
            self.day_tx_bytes += port.tx_bytes - self._day_start_tx[tor]
            port.deactivate()
        self.days_elapsed += 1
        self._matching = (self._matching + 1) % len(self.schedule.matchings)
        self.sim.after(self.schedule.night_ns, self._day_start)

    def utilization(self) -> float:
        """Fraction of day capacity used across all ToRs so far."""
        if self.days_elapsed == 0:
            return 0.0
        capacity_bytes = (
            self.days_elapsed
            * len(self.circuit_ports)
            * self.schedule.day_ns
            * self.circuit_ports[0].rate_bps
            / 8e9
        )
        return self.day_tx_bytes / capacity_bytes if capacity_bytes else 0.0

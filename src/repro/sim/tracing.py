"""Periodic probes for time-series metrics.

The paper's time-series figures (Fig. 4 incast reaction, Fig. 5 fairness,
Fig. 8a RDCN throughput/VOQ) all sample queue lengths and throughput on a
fixed interval.  :class:`Probe` samples an arbitrary callable;
:class:`PortProbe` derives queue length and throughput for one egress port;
:class:`CounterRateProbe` turns any monotonically increasing byte counter
into a rate series.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.sim.engine import Simulator
from repro.sim.port import EgressPort
from repro.units import BITS_PER_BYTE, SEC


class Probe:
    """Sample ``fn()`` every ``interval_ns`` into parallel arrays."""

    def __init__(
        self,
        sim: Simulator,
        interval_ns: int,
        fn: Callable[[], float],
        *,
        until_ns: Optional[int] = None,
    ):
        if interval_ns <= 0:
            raise ValueError(f"interval must be positive, got {interval_ns}")
        self.sim = sim
        self.interval_ns = interval_ns
        self.fn = fn
        self.until_ns = until_ns
        self.times_ns: List[int] = []
        self.values: List[float] = []
        self._started = False

    def start(self) -> "Probe":
        """Begin sampling at the current simulation time."""
        if not self._started:
            self._started = True
            self.sim.at(self.sim.now, self._sample)
        return self

    def _sample(self) -> None:
        # A probe tick fires thousands of times per run; the reschedule
        # rides the engine's allocation-free fast path.
        sim = self.sim
        now = sim.now
        self.times_ns.append(now)
        self.values.append(self.fn())
        next_time = now + self.interval_ns
        if self.until_ns is None or next_time <= self.until_ns:
            sim.at(next_time, self._sample)


class CounterRateProbe:
    """Convert a cumulative byte counter into a throughput series (bits/s)."""

    def __init__(
        self,
        sim: Simulator,
        interval_ns: int,
        counter_fn: Callable[[], int],
        *,
        until_ns: Optional[int] = None,
    ):
        self.sim = sim
        self.interval_ns = interval_ns
        self.counter_fn = counter_fn
        self.until_ns = until_ns
        self.times_ns: List[int] = []
        self.rates_bps: List[float] = []
        self._last_count = 0
        self._started = False

    def start(self) -> "CounterRateProbe":
        """Begin sampling; the first window starts now."""
        if not self._started:
            self._started = True
            self._last_count = self.counter_fn()
            self.sim.after(self.interval_ns, self._sample)
        return self

    def _sample(self) -> None:
        sim = self.sim
        now = sim.now
        count = self.counter_fn()
        delta = count - self._last_count
        self._last_count = count
        self.times_ns.append(now)
        self.rates_bps.append(delta * BITS_PER_BYTE * SEC / self.interval_ns)
        next_time = now + self.interval_ns
        if self.until_ns is None or next_time <= self.until_ns:
            sim.at(next_time, self._sample)


class PortProbe:
    """Queue length + throughput series for one egress port."""

    def __init__(
        self,
        sim: Simulator,
        port: EgressPort,
        interval_ns: int,
        *,
        until_ns: Optional[int] = None,
    ):
        self.port = port
        self.qlen = Probe(sim, interval_ns, lambda: port.qlen_bytes, until_ns=until_ns)
        self.throughput = CounterRateProbe(
            sim, interval_ns, lambda: port.tx_bytes, until_ns=until_ns
        )

    def start(self) -> "PortProbe":
        """Begin sampling both series."""
        self.qlen.start()
        self.throughput.start()
        return self

    @property
    def times_ns(self) -> List[int]:
        """Sample times of the queue-length series."""
        return self.qlen.times_ns

    @property
    def qlen_bytes(self) -> List[float]:
        """Sampled instantaneous queue lengths."""
        return self.qlen.values

    @property
    def throughput_bps(self) -> List[float]:
        """Per-interval average throughput in bits/s."""
        return self.throughput.rates_bps

"""Gated loader for the optional compiled event core.

This module is the **only** place allowed to import ``repro._ckernel``
(enforced by the ``compiled-core-import`` lint rule; contract:
``docs/INVARIANTS.md#compiled-core-gating``).  Everything else selects
the compiled engine through ``Simulator(scheduler="compiled")`` or
``scheduler="best"``, which call :func:`load_compiled` here.

The probe runs once per process and caches the outcome: either the
extension module (built by ``python setup.py build_ext --inplace`` or a
wheel built with a compiler present) or the failure reason, surfaced by
:func:`compiled_error` and ``repro perf --engines``.  A missing or
broken extension is *not* an error at import time — ``"best"`` falls
back to the pure-Python heap, and only an explicit
``scheduler="compiled"`` request raises.

:func:`force_unavailable` simulates the no-compiler install (the loader
failure branch) for tests, without any environment-variable switches.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Optional

#: probe outcome cache: probed? / module-or-None / failure reason
_state = {"probed": False, "module": None, "error": None}

#: test hook (see :func:`force_unavailable`): when True the loader
#: reports the extension unavailable regardless of the real probe
_forced_off = False

_FORCED_ERROR = "forced unavailable (force_unavailable test hook active)"


def load_compiled():
    """The ``corekernel`` extension module, or None when unavailable.

    Probes at most once per process; the failure reason (ImportError
    text, or a missing-symbol report for a stale build) is retained for
    :func:`compiled_error`.
    """
    if _forced_off:
        return None
    if not _state["probed"]:
        _state["probed"] = True
        try:
            from repro._ckernel import corekernel
        except Exception as exc:  # ImportError, or a broken .so
            _state["error"] = f"{type(exc).__name__}: {exc}"
        else:
            missing = [
                name
                for name in ("drain", "heappush", "heappop")
                if not hasattr(corekernel, name)
            ]
            if missing:
                _state["error"] = (
                    f"corekernel is missing {missing} (stale build? "
                    "re-run: python setup.py build_ext --inplace)"
                )
            else:
                _state["module"] = corekernel
    return _state["module"]


def compiled_available() -> bool:
    """True when the compiled event core can be used right now."""
    return load_compiled() is not None


def compiled_error() -> Optional[str]:
    """Why the compiled core is unavailable (None when it loaded)."""
    if _forced_off:
        return _FORCED_ERROR
    load_compiled()
    return _state["error"]


@contextmanager
def force_unavailable():
    """Pretend the extension did not build (the no-compiler install).

    Inside the block ``scheduler="best"`` falls back to the pure-Python
    heap and ``scheduler="compiled"`` raises — exactly the behavior of
    an installation without a C compiler.  Used by the fallback tests;
    restores the real probe result on exit.
    """
    global _forced_off
    previous = _forced_off
    _forced_off = True
    try:
        yield
    finally:
        _forced_off = previous

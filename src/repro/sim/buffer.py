"""Shared-memory switch buffer with Dynamic Thresholds admission.

The paper's switches use a shared memory architecture with the Dynamic
Thresholds (DT) algorithm of Choudhury and Hahne (IEEE/ACM ToN 1998), as
commonly enabled on commodity datacenter ASICs.  DT admits a packet to a
queue only while the queue is shorter than ``alpha`` times the *remaining*
free buffer:

    admit  iff  qlen < alpha * (capacity - used)

so the admissible queue length shrinks as the buffer fills, leaving
headroom for uncongested ports.
"""

from __future__ import annotations


class SharedBuffer:
    """Shared packet memory for one switch.

    Parameters
    ----------
    capacity:
        total buffer in bytes.  The paper sizes buffers proportionally to
        the bandwidth-buffer ratio of Intel Tofino switches.
    alpha:
        the DT scaling factor.  ``alpha=1`` (a common default) lets one
        congested queue take at most half of the free memory.
    """

    __slots__ = ("capacity", "alpha", "used", "drops", "total_admitted")

    def __init__(self, capacity: int, alpha: float = 1.0):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if alpha <= 0:
            raise ValueError(f"alpha must be positive, got {alpha}")
        self.capacity = capacity
        self.alpha = alpha
        self.used = 0
        self.drops = 0
        self.total_admitted = 0

    @property
    def free(self) -> int:
        """Unused buffer bytes."""
        return self.capacity - self.used

    def threshold(self) -> float:
        """Current DT admission threshold (bytes) for any single queue."""
        return self.alpha * self.free

    def admits(self, qlen: int, size: int) -> bool:
        """Would DT admit a ``size``-byte packet to a queue of ``qlen`` bytes?"""
        if self.used + size > self.capacity:
            return False
        return qlen < self.threshold()

    def on_enqueue(self, size: int) -> None:
        """Account an admitted packet."""
        self.used += size
        self.total_admitted += size
        assert self.used <= self.capacity, "shared buffer overflow"

    def on_dequeue(self, size: int) -> None:
        """Release memory when a packet leaves the switch."""
        self.used -= size
        assert self.used >= 0, "shared buffer underflow"

    def on_drop(self) -> None:
        """Record a DT rejection (for drop statistics)."""
        self.drops += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SharedBuffer(used={self.used}/{self.capacity}B, "
            f"alpha={self.alpha}, drops={self.drops})"
        )

"""Shared-memory switch buffer with Dynamic Thresholds admission.

The paper's switches use a shared memory architecture with the Dynamic
Thresholds (DT) algorithm of Choudhury and Hahne (IEEE/ACM ToN 1998), as
commonly enabled on commodity datacenter ASICs.  DT admits a packet to a
queue only while the queue is shorter than ``alpha`` times the *remaining*
free buffer:

    admit  iff  qlen < alpha * (capacity - used)

so the admissible queue length shrinks as the buffer fills, leaving
headroom for uncongested ports.

When packet-train batching is enabled (``Simulator(tx_batch_limit>1)``)
ports do not release memory per packet; they register future releases
with :meth:`SharedBuffer.defer_release` and every *admission* point
flushes the due ones first (``if now >= buffer._next_release:
buffer.release_due(now)`` — the timestamp quick-reject keeps the common
no-op case to one integer compare), so DT decisions always see the exact
byte count.  Only passive readers of :attr:`used` (probes, diagnostics)
can observe a value that is stale by at most one train duration.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush

#: sentinel for "no deferred release pending" — beyond any simulated clock
_NEVER = 1 << 63

#: deferred releases are packed into single ints — ``(release_ns <<
#: _SIZE_BITS) | size`` — so the release heap sifts with C integer
#: compares and allocates nothing per entry.  The packing bounds packet
#: sizes below 1 MiB, three orders of magnitude above any MTU this
#: simulator produces; :meth:`SharedBuffer.defer_release` enforces it
#: (the port fast path inlines the push and relies on the invariant).
_SIZE_BITS = 20
_SIZE_MASK = (1 << _SIZE_BITS) - 1


class SharedBuffer:
    """Shared packet memory for one switch.

    Parameters
    ----------
    capacity:
        total buffer in bytes.  The paper sizes buffers proportionally to
        the bandwidth-buffer ratio of Intel Tofino switches.
    alpha:
        the DT scaling factor.  ``alpha=1`` (a common default) lets one
        congested queue take at most half of the free memory.
    """

    __slots__ = (
        "capacity", "alpha", "used", "drops", "total_admitted",
        "_deferred", "_next_release",
    )

    def __init__(self, capacity: int, alpha: float = 1.0):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if alpha <= 0:
            raise ValueError(f"alpha must be positive, got {alpha}")
        self.capacity = capacity
        self.alpha = alpha
        self.used = 0
        self.drops = 0
        self.total_admitted = 0
        #: min-heap of packed ``(release_ns << _SIZE_BITS) | size`` ints —
        #: future releases registered by train-batched transmitters.
        #: Empty unless batching is on.
        self._deferred: list = []
        #: earliest pending release (sentinel when none): admission
        #: points test ``now >= _next_release`` so the common no-op
        #: flush costs one integer compare, not a call
        self._next_release = _NEVER

    @property
    def free(self) -> int:
        """Unused buffer bytes."""
        return self.capacity - self.used

    def threshold(self) -> float:
        """Current DT admission threshold (bytes) for any single queue."""
        return self.alpha * self.free

    def admits(self, qlen: int, size: int) -> bool:
        """Would DT admit a ``size``-byte packet to a queue of ``qlen`` bytes?"""
        if self.used + size > self.capacity:
            return False
        return qlen < self.threshold()

    def on_enqueue(self, size: int) -> None:
        """Account an admitted packet."""
        self.used += size
        self.total_admitted += size
        assert self.used <= self.capacity, "shared buffer overflow"

    def on_dequeue(self, size: int) -> None:
        """Release memory when a packet leaves the switch."""
        self.used -= size
        assert self.used >= 0, "shared buffer underflow"

    def on_drop(self) -> None:
        """Record a DT rejection (for drop statistics)."""
        self.drops += 1

    # -- deferred releases (packet-train batching) ---------------------
    def defer_release(self, release_ns: int, size: int) -> None:
        """Register a future release: ``size`` bytes leave at ``release_ns``.

        Used by train-batched ports instead of :meth:`on_dequeue`; the
        bytes stay accounted in :attr:`used` until :meth:`release_due`
        flushes them at or after ``release_ns``.
        """
        if not 0 <= size <= _SIZE_MASK:
            raise ValueError(f"deferred release size out of range: {size}")
        heappush(self._deferred, (release_ns << _SIZE_BITS) | size)
        if release_ns < self._next_release:
            self._next_release = release_ns

    def release_due(self, now: int) -> None:
        """Apply every deferred release scheduled at or before ``now``.

        Called at each admission point (port enqueue, PFC poll, train
        start) so DT decisions and watermark checks never act on bytes
        that have already left the switch.
        """
        deferred = self._deferred
        # Every packed entry with release_ns <= now sorts at or below
        # the largest entry of timestamp ``now``.
        limit = ((now + 1) << _SIZE_BITS) - 1
        while deferred and deferred[0] <= limit:
            self.used -= heappop(deferred) & _SIZE_MASK
        self._next_release = (deferred[0] >> _SIZE_BITS) if deferred else _NEVER
        assert self.used >= 0, "shared buffer underflow"

    def cancel_deferred(self, release_ns: int, size: int) -> None:
        """Drop one pending ``(release_ns, size)`` deferred release.

        Train truncation (PFC pause mid-train) returns not-yet-started
        packets to the queue; their registered releases must be undone.
        Rare, so an O(n) remove + heapify is fine.
        """
        deferred = self._deferred
        deferred.remove((release_ns << _SIZE_BITS) | size)
        heapify(deferred)
        self._next_release = (deferred[0] >> _SIZE_BITS) if deferred else _NEVER

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SharedBuffer(used={self.used}/{self.capacity}B, "
            f"alpha={self.alpha}, drops={self.drops})"
        )

"""Egress ports: serialization, queueing, ECN marking, and INT stamping.

An :class:`EgressPort` models one output of a switch (or the host NIC): a
set of strict-priority FIFO queues drained at the port's line rate, a link
to a peer node (propagation delay), optional membership in a switch-wide
:class:`~repro.sim.buffer.SharedBuffer` governed by Dynamic Thresholds,
optional ECN marking, and the INT stamping PowerTCP/HPCC rely on.

Telemetry semantics follow the paper exactly: the per-hop record carries
the egress queue length, timestamp, cumulative transmitted bytes, and
bandwidth, all taken *when the packet is scheduled for transmission*
(i.e. at the moment it starts serializing).
"""

from __future__ import annotations

import random
import weakref
from array import array
from collections import deque
from heapq import heappush
from typing import List, Optional

from repro.sim.engine import Simulator
from repro.sim.packet import DATA, Packet, get_pool
from repro.units import tx_time_ns

NUM_PRIORITIES = 8

_port_counter = 0

#: per-simulator count of anonymous ports, for the fallback RNG seed —
#: deterministic across runs (unlike the global port_id counter, which
#: keeps incrementing across simulators in one process)
_anon_ports = weakref.WeakKeyDictionary()


def _next_port_id() -> int:
    global _port_counter
    _port_counter += 1
    return _port_counter


def _anon_seed(sim: Simulator) -> str:
    """Fallback ECN-RNG seed for an unnamed port: distinct per port,
    stable across identical runs (a per-simulator construction counter)."""
    n = _anon_ports.get(sim, 0) + 1
    _anon_ports[sim] = n
    return f"port#{n}"


class EcnConfig:
    """RED-style ECN marking thresholds on the instantaneous queue.

    ``kmin == kmax`` degenerates to the DCTCP step mark at threshold K.
    Otherwise the marking probability ramps linearly from 0 at ``kmin``
    to ``pmax`` at ``kmax`` and is 1 above ``kmax`` (DCQCN's configuration).
    """

    __slots__ = ("kmin", "kmax", "pmax")

    def __init__(self, kmin: int, kmax: int, pmax: float):
        if kmin > kmax:
            raise ValueError(f"kmin {kmin} > kmax {kmax}")
        if not 0.0 <= pmax <= 1.0:
            raise ValueError(f"pmax must be in [0,1], got {pmax}")
        self.kmin = kmin
        self.kmax = kmax
        self.pmax = pmax

    @staticmethod
    def step(threshold: int) -> "EcnConfig":
        """DCTCP-style deterministic marking above ``threshold`` bytes."""
        return EcnConfig(threshold, threshold, 1.0)

    def should_mark(self, qlen: int, rng: random.Random) -> bool:
        """Marking decision for a packet arriving to a queue of ``qlen`` bytes."""
        if qlen <= self.kmin:
            return False
        if qlen >= self.kmax:
            return True
        fraction = (qlen - self.kmin) / (self.kmax - self.kmin)
        return rng.random() < fraction * self.pmax


class EgressPort:
    """One serializing output port.

    Parameters
    ----------
    sim:
        the event engine.
    rate_bps:
        line rate in bits per second.
    prop_delay_ns:
        one-way propagation delay of the attached link.
    peer:
        object with a ``receive(packet)`` method (a Switch or Host); may be
        attached later via :meth:`connect`.
    buffer:
        optional shared switch buffer enforcing Dynamic Thresholds.  Ports
        without a buffer (host NICs) never drop.
    ecn:
        optional ECN marking configuration applied to ECN-capable packets.
    int_stamping:
        whether this port appends INT records to INT-enabled packets.
    record_queuing:
        when True, per-packet queueing delays are appended to
        ``queuing_delays_ns`` (used for the Fig. 8b tail-latency metric).
    """

    __slots__ = (
        "sim",
        "rate_bps",
        "prop_delay_ns",
        "peer",
        "buffer",
        "ecn",
        "int_stamping",
        "name",
        "port_id",
        "rng",
        "queues",
        "qlen_bytes",
        "tx_bytes",
        "busy",
        "paused",
        "drops",
        "marks",
        "max_qlen_bytes",
        "record_queuing",
        "queuing_delays_ns",
        "_nonempty",
        "_pool",
        "_ser_cache",
        "_deliver",
        "_finish_cb",
    )

    def __init__(
        self,
        sim: Simulator,
        rate_bps: float,
        prop_delay_ns: int,
        *,
        peer=None,
        buffer=None,
        ecn: Optional[EcnConfig] = None,
        int_stamping: bool = False,
        name: str = "",
        rng: Optional[random.Random] = None,
        record_queuing: bool = False,
    ):
        if rate_bps <= 0:
            raise ValueError(f"rate must be positive, got {rate_bps}")
        if prop_delay_ns < 0:
            raise ValueError(f"negative propagation delay: {prop_delay_ns}")
        self.sim = sim
        self.rate_bps = rate_bps
        self.prop_delay_ns = prop_delay_ns
        self.peer = peer
        self.buffer = buffer
        self.ecn = ecn
        self.int_stamping = int_stamping
        self.name = name
        self.port_id = _next_port_id()
        # The RNG (ECN marking decisions) is seeded from the *name*, which
        # is stable across runs; the global port_id counter is not, and
        # seeding from it would make identical runs diverge.  Unnamed
        # ports fall back to a per-simulator construction counter, so two
        # anonymous ports never share a mark sequence.
        self.rng = rng if rng is not None else random.Random(name or _anon_seed(sim))
        self.queues: List[deque] = [deque() for _ in range(NUM_PRIORITIES)]
        self.qlen_bytes = 0
        self.tx_bytes = 0
        self.busy = False
        self.paused = False
        self.drops = 0
        self.marks = 0
        self.max_qlen_bytes = 0
        self.record_queuing = record_queuing
        self.queuing_delays_ns = array("q")
        self._nonempty = 0  # bitmask of non-empty priority queues
        self._pool = get_pool(sim)
        #: serialization-time memo: packet size -> ns at this port's rate
        #: (the rate is fixed for the port's lifetime)
        self._ser_cache = {}
        #: cached bound methods for the per-packet events — recreating a
        #: bound method per heappush is a measurable allocation on the
        #: hot path
        self._deliver = peer.receive if peer is not None else None
        self._finish_cb = self._finish_tx

    # ------------------------------------------------------------------
    def connect(self, peer, prop_delay_ns: Optional[int] = None) -> None:
        """Attach the downstream node, optionally overriding the link delay."""
        self.peer = peer
        self._deliver = peer.receive if peer is not None else None
        if prop_delay_ns is not None:
            self.prop_delay_ns = prop_delay_ns

    # ------------------------------------------------------------------
    # Enqueue path
    # ------------------------------------------------------------------
    def enqueue(self, pkt: Packet) -> bool:
        """Admit a packet; returns False if it was dropped.

        DT admission (when a shared buffer is attached) only polices DATA
        packets — small control packets (ACK/CNP/grant) are always admitted,
        mirroring how RDMA deployments protect control traffic.
        """
        size = pkt.size
        buffer = self.buffer
        if buffer is not None:
            # Inlined SharedBuffer.admits / on_enqueue / on_drop — one
            # call per enqueue on every switch port.
            if pkt.kind == DATA:
                used = buffer.used
                if (
                    used + size > buffer.capacity
                    or self.qlen_bytes >= buffer.alpha * (buffer.capacity - used)
                ):
                    self.drops += 1
                    buffer.drops += 1
                    return False
            buffer.used += size
            buffer.total_admitted += size
            # Control packets bypass DT admission, so the shared-memory
            # invariant still needs its (stripped-with--O) safety net.
            assert buffer.used <= buffer.capacity, "shared buffer overflow"

        ecn = self.ecn
        if ecn is not None and pkt.ecn_capable:
            if ecn.should_mark(self.qlen_bytes, self.rng):
                pkt.ecn_marked = True
                self.marks += 1

        pkt.enqueue_ts = self.sim.now
        priority = pkt.priority
        self.queues[priority].append(pkt)
        self._nonempty |= 1 << priority
        qlen = self.qlen_bytes + size
        self.qlen_bytes = qlen
        if qlen > self.max_qlen_bytes:
            self.max_qlen_bytes = qlen
        if not self.busy and not self.paused:
            self._start_tx()
        return True

    # ------------------------------------------------------------------
    # Dequeue path
    # ------------------------------------------------------------------
    def _pop_next(self) -> Optional[Packet]:
        # Strict priority without scanning empty queues: the lowest set
        # bit of the nonempty mask is the highest-priority backlogged queue.
        mask = self._nonempty
        if not mask:
            return None
        priority = (mask & -mask).bit_length() - 1
        queue = self.queues[priority]
        pkt = queue.popleft()
        if not queue:
            self._nonempty = mask & (mask - 1)  # clear the lowest set bit
        return pkt

    def _stamp_qlen(self, pkt: Packet) -> int:
        """Queue length reported in INT records.

        A subclass hook: the base-class hot path inlines the plain
        ``qlen_bytes`` read, so VOQ ports (``CircuitPort``) override
        :meth:`_start_tx` wholesale and route through this hook there.
        """
        return self.qlen_bytes

    def _start_tx(self) -> None:
        # The per-packet hot path: the strict-priority pop, the INT stamp,
        # and the finish-event push are all inlined (no _pop_next /
        # _stamp_qlen / sim.at indirection) — this method and _finish_tx
        # execute once per packet per hop, millions of times per run.
        mask = self._nonempty
        if not mask:
            return
        priority = (mask & -mask).bit_length() - 1
        queue = self.queues[priority]
        pkt = queue.popleft()
        if not queue:
            self._nonempty = mask & (mask - 1)  # clear the lowest set bit
        self.busy = True
        size = pkt.size
        qlen = self.qlen_bytes - size
        self.qlen_bytes = qlen
        sim = self.sim
        now = sim.now
        tx_bytes = self.tx_bytes + size
        self.tx_bytes = tx_bytes
        if self.int_stamping and pkt.int_enabled:
            hops = pkt.int_hops
            if hops is None:
                hops = pkt.int_hops = []
            hops.append(
                self._pool.hop(qlen, now, tx_bytes, self.rate_bps, self.port_id)
            )
        if self.record_queuing and pkt.kind == DATA:
            self.queuing_delays_ns.append(now - pkt.enqueue_ts)
        ser = self._ser_cache.get(size)
        if ser is None:
            ser = self._ser_cache[size] = tx_time_ns(size, self.rate_bps)
        # Two heap events per hop, both on the engine's allocation-free
        # tuple fast path: _finish_tx frees the transmitter at the end of
        # serialization, then schedules the delivery at the peer.  The
        # delivery is deliberately *not* scheduled here at _start_tx time:
        # its heap sequence number would shift by one serialization time,
        # flipping same-nanosecond tie-breaks between ports with unequal
        # packet sizes/rates — and the fig4/6/7 series are bit-exact
        # regression guardrails.
        heappush(sim._heap, (now + ser, next(sim._seq), self._finish_cb, (pkt,)))
        sim._live += 1

    def _finish_tx(self, pkt: Packet) -> None:
        buffer = self.buffer
        if buffer is not None:
            buffer.used -= pkt.size  # inlined SharedBuffer.on_dequeue
            assert buffer.used >= 0, "shared buffer underflow"
        deliver = self._deliver
        if deliver is not None:
            sim = self.sim
            heappush(
                sim._heap,
                (sim.now + self.prop_delay_ns, next(sim._seq), deliver, (pkt,)),
            )
            sim._live += 1
        self.busy = False
        if not self.paused and self.qlen_bytes > 0:
            self._start_tx()

    # ------------------------------------------------------------------
    # Pause / resume (used by the circuit port during "nights")
    # ------------------------------------------------------------------
    def pause(self) -> None:
        """Stop starting new transmissions (the in-flight one completes)."""
        self.paused = True

    def resume(self) -> None:
        """Resume draining the queues."""
        self.paused = False
        if not self.busy and self.qlen_bytes > 0:
            self._start_tx()

    # ------------------------------------------------------------------
    @property
    def utilization_bytes(self) -> int:
        """Cumulative bytes transmitted (basis of throughput sampling)."""
        return self.tx_bytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EgressPort({self.name or self.port_id}, "
            f"{self.rate_bps/1e9:g}Gbps, qlen={self.qlen_bytes}B)"
        )

"""Egress ports: serialization, queueing, ECN marking, and INT stamping.

An :class:`EgressPort` models one output of a switch (or the host NIC): a
set of strict-priority FIFO queues drained at the port's line rate, a link
to a peer node (propagation delay), optional membership in a switch-wide
:class:`~repro.sim.buffer.SharedBuffer` governed by Dynamic Thresholds,
optional ECN marking, and the INT stamping PowerTCP/HPCC rely on.

Telemetry semantics follow the paper exactly: the per-hop record carries
the egress queue length, timestamp, cumulative transmitted bytes, and
bandwidth, all taken *when the packet is scheduled for transmission*
(i.e. at the moment it starts serializing).
"""

from __future__ import annotations

import random
from collections import deque
from typing import List, Optional

from repro.sim.engine import Simulator
from repro.sim.packet import DATA, HopRecord, Packet
from repro.units import tx_time_ns

NUM_PRIORITIES = 8

_port_counter = 0


def _next_port_id() -> int:
    global _port_counter
    _port_counter += 1
    return _port_counter


class EcnConfig:
    """RED-style ECN marking thresholds on the instantaneous queue.

    ``kmin == kmax`` degenerates to the DCTCP step mark at threshold K.
    Otherwise the marking probability ramps linearly from 0 at ``kmin``
    to ``pmax`` at ``kmax`` and is 1 above ``kmax`` (DCQCN's configuration).
    """

    __slots__ = ("kmin", "kmax", "pmax")

    def __init__(self, kmin: int, kmax: int, pmax: float):
        if kmin > kmax:
            raise ValueError(f"kmin {kmin} > kmax {kmax}")
        if not 0.0 <= pmax <= 1.0:
            raise ValueError(f"pmax must be in [0,1], got {pmax}")
        self.kmin = kmin
        self.kmax = kmax
        self.pmax = pmax

    @staticmethod
    def step(threshold: int) -> "EcnConfig":
        """DCTCP-style deterministic marking above ``threshold`` bytes."""
        return EcnConfig(threshold, threshold, 1.0)

    def should_mark(self, qlen: int, rng: random.Random) -> bool:
        """Marking decision for a packet arriving to a queue of ``qlen`` bytes."""
        if qlen <= self.kmin:
            return False
        if qlen >= self.kmax:
            return True
        fraction = (qlen - self.kmin) / (self.kmax - self.kmin)
        return rng.random() < fraction * self.pmax


class EgressPort:
    """One serializing output port.

    Parameters
    ----------
    sim:
        the event engine.
    rate_bps:
        line rate in bits per second.
    prop_delay_ns:
        one-way propagation delay of the attached link.
    peer:
        object with a ``receive(packet)`` method (a Switch or Host); may be
        attached later via :meth:`connect`.
    buffer:
        optional shared switch buffer enforcing Dynamic Thresholds.  Ports
        without a buffer (host NICs) never drop.
    ecn:
        optional ECN marking configuration applied to ECN-capable packets.
    int_stamping:
        whether this port appends INT records to INT-enabled packets.
    record_queuing:
        when True, per-packet queueing delays are appended to
        ``queuing_delays_ns`` (used for the Fig. 8b tail-latency metric).
    """

    __slots__ = (
        "sim",
        "rate_bps",
        "prop_delay_ns",
        "peer",
        "buffer",
        "ecn",
        "int_stamping",
        "name",
        "port_id",
        "rng",
        "queues",
        "qlen_bytes",
        "tx_bytes",
        "busy",
        "paused",
        "drops",
        "marks",
        "max_qlen_bytes",
        "record_queuing",
        "queuing_delays_ns",
        "_pending_head",
    )

    def __init__(
        self,
        sim: Simulator,
        rate_bps: float,
        prop_delay_ns: int,
        *,
        peer=None,
        buffer=None,
        ecn: Optional[EcnConfig] = None,
        int_stamping: bool = False,
        name: str = "",
        rng: Optional[random.Random] = None,
        record_queuing: bool = False,
    ):
        if rate_bps <= 0:
            raise ValueError(f"rate must be positive, got {rate_bps}")
        if prop_delay_ns < 0:
            raise ValueError(f"negative propagation delay: {prop_delay_ns}")
        self.sim = sim
        self.rate_bps = rate_bps
        self.prop_delay_ns = prop_delay_ns
        self.peer = peer
        self.buffer = buffer
        self.ecn = ecn
        self.int_stamping = int_stamping
        self.name = name
        self.port_id = _next_port_id()
        # The RNG (ECN marking decisions) is seeded from the *name*, which
        # is stable across runs; the global port_id counter is not, and
        # seeding from it would make identical runs diverge.
        self.rng = rng if rng is not None else random.Random(name or "port")
        self.queues: List[deque] = [deque() for _ in range(NUM_PRIORITIES)]
        self.qlen_bytes = 0
        self.tx_bytes = 0
        self.busy = False
        self.paused = False
        self.drops = 0
        self.marks = 0
        self.max_qlen_bytes = 0
        self.record_queuing = record_queuing
        self.queuing_delays_ns: List[int] = []
        self._pending_head: Optional[Packet] = None

    # ------------------------------------------------------------------
    def connect(self, peer, prop_delay_ns: Optional[int] = None) -> None:
        """Attach the downstream node, optionally overriding the link delay."""
        self.peer = peer
        if prop_delay_ns is not None:
            self.prop_delay_ns = prop_delay_ns

    # ------------------------------------------------------------------
    # Enqueue path
    # ------------------------------------------------------------------
    def enqueue(self, pkt: Packet) -> bool:
        """Admit a packet; returns False if it was dropped.

        DT admission (when a shared buffer is attached) only polices DATA
        packets — small control packets (ACK/CNP/grant) are always admitted,
        mirroring how RDMA deployments protect control traffic.
        """
        if self.buffer is not None and pkt.kind == DATA:
            if not self.buffer.admits(self.qlen_bytes, pkt.size):
                self.drops += 1
                self.buffer.on_drop()
                return False
            self.buffer.on_enqueue(pkt.size)
        elif self.buffer is not None:
            self.buffer.on_enqueue(pkt.size)

        if self.ecn is not None and pkt.ecn_capable:
            if self.ecn.should_mark(self.qlen_bytes, self.rng):
                pkt.ecn_marked = True
                self.marks += 1

        pkt.enqueue_ts = self.sim.now
        self.queues[pkt.priority].append(pkt)
        self.qlen_bytes += pkt.size
        if self.qlen_bytes > self.max_qlen_bytes:
            self.max_qlen_bytes = self.qlen_bytes
        if not self.busy and not self.paused:
            self._start_tx()
        return True

    # ------------------------------------------------------------------
    # Dequeue path
    # ------------------------------------------------------------------
    def _pop_next(self) -> Optional[Packet]:
        for queue in self.queues:
            if queue:
                return queue.popleft()
        return None

    def _stamp_qlen(self, pkt: Packet) -> int:
        """Queue length reported in INT records (overridden by VOQ ports)."""
        return self.qlen_bytes

    def _start_tx(self) -> None:
        pkt = self._pop_next()
        if pkt is None:
            return
        self.busy = True
        self.qlen_bytes -= pkt.size
        now = self.sim.now
        self.tx_bytes += pkt.size
        if self.int_stamping and pkt.int_enabled:
            pkt.stamp_int(
                HopRecord(
                    qlen=self._stamp_qlen(pkt),
                    ts_ns=now,
                    tx_bytes=self.tx_bytes,
                    bandwidth_bps=self.rate_bps,
                    port_id=self.port_id,
                )
            )
        if self.record_queuing and pkt.kind == DATA:
            self.queuing_delays_ns.append(now - pkt.enqueue_ts)
        serialization = tx_time_ns(pkt.size, self.rate_bps)
        self.sim.after(serialization, self._finish_tx, pkt)

    def _finish_tx(self, pkt: Packet) -> None:
        if self.buffer is not None:
            self.buffer.on_dequeue(pkt.size)
        if self.peer is not None:
            self.sim.after(self.prop_delay_ns, self.peer.receive, pkt)
        self.busy = False
        if not self.paused and self.qlen_bytes > 0:
            self._start_tx()

    # ------------------------------------------------------------------
    # Pause / resume (used by the circuit port during "nights")
    # ------------------------------------------------------------------
    def pause(self) -> None:
        """Stop starting new transmissions (the in-flight one completes)."""
        self.paused = True

    def resume(self) -> None:
        """Resume draining the queues."""
        self.paused = False
        if not self.busy and self.qlen_bytes > 0:
            self._start_tx()

    # ------------------------------------------------------------------
    @property
    def utilization_bytes(self) -> int:
        """Cumulative bytes transmitted (basis of throughput sampling)."""
        return self.tx_bytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EgressPort({self.name or self.port_id}, "
            f"{self.rate_bps/1e9:g}Gbps, qlen={self.qlen_bytes}B)"
        )

"""Egress ports: serialization, queueing, ECN marking, and INT stamping.

An :class:`EgressPort` models one output of a switch (or the host NIC): a
set of strict-priority FIFO queues drained at the port's line rate, a link
to a peer node (propagation delay), optional membership in a switch-wide
:class:`~repro.sim.buffer.SharedBuffer` governed by Dynamic Thresholds,
optional ECN marking, and the INT stamping PowerTCP/HPCC rely on.

Telemetry semantics follow the paper exactly: the per-hop record carries
the egress queue length, timestamp, cumulative transmitted bytes, and
bandwidth, all taken *when the packet is scheduled for transmission*
(i.e. at the moment it starts serializing).

Packet-train batching (opt-in, ``Simulator(tx_batch_limit=n)`` with
``n > 1``): when the transmitter is free, up to ``n`` back-to-back
same-priority packets are committed as one *train* — per-packet finish
events are elided entirely.  Each packet keeps its own serialization
start time for INT/queuing-delay stamps, its own Dynamic-Thresholds
buffer release (deferred to its individual finish time and flushed at
every admission decision point), and its own delivery event at
``finish_i + prop_delay`` — all committed up front at train start.  The
port's transmitter state is a ``_free_at`` timestamp instead of a finish
event.  An arrival during serialization with empty queues, matching
priority, and train budget left *extends* the in-flight train in place —
committed immediately with its serialization start at the train's
current end, no queueing and no extra event (same-priority FIFO
extension keeps departure order exact; only timing granularity is
approximated, bounded by the train length like every other batching
effect).  Arrivals that cannot extend (backlog, other priority, or
budget exhausted) queue up and arm a single *wake* event at the train
end, so work conservation is preserved with at most one event per train
where the unbatched path pays one per packet.  A PFC pause arriving mid-train
truncates it: packets whose serialization had not started by the pause
instant are returned to the queue front with qlen/tx/buffer/INT
accounting undone and their delivery events un-scheduled
(``Simulator._remove_entries`` — O(heap), acceptable because pauses are
rare).  The per-packet train entries truncation needs are kept only
when ``Simulator.pause_tracking`` is on (the PFC controller enables it;
nothing else in the paper's scenarios pauses ports mid-run).  The approximation relative to ``n == 1`` is only in
*interleaving*: mid-train arrivals cannot preempt at packet boundaries
and see the port's post-train queue length, so results are
deterministic per configuration but not bit-identical across batching
settings.  Elided per-packet completions are added back into
``Simulator.events_processed`` (see ``Simulator.events_coalesced``), so
event counts stay comparable across configurations (up to the wake
events, a few percent).
"""

from __future__ import annotations

import random
import weakref
from array import array
from collections import deque
from heapq import heappop, heappush
from typing import List, Optional

from repro.sim.buffer import _NEVER
from repro.sim.engine import Simulator
from repro.sim.packet import DATA, HopRecord, Packet, get_pool
from repro.units import tx_time_ns

NUM_PRIORITIES = 8

_port_counter = 0

#: per-simulator count of anonymous ports, for the fallback RNG seed —
#: deterministic across runs (unlike the global port_id counter, which
#: keeps incrementing across simulators in one process)
_anon_ports = weakref.WeakKeyDictionary()


def _next_port_id() -> int:
    global _port_counter
    _port_counter += 1
    return _port_counter


def _anon_seed(sim: Simulator) -> str:
    """Fallback ECN-RNG seed for an unnamed port: distinct per port,
    stable across identical runs (a per-simulator construction counter)."""
    n = _anon_ports.get(sim, 0) + 1
    _anon_ports[sim] = n
    return f"port#{n}"


class EcnConfig:
    """RED-style ECN marking thresholds on the instantaneous queue.

    ``kmin == kmax`` degenerates to the DCTCP step mark at threshold K.
    Otherwise the marking probability ramps linearly from 0 at ``kmin``
    to ``pmax`` at ``kmax`` and is 1 above ``kmax`` (DCQCN's configuration).
    """

    __slots__ = ("kmin", "kmax", "pmax")

    def __init__(self, kmin: int, kmax: int, pmax: float):
        if kmin > kmax:
            raise ValueError(f"kmin {kmin} > kmax {kmax}")
        if not 0.0 <= pmax <= 1.0:
            raise ValueError(f"pmax must be in [0,1], got {pmax}")
        self.kmin = kmin
        self.kmax = kmax
        self.pmax = pmax

    @staticmethod
    def step(threshold: int) -> "EcnConfig":
        """DCTCP-style deterministic marking above ``threshold`` bytes."""
        return EcnConfig(threshold, threshold, 1.0)

    def should_mark(self, qlen: int, rng: random.Random) -> bool:
        """Marking decision for a packet arriving to a queue of ``qlen`` bytes."""
        if qlen <= self.kmin:
            return False
        if qlen >= self.kmax:
            return True
        fraction = (qlen - self.kmin) / (self.kmax - self.kmin)
        return rng.random() < fraction * self.pmax


class EgressPort:
    """One serializing output port.

    Parameters
    ----------
    sim:
        the event engine.
    rate_bps:
        line rate in bits per second.
    prop_delay_ns:
        one-way propagation delay of the attached link.
    peer:
        object with a ``receive(packet)`` method (a Switch or Host); may be
        attached later via :meth:`connect`.
    buffer:
        optional shared switch buffer enforcing Dynamic Thresholds.  Ports
        without a buffer (host NICs) never drop.
    ecn:
        optional ECN marking configuration applied to ECN-capable packets.
    int_stamping:
        whether this port appends INT records to INT-enabled packets.
    record_queuing:
        when True, per-packet queueing delays are appended to
        ``queuing_delays_ns`` (used for the Fig. 8b tail-latency metric).
    """

    __slots__ = (
        "sim",
        "rate_bps",
        "prop_delay_ns",
        "peer",
        "buffer",
        "ecn",
        "int_stamping",
        "name",
        "port_id",
        "rng",
        "queues",
        "qlen_bytes",
        "tx_bytes",
        "busy",
        "paused",
        "drops",
        "marks",
        "max_qlen_bytes",
        "record_queuing",
        "queuing_delays_ns",
        "_nonempty",
        "_pool",
        "_ser_cache",
        "_deliver",
        "_finish_cb",
        "_batch_limit",
        "_train",
        "_train_prio",
        "_train_n",
        "_free_at",
        "_wake_armed",
        "_wake_cb",
    )

    def __new__(cls, sim: Simulator, *args, **kwargs):
        # Class-swap specialization: the overwhelmingly common engine
        # configuration (binary-heap scheduler, batching off) gets a
        # subclass whose hot methods are the seed-exact bodies with no
        # scheduler or batching branches at all — the alternative-path
        # checks cost a few percent when multiplied by millions of
        # events.  Subclasses (CircuitPort) are never swapped, and the
        # engine configuration is fixed at Simulator construction, so
        # the choice is safe to make once here.  The compiled engine
        # qualifies too (its drain pops from the same ``_heap`` list the
        # specialized pushes target), but an unresolved ``"auto"``
        # simulator must NOT: its first run may migrate the heap into a
        # calendar queue, which a ``_HeapPort``'s raw-list pushes would
        # bypass.
        if (
            cls is EgressPort
            and getattr(sim, "_sched", None) is None
            and not getattr(sim, "_auto_pending", False)
            and getattr(sim, "tx_batch_limit", 1) == 1
        ):
            return object.__new__(_HeapPort)
        return object.__new__(cls)

    def __init__(
        self,
        sim: Simulator,
        rate_bps: float,
        prop_delay_ns: int,
        *,
        peer=None,
        buffer=None,
        ecn: Optional[EcnConfig] = None,
        int_stamping: bool = False,
        name: str = "",
        rng: Optional[random.Random] = None,
        record_queuing: bool = False,
    ):
        if rate_bps <= 0:
            raise ValueError(f"rate must be positive, got {rate_bps}")
        if prop_delay_ns < 0:
            raise ValueError(f"negative propagation delay: {prop_delay_ns}")
        self.sim = sim
        self.rate_bps = rate_bps
        self.prop_delay_ns = prop_delay_ns
        self.peer = peer
        self.buffer = buffer
        self.ecn = ecn
        self.int_stamping = int_stamping
        self.name = name
        self.port_id = _next_port_id()
        # The RNG (ECN marking decisions) is seeded from the *name*, which
        # is stable across runs; the global port_id counter is not, and
        # seeding from it would make identical runs diverge.  Unnamed
        # ports fall back to a per-simulator construction counter, so two
        # anonymous ports never share a mark sequence.
        self.rng = rng if rng is not None else random.Random(name or _anon_seed(sim))
        self.queues: List[deque] = [deque() for _ in range(NUM_PRIORITIES)]
        self.qlen_bytes = 0
        self.tx_bytes = 0
        self.busy = False
        self.paused = False
        self.drops = 0
        self.marks = 0
        self.max_qlen_bytes = 0
        self.record_queuing = record_queuing
        self.queuing_delays_ns = array("q")
        self._nonempty = 0  # bitmask of non-empty priority queues
        self._pool = get_pool(sim)
        #: serialization-time memo: packet size -> ns at this port's rate
        #: (the rate is fixed for the port's lifetime)
        self._ser_cache = {}
        #: cached bound methods for the per-packet events — recreating a
        #: bound method per heappush is a measurable allocation on the
        #: hot path
        self._deliver = peer.receive if peer is not None else None
        self._finish_cb = self._finish_tx
        #: packets per train (1 = batching off, the byte-exact default);
        #: fixed per simulator so every port of a run agrees
        self._batch_limit = getattr(sim, "tx_batch_limit", 1)
        #: last committed train: list of (pkt, start_ns, finish_ns, hop,
        #: qdelay, delivery_entry) tuples, kept only so a PFC pause
        #: before ``_free_at`` can truncate it (stale afterwards)
        self._train = None
        self._train_prio = 0
        #: packets committed to the in-flight train (extension budget)
        self._train_n = 0
        #: transmitter-free timestamp — the batched path's substitute
        #: for the ``busy`` flag + finish event
        self._free_at = 0
        #: whether a wake event is pending at ``_free_at``
        self._wake_armed = False
        self._wake_cb = self._wake

    # ------------------------------------------------------------------
    def connect(self, peer, prop_delay_ns: Optional[int] = None) -> None:
        """Attach the downstream node, optionally overriding the link delay."""
        self.peer = peer
        self._deliver = peer.receive if peer is not None else None
        if prop_delay_ns is not None:
            self.prop_delay_ns = prop_delay_ns

    # ------------------------------------------------------------------
    # Enqueue path
    # ------------------------------------------------------------------
    def enqueue(self, pkt: Packet) -> bool:
        """Admit a packet; returns False if it was dropped.

        DT admission (when a shared buffer is attached) only polices DATA
        packets — small control packets (ACK/CNP/grant) are always admitted,
        mirroring how RDMA deployments protect control traffic.
        """
        size = pkt.size
        sim = self.sim
        now = sim.now
        buffer = self.buffer
        if buffer is not None:
            # Train batching defers releases; flush the due ones so the
            # DT admission below sees the exact occupancy.  The sentinel
            # keeps this to one compare whenever batching is off or no
            # release has come due; the flush itself is inlined from
            # SharedBuffer.release_due (packed-int entries) — it fires
            # on a large fraction of enqueues under sustained load.
            if now >= buffer._next_release:
                deferred = buffer._deferred
                used = buffer.used
                release_limit = ((now + 1) << 20) - 1
                while deferred and deferred[0] <= release_limit:
                    used -= heappop(deferred) & 0xFFFFF
                buffer.used = used
                buffer._next_release = (
                    (deferred[0] >> 20) if deferred else _NEVER
                )
            # Inlined SharedBuffer.admits / on_enqueue / on_drop — one
            # call per enqueue on every switch port.
            if pkt.kind == DATA:
                used = buffer.used
                if (
                    used + size > buffer.capacity
                    or self.qlen_bytes >= buffer.alpha * (buffer.capacity - used)
                ):
                    self.drops += 1
                    buffer.drops += 1
                    return False
            buffer.used += size
            buffer.total_admitted += size
            # Control packets bypass DT admission, so the shared-memory
            # invariant still needs its (stripped-with--O) safety net.
            assert buffer.used <= buffer.capacity, "shared buffer overflow"

        ecn = self.ecn
        if ecn is not None and pkt.ecn_capable and self.qlen_bytes > ecn.kmin:
            # qlen <= kmin is should_mark's no-RNG fast reject — checking
            # it here skips the call for the uncongested common case.
            if ecn.should_mark(self.qlen_bytes, self.rng):
                pkt.ecn_marked = True
                self.marks += 1

        if self._batch_limit != 1 and not self._nonempty and not self.paused:
            # Batched hot paths, both skipping the deque append/pop
            # round-trip and the priority-mask updates:
            # * port free -> fused single-packet train (start = now);
            # * port serializing a train, queues empty, same priority,
            #   extension budget left -> extend the in-flight train
            #   (start = its current end).  Committing at arrival instead
            #   of waking at the train boundary elides the wake event for
            #   the dominant steady-state continuation; same-priority
            #   FIFO extension keeps departure *order* exact, and the
            #   commit-ahead horizon stays bounded by tx_batch_limit.
            if now >= self._free_at:
                start = now
                fresh = True
            elif (
                pkt.priority == self._train_prio
                and self._train_n < self._batch_limit
            ):
                start = self._free_at
                fresh = False
            else:
                start = -1
            if start >= 0:
                # qlen is 0 throughout: empty queues (the mask/byte-count
                # invariant) and the committed train's bytes are already
                # deducted.
                tx_bytes = self.tx_bytes + size
                self.tx_bytes = tx_bytes
                cache = self._ser_cache
                try:
                    ser = cache[size]
                except KeyError:
                    ser = cache[size] = tx_time_ns(size, self.rate_bps)
                t = start + ser
                if size > self.max_qlen_bytes:
                    self.max_qlen_bytes = size
                hop = None
                if self.int_stamping and pkt.int_enabled:
                    hops = pkt.int_hops
                    if hops is None:
                        hops = pkt.int_hops = []
                    # inlined PacketPool.hop (one call per data packet
                    # per stamping hop adds up)
                    free = self._pool._hops
                    if free:
                        hop = free.pop()
                        hop.qlen = 0
                        hop.ts_ns = start
                        hop.tx_bytes = tx_bytes
                        hop.bandwidth_bps = self.rate_bps
                        hop.port_id = self.port_id
                    else:
                        hop = HopRecord(
                            0, start, tx_bytes, self.rate_bps, self.port_id
                        )
                    hops.append(hop)
                qdelay = -1
                if self.record_queuing and pkt.kind == DATA:
                    # a fused packet serializes on arrival (zero wait); an
                    # extension packet waits for the committed train's end
                    qdelay = start - now
                    self.queuing_delays_ns.append(qdelay)
                if buffer is not None:
                    # inlined SharedBuffer.defer_release (packed-int entry)
                    heappush(buffer._deferred, (t << 20) | size)
                    if t < buffer._next_release:
                        buffer._next_release = t
                dentry = None
                deliver = self._deliver
                if deliver is not None:
                    dentry = (t + self.prop_delay_ns, next(sim._seq), deliver, (pkt,))
                    sched = sim._sched
                    if sched is None:
                        heappush(sim._heap, dentry)
                    else:
                        sched.push(dentry)
                    sim._live += 1
                if fresh:
                    self._train_n = 1
                    self._train_prio = pkt.priority
                    if sim.pause_tracking:
                        # Arrival time is only re-read if a truncation
                        # returns this packet to the queue — so the
                        # store is needed (and paid) only under tracking.
                        pkt.enqueue_ts = now
                        self._train = [(pkt, start, t, hop, qdelay, dentry)]
                    else:
                        self._train = None
                else:
                    self._train_n += 1
                    if self._train is not None:
                        pkt.enqueue_ts = now
                        self._train.append((pkt, start, t, hop, qdelay, dentry))
                self._free_at = t
                sim.events_coalesced += 1
                return True
        pkt.enqueue_ts = now
        priority = pkt.priority
        self.queues[priority].append(pkt)
        self._nonempty |= 1 << priority
        qlen = self.qlen_bytes + size
        self.qlen_bytes = qlen
        if qlen > self.max_qlen_bytes:
            self.max_qlen_bytes = qlen
        if self._batch_limit == 1:
            if not self.busy and not self.paused:
                self._start_tx()
        elif not self.paused:
            # Batched transmitter state is the _free_at timestamp: start
            # a train if the port is free, otherwise make sure a wake
            # event is pending at the in-flight train's end.
            if now >= self._free_at:
                self._start_train()
            elif not self._wake_armed:
                self._wake_armed = True
                entry = (self._free_at, next(sim._seq), self._wake_cb, ())
                sched = sim._sched
                if sched is None:
                    heappush(sim._heap, entry)
                else:
                    sched.push(entry)
                sim._live += 1
        return True

    # ------------------------------------------------------------------
    # Dequeue path
    # ------------------------------------------------------------------
    def _pop_next(self) -> Optional[Packet]:
        # Strict priority without scanning empty queues: the lowest set
        # bit of the nonempty mask is the highest-priority backlogged queue.
        mask = self._nonempty
        if not mask:
            return None
        priority = (mask & -mask).bit_length() - 1
        queue = self.queues[priority]
        pkt = queue.popleft()
        if not queue:
            self._nonempty = mask & (mask - 1)  # clear the lowest set bit
        return pkt

    def _stamp_qlen(self, pkt: Packet) -> int:
        """Queue length reported in INT records.

        A subclass hook: the base-class hot path inlines the plain
        ``qlen_bytes`` read, so VOQ ports (``CircuitPort``) override
        :meth:`_start_tx` wholesale and route through this hook there.
        """
        return self.qlen_bytes

    def _start_tx(self) -> None:
        # The per-packet hot path: the strict-priority pop, the INT stamp,
        # and the finish-event push are all inlined (no _pop_next /
        # _stamp_qlen / sim.at indirection) — this method and _finish_tx
        # execute once per packet per hop, millions of times per run.
        if self._batch_limit > 1:
            self._start_train()
            return
        mask = self._nonempty
        if not mask:
            return
        priority = (mask & -mask).bit_length() - 1
        queue = self.queues[priority]
        pkt = queue.popleft()
        if not queue:
            self._nonempty = mask & (mask - 1)  # clear the lowest set bit
        self.busy = True
        size = pkt.size
        qlen = self.qlen_bytes - size
        self.qlen_bytes = qlen
        sim = self.sim
        now = sim.now
        tx_bytes = self.tx_bytes + size
        self.tx_bytes = tx_bytes
        if self.int_stamping and pkt.int_enabled:
            hops = pkt.int_hops
            if hops is None:
                hops = pkt.int_hops = []
            # inlined PacketPool.hop (one call per data packet per
            # stamping hop adds up)
            free = self._pool._hops
            if free:
                hop = free.pop()
                hop.qlen = qlen
                hop.ts_ns = now
                hop.tx_bytes = tx_bytes
                hop.bandwidth_bps = self.rate_bps
                hop.port_id = self.port_id
            else:
                hop = HopRecord(qlen, now, tx_bytes, self.rate_bps, self.port_id)
            hops.append(hop)
        if self.record_queuing and pkt.kind == DATA:
            self.queuing_delays_ns.append(now - pkt.enqueue_ts)
        cache = self._ser_cache
        try:
            ser = cache[size]
        except KeyError:
            ser = cache[size] = tx_time_ns(size, self.rate_bps)
        # Two heap events per hop, both on the engine's allocation-free
        # tuple fast path: _finish_tx frees the transmitter at the end of
        # serialization, then schedules the delivery at the peer.  The
        # delivery is deliberately *not* scheduled here at _start_tx time:
        # its heap sequence number would shift by one serialization time,
        # flipping same-nanosecond tie-breaks between ports with unequal
        # packet sizes/rates — and the fig4/6/7 series are bit-exact
        # regression guardrails.
        entry = (now + ser, next(sim._seq), self._finish_cb, (pkt,))
        sched = sim._sched
        if sched is None:
            heappush(sim._heap, entry)
        else:
            sched.push(entry)
        sim._live += 1

    def _finish_tx(self, pkt: Packet) -> None:
        buffer = self.buffer
        if buffer is not None:
            buffer.used -= pkt.size  # inlined SharedBuffer.on_dequeue
            assert buffer.used >= 0, "shared buffer underflow"
        deliver = self._deliver
        if deliver is not None:
            sim = self.sim
            entry = (
                sim.now + self.prop_delay_ns, next(sim._seq), deliver, (pkt,)
            )
            sched = sim._sched
            if sched is None:
                heappush(sim._heap, entry)
            else:
                sched.push(entry)
            sim._live += 1
        self.busy = False
        if not self.paused and self.qlen_bytes > 0:
            self._start_tx()

    # ------------------------------------------------------------------
    # Packet-train batching (tx_batch_limit > 1)
    # ------------------------------------------------------------------
    def _start_train(self) -> None:
        # Batched equivalent of _start_tx: pop up to _batch_limit
        # back-to-back same-priority packets and commit the whole train
        # up front — INT hops, queuing delays, deferred buffer releases,
        # and per-packet delivery events — with *no* finish event at all.
        # The train entries are kept until _free_at only so a PFC pause
        # can truncate (see module docstring for semantics).
        mask = self._nonempty
        if not mask:
            return
        sim = self.sim
        now = sim.now
        buffer = self.buffer
        if buffer is not None and now >= buffer._next_release:
            buffer.release_due(now)
        low = mask & -mask
        priority = low.bit_length() - 1
        queue = self.queues[priority]
        if mask == low and len(queue) == 1:
            # Single-packet fast path — the dominant shape under
            # paper-typical congestion control (near-empty queues): no
            # wake (no backlog remains), and a train entry is kept only
            # under pause tracking (later *extensions* of this train may
            # need to be truncated; the first packet itself never is).
            pkt = queue.popleft()
            self._nonempty = 0
            size = pkt.size
            # qlen after the pop is 0: this was the only queued packet.
            self.qlen_bytes = 0
            tx_bytes = self.tx_bytes + size
            self.tx_bytes = tx_bytes
            cache = self._ser_cache
            try:
                ser = cache[size]
            except KeyError:
                ser = cache[size] = tx_time_ns(size, self.rate_bps)
            t = now + ser
            hop = None
            if self.int_stamping and pkt.int_enabled:
                hops = pkt.int_hops
                if hops is None:
                    hops = pkt.int_hops = []
                # inlined PacketPool.hop, as on the fused enqueue path
                free = self._pool._hops
                if free:
                    hop = free.pop()
                    hop.qlen = 0
                    hop.ts_ns = now
                    hop.tx_bytes = tx_bytes
                    hop.bandwidth_bps = self.rate_bps
                    hop.port_id = self.port_id
                else:
                    hop = HopRecord(0, now, tx_bytes, self.rate_bps, self.port_id)
                hops.append(hop)
            qdelay = -1
            if self.record_queuing and pkt.kind == DATA:
                qdelay = now - pkt.enqueue_ts
                self.queuing_delays_ns.append(qdelay)
            if buffer is not None:
                # inlined SharedBuffer.defer_release (packed-int entry)
                heappush(buffer._deferred, (t << 20) | size)
                if t < buffer._next_release:
                    buffer._next_release = t
            dentry = None
            deliver = self._deliver
            if deliver is not None:
                dentry = (t + self.prop_delay_ns, next(sim._seq), deliver, (pkt,))
                sched = sim._sched
                if sched is None:
                    heappush(sim._heap, dentry)
                else:
                    sched.push(dentry)
                sim._live += 1
            self._train_n = 1
            self._train_prio = priority
            if sim.pause_tracking:
                self._train = [(pkt, now, t, hop, qdelay, dentry)]
            else:
                self._train = None
            self._free_at = t
            sim.events_coalesced += 1
            return
        limit = self._batch_limit
        prop = self.prop_delay_ns
        pool = self._pool
        stamping = self.int_stamping
        recording = self.record_queuing
        qlen = self.qlen_bytes
        tx_bytes = self.tx_bytes
        ser_cache = self._ser_cache
        rate = self.rate_bps
        port_id = self.port_id
        deliver = self._deliver
        delays = self.queuing_delays_ns
        seq = sim._seq
        sched = sim._sched
        heap = sim._heap
        # Per-packet train entries exist only so a mid-train pause can
        # truncate; nothing in the paper's macro scenarios pauses ports,
        # so the bookkeeping is opt-in (Simulator.pause_tracking, set by
        # the PFC controller) and skipped otherwise.
        train = [] if sim.pause_tracking else None
        t = now
        pushed = 0
        n = 0
        while True:
            pkt = queue.popleft()
            size = pkt.size
            qlen -= size
            tx_bytes += size
            ser = ser_cache.get(size)
            if ser is None:
                ser = ser_cache[size] = tx_time_ns(size, rate)
            start = t
            t += ser
            hop = None
            if stamping and pkt.int_enabled:
                # Same values the unbatched path stamps at this packet's
                # serialization start (qlen excludes packets ahead of it
                # in the train; tx_bytes includes it and everything ahead).
                hop = pool.hop(qlen, start, tx_bytes, rate, port_id)
                hops = pkt.int_hops
                if hops is None:
                    hops = pkt.int_hops = []
                hops.append(hop)
            qdelay = -1
            if recording and pkt.kind == DATA:
                qdelay = start - pkt.enqueue_ts
                delays.append(qdelay)
            if buffer is not None:
                # inlined SharedBuffer.defer_release (packed-int entry)
                heappush(buffer._deferred, (t << 20) | size)
                if t < buffer._next_release:
                    buffer._next_release = t
            dentry = None
            if deliver is not None:
                dentry = (t + prop, next(seq), deliver, (pkt,))
                if sched is None:
                    heappush(heap, dentry)
                else:
                    sched.push(dentry)
                pushed += 1
            n += 1
            if train is not None:
                train.append((pkt, start, t, hop, qdelay, dentry))
            if not queue:
                self._nonempty = mask & (mask - 1)  # clear the lowest set bit
                break
            if n >= limit:
                break
        self.qlen_bytes = qlen
        self.tx_bytes = tx_bytes
        self._train = train
        self._train_prio = priority
        self._train_n = n
        self._free_at = t
        # Backlog left behind (train cut at the limit, or another
        # priority is queued): arm the wake so the next train starts at
        # this one's end — the one event per train that replaces the
        # unbatched path's one finish event per packet.
        if self._nonempty and not self._wake_armed:
            self._wake_armed = True
            entry = (t, next(seq), self._wake_cb, ())
            if sched is None:
                heappush(heap, entry)
            else:
                sched.push(entry)
            pushed += 1
        sim._live += pushed
        # Elided-event accounting: each packet's finish event would have
        # been one processed event on the unbatched path.  Folding them
        # back in (events_processed sums both counters) keeps the perf
        # suite's events/sec comparable across batch limits.
        sim.events_coalesced += n

    def _wake(self) -> None:
        # The elided finish event's only remaining job: start the next
        # train when packets arrived mid-serialization or a backlog was
        # left at the batch limit.  Superseded silently if a pause,
        # truncation, or same-nanosecond enqueue got there first.
        self._wake_armed = False
        if (
            not self.paused
            and self.qlen_bytes > 0
            and self.sim.now >= self._free_at
        ):
            self._start_train()

    def _truncate_train(self) -> None:
        # PFC pause mid-train: packets whose serialization had not
        # started by now go back to the queue front with qlen/tx/buffer
        # accounting undone, their INT hops detached, their queuing-delay
        # samples dropped, and their delivery events un-scheduled.
        train = self._train
        sim = self.sim
        now = sim.now
        cut = len(train)
        while cut > 0 and train[cut - 1][1] > now:
            cut -= 1
        # cut >= 1 always: the first packet starts at train start <= now.
        if cut == len(train):
            return  # every packet already started; nothing to undo
        buffer = self.buffer
        pool = self._pool
        queue = self.queues[self._train_prio]
        qlen = self.qlen_bytes
        tx_bytes = self.tx_bytes
        delays = self.queuing_delays_ns
        removed = []
        for pkt, _start, finish, hop, qdelay, dentry in reversed(train[cut:]):
            queue.appendleft(pkt)
            size = pkt.size
            qlen += size
            tx_bytes -= size
            if hop is not None:
                pkt.int_hops.pop()
                pool.recycle_hop(hop)
            if qdelay >= 0:
                delays.pop()
            if buffer is not None:
                buffer.cancel_deferred(finish, size)
            if dentry is not None:
                removed.append(dentry)
        if removed:
            sim._remove_entries(removed)
        returned = len(train) - cut
        sim.events_coalesced -= returned
        self._train_n -= returned
        self.qlen_bytes = qlen
        self.tx_bytes = tx_bytes
        self._nonempty |= 1 << self._train_prio
        del train[cut:]
        self._free_at = train[-1][2]

    # ------------------------------------------------------------------
    # Pause / resume (used by the circuit port during "nights")
    # ------------------------------------------------------------------
    def pause(self) -> None:
        """Stop starting new transmissions (the in-flight one completes).

        With train batching *and* ``Simulator.pause_tracking`` enabled
        (the PFC controller does this), packets of the committed train
        that have not started serializing yet return to the queue — the
        pause boundary stays packet-granular, exactly like the unbatched
        port.  Without tracking, a pause takes effect at the end of the
        committed train (at most ``tx_batch_limit`` packets later).
        """
        self.paused = True
        if self._train is not None and self.sim.now < self._free_at:
            self._truncate_train()

    def resume(self) -> None:
        """Resume draining the queues."""
        self.paused = False
        if self._batch_limit == 1:
            if not self.busy and self.qlen_bytes > 0:
                self._start_tx()
        elif self.qlen_bytes > 0:
            sim = self.sim
            if sim.now >= self._free_at:
                self._start_train()
            elif not self._wake_armed:
                # Backlog built up while paused, mid-serialization (e.g.
                # after a truncation): no enqueue will arm the wake, so
                # arm it here.
                self._wake_armed = True
                sim.at(self._free_at, self._wake_cb)

    # ------------------------------------------------------------------
    @property
    def utilization_bytes(self) -> int:
        """Cumulative bytes transmitted (basis of throughput sampling)."""
        return self.tx_bytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EgressPort({self.name or self.port_id}, "
            f"{self.rate_bps/1e9:g}Gbps, qlen={self.qlen_bytes}B)"
        )


class _HeapPort(EgressPort):
    """Hot-path specialization for heap-scheduled, unbatched simulators.

    ``EgressPort.__new__`` swaps construction to this class whenever the
    owning simulator uses the default binary-heap scheduler with
    ``tx_batch_limit == 1``.  The three per-packet methods below are the
    exact per-packet transmit pipeline with every alternative-path
    branch removed: no calendar-queue dispatch, no train-batching block,
    and no deferred-release flush (an unbatched simulator never defers
    buffer releases, so ``buffer.used`` is always current here).  The
    bodies must stay behaviorally identical to the general class with
    batching off — the committed figure series are byte-exact regression
    guardrails for exactly this path.
    """

    __slots__ = ()

    def enqueue(self, pkt: Packet) -> bool:
        size = pkt.size
        buffer = self.buffer
        if buffer is not None:
            # Inlined SharedBuffer.admits / on_enqueue / on_drop.
            if pkt.kind == DATA:
                used = buffer.used
                if (
                    used + size > buffer.capacity
                    or self.qlen_bytes >= buffer.alpha * (buffer.capacity - used)
                ):
                    self.drops += 1
                    buffer.drops += 1
                    return False
            buffer.used += size
            buffer.total_admitted += size
            assert buffer.used <= buffer.capacity, "shared buffer overflow"

        ecn = self.ecn
        if ecn is not None and pkt.ecn_capable and self.qlen_bytes > ecn.kmin:
            # qlen <= kmin is should_mark's no-RNG fast reject — same
            # decision and RNG stream, minus the call below kmin.
            if ecn.should_mark(self.qlen_bytes, self.rng):
                pkt.ecn_marked = True
                self.marks += 1

        pkt.enqueue_ts = self.sim.now
        priority = pkt.priority
        self.queues[priority].append(pkt)
        self._nonempty |= 1 << priority
        qlen = self.qlen_bytes + size
        self.qlen_bytes = qlen
        if qlen > self.max_qlen_bytes:
            self.max_qlen_bytes = qlen
        if not self.busy and not self.paused:
            self._start_tx()
        return True

    def _start_tx(self) -> None:
        mask = self._nonempty
        if not mask:
            return
        priority = (mask & -mask).bit_length() - 1
        queue = self.queues[priority]
        pkt = queue.popleft()
        if not queue:
            self._nonempty = mask & (mask - 1)  # clear the lowest set bit
        self.busy = True
        size = pkt.size
        qlen = self.qlen_bytes - size
        self.qlen_bytes = qlen
        sim = self.sim
        now = sim.now
        tx_bytes = self.tx_bytes + size
        self.tx_bytes = tx_bytes
        if self.int_stamping and pkt.int_enabled:
            hops = pkt.int_hops
            if hops is None:
                hops = pkt.int_hops = []
            # inlined PacketPool.hop (one call per data packet per
            # stamping hop adds up)
            free = self._pool._hops
            if free:
                hop = free.pop()
                hop.qlen = qlen
                hop.ts_ns = now
                hop.tx_bytes = tx_bytes
                hop.bandwidth_bps = self.rate_bps
                hop.port_id = self.port_id
            else:
                hop = HopRecord(qlen, now, tx_bytes, self.rate_bps, self.port_id)
            hops.append(hop)
        if self.record_queuing and pkt.kind == DATA:
            self.queuing_delays_ns.append(now - pkt.enqueue_ts)
        cache = self._ser_cache
        try:
            ser = cache[size]
        except KeyError:
            ser = cache[size] = tx_time_ns(size, self.rate_bps)
        # The delivery is deliberately *not* scheduled here (see the
        # general class: the heap sequence number must be drawn at
        # serialization end, or same-nanosecond tie-breaks flip).
        heappush(sim._heap, (now + ser, next(sim._seq), self._finish_cb, (pkt,)))
        sim._live += 1

    def _finish_tx(self, pkt: Packet) -> None:
        buffer = self.buffer
        if buffer is not None:
            buffer.used -= pkt.size  # inlined SharedBuffer.on_dequeue
            assert buffer.used >= 0, "shared buffer underflow"
        deliver = self._deliver
        if deliver is not None:
            sim = self.sim
            heappush(
                sim._heap,
                (sim.now + self.prop_delay_ns, next(sim._seq), deliver, (pkt,)),
            )
            sim._live += 1
        self.busy = False
        if not self.paused and self.qlen_bytes > 0:
            self._start_tx()

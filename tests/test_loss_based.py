"""Tests for the loss-based laws (NewReno, CUBIC) and §2's standing-queue
claim."""

import pytest

from repro.cc.base import AckFeedback
from repro.cc.cubic import Cubic
from repro.cc.newreno import NewReno
from repro.experiments.driver import FlowDriver
from repro.sim.engine import Simulator
from repro.topology.dumbbell import DumbbellParams, build_dumbbell
from repro.units import GBPS, MSEC, USEC


class StubSender:
    def __init__(self):
        self.sim = Simulator()
        self.base_rtt_ns = 20 * USEC
        self.host_bw_bps = 10 * GBPS
        self.mtu_payload = 1000
        self.cwnd = 0.0
        self.pacing_rate_bps = 0.0
        self.done = False


def ack(seq, newly, now=0):
    return AckFeedback(ack_seq=seq, newly_acked_bytes=newly,
                       rtt_ns=20 * USEC, now_ns=now)


# ----------------------------------------------------------------------
# NewReno unit behaviour
# ----------------------------------------------------------------------
def test_newreno_slow_start_doubles():
    cc, sender = NewReno(), StubSender()
    cc.on_start(sender)
    w0 = sender.cwnd
    cc.on_ack(sender, ack(int(w0), newly=int(w0)))  # a full window acked
    assert sender.cwnd == pytest.approx(2 * w0)


def test_newreno_loss_halves_and_exits_slow_start():
    cc, sender = NewReno(), StubSender()
    cc.on_start(sender)
    sender.cwnd = 100_000
    cc.on_loss(sender)
    assert sender.cwnd == pytest.approx(50_000)
    assert cc.ssthresh == pytest.approx(50_000)


def test_newreno_congestion_avoidance_linear():
    cc, sender = NewReno(), StubSender()
    cc.on_start(sender)
    sender.cwnd = 100_000
    cc.on_loss(sender)  # ssthresh = 50k, cwnd = 50k: now in CA
    w0 = sender.cwnd
    cc.on_ack(sender, ack(int(w0), newly=int(w0)))
    # One full window acked -> ~one MTU of growth.
    assert sender.cwnd == pytest.approx(w0 + sender.mtu_payload, rel=0.01)


def test_newreno_timeout_collapses():
    cc, sender = NewReno(), StubSender()
    cc.on_start(sender)
    sender.cwnd = 80_000
    cc.on_timeout(sender)
    assert sender.cwnd == sender.mtu_payload


# ----------------------------------------------------------------------
# CUBIC unit behaviour
# ----------------------------------------------------------------------
def test_cubic_pre_loss_grows_like_slow_start():
    cc, sender = Cubic(), StubSender()
    cc.on_start(sender)
    w0 = sender.cwnd
    cc.on_ack(sender, ack(int(w0), newly=int(w0)))
    assert sender.cwnd == pytest.approx(2 * w0)


def test_cubic_loss_reduces_by_beta():
    cc, sender = Cubic(beta=0.3), StubSender()
    cc.on_start(sender)
    sender.cwnd = 100_000
    cc.on_loss(sender)
    assert sender.cwnd == pytest.approx(70_000)


def test_cubic_recovers_toward_w_max():
    cc, sender = Cubic(), StubSender()
    cc.on_start(sender)
    sender.cwnd = 100_000
    cc.on_loss(sender)
    low = sender.cwnd
    # Ack steadily: the cubic curve climbs monotonically back toward
    # W_max.  (Full recovery takes K ~ seconds with the standard C —
    # CUBIC is built for WAN timescales, which is the point of §2.)
    acked = 0
    for i in range(1, 200):
        sender.sim.at(i * 100_000, lambda: None)
        sender.sim.run()
        acked += 10_000
        cc.on_ack(sender, ack(acked, newly=10_000, now=i * 100_000))
    assert sender.cwnd > low
    # The plateau target at t = K is exactly W_max.
    assert cc._cubic_window_mtus(cc._k_s) == pytest.approx(cc._w_max_mtus)


def test_cubic_fast_convergence_lowers_w_max():
    cc, sender = Cubic(beta=0.3), StubSender()
    cc.on_start(sender)
    sender.cwnd = 100_000
    cc.on_loss(sender)
    first_w_max = cc._w_max_mtus
    sender.cwnd = 50_000  # second loss at a smaller window
    cc.on_loss(sender)
    assert cc._w_max_mtus < first_w_max


# ----------------------------------------------------------------------
# §2's standing-queue claim, end to end
# ----------------------------------------------------------------------
@pytest.mark.parametrize("algo", ["newreno", "cubic"])
def test_loss_based_maintains_standing_queue(algo):
    """NewReno/CUBIC must fill the buffer and oscillate (Appendix C),
    unlike PowerTCP's near-zero queues."""
    def run(algorithm):
        sim = Simulator()
        net = build_dumbbell(
            sim,
            DumbbellParams(
                left_hosts=2,
                right_hosts=1,
                host_bw_bps=10 * GBPS,
                bottleneck_bw_bps=10 * GBPS,
                buffer_bytes=150_000,
            ),
        )
        driver = FlowDriver(net, algorithm)
        for src in range(2):
            driver.start_flow(src, 2, 10 ** 10, at_ns=0)
        driver.run(until_ns=20 * MSEC)
        return net

    lossy = run(algo)
    power = run("powertcp")
    # Loss-based law drops (queue hit the buffer) ...
    assert lossy.total_drops() > 0, algo
    # ... and keeps a much larger max queue than PowerTCP's steady state.
    assert (
        lossy.port("bottleneck").max_qlen_bytes
        > power.port("bottleneck").max_qlen_bytes
    )


def test_registry_resolves_loss_based():
    from repro.cc.registry import make_algorithm

    assert make_algorithm("newreno").name == "newreno"
    assert make_algorithm("cubic").name == "cubic"

"""Tests for the N-group deployment-mix subsystem (`coexistence`)."""

import pytest

from repro.experiments.coexistence import (
    DeploymentMixConfig,
    GroupSpec,
    apportion_flows,
    run_deployment_mix,
)
from repro.scenarios import get_scenario
from repro.units import MSEC

THREE_GROUPS = [
    {"algorithm": "powertcp", "fraction": 0.5},
    {"algorithm": "dcqcn", "fraction": 0.25},
    {"algorithm": "hpcc", "fraction": 0.25},
]


# ----------------------------------------------------------------------
# config normalization
# ----------------------------------------------------------------------
def test_default_config_is_the_legacy_two_group_cell():
    config = DeploymentMixConfig()
    assert [g.name for g in config.groups] == ["a", "b"]
    assert [g.algorithm for g in config.groups] == ["powertcp", "dcqcn"]
    assert config.total_flows == 4
    assert config.algorithm == "powertcp+dcqcn"


def test_legacy_keys_map_onto_two_groups():
    config = DeploymentMixConfig(
        algorithm_a="hpcc",
        algorithm_b="timely",
        flows_per_group=3,
        cc_params_b={"beta": 0.5},
    )
    assert config.total_flows == 6
    assert config.groups[0].algorithm == "hpcc"
    assert config.groups[1].algorithm == "timely"
    assert config.groups[1].cc_params == {"beta": 0.5}
    assert config.group_flow_counts() == [3, 3]


def test_groups_cannot_mix_with_legacy_keys():
    with pytest.raises(ValueError, match="deprecated"):
        DeploymentMixConfig(groups=THREE_GROUPS, algorithm_a="powertcp")
    with pytest.raises(ValueError, match="not both"):
        DeploymentMixConfig(flows_per_group=2, total_flows=4)


def test_group_dicts_are_coerced_and_auto_named():
    config = DeploymentMixConfig(groups=THREE_GROUPS, total_flows=8)
    assert [g.name for g in config.groups] == ["a", "b", "c"]
    assert all(isinstance(g, GroupSpec) for g in config.groups)
    assert config.group_flow_counts() == [4, 2, 2]
    assert config.algorithm == "powertcp+dcqcn+hpcc"


def test_bare_algorithm_strings_make_equal_weight_groups():
    config = DeploymentMixConfig(
        groups=["powertcp", "dcqcn", "timely"], total_flows=6
    )
    assert [g.algorithm for g in config.groups] == [
        "powertcp", "dcqcn", "timely",
    ]
    assert config.group_flow_counts() == [2, 2, 2]


def test_group_spec_rejects_unknown_keys_and_bad_values():
    with pytest.raises(ValueError, match="bogus"):
        DeploymentMixConfig(groups=[{"algorithm": "powertcp", "bogus": 1}])
    with pytest.raises(ValueError, match="fraction"):
        DeploymentMixConfig(groups=[{"fraction": -0.5}])
    with pytest.raises(ValueError, match="duplicate"):
        DeploymentMixConfig(groups=[{"name": "x"}, {"name": "x"}])


def test_rollout_fraction_reweights_the_newcomer():
    config = DeploymentMixConfig(
        groups=THREE_GROUPS, total_flows=8, rollout_fraction=0.5
    )
    fractions = [g.fraction for g in config.groups]
    assert fractions[-1] == 0.5
    assert sum(fractions) == pytest.approx(1.0)
    # Incumbents keep their relative 2:1 weighting inside the other half.
    assert fractions[0] == pytest.approx(2 * fractions[1])
    with pytest.raises(ValueError, match="rollout_fraction"):
        DeploymentMixConfig(rollout_fraction=1.5)


def test_apportion_flows_is_exact_and_deterministic():
    assert apportion_flows([0.5, 0.25, 0.25], 8) == [4, 2, 2]
    assert apportion_flows([1, 1, 1], 4) == [2, 1, 1]
    assert sum(apportion_flows([3, 2, 2], 10)) == 10
    with pytest.raises(ValueError, match="positive"):
        apportion_flows([0.0, 0.0], 4)


def test_apportion_flows_never_zeroes_a_positive_fraction_group():
    # Skewed fractions must not round a declared group out of the mix.
    assert apportion_flows([0.9, 0.1], 2) == [1, 1]
    assert apportion_flows([10, 1, 1], 3) == [1, 1, 1]
    assert apportion_flows([10, 1, 1], 12) == [10, 1, 1]
    # Zero-weight groups stay at zero; total below the positive-group
    # count falls back to plain largest remainder.
    assert apportion_flows([1, 0, 1], 4) == [2, 0, 2]
    assert apportion_flows([2, 1, 1], 1) == [1, 0, 0]


def test_config_spec_objects_are_not_mutated():
    """Regression (PR 4 fixed the same class of bug for RdcnParams): a
    caller-owned spec list reused across configs must keep its weights."""
    specs = [
        GroupSpec("dcqcn", fraction=0.75),
        GroupSpec("powertcp", fraction=0.25),
    ]
    config = DeploymentMixConfig(groups=specs, rollout_fraction=0.5)
    assert [g.fraction for g in config.groups] == [0.5, 0.5]
    assert [g.fraction for g in specs] == [0.75, 0.25]  # untouched
    assert [g.name for g in specs] == ["", ""]
    again = DeploymentMixConfig(groups=specs, total_flows=8)
    assert again.group_flow_counts() == [6, 2]


# ----------------------------------------------------------------------
# N-group runs
# ----------------------------------------------------------------------
def test_three_group_mix_reports_per_group_and_pairwise_metrics():
    scenario = get_scenario("coexistence")
    result = scenario.run(
        groups=THREE_GROUPS, total_flows=4, duration_ns=1 * MSEC
    )
    metrics = result.metrics
    for group in ("a", "b", "c"):
        assert 0.0 <= metrics[f"group_{group}_share"] <= 1.0
        assert metrics[f"group_{group}_jain"] is not None
    for pair in ("a_b", "a_c", "b_c"):
        assert metrics[f"cross_ratio_{pair}"] is not None
    # Legacy alias: first-vs-second group.
    assert metrics["cross_group_ratio"] == metrics["cross_ratio_a_b"]
    assert result.provenance["algorithm"] == "powertcp+dcqcn+hpcc"
    for group in ("a", "b", "c"):
        assert f"group_{group}_throughput_bps" in result.series


def test_n_group_determinism_same_seed_identical_series():
    """Same seed -> identical per-group series (regression guard)."""
    scenario = get_scenario("coexistence")
    kwargs = dict(
        groups=THREE_GROUPS, total_flows=6, duration_ns=1 * MSEC, seed=11
    )
    a = scenario.run(**kwargs)
    b = scenario.run(**kwargs)
    assert a.metrics == b.metrics
    assert a.series == b.series


def test_fattree_coexistence_smoke():
    """>=3 groups on the fat-tree: permutation placement, short horizon."""
    scenario = get_scenario("coexistence")
    result = scenario.run(
        groups=THREE_GROUPS,
        total_flows=6,
        topology="fattree",
        duration_ns=500_000,
    )
    shares = [
        result.metrics[f"group_{g}_share"] for g in ("a", "b", "c")
    ]
    # No shared bottleneck: shares normalize by the delivered aggregate.
    assert sum(shares) == pytest.approx(1.0)
    assert all(s > 0 for s in shares)
    assert result.provenance["events_processed"] > 0


def test_parkinglot_coexistence_smoke():
    scenario = get_scenario("coexistence")
    result = scenario.run(
        groups=[{"algorithm": "powertcp"}, {"algorithm": "dcqcn"}],
        total_flows=4,
        topology="parkinglot",
        topology_params={"segments": 2},
        duration_ns=500_000,
    )
    shares = [result.metrics["group_a_share"], result.metrics["group_b_share"]]
    assert sum(shares) == pytest.approx(1.0)


def test_staggered_start_time_to_fair_sanity():
    """A staggered group's time-to-fair is measured from its own step."""
    raw = run_deployment_mix(
        DeploymentMixConfig(
            groups=[
                {"algorithm": "powertcp"},
                {"algorithm": "powertcp", "start_ns": 1 * MSEC},
            ],
            total_flows=4,
            duration_ns=4 * MSEC,
        )
    )
    # Homogeneous PowerTCP converges to fair within the horizon.
    ttf = raw.time_to_fair_ns("b", threshold=0.9)
    assert ttf is not None
    assert 0 <= ttf <= 3 * MSEC
    # The incumbent was alone (trivially fair) before the step.
    assert raw.time_to_fair_ns("a", threshold=0.9) is not None
    # Staggered flows really started late: zero rate before the step.
    b_series = raw.group_throughput_bps["b"]
    before = [
        v for t, v in zip(raw.times_ns, b_series) if t <= 1 * MSEC
    ]
    assert max(before, default=0.0) == 0.0


def test_staggered_group_share_ignores_pre_start_samples():
    raw = run_deployment_mix(
        DeploymentMixConfig(
            groups=[
                {"algorithm": "powertcp"},
                {"algorithm": "powertcp", "start_ns": 2 * MSEC},
            ],
            total_flows=2,
            duration_ns=4 * MSEC,
        )
    )
    # With pre-start samples excluded, the late group's settled share is
    # comparable to the incumbent's (both ~half the bottleneck).
    assert raw.group_share("b") > 0.25


def test_homogeneous_control_shares_evenly_across_three_groups():
    scenario = get_scenario("coexistence")
    result = scenario.run(
        groups=[{"algorithm": "powertcp"}] * 3,
        total_flows=6,
        duration_ns=2 * MSEC,
    )
    for pair in ("a_b", "a_c", "b_c"):
        assert 0.7 < result.metrics[f"cross_ratio_{pair}"] < 1.4


def test_sweep_over_rollout_fraction_persists_per_group_metrics(tmp_path):
    from repro.scenarios import run_sweep

    sweep = run_sweep(
        "coexistence",
        grid={"rollout_fraction": [0.25, 0.5]},
        base=dict(total_flows=4, duration_ns=500_000),
    )
    path = sweep.persist(str(tmp_path / "coexistence_sweep.json"))
    import json

    doc = json.load(open(path))
    assert len(doc["cells"]) == 2
    for cell in doc["cells"]:
        assert "group_a_share" in cell["metrics"]
        assert "group_b_share" in cell["metrics"]
        assert "cross_group_ratio" in cell["metrics"]

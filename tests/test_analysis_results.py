"""Unit tests for the sweep-result loading API (analysis/results.py)."""

import json

import pytest

from repro.analysis.results import ResultCell, ResultSet


def _sweep_doc(scenario="websearch", cells=None):
    return {
        "scenario": scenario,
        "grid": {"algorithm": ["a", "b"], "load": [0.2, 0.6]},
        "base": {},
        "seed": 1,
        "cells": cells or [],
    }


def _cell(algo, load, metric, scenario="websearch", seed=11):
    return {
        "scenario": scenario,
        "params": {"algorithm": algo, "load": load},
        "overrides": {"algorithm": algo, "load": load, "seed": seed},
        "metrics": {"fct_p99": metric, "drops": 0},
        "series": {"bins": [1, 2, 3]},
        "provenance": {"seed": seed},
    }


@pytest.fixture
def sweep_path(tmp_path):
    doc = _sweep_doc(
        cells=[
            _cell("powertcp", 0.2, 1.5),
            _cell("powertcp", 0.6, 2.5),
            _cell("hpcc", 0.2, 1.8),
            _cell("hpcc", 0.6, 3.1),
        ]
    )
    path = tmp_path / "websearch_sweep.json"
    path.write_text(json.dumps(doc))
    return str(path)


def test_load_and_basic_accessors(sweep_path):
    rs = ResultSet.load(sweep_path)
    assert len(rs) == 4
    assert rs.scenarios() == ["websearch"]
    assert rs.param_values("algorithm") == ["hpcc", "powertcp"]
    assert sorted(rs.values("fct_p99")) == [1.5, 1.8, 2.5, 3.1]
    assert all(c.source == sweep_path for c in rs)


def test_filter_matches_params_and_overrides(sweep_path):
    rs = ResultSet.load(sweep_path)
    assert len(rs.filter(algorithm="hpcc")) == 2
    assert len(rs.filter(algorithm="hpcc", load=0.6)) == 1
    # seed only appears in overrides — filter falls back to them.
    assert len(rs.filter(seed=11)) == 4
    assert len(rs.filter(algorithm="nope")) == 0


def test_only_requires_single_cell(sweep_path):
    rs = ResultSet.load(sweep_path)
    cell = rs.filter(algorithm="powertcp", load=0.2).only()
    assert cell.metrics["fct_p99"] == 1.5
    with pytest.raises(KeyError):
        rs.only()


def test_pivot_table(sweep_path):
    rs = ResultSet.load(sweep_path)
    rows, cols, table = rs.pivot("load", "algorithm", "fct_p99")
    assert rows == [0.2, 0.6]
    assert cols == ["hpcc", "powertcp"]
    assert table == [[1.8, 1.5], [3.1, 2.5]]


def test_pivot_rejects_ambiguous_groups_without_agg(tmp_path):
    doc = _sweep_doc(
        cells=[
            _cell("powertcp", 0.2, 1.0, seed=1),
            _cell("powertcp", 0.2, 3.0, seed=2),
        ]
    )
    path = tmp_path / "dup_sweep.json"
    path.write_text(json.dumps(doc))
    rs = ResultSet.load(str(path))
    with pytest.raises(ValueError):
        rs.pivot("load", "algorithm", "fct_p99")
    _rows, _cols, table = rs.pivot(
        "load", "algorithm", "fct_p99", agg=lambda vs: sum(vs) / len(vs)
    )
    assert table == [[2.0]]


def test_pivot_empty_groups_are_none(tmp_path):
    doc = _sweep_doc(
        cells=[_cell("powertcp", 0.2, 1.0), _cell("hpcc", 0.6, 2.0)]
    )
    path = tmp_path / "sparse_sweep.json"
    path.write_text(json.dumps(doc))
    rows, cols, table = ResultSet.load(str(path)).pivot(
        "load", "algorithm", "fct_p99"
    )
    assert table == [[None, 1.0], [2.0, None]]


def test_load_dir_merges_files(tmp_path):
    for name, algo in (("a_sweep.json", "powertcp"), ("b_sweep.json", "hpcc")):
        doc = _sweep_doc(cells=[_cell(algo, 0.2, 1.0)])
        (tmp_path / name).write_text(json.dumps(doc))
    (tmp_path / "unrelated.json").write_text("{}")
    rs = ResultSet.load_dir(str(tmp_path))
    assert len(rs) == 2
    assert rs.param_values("algorithm") == ["hpcc", "powertcp"]


def test_format_pivot_renders(sweep_path):
    lines = ResultSet.load(sweep_path).format_pivot(
        "load", "algorithm", "fct_p99"
    )
    assert lines[0].startswith("fct_p99")
    assert any("hpcc" in line for line in lines)
    assert len(lines) == 2 + 2  # title + header + one line per load


def test_param_values_mixed_types_do_not_raise(tmp_path):
    """Regression: an `algorithm` (string) axis file merged with a numeric
    axis file via load_dir used to be able to TypeError inside the sort."""
    doc_a = _sweep_doc(cells=[_cell("powertcp", 0.2, 1.0)])
    doc_b = _sweep_doc(cells=[_cell(3, 0.2, 2.0), _cell(1.5, 0.2, 3.0)])
    (tmp_path / "a_sweep.json").write_text(json.dumps(doc_a))
    (tmp_path / "b_sweep.json").write_text(json.dumps(doc_b))
    rs = ResultSet.load_dir(str(tmp_path))
    # Numbers first (numerically), strings after — never a TypeError.
    assert rs.param_values("algorithm") == [1.5, 3, "powertcp"]
    # Pivoting over the mixed axis works too.
    _rows, cols, _table = rs.pivot("load", "algorithm", "fct_p99")
    assert cols == [1.5, 3, "powertcp"]


def test_param_values_unhashable_axis_values():
    """List/dict axis values (segment_bw_bps, cc_params) must dedupe by
    canonical form instead of crashing the distinct-value set build."""
    cells = [
        ResultCell(scenario="m", params={"segment_bw_bps": [1e9, 5e8]}),
        ResultCell(scenario="m", params={"segment_bw_bps": [1e9, 5e8]}),
        ResultCell(scenario="m", params={"segment_bw_bps": [1e9, 1e9]}),
        ResultCell(scenario="m", params={"cc_params": {"gamma": 0.9}}),
    ]
    rs = ResultSet(cells)
    assert rs.param_values("segment_bw_bps") == [
        [1e9, 5e8],
        [1e9, 1e9],
    ] or rs.param_values("segment_bw_bps") == [[1e9, 1e9], [1e9, 5e8]]
    assert rs.param_values("cc_params") == [{"gamma": 0.9}]


def test_param_values_bools_sort_between_numbers_and_strings():
    cells = [
        ResultCell(scenario="m", params={"x": v})
        for v in ("per-ack", True, 2.5, False)
    ]
    assert ResultSet(cells).param_values("x") == [2.5, False, True, "per-ack"]


def test_parking_lot_pivot_view(tmp_path):
    from repro.analysis.results import format_parking_lot, parking_lot_pivot

    def mb_cell(algo, segments, ratio):
        return {
            "scenario": "multi_bottleneck",
            "params": {"algorithm": algo, "segments": segments},
            "overrides": {"algorithm": algo, "segments": segments},
            "metrics": {"e2e_cross_ratio": ratio},
            "series": {},
            "provenance": {},
        }

    doc = {
        "scenario": "multi_bottleneck",
        "grid": {},
        "base": {},
        "seed": 1,
        "cells": [
            mb_cell("powertcp", 2, 0.9),
            mb_cell("theta-powertcp", 2, 0.5),
            mb_cell("powertcp", 3, 0.8),
            mb_cell("theta-powertcp", 3, 0.3),
        ],
    }
    path = tmp_path / "multi_bottleneck_sweep.json"
    path.write_text(json.dumps(doc))
    rs = ResultSet.load(str(path))
    rows, cols, table = parking_lot_pivot(rs)
    assert rows == [2, 3]
    assert cols == ["powertcp", "theta-powertcp"]
    assert table == [[0.9, 0.5], [0.8, 0.3]]
    lines = format_parking_lot(rs)
    assert lines[0].startswith("e2e_cross_ratio")
    # Foreign-scenario cells are excluded; an empty set fails loudly from
    # both entry points (not a useless header-only table).
    empty = ResultSet.load(str(path)).filter(algorithm="nope")
    with pytest.raises(ValueError, match="multi_bottleneck"):
        parking_lot_pivot(empty)
    with pytest.raises(ValueError, match="multi_bottleneck"):
        format_parking_lot(empty)


def test_cell_param_fallback():
    cell = ResultCell(
        scenario="x", params={"a": 1}, overrides={"a": 99, "b": 2}
    )
    assert cell.param("a") == 1  # params win over overrides
    assert cell.param("b") == 2
    assert cell.param("c", "dflt") == "dflt"


# ----------------------------------------------------------------------
# shard merging
# ----------------------------------------------------------------------
def _shard_file(tmp_path, stem, index, count, cells):
    doc = _sweep_doc(cells=cells)
    path = tmp_path / f"{stem}.shard-{index}-of-{count}.json"
    path.write_text(json.dumps(doc))
    return path


def test_merge_shards_recombines_a_sharded_sweep(tmp_path):
    from repro.analysis.results import merge_shards

    _shard_file(
        tmp_path, "websearch_sweep", 1, 2,
        [_cell("powertcp", 0.2, 1.5), _cell("hpcc", 0.2, 1.8)],
    )
    _shard_file(
        tmp_path, "websearch_sweep", 2, 2,
        [_cell("powertcp", 0.6, 2.5), _cell("hpcc", 0.6, 3.1)],
    )
    rs = merge_shards(str(tmp_path))
    assert len(rs) == 4
    rows, cols, table = rs.pivot("load", "algorithm", "fct_p99")
    assert table == [[1.8, 1.5], [3.1, 2.5]]


def test_merge_shards_dedupes_and_narrows_by_base(tmp_path):
    from repro.analysis.results import merge_shards

    shared = _cell("powertcp", 0.2, 1.5)
    _shard_file(tmp_path, "websearch_sweep", 1, 2, [shared])
    _shard_file(tmp_path, "websearch_sweep", 2, 2, [shared])
    _shard_file(tmp_path, "other_sweep", 1, 1, [_cell("hpcc", 0.6, 9.0)])
    # Duplicate (scenario, overrides) cells collapse to one.
    assert len(merge_shards(str(tmp_path), "websearch_sweep")) == 1
    # Without base, both sweeps' shards merge.
    assert len(merge_shards(str(tmp_path))) == 2


def test_merge_shards_rejects_incomplete_or_conflicting_sets(tmp_path):
    from repro.analysis.results import merge_shards

    _shard_file(tmp_path, "websearch_sweep", 1, 3, [_cell("a", 0.2, 1.0)])
    with pytest.raises(ValueError, match="missing shard"):
        merge_shards(str(tmp_path))
    _shard_file(tmp_path, "websearch_sweep", 2, 3, [_cell("b", 0.2, 1.0)])
    _shard_file(tmp_path, "websearch_sweep", 3, 3, [_cell("c", 0.2, 1.0)])
    assert len(merge_shards(str(tmp_path))) == 3
    _shard_file(tmp_path, "websearch_sweep", 2, 2, [_cell("d", 0.2, 1.0)])
    with pytest.raises(ValueError, match="disagree"):
        merge_shards(str(tmp_path))


def test_merge_shards_requires_matches(tmp_path):
    from repro.analysis.results import merge_shards

    with pytest.raises(ValueError, match="no shard files"):
        merge_shards(str(tmp_path))


# ----------------------------------------------------------------------
# perf trend
# ----------------------------------------------------------------------
def _bench_doc(date, eps_by_case, tiny=False):
    return {
        "schema": 1,
        "generated_utc": date,
        "tiny": tiny,
        "cases": [
            {
                "case": name,
                "events_per_sec": eps,
                "events_processed": 1000,
                "wall_time_s": 0.5,
            }
            for name, eps in eps_by_case.items()
        ],
    }


def test_perf_trend_builds_per_case_series(tmp_path):
    from repro.analysis.results import format_perf_trend, perf_trend

    old = tmp_path / "bench_old.json"
    new = tmp_path / "bench_new.json"
    old.write_text(json.dumps(_bench_doc(
        "2026-01-01", {"incast": 200_000.0, "websearch_fct": 210_000.0}
    )))
    new.write_text(json.dumps(_bench_doc(
        "2026-02-01", {"incast": 520_000.0, "permutation": 500_000.0}
    )))
    trend = perf_trend([str(old), str(new)])
    assert [e["events_per_sec"] for e in trend["incast"]] == [
        200_000.0, 520_000.0,
    ]
    assert [e["label"] for e in trend["incast"]] == [
        "2026-01-01", "2026-02-01",
    ]
    # Cases appearing in only one snapshot still show a 1-point series.
    assert len(trend["websearch_fct"]) == 1
    assert len(trend["permutation"]) == 1
    lines = format_perf_trend([str(old), str(new)])
    assert any("incast" in line and "->" in line for line in lines)


def test_perf_trend_skips_tiny_documents_by_default(tmp_path):
    from repro.analysis.results import perf_trend

    full = tmp_path / "full.json"
    tiny = tmp_path / "tiny.json"
    full.write_text(json.dumps(_bench_doc("2026-01-01", {"incast": 2e5})))
    tiny.write_text(
        json.dumps(_bench_doc("2026-01-02", {"incast": 9e5}, tiny=True))
    )
    assert len(perf_trend([str(full), str(tiny)])["incast"]) == 1
    both = perf_trend([str(full), str(tiny)], include_tiny=True)
    assert len(both["incast"]) == 2


# ----------------------------------------------------------------------
# rollout pivot (deployment mix)
# ----------------------------------------------------------------------
def test_rollout_pivot_view(tmp_path):
    from repro.analysis.results import format_rollout, rollout_pivot

    def mix_cell(topology, fraction, ratio):
        return {
            "scenario": "coexistence",
            "params": {"rollout_fraction": fraction, "topology": topology},
            "overrides": {"rollout_fraction": fraction, "topology": topology},
            "metrics": {"cross_group_ratio": ratio},
            "series": {},
            "provenance": {},
        }

    doc = {
        "scenario": "coexistence", "grid": {}, "base": {}, "seed": 1,
        "cells": [
            mix_cell("dumbbell", 0.25, 1.2),
            mix_cell("dumbbell", 0.5, 1.0),
            mix_cell("fattree", 0.25, 1.5),
            mix_cell("fattree", 0.5, 1.1),
        ],
    }
    path = tmp_path / "coexistence_sweep.json"
    path.write_text(json.dumps(doc))
    rs = ResultSet.load(str(path))
    rows, cols, table = rollout_pivot(rs)
    assert rows == [0.25, 0.5]
    assert cols == ["dumbbell", "fattree"]
    assert table == [[1.2, 1.5], [1.0, 1.1]]
    lines = format_rollout(rs)
    assert lines[0].startswith("cross_group_ratio")
    with pytest.raises(ValueError, match="coexistence"):
        rollout_pivot(ResultSet([]))


def test_cell_param_falls_back_to_provenance_config():
    """Config fields left at their defaults appear only in the provenance
    config record; param()/filter()/pivot() must still see them."""
    cell = ResultCell(
        scenario="multi_bottleneck",
        params={"algorithm": "powertcp"},
        overrides={"algorithm": "powertcp", "seed": 7},
        provenance={"config": {"algorithm": "powertcp", "segments": 2}},
    )
    assert cell.param("segments") == 2
    assert cell.param("seed") == 7  # overrides still win over provenance
    assert ResultSet([cell]).param_values("segments") == [2]
    assert len(ResultSet([cell]).filter(segments=2)) == 1

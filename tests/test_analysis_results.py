"""Unit tests for the sweep-result loading API (analysis/results.py)."""

import json

import pytest

from repro.analysis.results import ResultCell, ResultSet


def _sweep_doc(scenario="websearch", cells=None):
    return {
        "scenario": scenario,
        "grid": {"algorithm": ["a", "b"], "load": [0.2, 0.6]},
        "base": {},
        "seed": 1,
        "cells": cells or [],
    }


def _cell(algo, load, metric, scenario="websearch", seed=11):
    return {
        "scenario": scenario,
        "params": {"algorithm": algo, "load": load},
        "overrides": {"algorithm": algo, "load": load, "seed": seed},
        "metrics": {"fct_p99": metric, "drops": 0},
        "series": {"bins": [1, 2, 3]},
        "provenance": {"seed": seed},
    }


@pytest.fixture
def sweep_path(tmp_path):
    doc = _sweep_doc(
        cells=[
            _cell("powertcp", 0.2, 1.5),
            _cell("powertcp", 0.6, 2.5),
            _cell("hpcc", 0.2, 1.8),
            _cell("hpcc", 0.6, 3.1),
        ]
    )
    path = tmp_path / "websearch_sweep.json"
    path.write_text(json.dumps(doc))
    return str(path)


def test_load_and_basic_accessors(sweep_path):
    rs = ResultSet.load(sweep_path)
    assert len(rs) == 4
    assert rs.scenarios() == ["websearch"]
    assert rs.param_values("algorithm") == ["hpcc", "powertcp"]
    assert sorted(rs.values("fct_p99")) == [1.5, 1.8, 2.5, 3.1]
    assert all(c.source == sweep_path for c in rs)


def test_filter_matches_params_and_overrides(sweep_path):
    rs = ResultSet.load(sweep_path)
    assert len(rs.filter(algorithm="hpcc")) == 2
    assert len(rs.filter(algorithm="hpcc", load=0.6)) == 1
    # seed only appears in overrides — filter falls back to them.
    assert len(rs.filter(seed=11)) == 4
    assert len(rs.filter(algorithm="nope")) == 0


def test_only_requires_single_cell(sweep_path):
    rs = ResultSet.load(sweep_path)
    cell = rs.filter(algorithm="powertcp", load=0.2).only()
    assert cell.metrics["fct_p99"] == 1.5
    with pytest.raises(KeyError):
        rs.only()


def test_pivot_table(sweep_path):
    rs = ResultSet.load(sweep_path)
    rows, cols, table = rs.pivot("load", "algorithm", "fct_p99")
    assert rows == [0.2, 0.6]
    assert cols == ["hpcc", "powertcp"]
    assert table == [[1.8, 1.5], [3.1, 2.5]]


def test_pivot_rejects_ambiguous_groups_without_agg(tmp_path):
    doc = _sweep_doc(
        cells=[
            _cell("powertcp", 0.2, 1.0, seed=1),
            _cell("powertcp", 0.2, 3.0, seed=2),
        ]
    )
    path = tmp_path / "dup_sweep.json"
    path.write_text(json.dumps(doc))
    rs = ResultSet.load(str(path))
    with pytest.raises(ValueError):
        rs.pivot("load", "algorithm", "fct_p99")
    _rows, _cols, table = rs.pivot(
        "load", "algorithm", "fct_p99", agg=lambda vs: sum(vs) / len(vs)
    )
    assert table == [[2.0]]


def test_pivot_empty_groups_are_none(tmp_path):
    doc = _sweep_doc(
        cells=[_cell("powertcp", 0.2, 1.0), _cell("hpcc", 0.6, 2.0)]
    )
    path = tmp_path / "sparse_sweep.json"
    path.write_text(json.dumps(doc))
    rows, cols, table = ResultSet.load(str(path)).pivot(
        "load", "algorithm", "fct_p99"
    )
    assert table == [[None, 1.0], [2.0, None]]


def test_load_dir_merges_files(tmp_path):
    for name, algo in (("a_sweep.json", "powertcp"), ("b_sweep.json", "hpcc")):
        doc = _sweep_doc(cells=[_cell(algo, 0.2, 1.0)])
        (tmp_path / name).write_text(json.dumps(doc))
    (tmp_path / "unrelated.json").write_text("{}")
    rs = ResultSet.load_dir(str(tmp_path))
    assert len(rs) == 2
    assert rs.param_values("algorithm") == ["hpcc", "powertcp"]


def test_format_pivot_renders(sweep_path):
    lines = ResultSet.load(sweep_path).format_pivot(
        "load", "algorithm", "fct_p99"
    )
    assert lines[0].startswith("fct_p99")
    assert any("hpcc" in line for line in lines)
    assert len(lines) == 2 + 2  # title + header + one line per load


def test_cell_param_fallback():
    cell = ResultCell(
        scenario="x", params={"a": 1}, overrides={"a": 99, "b": 2}
    )
    assert cell.param("a") == 1  # params win over overrides
    assert cell.param("b") == 2
    assert cell.param("c", "dflt") == "dflt"

"""Unit tests for egress ports: serialization, priorities, ECN, INT."""

import random

import pytest

from repro.sim.buffer import SharedBuffer
from repro.sim.engine import Simulator
from repro.sim.packet import HEADER_BYTES, Packet
from repro.sim.port import EcnConfig, EgressPort
from repro.units import GBPS


class Sink:
    """Records delivered packets with arrival times."""

    def __init__(self, sim):
        self.sim = sim
        self.packets = []

    def receive(self, pkt):
        self.packets.append((self.sim.now, pkt))


def make_port(sim, rate=8 * GBPS, delay=1000, **kwargs):
    sink = Sink(sim)
    port = EgressPort(sim, rate, delay, peer=sink, **kwargs)
    return port, sink


def data(seq=0, payload=1000, prio=0, flow=1, **kwargs):
    return Packet.data(flow, 0, 1, seq, payload, priority=prio, **kwargs)


def test_single_packet_timing():
    sim = Simulator()
    port, sink = make_port(sim)  # 8 Gbps: 1 byte per ns
    pkt = data(payload=1000 - HEADER_BYTES)  # wire size exactly 1000B
    port.enqueue(pkt)
    sim.run()
    # 1000 ns serialization + 1000 ns propagation.
    assert sink.packets == [(2000, pkt)]


def test_fifo_order_within_priority():
    sim = Simulator()
    port, sink = make_port(sim)
    pkts = [data(seq=i) for i in range(5)]
    for p in pkts:
        port.enqueue(p)
    sim.run()
    assert [p.seq for _, p in sink.packets] == [0, 1, 2, 3, 4]


def test_strict_priority_across_queues():
    sim = Simulator()
    port, sink = make_port(sim)
    low = data(seq=1, prio=5)
    high = data(seq=2, prio=0)
    # Fill the transmitter first so both wait in the queue.
    blocker = data(seq=0)
    port.enqueue(blocker)
    port.enqueue(low)
    port.enqueue(high)
    sim.run()
    assert [p.seq for _, p in sink.packets] == [0, 2, 1]


def test_back_to_back_serialization():
    sim = Simulator()
    port, sink = make_port(sim)
    port.enqueue(data(seq=0, payload=1000 - HEADER_BYTES))
    port.enqueue(data(seq=1, payload=1000 - HEADER_BYTES))
    sim.run()
    times = [t for t, _ in sink.packets]
    assert times[1] - times[0] == 1000  # one serialization apart


def test_qlen_accounting():
    sim = Simulator()
    port, _ = make_port(sim)
    for _ in range(3):
        port.enqueue(data())
    # One packet is in the transmitter; two wait.
    assert port.qlen_bytes == 2 * (1000 + HEADER_BYTES)
    sim.run()
    assert port.qlen_bytes == 0


def test_tx_bytes_counts_wire_size():
    sim = Simulator()
    port, _ = make_port(sim)
    port.enqueue(data(payload=500))
    sim.run()
    assert port.tx_bytes == 500 + HEADER_BYTES


def test_int_stamping_at_dequeue():
    sim = Simulator()
    port, sink = make_port(sim, int_stamping=True)
    first = data(seq=0, int_enabled=True)
    second = data(seq=1, int_enabled=True)
    third = data(seq=2, int_enabled=True)
    port.enqueue(first)  # starts transmitting immediately (queue empty)
    port.enqueue(second)
    port.enqueue(third)
    sim.run()
    hop0 = first.int_hops[0]
    hop1 = second.int_hops[0]
    hop2 = third.int_hops[0]
    assert hop0.qlen == 0  # nothing was waiting when it started
    assert hop1.qlen == third.size  # third was waiting behind second
    assert hop2.qlen == 0
    assert hop1.tx_bytes - hop0.tx_bytes == second.size
    assert hop2.ts_ns > hop1.ts_ns > hop0.ts_ns
    assert hop0.bandwidth_bps == port.rate_bps


def test_no_stamping_when_disabled():
    sim = Simulator()
    port, _ = make_port(sim, int_stamping=False)
    pkt = data(int_enabled=True)
    port.enqueue(pkt)
    sim.run()
    assert pkt.int_hops == []


def test_dt_buffer_drops_data_when_full():
    sim = Simulator()
    buf = SharedBuffer(3_000, alpha=1000.0)
    port, sink = make_port(sim, buffer=buf)
    results = [port.enqueue(data(seq=i)) for i in range(4)]
    assert results[:2] == [True, True]
    assert False in results  # capacity 3000 < 4 x 1048
    assert port.drops >= 1
    assert buf.drops == port.drops


def test_control_packets_bypass_dt():
    sim = Simulator()
    buf = SharedBuffer(2_000, alpha=0.0001)  # DT rejects any data queue
    port, _ = make_port(sim, buffer=buf)
    d = data()
    ack = Packet.ack(d, 100, now=0)
    assert port.enqueue(ack)  # always admitted
    assert port.drops == 0


def test_ecn_step_marking():
    sim = Simulator()
    port, _ = make_port(sim, ecn=EcnConfig.step(1_500))
    pkts = [data(seq=i, ecn_capable=True) for i in range(4)]
    for p in pkts:
        port.enqueue(p)
    # The first packet dequeues immediately; marking uses the queue length
    # seen on arrival: pkt2 sees 1048B (< K), pkt3 sees 2096B (> K).
    assert [p.ecn_marked for p in pkts] == [False, False, False, True]


def test_ecn_ignores_non_capable():
    sim = Simulator()
    port, _ = make_port(sim, ecn=EcnConfig.step(0))
    pkt = data(ecn_capable=False)
    port.enqueue(pkt)
    assert not pkt.ecn_marked


def test_ecn_red_probability_ramp():
    rng = random.Random(7)
    cfg = EcnConfig(kmin=1000, kmax=2000, pmax=0.5)
    assert not cfg.should_mark(500, rng)
    assert cfg.should_mark(5000, rng)
    marks = sum(cfg.should_mark(1500, rng) for _ in range(4000))
    assert 800 <= marks <= 1200  # ~ pmax/2 = 25%


def test_pause_resume():
    sim = Simulator()
    port, sink = make_port(sim)
    port.pause()
    port.enqueue(data(seq=0))
    sim.run()
    assert sink.packets == []
    port.resume()
    sim.run()
    assert len(sink.packets) == 1


def test_record_queuing_delays():
    sim = Simulator()
    port, _ = make_port(sim, record_queuing=True)
    port.enqueue(data(seq=0, payload=1000 - HEADER_BYTES))
    port.enqueue(data(seq=1, payload=1000 - HEADER_BYTES))
    sim.run()
    assert port.queuing_delays_ns[0] == 0
    assert port.queuing_delays_ns[1] == 1000  # waited one serialization


def test_ecn_config_validation():
    with pytest.raises(ValueError):
        EcnConfig(2000, 1000, 0.1)
    with pytest.raises(ValueError):
        EcnConfig(0, 10, 1.5)

"""Campaign orchestrator tests: manifests, retry policy, journal replay,
and end-to-end fault tolerance against real worker subprocesses.

The e2e tests drive the ``faulty`` scenario (fail/crash/hang on chosen
attempts) through the real ``LocalPoolExecutor`` worker pool, so they
exercise the actual failure machinery: timeout kills, retry-then-succeed,
retries-exhausted reporting, worker respawn, and kill-and-resume journal
replay with execution counts verified via the scenario's cross-process
attempt counters.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

import repro.scenarios.faulty  # registers the "faulty" scenario  # noqa: F401
from repro.campaign import (
    CampaignManifest,
    LimitsPolicy,
    RetryPolicy,
    load_manifest,
    manifest_from_dict,
    run_campaign,
)
from repro.campaign import journal as journal_mod
from repro.campaign.manifest import shard_of
from repro.scenarios.faulty import attempt_count


def _manifest_doc(tmp_path, grid, base=None, **extra):
    doc = {
        "scenario": "faulty",
        "grid": grid,
        "base": {"state_dir": str(tmp_path / "state"), **(base or {})},
        "modules": ["repro.scenarios.faulty"],
        "out": str(tmp_path / "out.json"),
        "workers": 2,
        "journal_fsync": False,
        "limits": {
            "cell_timeout_s": 10.0,
            "max_attempts": 3,
            "backoff_base_s": 0.01,
            "backoff_max_s": 0.05,
            "straggler_min_s": 60.0,
        },
    }
    doc.update(extra)
    return doc


def _run(tmp_path, grid, base=None, **extra):
    manifest = manifest_from_dict(_manifest_doc(tmp_path, grid, base, **extra))
    report = run_campaign(manifest, quiet=True)
    return manifest, report


def _load_cells(path):
    with open(path) as handle:
        doc = json.load(handle)
    return {
        (c["params"].get("behavior", "ok"), c["params"]["x"]): c
        for c in doc["cells"]
    }


# ----------------------------------------------------------------------
# manifests
# ----------------------------------------------------------------------
class TestManifest:
    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown key"):
            manifest_from_dict({"scenario": "faulty", "retries": 3})

    def test_unknown_limits_keys_rejected(self):
        with pytest.raises(ValueError, match="limits: unknown key"):
            manifest_from_dict(
                {
                    "scenario": "faulty",
                    "modules": ["repro.scenarios.faulty"],
                    "limits": {"cell_timeout": 5},
                }
            )

    def test_scenario_required(self):
        with pytest.raises(ValueError, match="scenario"):
            manifest_from_dict({"grid": {"x": [1]}})

    def test_grid_validated_against_scenario(self):
        with pytest.raises(ValueError, match="unknown config field"):
            manifest_from_dict(
                {
                    "scenario": "faulty",
                    "modules": ["repro.scenarios.faulty"],
                    "grid": {"nonesuch": [1, 2]},
                }
            )

    def test_limit_bounds_validated(self):
        with pytest.raises(ValueError, match="max_attempts"):
            CampaignManifest(
                scenario="faulty", limits=LimitsPolicy(max_attempts=0)
            ).validate()

    def test_load_manifest_round_trips(self, tmp_path):
        path = tmp_path / "m.json"
        path.write_text(json.dumps(_manifest_doc(tmp_path, {"x": [1, 2]})))
        manifest = load_manifest(str(path))
        assert manifest.scenario == "faulty"
        assert manifest.sha() == manifest_from_dict(
            _manifest_doc(tmp_path, {"x": [1, 2]})
        ).sha()

    def test_shard_of_matches_sweep_partition(self):
        # sweep --shard I/N keeps positions k with k % N == I - 1
        assigned = [shard_of(k, 3)[0] for k in range(7)]
        assert assigned == [1, 2, 3, 1, 2, 3, 1]


# ----------------------------------------------------------------------
# retry policy
# ----------------------------------------------------------------------
class TestRetryPolicy:
    def test_bounded_attempts(self):
        policy = RetryPolicy(LimitsPolicy(max_attempts=3))
        assert policy.should_retry(1) and policy.should_retry(2)
        assert not policy.should_retry(3)

    def test_backoff_grows_and_caps(self):
        limits = LimitsPolicy(
            backoff_base_s=1.0, backoff_factor=2.0, backoff_max_s=3.0,
            jitter_frac=0.0,
        )
        policy = RetryPolicy(limits)
        assert policy.delay_s(1) == 1.0
        assert policy.delay_s(2) == 2.0
        assert policy.delay_s(3) == 3.0  # capped
        assert policy.delay_s(6) == 3.0

    def test_jitter_is_seeded_and_bounded(self):
        limits = LimitsPolicy(
            backoff_base_s=1.0, backoff_factor=1.0, jitter_frac=0.5
        )
        p1, p2 = RetryPolicy(limits, seed=7), RetryPolicy(limits, seed=7)
        a = [p1.delay_s(1) for _ in range(5)]
        b = [p2.delay_s(1) for _ in range(5)]
        assert a == b  # identical schedule for identical seeds
        assert all(0.5 <= d <= 1.5 for d in a)
        assert len(set(a)) > 1  # it does jitter

    def test_straggler_threshold(self):
        policy = RetryPolicy(
            LimitsPolicy(straggler_factor=4.0, straggler_min_s=10.0)
        )
        assert policy.straggler_threshold_s(None) == float("inf")
        assert policy.straggler_threshold_s(1.0) == 10.0  # floor wins
        assert policy.straggler_threshold_s(5.0) == 20.0


# ----------------------------------------------------------------------
# journal
# ----------------------------------------------------------------------
class TestJournal:
    def test_replay_later_records_win(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        cell_v1 = {"scenario": "s", "overrides": {"x": 1}, "metrics": {"v": 1}}
        cell_v2 = dict(cell_v1, metrics={"v": 2})
        with journal_mod.Journal(path, fsync=False) as journal:
            journal.append({"event": "cell_ok", "cell": cell_v1})
            journal.append({"event": "cell_ok", "cell": cell_v2})
        cells = journal_mod.replay_cells(path)
        assert len(cells) == 1
        assert next(iter(cells.values()))["metrics"] == {"v": 2}

    def test_torn_tail_tolerated(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        with journal_mod.Journal(path, fsync=False) as journal:
            journal.append(
                {"event": "cell_ok", "cell": {"scenario": "s", "overrides": {}}}
            )
        with open(path, "a") as handle:  # a write the kill tore mid-line
            handle.write('{"event": "cell_ok", "cell": {"scen')
        assert len(journal_mod.replay_cells(path)) == 1
        assert len(list(journal_mod.iter_records(path))) == 1

    def test_missing_journal_is_empty(self, tmp_path):
        assert journal_mod.replay_cells(str(tmp_path / "none.jsonl")) == {}

    def test_derived_paths(self):
        assert journal_mod.journal_path("a/b.json") == "a/b.journal.jsonl"
        assert journal_mod.failures_path("a/b.json") == "a/b.failures.json"


# ----------------------------------------------------------------------
# end-to-end fault tolerance (real worker subprocesses)
# ----------------------------------------------------------------------
class TestCampaignEndToEnd:
    def test_all_ok_campaign_merges_complete(self, tmp_path):
        manifest, report = _run(tmp_path, {"x": [1, 2, 3, 4]}, shards=2)
        assert report.complete and report.failed == 0
        cells = _load_cells(manifest.out_path())
        assert sorted(x for _b, x in cells) == [1, 2, 3, 4]
        for (_b, x), cell in cells.items():
            seed = cell["overrides"]["seed"]  # derived per cell
            assert cell["metrics"]["value"] == pytest.approx(x * 10 + seed % 7)
        # journal is deleted after a clean, fully merged finish
        assert not os.path.exists(journal_mod.journal_path(manifest.out_path()))

    def test_retry_then_succeed_records_attempts(self, tmp_path):
        manifest, report = _run(
            tmp_path, {"x": [1, 2], "behavior": ["fail", "crash"]},
            base={"fail_times": 1},
        )
        assert report.failed == 0 and report.retried == 4
        for cell in _load_cells(manifest.out_path()).values():
            assert cell.get("status", "ok") == "ok"
            assert cell["attempts"] == 2  # retry provenance survives merge

    def test_hang_killed_by_timeout_then_succeeds(self, tmp_path):
        manifest, report = _run(
            tmp_path, {"x": [1]},
            base={"behavior": "hang", "fail_times": 1, "hang_s": 30.0},
            limits={
                "cell_timeout_s": 1.0,
                "max_attempts": 3,
                "backoff_base_s": 0.01,
                "straggler_min_s": 60.0,
            },
        )
        assert report.failed == 0
        (cell,) = _load_cells(manifest.out_path()).values()
        assert cell["attempts"] == 2
        assert report.workers_respawned >= 1  # the hung worker was killed

    def test_retries_exhausted_reports_failure(self, tmp_path):
        manifest, report = _run(
            tmp_path, {"x": [1, 2]},
            base={"behavior": "fail"},  # fail_times=-1: every attempt fails
            limits={"cell_timeout_s": 10.0, "max_attempts": 2,
                    "backoff_base_s": 0.01},
        )
        assert report.failed == 2 and report.ok == 0
        assert not report.complete
        cells = _load_cells(manifest.out_path())
        assert len(cells) == 2  # failed cells still appear in the merge
        for cell in cells.values():
            assert cell["status"] == "failed"
            assert cell["attempts"] == 2
            assert cell["error"]["type"] == "InjectedFailure"
            assert "injected failure" in cell["error"]["message"]
        with open(report.failures_path) as handle:
            failures = json.load(handle)
        assert failures["failed_cells"] == 2
        assert {f["params"]["x"] for f in failures["failures"]} == {1, 2}

    def test_timeout_exhausted_is_status_timeout(self, tmp_path):
        manifest, report = _run(
            tmp_path, {"x": [1]},
            base={"behavior": "hang", "hang_s": 30.0},
            limits={"cell_timeout_s": 0.5, "max_attempts": 2,
                    "backoff_base_s": 0.01},
        )
        assert report.failed == 1
        (cell,) = _load_cells(manifest.out_path()).values()
        assert cell["status"] == "timeout"
        assert cell["error"]["kind"] == "timeout"

    def test_failed_cells_rerun_on_reinvoke_ok_cells_reused(self, tmp_path):
        doc = _manifest_doc(
            tmp_path, {"x": [1, 2]}, base={"behavior": "fail", "fail_times": 2},
            limits={"cell_timeout_s": 10.0, "max_attempts": 2,
                    "backoff_base_s": 0.01},
        )
        manifest = manifest_from_dict(doc)
        first = run_campaign(manifest, quiet=True)
        assert first.failed == 2  # two attempts each, both misbehaving
        # Re-invoking re-runs only the failed cells; attempt 3 succeeds.
        second = run_campaign(manifest_from_dict(doc), quiet=True)
        assert second.failed == 0 and second.executed == 2
        state = str(tmp_path / "state")
        assert attempt_count(state, 1, "fail") == 3
        cells = _load_cells(manifest.out_path())
        assert all(c.get("status", "ok") == "ok" for c in cells.values())
        # A third invocation reuses everything.
        third = run_campaign(manifest_from_dict(doc), quiet=True)
        assert third.executed == 0 and third.reused_cache == 2

    def test_journal_recovers_cells_lost_from_shards(self, tmp_path):
        doc = _manifest_doc(tmp_path, {"x": [1, 2, 3]})
        manifest = manifest_from_dict(doc)
        run_campaign(manifest, quiet=True)
        # Simulate a crash after the journal was written but before any
        # shard flush survived: delete every persisted document, keep a
        # journal holding two of the three cells.
        out = manifest.out_path()
        with open(out) as handle:
            cells = json.load(handle)["cells"]
        os.unlink(out)
        for name in os.listdir(str(tmp_path)):
            if ".shard-" in name:
                os.unlink(str(tmp_path / name))
        with journal_mod.Journal(
            journal_mod.journal_path(out), fsync=False
        ) as journal:
            for cell in cells[:2]:
                journal.append({"event": "cell_ok", "cell": cell})
        report = run_campaign(manifest_from_dict(doc), quiet=True)
        assert report.recovered_journal == 2
        assert report.executed == 1  # only the journal-less cell re-ran
        assert report.complete
        state = str(tmp_path / "state")
        assert [attempt_count(state, x, "ok") for x in (1, 2, 3)] == [1, 1, 2]


class TestKillAndResume:
    def _spawn_env(self):
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        return env

    def _journaled_ok(self, journal_path):
        return sum(
            1
            for record in journal_mod.iter_records(journal_path)
            if record.get("event") == "cell_ok"
        )

    def test_sigkill_midrun_then_resume_runs_only_missing(self, tmp_path):
        doc = _manifest_doc(
            tmp_path, {"x": list(range(1, 9))}, base={"work_s": 0.4},
            flush_every=100,  # the journal is the only persistence
        )
        path = tmp_path / "m.json"
        path.write_text(json.dumps(doc))
        journal_path = journal_mod.journal_path(doc["out"])
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "campaign", str(path), "--quiet"],
            env=self._spawn_env(),
        )
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            if self._journaled_ok(journal_path) >= 3:
                break
            time.sleep(0.05)
        os.kill(proc.pid, signal.SIGKILL)
        proc.wait(timeout=30)
        journaled = self._journaled_ok(journal_path)
        assert journaled >= 3, "campaign died before journaling enough cells"
        state = str(tmp_path / "state")
        before = {x: attempt_count(state, x, "ok") for x in range(1, 9)}

        report = run_campaign(manifest_from_dict(doc), quiet=True)
        assert report.complete and report.total_cells == 8
        assert report.recovered_journal == journaled
        after = {x: attempt_count(state, x, "ok") for x in range(1, 9)}
        # Every journaled cell resumed without re-executing; every other
        # cell ran (again or for the first time).
        rerun = [x for x in before if before[x] and after[x] > before[x]]
        assert report.executed == 8 - journaled
        assert len(rerun) <= 8 - journaled
        cells = _load_cells(doc["out"])
        assert sorted(x for _b, x in cells) == list(range(1, 9))
        assert not os.path.exists(journal_path)

    def test_sigint_drains_persists_and_reports_resume(self, tmp_path):
        doc = _manifest_doc(
            tmp_path, {"x": list(range(1, 9))}, base={"work_s": 0.4},
        )
        path = tmp_path / "m.json"
        path.write_text(json.dumps(doc))
        journal_path = journal_mod.journal_path(doc["out"])
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "campaign", str(path), "--quiet"],
            env=self._spawn_env(),
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            if self._journaled_ok(journal_path) >= 2:
                break
            time.sleep(0.05)
        proc.send_signal(signal.SIGINT)
        out, _ = proc.communicate(timeout=60)
        assert proc.returncode == 130
        assert "resume with" in out
        assert os.path.exists(journal_path)  # progress survived the drain
        report = run_campaign(manifest_from_dict(doc), quiet=True)
        assert report.complete and report.total_cells == 8

"""Packet-train batching semantics (``Simulator(tx_batch_limit > 1)``).

What batching promises (see the ``repro.sim.port`` module docstring):

* per-packet delivery events with exact serialization arithmetic on the
  fused and train-extension paths (idle port / in-flight train with
  empty queues) — timing identical to the unbatched port there;
* work conservation and exact departure *order* everywhere, with timing
  approximation bounded by the train length when backlogs form;
* per-packet DT buffer releases, INT stamps, and queuing-delay samples;
* packet-granular PFC pause via train truncation when
  ``Simulator.pause_tracking`` is on, train-granular pause otherwise.
"""

import pytest

from repro.sim.buffer import SharedBuffer
from repro.sim.engine import Simulator
from repro.sim.packet import HEADER_BYTES, Packet
from repro.sim.port import EgressPort
from repro.units import GBPS


class Sink:
    def __init__(self, sim):
        self.sim = sim
        self.packets = []

    def receive(self, pkt):
        self.packets.append((self.sim.now, pkt.seq))


def data(seq=0, payload=1000, prio=0, flow=1, **kwargs):
    return Packet.data(flow, 0, 1, seq, payload, priority=prio, **kwargs)


def deliveries(batch, feed, **port_kwargs):
    """Run ``feed(sim, port)`` under the given batch limit; return the
    sink's (time, seq) delivery log."""
    sim = Simulator(tx_batch_limit=batch)
    sink = Sink(sim)
    port = EgressPort(sim, 8 * GBPS, 1000, peer=sink, **port_kwargs)
    feed(sim, port)
    sim.run()
    return sim, port, sink.packets


# ----------------------------------------------------------------------
# Exact-timing paths: fused single-packet trains and train extension
# ----------------------------------------------------------------------
def test_fused_open_loop_matches_unbatched_exactly():
    # Arrivals spaced wider than serialization: every packet meets an
    # idle port, takes the fused path, and must keep byte-exact timing.
    def feed(sim, port):
        for i in range(10):
            sim.at(i * 5000, port.enqueue, data(seq=i, payload=1000 - HEADER_BYTES))

    _, _, unbatched = deliveries(1, feed)
    _, _, batched = deliveries(8, feed)
    assert batched == unbatched
    assert len(batched) == 10


def test_extension_back_to_back_matches_unbatched_exactly():
    # A burst within the train budget: the first packet is fused, the
    # rest arrive mid-serialization with empty queues and extend the
    # train at its exact end — identical times to the unbatched port.
    def feed(sim, port):
        for i in range(8):
            port.enqueue(data(seq=i, payload=1000 - HEADER_BYTES))

    _, _, unbatched = deliveries(1, feed)
    _, _, batched = deliveries(8, feed)
    assert batched == unbatched
    # 1000 ns per packet back-to-back + 1000 ns propagation.
    assert [t for t, _ in batched] == [2000 + 1000 * i for i in range(8)]


def test_events_processed_comparable_across_batching():
    def feed(sim, port):
        for i in range(8):
            port.enqueue(data(seq=i))

    sim1, _, _ = deliveries(1, feed)
    sim8, _, _ = deliveries(8, feed)
    # The exact subset: same packet count, same delivery events; the
    # coalesced completions are folded back into events_processed.
    assert sim8.events_processed == sim1.events_processed
    assert sim8.events_coalesced == 8


# ----------------------------------------------------------------------
# Order and work conservation beyond the exact subset
# ----------------------------------------------------------------------
def test_backlog_beyond_limit_departure_order_and_conservation():
    n = 25  # forces several trains (limit 4) with armed wakes

    def feed(sim, port):
        for i in range(n):
            port.enqueue(data(seq=i))

    _, port1, unbatched = deliveries(1, feed)
    _, port4, batched = deliveries(4, feed)
    assert [seq for _, seq in batched] == [seq for _, seq in unbatched]
    assert port4.tx_bytes == port1.tx_bytes
    # Last delivery identical: trains are back-to-back, so the final
    # packet's finish time is the same cumulative serialization sum.
    assert batched[-1] == unbatched[-1]


def test_strict_priority_respected_at_train_boundaries():
    def feed(sim, port):
        port.enqueue(data(seq=0, prio=3))
        # Arrive mid-serialization: the high-priority packet cannot
        # extend the prio-3 train, so it queues; the next train must
        # drain it before the remaining low-priority backlog.
        sim.at(10, port.enqueue, data(seq=1, prio=3))
        sim.at(20, port.enqueue, data(seq=2, prio=0))

    _, _, batched = deliveries(8, feed)
    # seq 1 queued (can't extend across priorities once seq 2 showed up?
    # No: seq 1 extends the prio-3 train at t=10 — queues still empty —
    # then seq 2 (prio 0) arrives mid-train and queues.  Priority takes
    # effect at the next boundary, after the committed train.
    assert [seq for _, seq in batched] == [0, 1, 2]


def test_wake_event_preserves_work_conservation():
    # A second burst lands while the first train is still serializing
    # and cannot extend (budget exhausted): it must be drained by the
    # wake at the train's end with no idle gap.
    def feed(sim, port):
        for i in range(4):
            port.enqueue(data(seq=i, payload=1000 - HEADER_BYTES))
        sim.at(1500, port.enqueue, data(seq=4, payload=1000 - HEADER_BYTES))

    _, _, batched = deliveries(4, feed)
    assert [seq for _, seq in batched] == [0, 1, 2, 3, 4]
    # Packet 4 queued behind a 4-packet train ending at t=4000; with no
    # idle gap its delivery is 4000 + 1000 (ser) + 1000 (prop).
    assert batched[-1][0] == 6000


# ----------------------------------------------------------------------
# Per-packet DT releases
# ----------------------------------------------------------------------
def test_deferred_release_keeps_dt_admission_exact():
    # Buffer fits exactly two packets.  Packet B arrives after packet
    # A's serialization finished but before any other event: the
    # deferred release must be flushed at B's admission, or the third
    # packet would be wrongly dropped.
    sim = Simulator(tx_batch_limit=8)
    sink = Sink(sim)
    buffer = SharedBuffer(capacity=2000, alpha=1000.0)
    port = EgressPort(sim, 8 * GBPS, 100, peer=sink, buffer=buffer)
    port.enqueue(data(seq=0, payload=1000 - HEADER_BYTES))  # release due t=1000
    port.enqueue(data(seq=1, payload=1000 - HEADER_BYTES))  # release due t=2000
    assert buffer.used == 2000
    dropped = []
    sim.at(
        1500,
        lambda: dropped.append(
            port.enqueue(data(seq=2, payload=1000 - HEADER_BYTES))
        ),
    )
    sim.run()
    # At t=1500 packet 0's 1000 bytes have left: admission must see
    # used=1000 and admit.
    assert dropped == [True]
    assert [seq for _, seq in sink.packets] == [0, 1, 2]
    # Deferred releases flush at admission points, not at end-of-run;
    # flush explicitly before checking the final occupancy.
    buffer.release_due(sim.now)
    assert buffer.used == 0


# ----------------------------------------------------------------------
# PFC pause mid-train: truncation (tracking on) vs train-end (off)
# ----------------------------------------------------------------------
def _pause_mid_train(tracking):
    sim = Simulator(tx_batch_limit=8)
    sim.pause_tracking = tracking
    sink = Sink(sim)
    port = EgressPort(
        sim, 8 * GBPS, 100, peer=sink, int_stamping=True, record_queuing=True
    )
    pkts = [
        data(seq=i, payload=1000 - HEADER_BYTES, int_enabled=True)
        for i in range(6)
    ]
    for pkt in pkts:
        port.enqueue(pkt)  # one fused + five extensions, ends t=6000
    sim.at(2500, port.pause)  # mid-packet-2 (serializing 2000..3000)
    sim.at(10_000, port.resume)
    sim.run()
    return sim, port, sink, pkts


def test_pause_mid_train_truncates_with_tracking():
    sim, port, sink, pkts = _pause_mid_train(tracking=True)
    times = {seq: t for t, seq in sink.packets}
    # Packets 0-2 had started serializing by t=2500: they complete on
    # the original schedule.
    assert [times[i] for i in range(3)] == [1100, 2100, 3100]
    # Packets 3-5 were truncated: their deliveries were un-scheduled
    # and they re-transmit after the resume at t=10000.
    assert [times[i] for i in range(3, 6)] == [11100, 12100, 13100]
    assert sorted(times) == list(range(6))  # each delivered exactly once
    # Undone accounting was re-applied on the second transmission: one
    # INT hop per packet, one queuing-delay sample per packet.
    assert all(len(p.int_hops) == 1 for p in pkts)
    assert len(port.queuing_delays_ns) == 6
    assert port.tx_bytes == 6000
    assert sim.pending == 0


def test_pause_mid_train_without_tracking_completes_train():
    sim, port, sink, pkts = _pause_mid_train(tracking=False)
    times = {seq: t for t, seq in sink.packets}
    # Without per-packet train entries the pause cannot truncate: the
    # whole committed train serializes on the original schedule.
    assert [times[i] for i in range(6)] == [1100 + 1000 * i for i in range(6)]
    assert all(len(p.int_hops) == 1 for p in pkts)
    assert port.tx_bytes == 6000


def test_truncated_deliveries_removed_under_calendar_scheduler():
    # Same truncation exercise through CalendarQueue.remove.
    sim = Simulator(scheduler="calendar", tx_batch_limit=8)
    sim.pause_tracking = True
    sink = Sink(sim)
    port = EgressPort(sim, 8 * GBPS, 100, peer=sink)
    for i in range(6):
        port.enqueue(data(seq=i, payload=1000 - HEADER_BYTES))
    sim.at(2500, port.pause)
    sim.at(10_000, port.resume)
    sim.run()
    times = {seq: t for t, seq in sink.packets}
    assert sorted(times) == list(range(6))
    assert [times[i] for i in range(3, 6)] == [11100, 12100, 13100]
    assert sim.pending == 0


def test_truncation_restores_deferred_buffer_releases():
    sim = Simulator(tx_batch_limit=8)
    sim.pause_tracking = True
    sink = Sink(sim)
    buffer = SharedBuffer(capacity=50_000, alpha=1000.0)
    port = EgressPort(sim, 8 * GBPS, 100, peer=sink, buffer=buffer)
    for i in range(6):
        port.enqueue(data(seq=i, payload=1000 - HEADER_BYTES))
    sim.at(2500, port.pause)
    sim.at(10_000, port.resume)
    sim.run()
    # All six packets eventually left the switch exactly once.  The
    # re-committed train's releases flush at admission points, none of
    # which occur after the resume — flush explicitly before reading.
    buffer.release_due(sim.now)
    assert buffer.used == 0
    assert buffer.total_admitted == 6000
    assert len(sink.packets) == 6


# ----------------------------------------------------------------------
# Engine-path specialization must not change construction semantics
# ----------------------------------------------------------------------
def test_default_engine_uses_specialized_port_class():
    from repro.sim.port import _HeapPort

    assert type(EgressPort(Simulator(), 1e9, 0)) is _HeapPort
    assert type(EgressPort(Simulator(tx_batch_limit=8), 1e9, 0)) is EgressPort
    assert type(EgressPort(Simulator(scheduler="calendar"), 1e9, 0)) is EgressPort


def test_specialized_port_matches_general_class_exactly():
    # A trivial subclass bypasses the __new__ swap and runs the general
    # (branchy) method bodies; both must produce identical deliveries.
    class GeneralPort(EgressPort):
        __slots__ = ()

    def run(cls):
        sim = Simulator()
        sink = Sink(sim)
        port = cls(sim, 8 * GBPS, 1000, peer=sink)
        for i in range(5):
            sim.at(i * 700, port.enqueue, data(seq=i))
        sim.run()
        return sink.packets, sim.events_processed

    fast, fast_events = run(EgressPort)
    general, general_events = run(GeneralPort)
    assert fast == general
    assert fast_events == general_events

"""Unit tests for packets, INT records, and the per-simulator pool."""

from repro.sim.packet import (
    ACK,
    ACK_BYTES,
    CNP,
    DATA,
    GRANT,
    HEADER_BYTES,
    INT_HOP_BYTES,
    HopRecord,
    Packet,
    PacketPool,
    get_pool,
)


def test_data_packet_fields():
    pkt = Packet.data(7, 1, 2, seq=1000, payload=500, ts_tx=42)
    assert pkt.kind == DATA
    assert pkt.flow_id == 7
    assert (pkt.src, pkt.dst) == (1, 2)
    assert pkt.seq == 1000
    assert pkt.end_seq == 1500
    assert pkt.payload == 500
    assert pkt.size == 500 + HEADER_BYTES
    assert pkt.ts_tx == 42


def test_data_packet_int_enabled_starts_empty():
    pkt = Packet.data(1, 0, 1, 0, 100, int_enabled=True)
    assert pkt.int_enabled
    assert pkt.int_hops == []


def test_data_packet_without_int_has_no_hops():
    pkt = Packet.data(1, 0, 1, 0, 100)
    assert not pkt.int_enabled
    assert pkt.int_hops is None


def test_stamp_int_appends_in_order():
    pkt = Packet.data(1, 0, 1, 0, 100, int_enabled=True)
    for port_id in (10, 20, 30):
        pkt.stamp_int(HopRecord(0, 0, 0, 1e9, port_id))
    assert [h.port_id for h in pkt.int_hops] == [10, 20, 30]


def test_ack_reverses_direction_and_echoes():
    data = Packet.data(9, 3, 8, seq=0, payload=1000, int_enabled=True, ts_tx=111)
    data.stamp_int(HopRecord(500, 60, 9999, 25e9, 4))
    ack = Packet.ack(data, ack_seq=1000, now=200)
    assert ack.kind == ACK
    assert (ack.src, ack.dst) == (8, 3)
    assert ack.ack_seq == 1000
    assert ack.acked_seq == 0
    assert ack.ts_echo == 111  # the data transmit timestamp, for RTT
    assert ack.int_hops is data.int_hops
    assert ack.size == ACK_BYTES + INT_HOP_BYTES * 1


def test_ack_without_echo_is_minimal():
    data = Packet.data(9, 3, 8, 0, 1000, int_enabled=True)
    data.stamp_int(HopRecord(0, 0, 0, 1e9, 1))
    ack = Packet.ack(data, 1000, now=5, echo_int=False)
    assert ack.int_hops is None
    assert ack.size == ACK_BYTES


def test_ack_carries_ecn_mark():
    data = Packet.data(1, 0, 1, 0, 100, ecn_capable=True)
    data.ecn_marked = True
    ack = Packet.ack(data, 100, now=0)
    assert ack.ecn_marked


def test_cnp_direction():
    cnp = Packet.cnp(5, src=2, dst=0)
    assert cnp.kind == CNP
    assert (cnp.src, cnp.dst) == (2, 0)
    assert cnp.payload == 0


def test_grant_transits_at_top_priority():
    grant = Packet.grant(3, 9, 1, grant_bytes=48_000, sched_priority=5)
    assert grant.kind == GRANT
    assert grant.priority == 0  # wire priority
    assert grant.sched_priority == 5  # rank for the granted data
    assert grant.grant_bytes == 48_000


def test_control_packets_have_zero_payload():
    data = Packet.data(1, 0, 1, 0, 100)
    ack = Packet.ack(data, 100, now=0)
    assert ack.payload == 0


# ----------------------------------------------------------------------
# PacketPool: pooled constructors must be field-identical to fresh ones
# ----------------------------------------------------------------------
def _fields(pkt):
    return {name: getattr(pkt, name) for name in Packet.__slots__}


def test_pooled_data_matches_fresh_after_reuse():
    pool = PacketPool()
    # Dirty a shell thoroughly, then recycle it.
    dirty = pool.data(1, 0, 1, 0, 100, int_enabled=True, ecn_capable=True,
                      priority=3, ts_tx=99)
    dirty.ecn_marked = True
    dirty.enqueue_ts = 12345
    dirty.int_hops.append(HopRecord(1, 2, 3, 1e9, 4))
    pool.release_with_hops(dirty)
    reused = pool.data(7, 1, 2, 1000, 500, ts_tx=42)
    assert reused is dirty  # the shell actually came from the free list
    fresh = Packet.data(7, 1, 2, 1000, 500, ts_tx=42)
    assert _fields(reused) == _fields(fresh)


def test_pooled_ack_matches_fresh():
    pool = PacketPool()
    data = pool.data(9, 3, 8, 0, 1000, int_enabled=True, ts_tx=111)
    data.int_hops.append(HopRecord(500, 60, 9999, 25e9, 4))
    pooled = pool.ack(data, 1000, now=200)
    fresh = Packet.ack(data, 1000, now=200)
    pooled_fields = _fields(pooled)
    fresh_fields = _fields(fresh)
    assert pooled_fields.pop("int_hops") is fresh_fields.pop("int_hops")
    assert pooled_fields == fresh_fields


def test_release_detaches_but_does_not_recycle_shared_hops():
    pool = PacketPool()
    data = pool.data(1, 0, 1, 0, 100, int_enabled=True)
    record = pool.hop(10, 20, 30, 1e9, 7)
    data.int_hops.append(record)
    ack = pool.ack(data, 100, now=0)  # hop list moves into the ack
    pool.release(data)
    assert data.int_hops is None
    assert ack.int_hops == [record]  # alias survives the shell release
    # The record was NOT recycled: a new hop allocation is a new object.
    assert pool.hop(0, 0, 0, 1e9, 1) is not record


def test_release_with_hops_recycles_records_and_list():
    pool = PacketPool()
    pkt = pool.data(1, 0, 1, 0, 100, int_enabled=True)
    hops = pkt.int_hops
    record = pool.hop(10, 20, 30, 1e9, 7)
    hops.append(record)
    pool.release_with_hops(pkt)
    assert pkt.int_hops is None
    reused_record = pool.hop(1, 2, 3, 2e9, 9)
    assert reused_record is record
    assert (reused_record.qlen, reused_record.ts_ns, reused_record.tx_bytes,
            reused_record.bandwidth_bps, reused_record.port_id) == (1, 2, 3, 2e9, 9)
    fresh_int = pool.data(2, 0, 1, 0, 50, int_enabled=True)
    assert fresh_int.int_hops is hops  # the list itself recycles...
    assert fresh_int.int_hops == []  # ...cleared


def test_pooled_cnp_and_grant_match_fresh():
    pool = PacketPool()
    assert _fields(pool.cnp(5, 2, 0)) == _fields(Packet.cnp(5, 2, 0))
    assert _fields(pool.grant(3, 9, 1, 48_000, 5)) == _fields(
        Packet.grant(3, 9, 1, 48_000, 5)
    )


def test_get_pool_is_per_simulator():
    from repro.sim.engine import Simulator

    sim_a, sim_b = Simulator(), Simulator()
    assert get_pool(sim_a) is get_pool(sim_a)
    assert get_pool(sim_a) is not get_pool(sim_b)

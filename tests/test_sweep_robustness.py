"""Sweep-cache robustness: atomic persistence, corrupt-cache recovery,
stale-cache validation, and non-ok cell handling."""

import json
import os

import pytest

from repro.persist import atomic_write_json, atomic_write_text, load_json_or_none
from repro.scenarios import get_scenario
from repro.scenarios.sweep import (
    SweepRunner,
    SweepSpec,
    run_sweep,
    validate_cached_cell,
)

TINY = {"duration_ns": 200_000, "max_flows": 4, "size_scale": 1 / 64}


def _spec(**kw):
    return SweepSpec(
        scenario="websearch",
        grid=kw.pop("grid", {"load": [0.2]}),
        base=dict(TINY, **kw.pop("base", {})),
    )


# ----------------------------------------------------------------------
# atomic persistence primitives
# ----------------------------------------------------------------------
class TestAtomicPersist:
    def test_write_then_read_round_trip(self, tmp_path):
        path = str(tmp_path / "doc.json")
        atomic_write_json(path, {"a": 1})
        assert load_json_or_none(path) == {"a": 1}

    def test_no_tmp_droppings_on_success(self, tmp_path):
        atomic_write_text(str(tmp_path / "t.txt"), "hello")
        assert sorted(os.listdir(str(tmp_path))) == ["t.txt"]

    def test_failed_write_leaves_target_intact(self, tmp_path):
        path = str(tmp_path / "doc.json")
        atomic_write_json(path, {"a": 1})
        with pytest.raises(TypeError):
            atomic_write_json(path, {"bad": object()})
        assert load_json_or_none(path) == {"a": 1}  # old doc untouched
        assert sorted(os.listdir(str(tmp_path))) == ["doc.json"]  # no tmp

    def test_missing_file_is_silent_none(self, tmp_path):
        assert load_json_or_none(str(tmp_path / "absent.json")) is None

    def test_corrupt_file_warns_and_degrades(self, tmp_path):
        path = str(tmp_path / "torn.json")
        with open(path, "w") as handle:
            handle.write('{"cells": [{"par')  # truncated mid-write
        with pytest.warns(UserWarning, match="torn.json"):
            assert load_json_or_none(path, label="sweep cache") is None


# ----------------------------------------------------------------------
# sweep cache behaviour under damage
# ----------------------------------------------------------------------
class TestSweepCacheRobustness:
    def test_sweep_persist_is_atomic_format(self, tmp_path):
        out = str(tmp_path / "s.json")
        sweep = run_sweep("websearch", {"load": [0.2]}, base=TINY)
        sweep.persist(out)
        assert load_json_or_none(out)["cells"][0]["metrics"]

    def test_truncated_cache_recovers_with_warning(self, tmp_path):
        out = str(tmp_path / "s.json")
        run_sweep("websearch", {"load": [0.2]}, base=TINY).persist(out)
        with open(out, "w") as handle:
            handle.write('{"cells": [{"par')  # a kill before atomic writes
        with pytest.warns(UserWarning, match="sweep cache"):
            runner = SweepRunner(_spec(), reuse_path=out)
            sweep = runner.run()
        assert runner.reused_cells == 0  # cache lost, cells re-ran
        assert sweep.cells[0].result.metrics
        sweep.persist(out)  # and the re-persisted file is whole again
        assert load_json_or_none(out)["cells"]

    def test_stale_cached_cell_dropped_with_warning(self, tmp_path):
        out = str(tmp_path / "s.json")
        run_sweep("websearch", {"load": [0.2]}, base=TINY).persist(out)
        with open(out) as handle:
            doc = json.load(handle)
        # Simulate a schema/default edit since the cache was written: the
        # recorded provenance config no longer matches a re-derived one.
        doc["cells"][0]["provenance"]["config"]["duration_ns"] = 999
        atomic_write_json(out, doc)
        with pytest.warns(UserWarning, match="provenance"):
            runner = SweepRunner(_spec(), reuse_path=out)
            runner.run()
        assert runner.stale_cells == 1
        assert runner.reused_cells == 0

    def test_fresh_cache_is_reused_without_warning(self, tmp_path):
        out = str(tmp_path / "s.json")
        run_sweep("websearch", {"load": [0.2]}, base=TINY).persist(out)
        runner = SweepRunner(_spec(), reuse_path=out)
        runner.run()
        assert runner.reused_cells == 1 and runner.stale_cells == 0

    def test_non_ok_cells_are_not_reused(self, tmp_path):
        out = str(tmp_path / "s.json")
        sweep = run_sweep("websearch", {"load": [0.2]}, base=TINY)
        sweep.persist(out)
        with open(out) as handle:
            doc = json.load(handle)
        doc["cells"][0]["status"] = "failed"  # a campaign-persisted failure
        atomic_write_json(out, doc)
        runner = SweepRunner(_spec(), reuse_path=out)
        runner.run()
        assert runner.reused_cells == 0  # failed cells always re-run


# ----------------------------------------------------------------------
# validate_cached_cell
# ----------------------------------------------------------------------
class TestValidateCachedCell:
    def test_legacy_provenance_is_kept(self):
        scenario = get_scenario("websearch")
        assert validate_cached_cell(scenario, {"load": 0.2}, {})
        assert validate_cached_cell(scenario, {"load": 0.2}, {"seed": 1})

    def test_unconfigurable_overrides_are_stale(self):
        scenario = get_scenario("websearch")
        assert not validate_cached_cell(
            scenario, {"nonesuch": 1}, {"config": {"load": 0.2}}
        )

    def test_matching_config_is_fresh(self):
        scenario = get_scenario("websearch")
        overrides = dict(TINY, load=0.2)
        from repro.scenarios.base import config_to_jsonable

        config = config_to_jsonable(scenario.configure(**overrides))
        assert validate_cached_cell(scenario, overrides, {"config": config})
        config["load"] = 0.9  # a divergent snapshot must re-run
        assert not validate_cached_cell(scenario, overrides, {"config": config})

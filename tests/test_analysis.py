"""Tests for the analysis layer: percentiles, CDFs, FCT summaries, fairness."""

import pytest

from repro.analysis.fairness import average_goodput_bps, jain_index, throughput_shares
from repro.analysis.fct import (
    slowdown_by_size_bin,
    slowdowns,
    summarize_fct,
)
from repro.analysis.stats import cdf_points, mean, percentile
from repro.transport.flow import Flow
from repro.units import GBPS, USEC


# ----------------------------------------------------------------------
# stats
# ----------------------------------------------------------------------
def test_percentile_endpoints():
    values = list(range(1, 101))
    assert percentile(values, 0) == 1
    assert percentile(values, 100) == 100
    assert percentile(values, 50) == pytest.approx(50.5)


def test_percentile_interpolates():
    assert percentile([10, 20], 25) == pytest.approx(12.5)


def test_percentile_single_value():
    assert percentile([7.0], 99.9) == 7.0


def test_percentile_validation():
    with pytest.raises(ValueError):
        percentile([], 50)
    with pytest.raises(ValueError):
        percentile([1], 101)


def test_cdf_points_monotone():
    xs, ps = cdf_points([5, 1, 3])
    assert xs == [1, 3, 5]
    assert ps == pytest.approx([1 / 3, 2 / 3, 1.0])


def test_mean_helper():
    assert mean([1.0, 2.0, 3.0]) == 2.0
    with pytest.raises(ValueError):
        mean([])


# ----------------------------------------------------------------------
# FCT analysis
# ----------------------------------------------------------------------
def make_flow(flow_id, size, fct_ns, base_rtt=10 * USEC, bw=10 * GBPS):
    flow = Flow(flow_id, 0, 1, size)
    flow.start_ns = 0
    flow.finish_ns = fct_ns
    return flow


def test_slowdowns_skips_incomplete():
    done = make_flow(1, 1000, 100_000)
    pending = Flow(2, 0, 1, 1000)
    values = slowdowns([done, pending], 10 * USEC, 10 * GBPS)
    assert len(values) == 1


def test_slowdown_is_one_for_ideal_fct():
    size = 100_000
    flow = Flow(1, 0, 1, size)
    flow.start_ns = 0
    flow.finish_ns = flow.ideal_fct_ns(10 * USEC, 10 * GBPS)
    assert flow.slowdown(10 * USEC, 10 * GBPS) == pytest.approx(1.0)


def test_summary_classifies_sizes():
    flows = [
        make_flow(1, 5_000, 50_000),  # short
        make_flow(2, 500_000, 1_000_000),  # medium
        make_flow(3, 10_000_000, 50_000_000),  # long
        make_flow(4, 50_000, 200_000),  # other (10K-100K)
    ]
    summary = summarize_fct("x", flows, 10 * USEC, 10 * GBPS, pct=50)
    assert summary.short is not None
    assert summary.medium is not None
    assert summary.long is not None
    assert summary.completed == 4


def test_summary_handles_empty_classes():
    flows = [make_flow(1, 5_000, 50_000)]
    summary = summarize_fct("x", flows, 10 * USEC, 10 * GBPS)
    assert summary.medium is None and summary.long is None
    assert "short" in summary.row()


def test_size_bins_partition():
    flows = [
        make_flow(1, 4_000, 40_000),
        make_flow(2, 300_000, 900_000),
        make_flow(3, 20_000_000, 90_000_000),
    ]
    bins = slowdown_by_size_bin(flows, 10 * USEC, 10 * GBPS, pct=50)
    populated = [(edge, count) for edge, value, count in bins if count]
    assert populated == [(5_000, 1), (400_000, 1), (30_000_000, 1)]


# ----------------------------------------------------------------------
# fairness
# ----------------------------------------------------------------------
def test_jain_equal_shares():
    assert jain_index([5, 5, 5, 5]) == pytest.approx(1.0)


def test_jain_single_hog():
    assert jain_index([10, 0, 0, 0]) == pytest.approx(0.25)


def test_jain_empty_raises():
    with pytest.raises(ValueError):
        jain_index([])


def test_throughput_shares_conversion():
    shares = throughput_shares({1: 1250}, 1000)  # 1250B in 1us
    assert shares[1] == pytest.approx(10 * GBPS)


def test_average_goodput():
    flow = make_flow(1, 1_250_000, 1_000_000)  # 1.25MB in 1ms
    assert average_goodput_bps(flow) == pytest.approx(10 * GBPS)

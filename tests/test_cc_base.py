"""Tests for the CC base-class helpers and the reTCP endpoint logic."""

import pytest

from repro.cc.base import (
    DEFAULT_CAP_BDP_MULTIPLE,
    MIN_WINDOW_MTU_FRACTION,
    CongestionControl,
    StaticWindow,
)
from repro.cc.retcp import ReTcp
from repro.sim.circuit import CircuitSchedule
from repro.sim.engine import Simulator
from repro.units import GBPS, USEC


class StubSender:
    def __init__(self):
        self.sim = Simulator()
        self.base_rtt_ns = 20 * USEC
        self.host_bw_bps = 10 * GBPS
        self.mtu_payload = 1000
        self.cwnd = 0.0
        self.pacing_rate_bps = 0.0
        self.done = False

    def _try_send(self):
        pass


BDP = 25_000.0  # 10 Gbps x 20 us


def test_host_bdp_bytes():
    cc, sender = CongestionControl(), StubSender()
    assert cc.host_bdp_bytes(sender) == pytest.approx(BDP)


def test_set_window_clamps_floor():
    cc, sender = CongestionControl(), StubSender()
    cc.set_window(sender, 0.0)
    assert sender.cwnd == MIN_WINDOW_MTU_FRACTION * sender.mtu_payload


def test_set_window_clamps_cap():
    cc, sender = CongestionControl(), StubSender()
    cc.set_window(sender, 10 * BDP)
    assert sender.cwnd == pytest.approx(DEFAULT_CAP_BDP_MULTIPLE * BDP)


def test_set_window_pacing_follows_window():
    cc, sender = CongestionControl(), StubSender()
    cc.set_window(sender, BDP / 2)
    assert sender.pacing_rate_bps == pytest.approx(5 * GBPS)


def test_set_window_pacing_capped_at_line_rate():
    cc, sender = CongestionControl(), StubSender()
    cc.set_window(sender, 2 * BDP)
    assert sender.pacing_rate_bps == sender.host_bw_bps


def test_set_rate_clamps_and_sets_window():
    cc, sender = CongestionControl(), StubSender()
    cc.set_rate(sender, 100 * GBPS)
    assert sender.pacing_rate_bps == sender.host_bw_bps
    cc.set_rate(sender, 1 * GBPS, window_rtts=2.0)
    assert sender.cwnd == pytest.approx(2 * 1e9 * 20e-6 / 8)


def test_default_loss_halves():
    cc, sender = CongestionControl(), StubSender()
    cc.set_window(sender, BDP)
    cc.on_loss(sender)
    assert sender.cwnd == pytest.approx(BDP / 2)


def test_default_timeout_collapses_to_one_mtu():
    cc, sender = CongestionControl(), StubSender()
    cc.set_window(sender, BDP)
    cc.on_timeout(sender)
    assert sender.cwnd == sender.mtu_payload


def test_static_window_ignores_loss():
    cc, sender = StaticWindow(bdp_multiple=1.0), StubSender()
    cc.on_start(sender)
    w0 = sender.cwnd
    cc.on_loss(sender)
    cc.on_timeout(sender)
    assert sender.cwnd == w0


# ----------------------------------------------------------------------
# reTCP endpoint
# ----------------------------------------------------------------------
def make_retcp(prebuffer=0, flows_per_pair=2):
    schedule = CircuitSchedule(3, day_ns=100_000, night_ns=20_000)
    cc = ReTcp(
        schedule, 0, 1, prebuffer_ns=prebuffer, flows_per_pair=flows_per_pair
    )
    sender = StubSender()
    return cc, sender, schedule


def test_retcp_night_window_is_fair_share():
    cc, sender, schedule = make_retcp(flows_per_pair=2)
    cc.on_start(sender)  # t=0 is night for pair (0,1): window starts 20us in
    assert sender.cwnd == pytest.approx(BDP / 2, rel=0.01)


def test_retcp_switches_to_day_window():
    cc, sender, schedule = make_retcp()
    cc.on_start(sender)
    start, end = schedule.window_for(0, 1, 0)
    sender.sim.run(until=start + 1)
    assert sender.cwnd == pytest.approx(BDP, rel=0.01)
    sender.sim.run(until=end + 1)
    assert sender.cwnd < BDP  # back to the night share


def test_retcp_prebuffer_advances_the_switch():
    cc, sender, schedule = make_retcp(prebuffer=10_000)
    cc.on_start(sender)
    start, _ = schedule.window_for(0, 1, 0)
    sender.sim.run(until=start - 5_000)  # inside the prebuffer window
    assert sender.cwnd == pytest.approx(BDP, rel=0.01)


def test_retcp_ignores_loss_signals():
    cc, sender, _ = make_retcp()
    cc.on_start(sender)
    w0 = sender.cwnd
    cc.on_loss(sender)
    cc.on_timeout(sender)
    assert sender.cwnd == w0

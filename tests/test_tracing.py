"""Unit tests for the probe/time-series utilities."""

from repro.sim.engine import Simulator
from repro.sim.tracing import CounterRateProbe, PortProbe, Probe
from repro.sim.packet import Packet
from repro.sim.port import EgressPort
from repro.units import GBPS


def test_probe_samples_on_interval():
    sim = Simulator()
    values = iter(range(100))
    probe = Probe(sim, 10, lambda: next(values), until_ns=50).start()
    sim.run(until=100)
    assert probe.times_ns == [0, 10, 20, 30, 40, 50]
    assert probe.values == [0, 1, 2, 3, 4, 5]


def test_probe_start_is_idempotent():
    sim = Simulator()
    probe = Probe(sim, 10, lambda: 1, until_ns=20)
    probe.start()
    probe.start()
    sim.run(until=25)
    assert probe.times_ns == [0, 10, 20]


def test_counter_rate_probe_converts_to_bps():
    sim = Simulator()
    counter = {"v": 0}
    probe = CounterRateProbe(sim, 1000, lambda: counter["v"], until_ns=3000).start()
    sim.at(500, lambda: counter.__setitem__("v", 125))  # 125 B in window 1
    sim.run(until=3500)
    # 125 bytes over 1000 ns = 1 Gbps.
    assert probe.rates_bps[0] == 1 * GBPS
    assert probe.rates_bps[1] == 0.0


def test_port_probe_tracks_queue_and_throughput():
    sim = Simulator()

    class Sink:
        def receive(self, pkt):
            pass

    port = EgressPort(sim, 8 * GBPS, 0, peer=Sink())
    probe = PortProbe(sim, port, 1000, until_ns=5000).start()
    sim.at(100, port.enqueue, Packet.data(1, 0, 1, 0, 1000 - 48))
    sim.run(until=6000)
    assert max(probe.throughput_bps) > 0
    assert len(probe.times_ns) == len(probe.qlen_bytes)


def test_probe_rejects_bad_interval():
    sim = Simulator()
    try:
        Probe(sim, 0, lambda: 1)
    except ValueError:
        pass
    else:
        raise AssertionError("expected ValueError")

"""Tests for the experiment driver (algorithm deployment + flow lifecycle)."""

import pytest

from repro.experiments.driver import FlowDriver
from repro.sim.engine import Simulator
from repro.topology.dumbbell import DumbbellParams, build_dumbbell
from repro.units import GBPS, MSEC


def make_net(left=2, right=1):
    sim = Simulator()
    net = build_dumbbell(
        sim,
        DumbbellParams(
            left_hosts=left,
            right_hosts=right,
            host_bw_bps=10 * GBPS,
            bottleneck_bw_bps=10 * GBPS,
        ),
    )
    return sim, net


def test_flow_ids_are_unique_and_dense():
    sim, net = make_net(left=3)
    driver = FlowDriver(net, "powertcp")
    flows = [driver.start_flow(i, 3, 1000, at_ns=0) for i in range(3)]
    assert [f.flow_id for f in flows] == [1, 2, 3]


def test_start_flow_validation():
    sim, net = make_net()
    driver = FlowDriver(net, "powertcp")
    with pytest.raises(ValueError):
        driver.start_flow(0, 0, 1000)
    with pytest.raises(ValueError):
        driver.start_flow(0, 2, 0)


def test_start_flow_in_the_past_raises_eagerly():
    sim, net = make_net()
    driver = FlowDriver(net, "powertcp")
    sim.run(until=1000)  # advance the clock past the intended start
    with pytest.raises(ValueError, match=r"'late'.*1->2.*before sim\.now=1000"):
        driver.start_flow(1, 2, 1000, at_ns=500, tag="late")
    assert driver.flows == []  # nothing half-registered


def test_completed_flows_collected():
    sim, net = make_net()
    driver = FlowDriver(net, "powertcp")
    driver.start_flow(0, 2, 10_000, at_ns=0)
    driver.start_flow(1, 2, 10_000, at_ns=0)
    driver.run(until_ns=2 * MSEC)
    assert len(driver.completed) == 2
    assert driver.unfinished == []


def test_deferred_start_respects_at_ns():
    sim, net = make_net()
    driver = FlowDriver(net, "powertcp")
    flow = driver.start_flow(0, 2, 1000, at_ns=500_000)
    driver.run(until_ns=1 * MSEC)
    assert flow.start_ns == 500_000


def test_dcqcn_gets_ecn_marking_on_ports():
    sim, net = make_net()
    FlowDriver(net, "dcqcn")
    for switch in net.switches:
        for port in switch.ports:
            assert port.ecn is not None


def test_dctcp_threshold_uses_base_rtt():
    sim, net = make_net()
    FlowDriver(net, "dctcp")
    port = net.port("bottleneck")
    assert port.ecn is not None
    assert port.ecn.kmin == port.ecn.kmax  # step marking


def test_powertcp_leaves_ecn_off():
    sim, net = make_net()
    FlowDriver(net, "powertcp")
    assert net.port("bottleneck").ecn is None


def test_int_disabled_for_delay_based():
    sim, net = make_net()
    driver = FlowDriver(net, "theta-powertcp")
    flow = driver.start_flow(0, 2, 10_000, at_ns=0)
    driver.run(until_ns=1 * MSEC)
    sender = driver.senders[flow.flow_id]
    assert not sender.int_enabled


def test_homa_shares_scheduler_per_destination():
    sim, net = make_net(left=3)
    driver = FlowDriver(net, "homa")
    driver.start_flow(0, 3, 100_000, at_ns=0)
    driver.start_flow(1, 3, 100_000, at_ns=0)
    driver.run(until_ns=100_000)
    assert len(driver._homa_schedulers) == 1  # one per destination host


def test_rtt_bytes_matches_host_bdp():
    sim, net = make_net()
    driver = FlowDriver(net, "homa")
    expected = int(net.host_bw_bps * net.base_rtt_ns / 8e9)
    assert driver.rtt_bytes == expected


def test_spec_object_can_be_passed_directly():
    from repro.cc.registry import make_algorithm

    sim, net = make_net()
    spec = make_algorithm("hpcc", eta=0.9)
    driver = FlowDriver(net, spec)
    flow = driver.start_flow(0, 2, 10_000, at_ns=0)
    driver.run(until_ns=1 * MSEC)
    assert flow.completed


def test_unknown_cc_param_fails_at_driver_construction():
    sim, net = make_net()
    with pytest.raises(TypeError, match="powertcp"):
        FlowDriver(net, "powertcp", cc_params={"gama": 0.9})


def test_cc_params_rejected_with_bound_spec_mapping_and_callable():
    from repro.cc.registry import make_algorithm

    sim, net = make_net()
    spec = make_algorithm("powertcp")
    for algorithm in (spec, {"*": "powertcp"}, lambda flow: "powertcp"):
        with pytest.raises(ValueError, match="cc_params"):
            FlowDriver(net, algorithm, cc_params={"gamma": 0.5})


# ----------------------------------------------------------------------
# Per-flow algorithm mixing
# ----------------------------------------------------------------------
def test_tag_mapping_assigns_per_flow_algorithms():
    from repro.core.powertcp import PowerTcp
    from repro.cc.dcqcn import Dcqcn

    sim, net = make_net(left=4)
    driver = FlowDriver(net, {"new": "powertcp", "old": "dcqcn"})
    a = driver.start_flow(0, 4, 20_000, at_ns=0, tag="new")
    b = driver.start_flow(1, 4, 20_000, at_ns=0, tag="old")
    driver.run(until_ns=2 * MSEC)
    assert isinstance(driver.senders[a.flow_id].cc, PowerTcp)
    assert isinstance(driver.senders[b.flow_id].cc, Dcqcn)
    assert a.completed and b.completed


def test_mixed_requirements_union_enables_int_and_ecn():
    sim, net = make_net(left=4)
    driver = FlowDriver(net, {"new": "powertcp", "old": "dcqcn"})
    a = driver.start_flow(0, 4, 20_000, at_ns=0, tag="new")
    b = driver.start_flow(1, 4, 20_000, at_ns=0, tag="old")
    driver.run(until_ns=2 * MSEC)
    # Union: PowerTCP's INT stamping and DCQCN's ECN marking both active.
    assert driver.requirements.int_stamping
    assert driver.requirements.needs_ecn
    for switch in net.switches:
        for port in switch.ports:
            assert port.ecn is not None
            assert port.int_stamping
    # Per-flow features stay per-flow: only the PowerTCP sender echoes INT.
    assert driver.senders[a.flow_id].int_enabled
    assert not driver.senders[b.flow_id].int_enabled
    assert driver.senders[b.flow_id].ecn_capable
    assert not driver.senders[a.flow_id].ecn_capable


def test_unmatched_tag_raises_eagerly():
    sim, net = make_net()
    driver = FlowDriver(net, {"new": "powertcp"})
    with pytest.raises(KeyError, match="stray"):
        driver.start_flow(0, 2, 1000, at_ns=0, tag="stray")
    assert driver.flows == []


def test_mapping_fallback_group():
    sim, net = make_net()
    driver = FlowDriver(net, {"new": "powertcp", "*": "timely"})
    flow = driver.start_flow(0, 2, 10_000, at_ns=0, tag="anything")
    driver.run(until_ns=1 * MSEC)
    from repro.cc.timely import Timely

    assert isinstance(driver.senders[flow.flow_id].cc, Timely)


def test_callable_assignment_resolves_eagerly_per_flow():
    sim, net = make_net(left=4)
    driver = FlowDriver(
        net, lambda flow: "dcqcn" if flow.src % 2 else "powertcp"
    )
    assert driver.deployed == {}  # nothing resolved until flows exist
    driver.start_flow(0, 4, 10_000, at_ns=0)
    driver.start_flow(1, 4, 10_000, at_ns=0)
    # Resolution happens at start_flow, not at launch time.
    assert set(driver.deployed) == {"powertcp", "dcqcn"}
    driver.run(until_ns=2 * MSEC)
    assert net.port("bottleneck").ecn is not None


def test_callable_assignment_typo_fails_at_start_flow():
    sim, net = make_net()
    driver = FlowDriver(net, lambda flow: "powrtcp")  # typo
    with pytest.raises(KeyError, match="powrtcp"):
        driver.start_flow(0, 2, 10_000, at_ns=500_000)
    assert driver.flows == []  # nothing scheduled for mid-run failure


def test_start_flow_algorithm_override():
    from repro.cc.swift import Swift

    sim, net = make_net(left=3)
    driver = FlowDriver(net, "powertcp")
    flow = driver.start_flow(0, 3, 10_000, at_ns=0, algorithm="swift")
    other = driver.start_flow(1, 3, 10_000, at_ns=0)
    driver.run(until_ns=2 * MSEC)
    assert isinstance(driver.senders[flow.flow_id].cc, Swift)
    assert set(driver.deployed) == {"powertcp", "swift"}
    assert flow.completed and other.completed


def test_conflicting_ecn_configs_raise():
    sim, net = make_net(left=3)
    driver = FlowDriver(net, "dcqcn")
    with pytest.raises(ValueError, match="conflicting ECN"):
        driver.start_flow(0, 3, 10_000, at_ns=0, algorithm="dctcp")
    # The rejected deploy leaves no trace: a compatible mix still works.
    assert set(driver.deployed) == {"dcqcn"}
    flow = driver.start_flow(0, 3, 10_000, at_ns=0, algorithm="powertcp")
    driver.run(until_ns=2 * MSEC)
    assert flow.completed
    assert set(driver.deployed) == {"dcqcn", "powertcp"}


def test_homa_and_window_transports_can_mix():
    sim, net = make_net(left=4)
    driver = FlowDriver(net, {"rpc": "homa", "*": "powertcp"})
    a = driver.start_flow(0, 4, 50_000, at_ns=0, tag="rpc")
    b = driver.start_flow(1, 4, 50_000, at_ns=0)
    driver.run(until_ns=2 * MSEC)
    assert a.completed and b.completed
    assert len(driver._homa_schedulers) == 1
    from repro.cc.homa import HomaSender

    assert isinstance(driver.senders[a.flow_id], HomaSender)
    assert not isinstance(driver.senders[b.flow_id], HomaSender)

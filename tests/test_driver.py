"""Tests for the experiment driver (algorithm deployment + flow lifecycle)."""

import pytest

from repro.experiments.driver import FlowDriver
from repro.sim.engine import Simulator
from repro.topology.dumbbell import DumbbellParams, build_dumbbell
from repro.units import GBPS, MSEC


def make_net(left=2, right=1):
    sim = Simulator()
    net = build_dumbbell(
        sim,
        DumbbellParams(
            left_hosts=left,
            right_hosts=right,
            host_bw_bps=10 * GBPS,
            bottleneck_bw_bps=10 * GBPS,
        ),
    )
    return sim, net


def test_flow_ids_are_unique_and_dense():
    sim, net = make_net(left=3)
    driver = FlowDriver(net, "powertcp")
    flows = [driver.start_flow(i, 3, 1000, at_ns=0) for i in range(3)]
    assert [f.flow_id for f in flows] == [1, 2, 3]


def test_start_flow_validation():
    sim, net = make_net()
    driver = FlowDriver(net, "powertcp")
    with pytest.raises(ValueError):
        driver.start_flow(0, 0, 1000)
    with pytest.raises(ValueError):
        driver.start_flow(0, 2, 0)


def test_start_flow_in_the_past_raises_eagerly():
    sim, net = make_net()
    driver = FlowDriver(net, "powertcp")
    sim.run(until=1000)  # advance the clock past the intended start
    with pytest.raises(ValueError, match=r"'late'.*1->2.*before sim\.now=1000"):
        driver.start_flow(1, 2, 1000, at_ns=500, tag="late")
    assert driver.flows == []  # nothing half-registered


def test_completed_flows_collected():
    sim, net = make_net()
    driver = FlowDriver(net, "powertcp")
    driver.start_flow(0, 2, 10_000, at_ns=0)
    driver.start_flow(1, 2, 10_000, at_ns=0)
    driver.run(until_ns=2 * MSEC)
    assert len(driver.completed) == 2
    assert driver.unfinished == []


def test_deferred_start_respects_at_ns():
    sim, net = make_net()
    driver = FlowDriver(net, "powertcp")
    flow = driver.start_flow(0, 2, 1000, at_ns=500_000)
    driver.run(until_ns=1 * MSEC)
    assert flow.start_ns == 500_000


def test_dcqcn_gets_ecn_marking_on_ports():
    sim, net = make_net()
    FlowDriver(net, "dcqcn")
    for switch in net.switches:
        for port in switch.ports:
            assert port.ecn is not None


def test_dctcp_threshold_uses_base_rtt():
    sim, net = make_net()
    FlowDriver(net, "dctcp")
    port = net.port("bottleneck")
    assert port.ecn is not None
    assert port.ecn.kmin == port.ecn.kmax  # step marking


def test_powertcp_leaves_ecn_off():
    sim, net = make_net()
    FlowDriver(net, "powertcp")
    assert net.port("bottleneck").ecn is None


def test_int_disabled_for_delay_based():
    sim, net = make_net()
    driver = FlowDriver(net, "theta-powertcp")
    flow = driver.start_flow(0, 2, 10_000, at_ns=0)
    driver.run(until_ns=1 * MSEC)
    sender = driver.senders[flow.flow_id]
    assert not sender.int_enabled


def test_homa_shares_scheduler_per_destination():
    sim, net = make_net(left=3)
    driver = FlowDriver(net, "homa")
    driver.start_flow(0, 3, 100_000, at_ns=0)
    driver.start_flow(1, 3, 100_000, at_ns=0)
    driver.run(until_ns=100_000)
    assert len(driver._homa_schedulers) == 1  # one per destination host


def test_rtt_bytes_matches_host_bdp():
    sim, net = make_net()
    driver = FlowDriver(net, "homa")
    expected = int(net.host_bw_bps * net.base_rtt_ns / 8e9)
    assert driver.rtt_bytes == expected


def test_spec_object_can_be_passed_directly():
    from repro.cc.registry import make_algorithm

    sim, net = make_net()
    spec = make_algorithm("hpcc", eta=0.9)
    driver = FlowDriver(net, spec)
    flow = driver.start_flow(0, 2, 10_000, at_ns=0)
    driver.run(until_ns=1 * MSEC)
    assert flow.completed

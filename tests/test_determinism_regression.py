"""Determinism regression suite.

The engine overhaul (tuple heap, packet pooling, GC pause) must never
make two identical runs diverge: same scenario + same seed must produce
the identical event count and identical metrics, regardless of pool
reuse, anonymous-port RNG fallbacks, or the process's allocation history.
"""

import pytest

from compiled_support import require_compiled
from repro.scenarios import get_scenario
from repro.sim.engine import engine_defaults


def _run_tiny(name, **extra):
    scenario = get_scenario(name)
    overrides = dict(scenario.tiny_overrides())
    overrides.update(extra)
    result = scenario.run(**overrides)
    return result.provenance["events_processed"], result.metrics


#: every scheduler x batching engine configuration the simulator supports
#: (compiled cells skip visibly when the optional extension is unbuilt)
ENGINE_CONFIGS = [
    {"scheduler": "heap", "tx_batch_limit": 1},
    {"scheduler": "heap", "tx_batch_limit": 8},
    {"scheduler": "calendar", "tx_batch_limit": 1},
    {"scheduler": "calendar", "tx_batch_limit": 8},
    {"scheduler": "compiled", "tx_batch_limit": 1},
    {"scheduler": "compiled", "tx_batch_limit": 8},
    {"scheduler": "auto", "tx_batch_limit": 1},
]


@pytest.mark.parametrize(
    "engine", ENGINE_CONFIGS, ids=lambda e: f"{e['scheduler']}-b{e['tx_batch_limit']}"
)
@pytest.mark.parametrize(
    "scenario,extra",
    [
        ("incast", {"algorithm": "powertcp"}),
        ("incast", {"algorithm": "dcqcn"}),  # timers + ECN RNG + CNPs
        ("websearch", {"algorithm": "hpcc", "seed": 7}),
        ("permutation", {"algorithm": "powertcp", "seed": 3}),
    ],
)
def test_same_seed_same_run(scenario, extra, engine):
    require_compiled(engine)
    with engine_defaults(**engine):
        events_a, metrics_a = _run_tiny(scenario, **extra)
        events_b, metrics_b = _run_tiny(scenario, **extra)
    assert events_a == events_b
    assert metrics_a == metrics_b


@pytest.mark.parametrize("alternative", ["calendar", "compiled", "auto"])
@pytest.mark.parametrize(
    "scenario,extra",
    [
        ("incast", {"algorithm": "powertcp"}),
        ("websearch", {"algorithm": "hpcc", "seed": 7}),
    ],
)
def test_alternative_schedulers_match_heap_exactly(scenario, extra, alternative):
    # Every non-heap event path preserves (time, seq) order exactly, so —
    # unlike batching, which is a documented approximation — swapping
    # schedulers must not move a single event or metric
    # (docs/INVARIANTS.md#compiled-parity).
    require_compiled(alternative)
    with engine_defaults(scheduler="heap"):
        events_h, metrics_h = _run_tiny(scenario, **extra)
    with engine_defaults(scheduler=alternative):
        events_c, metrics_c = _run_tiny(scenario, **extra)
    assert events_h == events_c
    assert metrics_h == metrics_c


def test_different_seeds_diverge():
    # Sanity check that the seed actually feeds the workload: two seeds
    # should not produce the same flow arrival pattern.
    events_a, _ = _run_tiny("websearch", algorithm="powertcp", seed=1)
    events_b, _ = _run_tiny("websearch", algorithm="powertcp", seed=2)
    assert events_a != events_b


def test_anonymous_ports_are_deterministic_and_distinct():
    # Unnamed ports derive their ECN RNG from a per-simulator counter:
    # distinct sequences per port, identical across simulators.
    import random

    from repro.sim.engine import Simulator
    from repro.sim.port import EgressPort

    def mark_draws(sim):
        ports = [EgressPort(sim, 1e9, 0) for _ in range(2)]
        return [[p.rng.random() for _ in range(4)] for p in ports]

    draws_a = mark_draws(Simulator())
    draws_b = mark_draws(Simulator())
    assert draws_a == draws_b  # per-simulator counter: stable across runs
    assert draws_a[0] != draws_a[1]  # two anonymous ports never share a seed
    # Named ports keep their historical name-derived seed.
    sim = Simulator()
    named = EgressPort(sim, 1e9, 0, name="bottleneck")
    reference = random.Random("bottleneck")
    assert [named.rng.random() for _ in range(4)] == [
        reference.random() for _ in range(4)
    ]

"""Compiled event core: parity, fallback, and loader-gating tests.

Contract under test (``docs/INVARIANTS.md#compiled-parity``): the
pure-Python heap loop is the reference, and the C drain must reproduce
its ``(time, seq)`` order — and therefore every result — exactly.  The
fallback tests simulate an installation without a C compiler by forcing
the loader's failure branch (``force_unavailable``): the whole engine
surface must keep working on the pure-Python path.
"""

import heapq
import random

import pytest

from compiled_support import require_compiled
from repro.sim import Simulator, compiled_available, engine_defaults
from repro.sim._compiled import compiled_error, force_unavailable, load_compiled


def _kernel():
    require_compiled("compiled")
    return load_compiled()


# ----------------------------------------------------------------------
# Heap primitives
# ----------------------------------------------------------------------


def test_heap_ops_match_heapq_order():
    ck = _kernel()
    rng = random.Random(11)
    entries = [
        (rng.randrange(10**7), seq, None, ()) for seq in range(4000)
    ]
    ours, reference = [], []
    for entry in entries:
        ck.heappush(ours, entry)
        heapq.heappush(reference, entry)
    popped = [ck.heappop(ours) for _ in range(len(entries))]
    expected = [heapq.heappop(reference) for _ in range(len(entries))]
    assert popped == expected
    assert popped == sorted(entries)


def test_heap_ops_interoperate_with_heapq():
    # The engine mixes heapq pushes (ports, at/after) with compiled pops:
    # (time, seq) is a total order, so any valid heap layout pops in the
    # same sequence.
    ck = _kernel()
    rng = random.Random(12)
    entries = [(rng.randrange(10**6), seq, None, ()) for seq in range(2000)]
    mixed = []
    for i, entry in enumerate(entries):
        (heapq.heappush if i % 2 else ck.heappush)(mixed, entry)
    drained = []
    for i in range(len(entries)):
        drained.append((heapq.heappop if i % 3 == 0 else ck.heappop)(mixed))
    assert drained == sorted(entries)


def test_heappop_empty_raises_indexerror():
    ck = _kernel()
    with pytest.raises(IndexError):
        ck.heappop([])


# ----------------------------------------------------------------------
# Run-loop parity
# ----------------------------------------------------------------------


def _churn_workload(sim, seed=42, streams=40, horizon=600_000):
    """Self-rescheduling churn with cancellable timers; returns the trace."""
    rng = random.Random(seed)
    trace = []
    timers = []

    def tick(tag):
        trace.append((sim.now, tag))
        delay = rng.randrange(1, 4000)
        if sim.now + delay < horizon:
            sim.after(delay, tick, tag)
        if rng.random() < 0.25:
            timers.append(
                sim.after_cancellable(rng.randrange(1, 9000), tick, -tag - 1)
            )
        if timers and rng.random() < 0.5:
            timers.pop(rng.randrange(len(timers))).cancel()

    for tag in range(streams):
        sim.at(rng.randrange(1, 1500), tick, tag)
    return trace


def _run(scheduler, *, budget=None, horizon=700_000):
    sim = Simulator(scheduler=scheduler)
    trace = _churn_workload(sim)
    if budget is None:
        sim.run(until=horizon)
    else:
        while True:
            if sim.run(until=horizon, max_events=budget) < budget:
                break
    return trace, sim.events_processed, sim.now, sim.pending


@pytest.mark.parametrize("budget", [None, 997], ids=["unbudgeted", "budgeted"])
def test_drain_matches_reference_loop(budget):
    require_compiled("compiled")
    reference = _run("heap", budget=budget)
    compiled = _run("compiled", budget=budget)
    assert compiled[0] == reference[0]  # full (time, tag) event trace
    assert compiled[1:] == reference[1:]


def test_budget_hit_does_not_advance_clock():
    require_compiled("compiled")
    for scheduler in ("heap", "compiled"):
        sim = Simulator(scheduler=scheduler)
        sim.at(10, lambda: None)
        sim.at(20, lambda: None)
        assert sim.run(until=1000, max_events=1) == 1
        assert sim.now == 10  # budget tripped: no advance to the horizon
        assert sim.pending == 1
        assert sim.run(until=1000) == 1
        assert sim.now == 1000  # horizon reached: clock advances


def test_callback_exception_keeps_counters_consistent():
    require_compiled("compiled")

    def boom():
        raise RuntimeError("scheduled failure")

    results = {}
    for scheduler in ("heap", "compiled"):
        sim = Simulator(scheduler=scheduler)
        sim.at(1, lambda: None)
        sim.at(2, boom)
        sim.at(3, lambda: None)
        with pytest.raises(RuntimeError, match="scheduled failure"):
            sim.run()
        results[scheduler] = (sim.events_processed, sim.pending, sim.now)
    assert results["compiled"] == results["heap"]


def test_cancelled_compaction_consumes_no_budget():
    require_compiled("compiled")
    for scheduler in ("heap", "compiled"):
        sim = Simulator(scheduler=scheduler)
        fired = []
        for k in range(5):
            sim.at_cancellable(10 + k, fired.append, k).cancel()
        sim.at(100, fired.append, "real")
        assert sim.run(max_events=1) == 1
        assert fired == ["real"]
        assert sim.pending == 0


def test_compiled_sim_composes_with_step_and_peek():
    require_compiled("compiled")
    sim = Simulator(scheduler="compiled")
    seen = []
    sim.at(5, seen.append, "a")
    sim.at(9, seen.append, "b")
    assert sim.peek_time() == 5
    assert sim.step() is True  # step() uses the shared heap path
    assert seen == ["a"]
    sim.run()
    assert seen == ["a", "b"]


# ----------------------------------------------------------------------
# Loader gating and the no-compiler fallback
# ----------------------------------------------------------------------


def test_best_mode_uses_compiled_when_available():
    require_compiled("compiled")
    assert Simulator(scheduler="best").scheduler == "compiled"
    with engine_defaults(scheduler="best"):
        assert Simulator().scheduler == "compiled"


def test_forced_fallback_simulates_no_compiler_install():
    # The pip-install-without-gcc cycle: "best" silently degrades to the
    # pure-Python reference and a full workload still runs.
    with force_unavailable():
        assert not compiled_available()
        assert "forced unavailable" in compiled_error()
        sim = Simulator(scheduler="best")
        assert sim.scheduler == "heap"
        trace = _churn_workload(sim, streams=10, horizon=100_000)
        sim.run(until=120_000)
        assert trace
        assert sim.now == 120_000


def test_explicit_compiled_request_fails_loudly_without_extension():
    with force_unavailable():
        with pytest.raises(RuntimeError, match="compiled event core is unavailable"):
            Simulator(scheduler="compiled")


def test_fallback_matches_compiled_results_exactly():
    # The same workload through the forced pure-Python path and the real
    # compiled path must agree event for event.
    require_compiled("compiled")
    with force_unavailable():
        fallback = _run("best")
    compiled = _run("best")
    assert fallback == compiled


def test_engine_report_names_every_engine():
    from repro.perf.bench import engine_report

    lines = "\n".join(engine_report())
    for name in ("heap", "calendar", "compiled", "best", "auto"):
        assert name in lines
    if compiled_available():
        assert "loaded" in lines
    else:
        assert "unavailable" in lines


# ----------------------------------------------------------------------
# Port specialization interplay
# ----------------------------------------------------------------------


def test_port_specialization_under_compiled_and_auto():
    from repro.sim.port import EgressPort, _HeapPort

    require_compiled("compiled")
    # Compiled sims share the raw-heap push path: ports specialize.
    assert type(EgressPort(Simulator(scheduler="compiled"), 1e9, 0)) is _HeapPort
    # An unresolved "auto" sim may still migrate to the calendar — its
    # ports must keep the general (scheduler-checking) push path.
    auto_sim = Simulator(scheduler="auto")
    assert type(EgressPort(auto_sim, 1e9, 0)) is EgressPort
    auto_sim.run(until=0)  # resolves (shallow -> heap)
    assert auto_sim.scheduler == "heap"
    assert type(EgressPort(auto_sim, 1e9, 0)) is _HeapPort

"""Tests for Network helpers: path RTTs, ideal FCT, ECN/INT toggles."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.port import EcnConfig
from repro.topology.dumbbell import DumbbellParams, build_dumbbell
from repro.topology.fattree import build_fattree
from repro.topology.network import path_base_rtt_ns, path_ideal_fct_ns
from repro.experiments.websearch import scaled_fattree
from repro.units import GBPS, USEC


def test_path_base_rtt_validation():
    with pytest.raises(ValueError):
        path_base_rtt_ns([1e9, 1e9], [100])


def test_ideal_fct_single_packet():
    # 500B payload over two 8 Gbps hops (1 byte/ns), 1 us props each.
    ideal = path_ideal_fct_ns([8e9, 8e9], [1000, 1000], 500)
    assert ideal == 2 * 1000 + 2 * (500 + 48)


def test_ideal_fct_streams_behind_head():
    # 3 MTU flow: head serialized per hop, rest streams at the bottleneck.
    ideal = path_ideal_fct_ns([8e9, 8e9], [0, 0], 3000, mtu_payload=1000)
    head = 2 * 1048
    stream = 2 * 1048  # two more full packets at the 8 Gbps bottleneck
    assert ideal == head + stream


def test_ideal_fct_uses_min_rate_for_stream():
    fast_then_slow = path_ideal_fct_ns([80e9, 8e9], [0, 0], 10_000)
    slow_then_fast = path_ideal_fct_ns([8e9, 80e9], [0, 0], 10_000)
    # The streaming term is governed by the bottleneck in both orders.
    assert abs(fast_then_slow - slow_then_fast) < 10


def test_ideal_fct_monotone_in_size():
    sizes = [1, 500, 1000, 5000, 50_000, 1_000_000]
    ideals = [path_ideal_fct_ns([10e9, 10e9], [1000, 1000], s) for s in sizes]
    assert ideals == sorted(ideals)


def test_network_ideal_fct_fallback_without_profile():
    sim = Simulator()
    net = build_dumbbell(sim)
    net.path_profile_fn = None
    value = net.ideal_fct_ns(0, 2, 10_000)
    assert value > net.base_rtt_ns


def test_fattree_path_rtts_ordered():
    sim = Simulator()
    net = build_fattree(sim, scaled_fattree())
    p = net.extras["params"]
    same_tor = net.path_rtt_ns(0, 1)
    same_pod = net.path_rtt_ns(0, p.hosts_per_tor)  # next ToR, same pod
    inter_pod = net.path_rtt_ns(0, p.num_hosts - 1)
    assert same_tor < same_pod < inter_pod
    assert inter_pod == net.base_rtt_ns


def test_fattree_ideal_respects_path():
    sim = Simulator()
    net = build_fattree(sim, scaled_fattree())
    p = net.extras["params"]
    local = net.ideal_fct_ns(0, 1, 100_000)
    remote = net.ideal_fct_ns(0, p.num_hosts - 1, 100_000)
    assert local < remote


def test_apply_ecn_covers_all_ports():
    sim = Simulator()
    net = build_dumbbell(sim)
    net.apply_ecn(lambda rate: EcnConfig.step(10_000))
    for switch in net.switches:
        for port in switch.ports:
            assert port.ecn is not None


def test_enable_int_toggle():
    sim = Simulator()
    net = build_dumbbell(sim)
    net.enable_int(False)
    assert all(
        not port.int_stamping for s in net.switches for port in s.ports
    )
    net.enable_int(True)
    assert all(port.int_stamping for s in net.switches for port in s.ports)


def test_labeled_port_lookup_missing():
    sim = Simulator()
    net = build_dumbbell(sim)
    with pytest.raises(KeyError):
        net.port("nonexistent")

"""Unit tests for switch forwarding/ECMP and host dispatch."""

from repro.sim.engine import Simulator
from repro.sim.host import Host
from repro.sim.packet import Packet
from repro.sim.port import EgressPort
from repro.sim.switch import Switch
from repro.units import GBPS


class Sink:
    def __init__(self, sim):
        self.sim = sim
        self.packets = []

    def receive(self, pkt):
        self.packets.append(pkt)


def test_switch_forwards_on_route():
    sim = Simulator()
    switch = Switch(sim, 1)
    sink = Sink(sim)
    port = switch.add_port(EgressPort(sim, GBPS, 100, peer=sink))
    switch.set_route(42, (port,))
    switch.receive(Packet.data(1, 0, 42, 0, 100))
    sim.run()
    assert len(sink.packets) == 1


def test_ecmp_is_deterministic_per_flow():
    sim = Simulator()
    switch = Switch(sim, 1)
    ports = [switch.add_port(EgressPort(sim, GBPS, 100)) for _ in range(4)]
    switch.set_route(9, tuple(ports))
    pkt = Packet.data(77, 0, 9, 0, 100)
    chosen = {switch.route_for(pkt) for _ in range(20)}
    assert len(chosen) == 1  # same flow -> same port, always


def test_ecmp_spreads_flows():
    sim = Simulator()
    switch = Switch(sim, 1)
    ports = [switch.add_port(EgressPort(sim, GBPS, 100)) for _ in range(4)]
    switch.set_route(9, tuple(ports))
    used = {
        switch.route_for(Packet.data(flow, 0, 9, 0, 100)) for flow in range(64)
    }
    assert len(used) == 4  # all uplinks see some flows


def test_ecmp_differs_across_switches():
    sim = Simulator()
    assignments = []
    for switch_id in range(2):
        switch = Switch(sim, switch_id)
        ports = [switch.add_port(EgressPort(sim, GBPS, 100)) for _ in range(2)]
        switch.set_route(5, tuple(ports))
        assignments.append(
            tuple(
                ports.index(switch.route_for(Packet.data(f, 0, 5, 0, 100)))
                for f in range(32)
            )
        )
    assert assignments[0] != assignments[1]


def test_switch_shared_buffer_wiring():
    from repro.sim.buffer import SharedBuffer

    sim = Simulator()
    buf = SharedBuffer(10_000)
    switch = Switch(sim, 1, buffer=buf)
    port = switch.add_port(EgressPort(sim, GBPS, 100))
    assert port.buffer is buf


def test_host_dispatch_by_flow_id():
    sim = Simulator()
    host = Host(sim, 0)
    seen = []

    class Endpoint:
        def on_packet(self, pkt):
            seen.append(pkt.flow_id)

    host.register(3, Endpoint())
    host.receive(Packet.data(3, 1, 0, 0, 100))
    host.receive(Packet.data(4, 1, 0, 0, 100))  # unknown: dropped silently
    assert seen == [3]


def test_host_unregister():
    sim = Simulator()
    host = Host(sim, 0)

    class Endpoint:
        def on_packet(self, pkt):
            raise AssertionError("should not be called")

    host.register(3, Endpoint())
    host.unregister(3)
    host.receive(Packet.data(3, 1, 0, 0, 100))  # no exception


def test_host_default_handler():
    sim = Simulator()
    host = Host(sim, 0)
    seen = []
    host.default_handler = seen.append
    host.receive(Packet.data(99, 1, 0, 0, 100))
    assert len(seen) == 1


def test_host_send_requires_nic():
    sim = Simulator()
    host = Host(sim, 0)
    try:
        host.send(Packet.data(1, 0, 1, 0, 10))
    except RuntimeError:
        pass
    else:
        raise AssertionError("expected RuntimeError without NIC")

"""Fast byte-identity guardrail over committed figure series.

The files under ``benchmarks/results/`` are the repo's regression
record: every engine or fluid-model change must leave them byte-exact
(the full check is the benchmark suite itself).  This tier-1 test
re-runs three cheap cells — two fluid-model figures and one real
simulator cell on the default (heap, unbatched) engine path — and
compares the regenerated text against the committed bytes, so a drift
in either stack fails in seconds instead of at the next bench run.

The cells regenerate their lines locally and never call the bench
harness's ``emit`` (which would overwrite the committed files being
compared against).

Every cell runs twice — once on the reference heap engine and once on
the compiled event core — because the committed bytes are the parity
oracle (docs/INVARIANTS.md#compiled-parity): if the C drain reordered a
single event, the regenerated series would drift from the committed
text.  The compiled cells skip visibly when the extension is unbuilt.
"""

from pathlib import Path

import pytest

from compiled_support import require_compiled
from repro.experiments.driver import FlowDriver
from repro.fluid.reaction import decrease_vs_buildup_rate, three_case_comparison
from repro.sim.engine import Simulator, engine_defaults
from repro.sim.tracing import PortProbe
from repro.topology.dumbbell import DumbbellParams, build_dumbbell
from repro.units import GBPS, MSEC, USEC

RESULTS = Path(__file__).resolve().parent.parent / "benchmarks" / "results"


@pytest.fixture(autouse=True, params=["heap", "compiled"])
def _engine(request):
    require_compiled(request.param)
    with engine_defaults(scheduler=request.param):
        yield

# Fig. 2 constants (benchmarks/test_fig2_reaction.py).
B_BPS = 100 * GBPS / 8.0  # bytes/s
TAU = 20e-6
BDP = B_BPS * TAU


def committed(name):
    return (RESULTS / f"{name}.txt").read_text()


def test_fig2a_series_byte_identical():
    rates = [0, 1, 2, 3, 4, 5, 6, 7, 8]
    series = decrease_vs_buildup_rate(
        bandwidth_Bps=B_BPS,
        tau_s=TAU,
        queue_bytes=0.5 * BDP,
        rate_multiples=rates,
    )
    lines = ["rate(xB)  queue/delay-MD  rtt-gradient-MD"]
    for i, rate in enumerate(rates):
        lines.append(
            f"{rate:8.1f}  {series['queue-length'][i]:14.2f}  "
            f"{series['rtt-gradient'][i]:15.2f}"
        )
    assert "\n".join(lines) + "\n" == committed("fig2a_md_vs_buildup_rate")


def test_fig2c_series_byte_identical():
    cases = three_case_comparison(bandwidth_Bps=B_BPS, tau_s=TAU)
    lines = [f"{'case':45s} {'voltage':>8s} {'current':>8s} {'power':>8s}"]
    for c in cases:
        lines.append(
            f"{c.label:45s} {c.voltage:8.2f} {c.current:8.2f} {c.power:8.2f}"
        )
    lines.append("")
    lines.append("paper claim: voltage(case2)==voltage(case3); "
                 "current(case1)==current(case3); power separates all three")
    assert "\n".join(lines) + "\n" == committed("fig2c_three_cases")


def test_motivation_standing_queue_powertcp_row_byte_identical():
    # The PowerTCP cell of benchmarks/test_motivation.py, verbatim:
    # a 20 ms dumbbell run through the default engine path (transport,
    # switch, port, probes) whose formatted row must match the
    # committed series byte-for-byte.
    sim = Simulator()
    net = build_dumbbell(
        sim,
        DumbbellParams(
            left_hosts=2,
            right_hosts=1,
            host_bw_bps=10 * GBPS,
            bottleneck_bw_bps=10 * GBPS,
            buffer_bytes=200_000,
        ),
    )
    driver = FlowDriver(net, "powertcp")
    for src in range(2):
        driver.start_flow(src, 2, 10 ** 10, at_ns=0)
    probe = PortProbe(sim, net.port("bottleneck"), 20 * USEC).start()
    driver.run(until_ns=20 * MSEC)
    settled = probe.qlen_bytes[len(probe.qlen_bytes) // 2 :]
    thr = probe.throughput_bps[len(probe.throughput_bps) // 2 :]
    mean_queue = sum(settled) / len(settled)
    max_queue = max(probe.qlen_bytes)
    throughput = sum(thr) / len(thr)
    drops = net.total_drops()

    def fmt_kb(nbytes):
        return f"{nbytes / 1000:8.1f}KB"

    row = (
        f"{'powertcp':>10s} {fmt_kb(mean_queue):>10s} "
        f"{fmt_kb(max_queue):>10s} {throughput/1e9:10.2f}G "
        f"{drops:>6d}"
    )
    text = committed("motivation_standing_queue").splitlines()
    assert row in text, f"regenerated row drifted:\n{row!r}"
    assert text.index(row) == 1  # first data row, right under the header

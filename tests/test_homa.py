"""Unit/functional tests for the HOMA receiver-driven transport."""

from repro.experiments.driver import FlowDriver
from repro.sim.engine import Simulator
from repro.topology.dumbbell import DumbbellParams, build_dumbbell
from repro.units import GBPS, MSEC


def homa_net(left=3, overcommit=1):
    sim = Simulator()
    net = build_dumbbell(
        sim,
        DumbbellParams(
            left_hosts=left,
            right_hosts=1,
            host_bw_bps=10 * GBPS,
            bottleneck_bw_bps=10 * GBPS,
        ),
    )
    driver = FlowDriver(net, "homa", cc_params={"overcommitment": overcommit})
    return sim, net, driver


def test_small_message_is_pure_unscheduled():
    sim, net, driver = homa_net()
    # Smaller than RTTbytes: must complete without any grant.
    flow = driver.start_flow(0, 3, driver.rtt_bytes // 2, at_ns=0)
    driver.run(until_ns=1 * MSEC)
    assert flow.completed
    scheduler = driver._homa_schedulers.get(3)
    assert scheduler is None or scheduler.grants_sent == 0


def test_large_message_needs_grants():
    sim, net, driver = homa_net()
    flow = driver.start_flow(0, 3, 10 * driver.rtt_bytes, at_ns=0)
    driver.run(until_ns=5 * MSEC)
    assert flow.completed
    assert driver._homa_schedulers[3].grants_sent > 0


def test_srpt_prefers_shorter_message():
    sim, net, driver = homa_net(left=3)
    long_flow = driver.start_flow(0, 3, 5_000_000, at_ns=0)
    short_flow = driver.start_flow(1, 3, 100_000, at_ns=100_000)
    driver.run(until_ns=20 * MSEC)
    assert short_flow.completed and long_flow.completed
    # SRPT: the short message must finish far earlier.
    assert short_flow.finish_ns < long_flow.finish_ns


def test_grant_outstanding_bounded_by_rtt_bytes():
    sim, net, driver = homa_net()
    flow = driver.start_flow(0, 3, 1_000_000, at_ns=0)
    sender = None
    horizon = 100_000
    while horizon <= 2 * MSEC:
        driver.run(until_ns=horizon)
        sender = driver.senders[flow.flow_id]
        outstanding = sender.granted - flow.bytes_received
        assert outstanding <= driver.rtt_bytes + sender.mtu_payload
        horizon += 100_000


def test_unscheduled_burst_leaves_at_line_rate():
    sim, net, driver = homa_net()
    flow = driver.start_flow(0, 3, driver.rtt_bytes, at_ns=0)
    # Run just past the serialization of RTTbytes at line rate.
    wire_time = int(driver.rtt_bytes * 8 / 10)  # ns at 10 Gbps (approx)
    driver.run(until_ns=2 * wire_time)
    sender = driver.senders[flow.flow_id]
    assert sender.snd_nxt == driver.rtt_bytes  # everything already sent


def test_overcommit_grants_multiple_messages():
    sim, net, driver = homa_net(left=3, overcommit=2)
    f1 = driver.start_flow(0, 3, 500_000, at_ns=0)
    f2 = driver.start_flow(1, 3, 500_000, at_ns=0)
    driver.run(until_ns=200_000)
    s1 = driver.senders[f1.flow_id]
    s2 = driver.senders[f2.flow_id]
    # With overcommitment 2 both messages hold grants beyond unscheduled.
    assert s1.granted > driver.rtt_bytes
    assert s2.granted > driver.rtt_bytes


def test_overcommit_one_serializes_messages():
    sim, net, driver = homa_net(left=3, overcommit=1)
    f1 = driver.start_flow(0, 3, 500_000, at_ns=0)
    f2 = driver.start_flow(1, 3, 500_001, at_ns=0)  # strictly larger
    driver.run(until_ns=200_000)
    s1 = driver.senders[f1.flow_id]
    s2 = driver.senders[f2.flow_id]
    # SRPT with OC=1: only the shorter message is being granted.
    assert s1.granted > driver.rtt_bytes
    assert s2.granted == driver.rtt_bytes


def test_homa_receiver_buffers_out_of_order():
    sim, net, driver = homa_net()
    flow = driver.start_flow(0, 3, 50_000, at_ns=0)
    driver.run(until_ns=100)  # let endpoints register
    receiver = net.host(3).endpoints[flow.flow_id]
    from repro.sim.packet import Packet

    receiver.on_packet(Packet.data(flow.flow_id, 0, 3, seq=1000, payload=1000))
    assert receiver.rcv_nxt == 0  # buffered, not advanced
    receiver.on_packet(Packet.data(flow.flow_id, 0, 3, seq=0, payload=1000))
    assert receiver.rcv_nxt == 2000  # gap filled + buffered range absorbed

"""Good fixture: the sanctioned scalar-copy idiom (never executed)."""

from repro.cc.base import CongestionControl
from repro.cc.registry import register


@register("good-copier")
class GoodCopier(CongestionControl):
    def on_ack(self, sender, feedback):
        hops = feedback.require_int("good-copier")
        for hop in hops:
            # per-port scalar snapshot — the AckFeedback lifetime contract
            self.prev[hop.port_id] = (hop.ts_ns, hop.qlen, hop.tx_bytes)
        self.last_rtt_ns = feedback.rtt_ns
        self.ecn_seen = feedback.ecn_marked
        self.estimator.update(hops)  # passing to a helper call is allowed

"""Bad fixture: a CC module that never registers (never executed)."""

from repro.cc.base import CongestionControl


class GhostScheme(CongestionControl):
    """Invisible to repro list, conformance tests, and FlowDriver."""

    def on_ack(self, sender, feedback):
        self.set_window(sender, sender.cwnd)

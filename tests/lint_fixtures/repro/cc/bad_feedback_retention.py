"""Bad fixture: on_ack retains pool-owned feedback state (never executed)."""

from repro.cc.base import CongestionControl
from repro.cc.registry import register


@register("bad-retainer")
class BadRetainer(CongestionControl):
    def on_ack(self, sender, feedback):
        self.last_feedback = feedback  # line 10: feedback-retention
        self.hops = feedback.int_hops  # line 11: feedback-retention
        records = feedback.require_int("bad-retainer")
        self.stash = records  # line 13: feedback-retention
        for hop in records:
            self.latest_hop = hop  # line 15: feedback-retention
            self.history.append(hop)  # line 16: feedback-retention
            self.snapshots[hop.port_id] = (hop.ts_ns, hop.qlen)  # scalars: fine
        self.rtt_ns = feedback.rtt_ns  # scalar copy: fine

"""Fixture: unbounded blocking waits inside campaign/ (all flagged)."""

import subprocess


def reclaim(proc, future):
    subprocess.run(["true"])
    subprocess.check_call(["true"])
    subprocess.check_output(["true"])
    proc.wait()
    proc.communicate()
    future.result()

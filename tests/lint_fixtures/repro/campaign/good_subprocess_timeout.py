"""Fixture: every blocking wait carries an explicit timeout bound."""

import subprocess


def reclaim(proc, future, grace_s):
    subprocess.run(["true"], timeout=grace_s)
    subprocess.check_call(["true"], timeout=grace_s)
    subprocess.check_output(["true"], timeout=grace_s)
    proc.wait(timeout=grace_s)
    proc.communicate(timeout=grace_s)
    future.result(timeout=grace_s)

"""Good fixture: registry-only topology resolution (never executed)."""

from typing import TYPE_CHECKING

from repro.topology.network import Network
from repro.topology.registry import build_topology, make_topology_params

if TYPE_CHECKING:  # params type only; built via the topology registry
    from repro.topology.fattree import FatTreeParams


def run(sim) -> "Network":
    params = make_topology_params("fattree", k=4)
    return build_topology(sim, "fattree", params=params)

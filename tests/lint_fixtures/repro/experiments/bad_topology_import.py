"""Bad fixture: experiments importing concrete builders (never executed)."""

from repro.topology.fattree import build_fattree  # line 3: concrete-topology-import
from repro.topology import parkinglot  # line 4: concrete-topology-import
import repro.topology.rdcn  # line 5: concrete-topology-import


def run(sim):
    net = build_fattree(sim)
    return net, parkinglot, repro.topology.rdcn

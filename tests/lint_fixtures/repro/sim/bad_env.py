"""Bad fixture: environment reads inside simulation code (never executed)."""

import os
from os import environ


def configure():
    horizon = os.environ.get("HORIZON_NS", "0")  # line 8: env-read
    debug = os.getenv("REPRO_DEBUG")  # line 9: env-read
    home = environ["HOME"]  # line 10: env-read
    return horizon, debug, home

"""Bad fixture: stale and unknown suppressions (never executed)."""

CLEAN_LINE = 1  # lint: disable=wall-clock     (line 3: unused-suppression)
OTHER_LINE = 2  # lint: disable=no-such-rule   (line 4: unused-suppression)

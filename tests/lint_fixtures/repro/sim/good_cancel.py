"""Good fixture: the cancellable timer API (never executed)."""


def arm_and_disarm(sim, fn):
    timer = sim.after_cancellable(10, fn)
    timer.cancel()  # handle from the timer API: fine
    sim.after(10, fn)  # fire-and-forget fast path: fine
    other = sim.at_cancellable(20, fn)
    other = sim.at_cancellable(30, fn)  # rebinding keeps it cancellable
    other.cancel()

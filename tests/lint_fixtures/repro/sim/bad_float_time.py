"""Bad fixture: float arithmetic reaching the scheduler (never executed)."""


def schedule(sim, port, packet, rtt_ns):
    sim.after(1.5, port.enqueue, packet)  # line 5: float-ns-time
    sim.at(sim.now + rtt_ns / 3, port.enqueue, packet)  # line 6: float-ns-time
    sim.after_cancellable(rtt_ns * 1.25, port.enqueue)  # line 7: float-ns-time
    arm(timeout_ns=rtt_ns / 2)  # line 8: float-ns-time


def arm(timeout_ns=0):
    return timeout_ns

"""Bad fixture: cancelling fast-path schedule results (never executed)."""


def arm_and_disarm(sim, fn):
    handle = sim.after(10, fn)
    handle.cancel()  # line 6: cancel-fast-path
    sim.at(5, fn).cancel()  # line 7: cancel-fast-path

"""Good fixture: a justified, consumed suppression (never executed)."""

import time


def stamp_provenance(result):
    # Wall time recorded for provenance only, never simulation behaviour.
    result.wall_time_s = time.time()  # lint: disable=wall-clock
    return result

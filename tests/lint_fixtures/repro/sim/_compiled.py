"""Good: the gated loader is the one sanctioned _ckernel importer."""


def load_compiled():
    try:
        from repro._ckernel import corekernel
    except Exception:
        return None
    return corekernel

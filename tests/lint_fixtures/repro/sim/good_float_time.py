"""Good fixture: integer time flowing into the scheduler (never executed)."""

MSEC = 1_000_000


def schedule(sim, port, packet, rtt_ns, rate_bps):
    sim.after(2 * MSEC, port.enqueue, packet)  # integer arithmetic
    sim.at(sim.now + rtt_ns // 3, port.enqueue, packet)  # floor division
    sim.after(int(packet.size * 8e9 / rate_bps), port.enqueue)  # cast at boundary
    arm(timeout_ns=round(rtt_ns * 1.5))  # rounded at boundary


def arm(timeout_ns=0):
    return timeout_ns

"""Good fixture: the sanctioned determinism idioms (never executed)."""

import random


def jitter(sim, port_map, seed):
    rng = random.Random(seed)  # seeded instance: fine
    draw = rng.random()  # instance method: fine
    now = sim.now  # simulation clock, not wall clock
    total = 0
    for item in sorted({1, 2, 3}):  # sorted view of a set: fine
        total += item
    port_map[seed] = draw  # stable identifier key: fine
    return rng, now, total

"""Bad fixture: every determinism violation class (never executed)."""

import random
import time
from datetime import datetime


def jitter(port_map):
    rng = random.Random()  # line 9: unseeded-rng
    draw = random.random()  # line 10: unseeded-rng
    stamp = time.time()  # line 11: wall-clock
    today = datetime.now()  # line 12: wall-clock
    total = 0
    for item in {1, 2, 3}:  # line 14: unordered-iteration
        total += item
    port_map[id(rng)] = draw  # line 16: unordered-iteration
    return rng, stamp, today, total

"""Bad: importing the compiled core directly instead of via the loader."""

from repro._ckernel import corekernel
import repro._ckernel.corekernel
from repro import _ckernel
from .._ckernel import corekernel as ck

drain = corekernel.drain if corekernel else ck.drain  # silence F401-ish unused
heap_ops = (_ckernel, repro._ckernel.corekernel)

"""Bad fixture: an unregistered, set-iterating policy (never executed)."""

from repro.routing.base import RoutingPolicy


class GhostPolicy(RoutingPolicy):
    """Invisible to repro list, builders, and the requirement union."""

    def select(self, pkt, options):
        for index in {0, 1, 2}:  # line 10: unordered-iteration
            if options[index].qlen_bytes == 0:
                return options[index]
        return options[0]

"""Good fixture: a registered, deterministically-iterating policy
(never executed)."""

from repro.routing.base import RoutingPolicy
from repro.routing.registry import register_policy


@register_policy("good-picker", description="picks the first quiet port")
class GoodPicker(RoutingPolicy):
    def select(self, pkt, options):
        for port in sorted(options, key=lambda p: p.qlen_bytes):
            return port
        return options[0]

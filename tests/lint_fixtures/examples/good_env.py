"""Good fixture: examples/ may read HORIZON_NS (never executed)."""

import os

HORIZON_NS = int(os.environ.get("HORIZON_NS", 4_000_000))

"""Unit tests for unit conversions."""

import pytest

from repro.units import (
    GBPS,
    SEC,
    USEC,
    bdp_bytes,
    bytes_in_time,
    rate_bps_from,
    tx_time_ns,
)


def test_tx_time_simple():
    # 1000 bytes at 8 Gbps = 1000 ns exactly.
    assert tx_time_ns(1000, 8e9) == 1000


def test_tx_time_rounds_up():
    # 1 byte at 100 Gbps = 0.08 ns -> 1 ns (never finish early).
    assert tx_time_ns(1, 100 * GBPS) == 1


def test_tx_time_zero_bytes():
    assert tx_time_ns(0, GBPS) == 0


def test_tx_time_rejects_bad_rate():
    with pytest.raises(ValueError):
        tx_time_ns(100, 0)
    with pytest.raises(ValueError):
        tx_time_ns(100, -1)


def test_bdp_100g_20us():
    # The paper's running example: 100 Gbps, 20 us -> 250 KB.
    assert bdp_bytes(100 * GBPS, 20 * USEC) == 250_000


def test_bytes_in_time_roundtrip():
    nbytes = bytes_in_time(1 * SEC, GBPS)
    assert nbytes == GBPS / 8


def test_rate_from_bytes_and_duration():
    assert rate_bps_from(1250, 1000) == pytest.approx(10 * GBPS)


def test_rate_from_rejects_nonpositive_duration():
    with pytest.raises(ValueError):
        rate_bps_from(100, 0)


def test_tx_time_monotone_in_size():
    times = [tx_time_ns(n, 25 * GBPS) for n in range(0, 5000, 123)]
    assert times == sorted(times)


def test_tx_time_inverse_in_rate():
    assert tx_time_ns(1500, 10 * GBPS) > tx_time_ns(1500, 100 * GBPS)

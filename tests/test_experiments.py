"""Unit-level tests for the experiment scenario modules (configs, metrics,
result plumbing) — the paper-level claims live in tests/integration."""

import pytest

from repro.experiments.bursty import BurstyConfig, run_bursty
from repro.experiments.fairness import FairnessConfig, FairnessResult, run_fairness
from repro.experiments.incast import IncastConfig, IncastResult, run_incast
from repro.experiments.rdcn import (
    PAPER_WEEK_NS,
    RdcnConfig,
    scaled_prebuffer_ns,
    scaled_rdcn,
)
from repro.experiments.websearch import WebsearchConfig, run_websearch, scaled_fattree
from repro.units import MSEC, USEC


# ----------------------------------------------------------------------
# incast metrics
# ----------------------------------------------------------------------
def test_incast_result_window_helpers():
    r = IncastResult(algorithm="x", fanout=2, bottleneck_bw_bps=1e9)
    r.times_ns = [0, 10, 20, 30, 40]
    r.throughput_bps = [0.0, 1e9, 1e9, 0.5e9, 0.2e9]
    r.qlen_bytes = [0, 100, 50, 0, 0]
    r.burst_start_ns = 0
    r.burst_end_ns = 40
    r.burst_fcts_ns = [40]
    r.peak_qlen_bytes = 100
    drain = r.queue_drain_time_ns(threshold_bytes=60)
    assert drain == 20  # first sample below threshold after the peak
    assert 0 < r.burst_utilization() <= 1.0


def test_incast_drain_none_when_queue_never_drains():
    r = IncastResult(algorithm="x", fanout=1)
    r.times_ns = [0, 10]
    r.qlen_bytes = [500, 600]
    assert r.queue_drain_time_ns(100) is None


def test_incast_small_run_has_series():
    r = run_incast(
        IncastConfig(algorithm="powertcp", fanout=2, burst_bytes=20_000,
                     duration_ns=1 * MSEC)
    )
    assert len(r.times_ns) > 10
    assert len(r.throughput_bps) > 0
    assert r.burst_end_ns > r.burst_start_ns


# ----------------------------------------------------------------------
# fairness plumbing
# ----------------------------------------------------------------------
def test_fairness_epochs_counted():
    r = run_fairness(
        FairnessConfig(algorithm="powertcp", num_flows=2, join_interval_ns=500 * USEC,
                       duration_ns=2 * MSEC)
    )
    assert len(r.epoch_jain) == 2
    assert len(r.flow_throughput_bps) == 2


def test_fairness_result_requires_epochs():
    with pytest.raises(ValueError):
        FairnessResult(algorithm="x").final_epoch_jain()


# ----------------------------------------------------------------------
# websearch plumbing
# ----------------------------------------------------------------------
def test_websearch_small_run():
    r = run_websearch(
        WebsearchConfig(
            algorithm="powertcp",
            load=0.4,
            duration_ns=4 * MSEC,
            drain_ns=10 * MSEC,
            size_scale=1 / 16,
            max_flows=40,
        )
    )
    assert r.flows
    assert r.buffer_samples_bytes
    summary = r.fct_summary(pct=50)
    assert summary.completed > 0
    assert summary.overall >= 1.0


def test_scaled_fattree_is_a_fattree():
    p = scaled_fattree()
    assert p.num_hosts == 16
    assert p.num_tors == 4


def test_scaled_fattree_default_is_2_to_1_oversubscribed():
    p = scaled_fattree()
    down = p.hosts_per_tor * p.host_bw_bps
    up = p.aggs_per_pod * p.fabric_bw_bps
    assert down / up == 2.0


def test_scaled_fattree_paper_oversub_is_4_to_1():
    p = scaled_fattree(paper_oversub=True)
    assert p.hosts_per_tor == 8
    down = p.hosts_per_tor * p.host_bw_bps
    up = p.aggs_per_pod * p.fabric_bw_bps
    assert down / up == 4.0


def test_scaled_fattree_rejects_contradictory_args():
    with pytest.raises(ValueError, match="not both"):
        scaled_fattree(hosts_per_tor=16, paper_oversub=True)


def test_websearch_seeded_reproducibility():
    cfg = dict(
        algorithm="powertcp",
        load=0.4,
        duration_ns=3 * MSEC,
        drain_ns=8 * MSEC,
        size_scale=1 / 16,
        max_flows=25,
        seed=7,
    )
    a = run_websearch(WebsearchConfig(**cfg))
    b = run_websearch(WebsearchConfig(**cfg))
    assert [f.fct_ns for f in a.flows if f.completed] == [
        f.fct_ns for f in b.flows if f.completed
    ]


# ----------------------------------------------------------------------
# bursty plumbing
# ----------------------------------------------------------------------
def test_bursty_tags_flows():
    r = run_bursty(
        BurstyConfig(
            algorithm="powertcp",
            load=0.4,
            requests_per_duration=2,
            request_size_bytes=1_000_000,
            fanout=4,
            duration_ns=4 * MSEC,
            drain_ns=10 * MSEC,
            size_scale=1 / 16,
            max_flows=20,
        )
    )
    tags = {f.tag for f in r.flows}
    assert tags == {"websearch", "incast"}
    assert r.incast_count == 2
    incast_only = r.fct_summary(pct=50, tag="incast")
    assert incast_only.completed == 8  # 2 events x fanout 4


# ----------------------------------------------------------------------
# rdcn scaling helper
# ----------------------------------------------------------------------
def test_scaled_prebuffer_proportional_to_week():
    params = scaled_rdcn(num_tors=4)
    week = 3 * (225 + 20) * 1000
    expected = int(600_000 * week / PAPER_WEEK_NS)
    assert scaled_prebuffer_ns(params, 600_000) == expected


def test_scaled_prebuffer_identity_at_paper_scale():
    params = scaled_rdcn(num_tors=25)
    assert scaled_prebuffer_ns(params, 1_800_000) == 1_800_000

"""Topology builder tests: wiring, routing, base RTT, oversubscription."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.packet import Packet
from repro.topology.dumbbell import DumbbellParams, build_dumbbell
from repro.topology.fattree import FatTreeParams, build_fattree
from repro.topology.rdcn import RdcnParams, build_rdcn
from repro.units import GBPS, USEC


# ----------------------------------------------------------------------
# Dumbbell
# ----------------------------------------------------------------------
def test_dumbbell_host_count_and_ids():
    sim = Simulator()
    net = build_dumbbell(sim, DumbbellParams(left_hosts=3, right_hosts=2))
    assert net.num_hosts == 5
    assert [h.host_id for h in net.hosts] == list(range(5))


def test_dumbbell_bottleneck_labeled():
    sim = Simulator()
    net = build_dumbbell(sim)
    assert net.port("bottleneck").rate_bps == net.extras["params"].bottleneck_bw_bps


def test_dumbbell_delivers_across_bottleneck():
    sim = Simulator()
    net = build_dumbbell(sim, DumbbellParams(left_hosts=1, right_hosts=1))
    seen = []
    net.host(1).default_handler = seen.append
    net.host(0).send(Packet.data(1, 0, 1, 0, 1000))
    sim.run()
    assert len(seen) == 1


def test_dumbbell_base_rtt_reasonable():
    sim = Simulator()
    p = DumbbellParams()
    net = build_dumbbell(sim, p)
    prop_rtt = 2 * (2 * p.host_link_delay_ns + p.bottleneck_delay_ns)
    assert net.base_rtt_ns > prop_rtt  # includes serialization
    assert net.base_rtt_ns < prop_rtt + 10 * USEC


# ----------------------------------------------------------------------
# Fat-tree
# ----------------------------------------------------------------------
def paper_scaled():
    return FatTreeParams(
        num_pods=2,
        tors_per_pod=2,
        aggs_per_pod=2,
        num_cores=2,
        hosts_per_tor=2,
        host_bw_bps=10 * GBPS,
        fabric_bw_bps=10 * GBPS,
    )


def test_fattree_paper_defaults():
    p = FatTreeParams()
    assert p.num_hosts == 256
    assert p.num_tors == 8
    assert p.oversubscription() == pytest.approx(4.0)


def test_fattree_structure_counts():
    sim = Simulator()
    p = paper_scaled()
    net = build_fattree(sim, p)
    assert net.num_hosts == 8
    # 4 ToRs + 4 aggs + 2 cores.
    assert len(net.switches) == 10


def test_fattree_all_pairs_reachable():
    sim = Simulator()
    p = paper_scaled()
    net = build_fattree(sim, p)
    received = []
    for host in net.hosts:
        host.default_handler = received.append
    flow = 0
    for src in range(p.num_hosts):
        for dst in range(p.num_hosts):
            if src != dst:
                flow += 1
                net.host(src).send(Packet.data(flow, src, dst, 0, 100))
    sim.run()
    assert len(received) == p.num_hosts * (p.num_hosts - 1)


def test_fattree_delivery_to_correct_host():
    sim = Simulator()
    net = build_fattree(sim, paper_scaled())
    seen = {}
    for host in net.hosts:
        seen[host.host_id] = []
        host.default_handler = (lambda hid: (lambda p: seen[hid].append(p)))(
            host.host_id
        )
    net.host(0).send(Packet.data(1, 0, 7, 0, 100))
    sim.run()
    assert len(seen[7]) == 1
    assert all(not v for k, v in seen.items() if k != 7)


def test_fattree_interpod_rtt_larger_than_intrapod():
    p = FatTreeParams()
    # The configured base RTT is the max (inter-pod) path.
    sim = Simulator()
    net = build_fattree(sim, p)
    # 2 * (1 + 1 + 5 + 5 + 1 + 1) us propagation alone:
    assert net.base_rtt_ns > 28 * USEC


def test_fattree_uplinks_labeled():
    sim = Simulator()
    p = paper_scaled()
    net = build_fattree(sim, p)
    for t in range(p.num_tors):
        for a in range(p.aggs_per_pod):
            assert f"tor{t}-up{a}" in net.labeled_ports


def test_fattree_tor_buffers_sized_by_bandwidth():
    sim = Simulator()
    p = paper_scaled()
    net = build_fattree(sim, p)
    tor_buf = net.extras["tors"][0].buffer
    expected_bw = (
        p.hosts_per_tor * p.host_bw_bps + p.aggs_per_pod * p.fabric_bw_bps
    )
    assert tor_buf.capacity == int(p.buffer_bytes_per_gbps * expected_bw / GBPS)


# ----------------------------------------------------------------------
# RDCN
# ----------------------------------------------------------------------
def small_rdcn():
    return RdcnParams(num_tors=3, hosts_per_tor=2, prebuffer_ns=0)


def test_rdcn_counts():
    sim = Simulator()
    net = build_rdcn(sim, small_rdcn())
    assert net.num_hosts == 6
    assert len(net.extras["circuit_ports"]) == 3


def test_rdcn_night_traffic_uses_packet_network():
    sim = Simulator()
    net = build_rdcn(sim, small_rdcn())
    seen = []
    net.host(2).default_handler = seen.append  # host 2 is on ToR 1
    # At t=0 (night) ToR 0's circuit is dark: must route via packet core.
    net.host(0).send(Packet.data(1, 0, 2, 0, 1000))
    sim.run(until=15 * USEC)
    assert len(seen) == 1
    assert net.extras["packet_switch"].rx_packets == 1


def test_rdcn_day_traffic_uses_circuit():
    sim = Simulator()
    p = small_rdcn()
    net = build_rdcn(sim, p)
    schedule = net.extras["schedule"]
    start, end = schedule.window_for(0, 1, 0)
    seen = []
    net.host(2).default_handler = seen.append
    sim.at(start + 1000, net.host(0).send, Packet.data(1, 0, 2, 0, 1000))
    sim.run(until=end)
    assert len(seen) == 1
    assert net.extras["packet_switch"].rx_packets == 0
    assert net.extras["circuit_ports"][0].tx_bytes > 0


def test_rdcn_prebuffer_steers_into_voq_early():
    sim = Simulator()
    p = RdcnParams(num_tors=3, hosts_per_tor=2, prebuffer_ns=15 * USEC)
    net = build_rdcn(sim, p)
    schedule = net.extras["schedule"]
    start, _ = schedule.window_for(0, 1, 0)
    # Send within the prebuffer window, before the day starts.
    sim.at(start - 10 * USEC, net.host(0).send, Packet.data(1, 0, 2, 0, 1000))
    sim.run(until=start - 1000)
    circuit = net.extras["circuit_ports"][0]
    assert circuit.voq_len_bytes(1) > 0  # waiting for the day
    sim.run(until=start + 50 * USEC)
    assert circuit.voq_len_bytes(1) == 0  # drained once the day opened


def test_rdcn_local_traffic_stays_in_rack():
    sim = Simulator()
    net = build_rdcn(sim, small_rdcn())
    seen = []
    net.host(1).default_handler = seen.append
    net.host(0).send(Packet.data(1, 0, 1, 0, 500))
    sim.run(until=10 * USEC)
    assert len(seen) == 1
    assert net.extras["packet_switch"].rx_packets == 0

"""CalendarQueue semantics: exact order parity, removal, and the
Simulator diagnostics (pending / heap_entries / peek_time / cancel)
under the calendar scheduler.

The calendar queue is a drop-in event store: everything observable —
pop order, cancellation, live counts — must match the binary heap
bit-for-bit.  The fuzz tests below drive both stores with the same
randomized schedule, including the adversarial shapes (same-bucket
ties, entries landing in the currently draining epoch, removals from
every internal store) that the scenario-level determinism suite cannot
isolate.
"""

import heapq
import random

import pytest

from repro.sim.engine import CalendarQueue, Simulator


def _entry(time_ns, seq):
    return (time_ns, seq, (lambda: None), ())


# ----------------------------------------------------------------------
# Order parity against a plain heap
# ----------------------------------------------------------------------
def test_pop_order_matches_heap_on_random_schedule():
    rng = random.Random(42)
    cal = CalendarQueue(width_ns=64)
    heap = []
    seq = 0
    for _ in range(2000):
        t = rng.randrange(0, 5000)
        entry = _entry(t, seq)
        seq += 1
        cal.push(entry)
        heapq.heappush(heap, entry)
    got = []
    while True:
        entry = cal.pop()
        if entry is None:
            break
        got.append(entry)
    expected = [heapq.heappop(heap) for _ in range(len(heap))]
    assert [(e[0], e[1]) for e in got] == [(e[0], e[1]) for e in expected]


def test_interleaved_push_pop_preserves_order():
    # Pushes that land in the *currently draining* epoch go to the side
    # heap; they must still come out in (time, seq) order relative to
    # the sorted bucket being drained.
    rng = random.Random(7)
    cal = CalendarQueue(width_ns=32)
    heap = []
    seq = 0
    clock = 0
    got = []
    expected = []
    for _ in range(500):
        for _ in range(rng.randrange(0, 6)):
            t = clock + rng.randrange(0, 200)
            entry = _entry(t, seq)
            seq += 1
            cal.push(entry)
            heapq.heappush(heap, entry)
        for _ in range(rng.randrange(0, 5)):
            entry = cal.pop()
            if entry is None:
                assert not heap
                break
            got.append((entry[0], entry[1]))
            ref = heapq.heappop(heap)
            expected.append((ref[0], ref[1]))
            clock = max(clock, entry[0])
    while True:
        entry = cal.pop()
        if entry is None:
            break
        got.append((entry[0], entry[1]))
        ref = heapq.heappop(heap)
        expected.append((ref[0], ref[1]))
    assert not heap
    assert got == expected


def test_same_time_entries_pop_in_sequence_order():
    cal = CalendarQueue(width_ns=4096)
    entries = [_entry(1000, seq) for seq in range(50)]
    shuffled = entries[:]
    random.Random(3).shuffle(shuffled)
    for entry in shuffled:
        cal.push(entry)
    popped = [cal.pop()[1] for _ in range(50)]
    assert popped == sorted(popped)


def test_peek_does_not_consume_or_reorder():
    cal = CalendarQueue(width_ns=16)
    for seq, t in enumerate([300, 100, 200]):
        cal.push(_entry(t, seq))
    assert cal.peek()[0] == 100
    assert len(cal) == 3
    assert [cal.pop()[0] for _ in range(3)] == [100, 200, 300]
    assert cal.peek() is None


def test_len_tracks_push_pop():
    cal = CalendarQueue(width_ns=8)
    assert len(cal) == 0
    for seq in range(10):
        cal.push(_entry(seq * 100, seq))
    assert len(cal) == 10
    cal.pop()
    cal.pop()
    assert len(cal) == 8


# ----------------------------------------------------------------------
# remove() — every internal store
# ----------------------------------------------------------------------
def test_remove_from_future_bucket():
    cal = CalendarQueue(width_ns=16)
    keep = _entry(500, 0)
    victim = _entry(500, 1)
    cal.push(keep)
    cal.push(victim)
    cal.remove(victim)
    assert len(cal) == 1
    assert cal.pop() is keep
    assert cal.pop() is None


def test_remove_from_active_bucket_and_side_heap():
    cal = CalendarQueue(width_ns=16)
    first = _entry(0, 0)
    later = _entry(5, 1)
    cal.push(first)
    cal.push(later)
    assert cal.pop() is first  # activates the epoch-0 bucket
    # An entry pushed at/before the current epoch rides the side heap.
    side = _entry(6, 2)
    cal.push(side)
    cal.remove(side)  # removes from the side heap
    cal.remove(later)  # removes from the active (sorted) bucket
    assert cal.pop() is None
    assert len(cal) == 0


def test_remove_missing_entry_raises():
    cal = CalendarQueue(width_ns=16)
    cal.push(_entry(100, 0))
    with pytest.raises(ValueError):
        cal.remove(_entry(100, 99))


def test_remove_leaves_emptied_bucket_harmless():
    # Removing a future bucket's only entry leaves its epoch in the
    # epoch heap; pop must skip the drained bucket and keep going.
    cal = CalendarQueue(width_ns=16)
    lone = _entry(160, 0)
    after = _entry(320, 1)
    cal.push(lone)
    cal.push(after)
    cal.remove(lone)
    assert cal.pop() is after
    assert cal.pop() is None


def test_invalid_width_rejected():
    with pytest.raises(ValueError):
        CalendarQueue(width_ns=0)


# ----------------------------------------------------------------------
# Simulator diagnostics under the calendar scheduler
# ----------------------------------------------------------------------
def test_simulator_calendar_pending_and_peek_time():
    sim = Simulator(scheduler="calendar")
    fired = []
    sim.at(50, fired.append, "a")
    timer = sim.at_cancellable(10, fired.append, "t")
    assert sim.pending == 2
    assert sim.peek_time() == 10
    timer.cancel()
    # Cancellation discounts the live count immediately; peek_time
    # prunes the cancelled entry and reports the next live event.
    assert sim.pending == 1
    assert sim.peek_time() == 50
    sim.run()
    assert fired == ["a"]
    assert sim.pending == 0
    assert sim.peek_time() is None


def test_simulator_calendar_cancelled_entries_never_fire():
    sim = Simulator(scheduler="calendar")
    fired = []
    handles = [sim.after_cancellable(i * 10 + 10, fired.append, i) for i in range(20)]
    for handle in handles[::2]:
        handle.cancel()
    sim.run()
    assert fired == [i for i in range(20) if i % 2 == 1]


def test_simulator_calendar_run_until_and_resume():
    sim = Simulator(scheduler="calendar")
    fired = []
    for t in (10, 20, 30):
        sim.at(t, fired.append, t)
    assert sim.run(until=20) == 2
    assert fired == [10, 20]
    assert sim.now == 20
    assert sim.run() == 1
    assert fired == [10, 20, 30]


def test_simulator_calendar_max_events_budget():
    sim = Simulator(scheduler="calendar")
    fired = []
    for t in (10, 20, 30, 40):
        sim.at(t, fired.append, t)
    assert sim.run(max_events=3) == 3
    assert fired == [10, 20, 30]
    assert sim.pending == 1
    sim.run()
    assert fired == [10, 20, 30, 40]


def test_simulator_calendar_heap_entries_diagnostic():
    sim = Simulator(scheduler="calendar")
    sim.at(10, lambda: None)
    timer = sim.at_cancellable(20, lambda: None)
    assert sim.heap_entries == 2
    timer.cancel()
    # Cancelled entries await lazy compaction: raw store length still 2.
    assert sim.heap_entries == 2
    assert sim.pending == 1

"""Tier-1 self-lint: the shipped tree must pass its own invariant linter.

Runs the framework in-process over the default targets (``src/``,
``examples/``, ``benchmarks/``) so any contract regression — an
unseeded RNG, a retained AckFeedback, a float creeping into a
nanosecond timestamp — fails ``pytest -x -q`` immediately.
"""

from repro.lint import run_paths
from repro.lint.registry import RULES, load_builtin_rules


def test_rule_battery_is_complete():
    load_builtin_rules()
    assert len(RULES) >= 6
    categories = {entry.category for entry in RULES.values()}
    # at least the contract families named in docs/INVARIANTS.md
    for category in ("determinism", "pool-lifetime", "registry",
                     "integer-time", "scheduler-api", "env-isolation",
                     "robustness"):
        assert category in categories, category


def test_tree_lints_clean():
    report = run_paths()
    rendered = "\n".join(f.render() for f in report.findings)
    assert report.ok, f"repro lint found violations:\n{rendered}"
    assert report.files_checked > 100


def test_suppressions_in_tree_are_all_consumed():
    # run_paths' full battery flags stale suppressions as findings, so a
    # clean report also proves every `# lint: disable=` is still needed.
    report = run_paths()
    assert not any(f.rule_id == "unused-suppression" for f in report.findings)
    # scenarios/base.py carries the two documented wall-clock waivers;
    # campaign/executor.py the env-read waiver for the worker PYTHONPATH
    assert report.suppressed == 3

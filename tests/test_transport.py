"""Transport tests: reliable delivery, pacing, go-back-N, RTT echo."""

import pytest

from repro.cc.base import StaticWindow
from repro.sim.engine import Simulator
from repro.topology.dumbbell import DumbbellParams, build_dumbbell
from repro.transport.flow import Flow
from repro.transport.receiver import Receiver
from repro.transport.sender import Sender
from repro.units import GBPS, MSEC, USEC


def make_net(left=2, right=1, **kwargs):
    sim = Simulator()
    params = DumbbellParams(
        left_hosts=left,
        right_hosts=right,
        host_bw_bps=10 * GBPS,
        bottleneck_bw_bps=10 * GBPS,
        **kwargs,
    )
    return sim, build_dumbbell(sim, params)


def launch(sim, net, flow, cc=None, **sender_kwargs):
    receiver = Receiver(sim, net.host(flow.dst), flow)
    sender = Sender(
        sim,
        net.host(flow.src),
        flow,
        cc or StaticWindow(),
        base_rtt_ns=net.base_rtt_ns,
        **sender_kwargs,
    )
    receiver.start()
    sender.start()
    return sender, receiver


def test_flow_completes_and_fct_recorded():
    sim, net = make_net()
    flow = Flow(1, 0, 2, 100_000)
    launch(sim, net, flow)
    sim.run(until=5 * MSEC)
    assert flow.completed
    assert flow.finish_ns > flow.start_ns
    assert flow.bytes_received == 100_000
    assert flow.sender_done_ns >= flow.finish_ns  # ack comes after delivery


def test_fct_close_to_ideal_for_unloaded_path():
    sim, net = make_net()
    flow = Flow(1, 0, 2, 1_000_000)
    launch(sim, net, flow)
    sim.run(until=20 * MSEC)
    ideal = flow.ideal_fct_ns(net.base_rtt_ns, 10 * GBPS)
    assert flow.completed
    assert flow.fct_ns < 1.2 * ideal  # no congestion: near-ideal


def test_sender_respects_window():
    sim, net = make_net()
    flow = Flow(1, 0, 2, 10_000_000)
    sender, _ = launch(sim, net, flow, cc=StaticWindow(bdp_multiple=0.25))
    sim.run(until=100 * USEC)
    # Inflight can exceed the window by at most one MTU (packetization).
    assert sender.inflight <= sender.cwnd + sender.mtu_payload


def test_pacing_limits_rate():
    sim, net = make_net()
    flow = Flow(1, 0, 2, 10_000_000)

    class SlowPace(StaticWindow):
        def on_start(self, sender):
            super().on_start(sender)
            sender.pacing_rate_bps = 1 * GBPS  # 10x slower than the line

    launch(sim, net, flow, cc=SlowPace(bdp_multiple=4.0))
    sim.run(until=1 * MSEC)
    # At 1 Gbps for 1 ms at most ~125 KB (+ window burst) can be sent.
    assert flow.bytes_received < 200_000


def test_rtt_measurement_close_to_base():
    sim, net = make_net()
    flow = Flow(1, 0, 2, 50_000)
    sender, _ = launch(sim, net, flow)
    sim.run(until=2 * MSEC)
    assert sender.last_rtt_ns is not None
    # Unloaded path: measured RTT within 50% of the configured base.
    assert sender.last_rtt_ns <= 1.5 * net.base_rtt_ns


def test_loss_recovery_via_go_back_n():
    # A tiny shared buffer forces drops under a 2-sender burst.
    sim, net = make_net(left=3, buffer_bytes=30_000)
    flows = [Flow(i + 1, i, 3, 400_000) for i in range(3)]
    for flow in flows:
        launch(sim, net, flow, cc=StaticWindow(bdp_multiple=8.0))
    sim.run(until=50 * MSEC)
    assert net.total_drops() > 0  # the scenario actually stressed the buffer
    for flow in flows:
        assert flow.completed  # ...and everyone still finished
    assert sum(f.retransmissions for f in flows) > 0


def test_receiver_discards_out_of_order_but_acks():
    sim, net = make_net()
    flow = Flow(1, 0, 2, 10_000)
    receiver = Receiver(sim, net.host(2), flow)
    receiver.start()
    from repro.sim.packet import Packet

    # Deliver the second segment first.
    receiver.on_packet(Packet.data(1, 0, 2, seq=1000, payload=1000))
    assert receiver.rcv_nxt == 0
    assert receiver.out_of_order == 1
    receiver.on_packet(Packet.data(1, 0, 2, seq=0, payload=1000))
    assert receiver.rcv_nxt == 1000  # gap still missing (go-back-N)


def test_flow_slowdown_at_least_one():
    sim, net = make_net()
    flow = Flow(1, 0, 2, 200_000)
    launch(sim, net, flow)
    sim.run(until=5 * MSEC)
    assert flow.slowdown(net.base_rtt_ns, 10 * GBPS) >= 1.0


def test_flow_accessors_raise_before_completion():
    flow = Flow(1, 0, 2, 1000)
    with pytest.raises(ValueError):
        _ = flow.fct_ns


def test_completion_callback_fires_once():
    sim, net = make_net()
    flow = Flow(1, 0, 2, 10_000)
    calls = []
    receiver = Receiver(sim, net.host(2), flow, on_complete=calls.append)
    sender = Sender(
        sim, net.host(0), flow, StaticWindow(), base_rtt_ns=net.base_rtt_ns
    )
    receiver.start()
    sender.start()
    sim.run(until=2 * MSEC)
    assert calls == [flow]
